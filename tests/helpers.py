"""Plain-function test helpers, importable from any test module.

Kept separate from ``conftest.py`` (which pytest reserves for fixtures
and hooks) so test modules can do ``from ..helpers import
make_random_pair`` without relying on conftest import mechanics.
"""

from __future__ import annotations

import numpy as np

from repro.datagen.synthetic import generate_matrix
from repro.relational import Relation

__all__ = ["make_random_pair"]


def make_random_pair(
    seed: int,
    n: int = 10,
    d: int = 4,
    g: int = 3,
    a: int = 0,
    levels: int = 4,
    distribution: str = "independent",
):
    """Small random relation pair with discretized values (forces ties).

    Discretization matters: ties exercise the equal-sharer logic in the
    target sets, which continuous data would almost never hit.
    """
    rng = np.random.default_rng(seed)
    names = [f"s{i}" for i in range(d)]
    rels = []
    for name in ("R1", "R2"):
        matrix = np.floor(generate_matrix(n, d, distribution, rng) * levels)
        rels.append(
            Relation.from_arrays(
                matrix,
                names,
                join_key=[int(i % g) for i in range(n)],
                aggregate=names[:a],
                name=name,
            )
        )
    return rels[0], rels[1]
