"""Unit tests for repro.core.params."""

import pytest

from repro.core import KSJQParams
from repro.errors import ParameterError
from repro.relational import RelationSchema


class TestValidation:
    def test_valid_no_aggregation(self):
        p = KSJQParams(k=7, d1=4, d2=4, a=0)
        assert p.l1 == 4 and p.l2 == 4
        assert p.joined_d == 8
        assert p.k_min == 5 and p.k_max == 8

    def test_paper_example_thresholds(self):
        # Sec. 5.4: d1 = d2 = 4, k = 7 -> k'_1 = k'_2 = 3.
        p = KSJQParams(k=7, d1=4, d2=4, a=0)
        assert p.k1_prime == 3 and p.k2_prime == 3
        assert p.k1_min_local == 3 and p.k2_min_local == 3

    def test_paper_aggregate_example_thresholds(self):
        # Sec. 5.6 example: d = 4, a = 1, k = 6 -> k'' = 2, k' = 3.
        p = KSJQParams(k=6, d1=4, d2=4, a=1)
        assert p.k1_min_local == 2 and p.k2_min_local == 2
        assert p.k1_prime == 3 and p.k2_prime == 3
        assert p.joined_d == 7

    def test_k_too_small(self):
        with pytest.raises(ParameterError, match="outside valid range"):
            KSJQParams(k=4, d1=4, d2=4, a=0)

    def test_k_too_large(self):
        with pytest.raises(ParameterError, match="outside valid range"):
            KSJQParams(k=9, d1=4, d2=4, a=0)

    def test_k_max_allowed(self):
        # k = d (full domination on the join) is the inclusive maximum.
        p = KSJQParams(k=8, d1=4, d2=4, a=0)
        assert p.k == p.k_max

    def test_aggregation_shrinks_k_max(self):
        p = KSJQParams(k=7, d1=4, d2=4, a=1)
        assert p.k_max == 7  # l1 + l2 + a = 3 + 3 + 1

    def test_invalid_a(self):
        with pytest.raises(ParameterError, match="a="):
            KSJQParams(k=5, d1=3, d2=4, a=4)
        with pytest.raises(ParameterError, match="a="):
            KSJQParams(k=5, d1=3, d2=4, a=-1)

    def test_empty_relation_dims(self):
        with pytest.raises(ParameterError, match="at least one skyline"):
            KSJQParams(k=1, d1=0, d2=1, a=0)

    def test_asymmetric_dims(self):
        p = KSJQParams(k=6, d1=3, d2=5, a=0)
        assert p.k_min == 6  # max(3, 5) + 1
        assert p.k1_prime == 1 and p.k2_prime == 3

    def test_describe(self):
        text = KSJQParams(k=7, d1=4, d2=4, a=1).describe()
        assert "k=7" in text and "a=1" in text


class TestFromSchemas:
    def test_derives_from_schemas(self):
        s1 = RelationSchema.build(skyline=["c", "x", "y"], aggregate=["c"])
        s2 = RelationSchema.build(skyline=["c", "p", "q"], aggregate=["c"])
        p = KSJQParams.from_schemas(s1, s2, k=5)
        assert p.d1 == 3 and p.d2 == 3 and p.a == 1

    def test_incompatible_schemas_rejected(self):
        s1 = RelationSchema.build(skyline=["c", "x"], aggregate=["c"])
        s2 = RelationSchema.build(skyline=["d", "x"], aggregate=["d"])
        with pytest.raises(Exception):
            KSJQParams.from_schemas(s1, s2, k=3)
