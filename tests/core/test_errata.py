"""Regression tests pinning the paper's soundness errata (DESIGN.md §4).

These tests document — permanently and executably — the two mechanisms
by which the paper's optimized algorithms over-report under aggregation,
and show that exact mode repairs both.
"""

import warnings

import numpy as np
import pytest

import repro
from repro.core import Category, JoinPlan, run_dominator, run_grouping, run_naive
from repro.errors import SoundnessWarning
from repro.relational import Relation

from ..helpers import make_random_pair


def _rel(matrix, aggregate, name):
    matrix = np.asarray(matrix, dtype=float)
    names = ["local", "agg1", "agg2"][: matrix.shape[1]]
    return Relation.from_arrays(
        matrix,
        names,
        join_key=[0] * matrix.shape[0],
        aggregate=aggregate,
        name=name,
    )


class TestTheorem3CounterexampleA2:
    """Theorem 3 (SS x SS = 'yes') fails for a >= 2 with sum aggregation."""

    @pytest.fixture
    def relations(self):
        # l = 1 local + 2 aggregates per relation, one join group, k = 4
        # (full domination over the 4 joined attributes: local1, local2,
        # agg1, agg2). The two aggregate dimensions trade off.
        r1 = _rel([[0, 5, 5], [0, 6, 3]], ["agg1", "agg2"], "R1")
        r2 = _rel([[0, 5, 5], [0, 3, 6]], ["agg1", "agg2"], "R2")
        return r1, r2

    def test_all_tuples_are_ss(self, relations):
        r1, r2 = relations
        plan = JoinPlan(r1, r2, aggregate="sum")
        params = plan.params(4)
        assert params.k1_prime == 3 and params.k2_prime == 3
        for cat in (plan.categorize_left(3), plan.categorize_right(3)):
            assert all(cat.category(i) is Category.SS for i in range(2))

    def test_ss_join_ss_tuple_is_dominated(self, relations):
        # (0,6,3) x (0,3,6) -> (0, 0, 9, 9) 4-dominates
        # (0,5,5) x (0,5,5) -> (0, 0, 10, 10).
        r1, r2 = relations
        base = run_naive(JoinPlan(r1, r2, aggregate="sum"), 4)
        assert (0, 0) not in base.pair_set()
        assert (1, 1) in base.pair_set()

    @pytest.mark.parametrize("runner", [run_grouping, run_dominator])
    def test_faithful_over_reports(self, relations, runner):
        r1, r2 = relations
        plan = JoinPlan(r1, r2, aggregate="sum")
        base = run_naive(plan, 4)
        with pytest.warns(SoundnessWarning):
            faithful = runner(plan, 4, mode="faithful")
        assert (0, 0) in faithful.pair_set()  # the false positive
        assert faithful.pair_set() > base.pair_set()

    @pytest.mark.parametrize("runner", [run_grouping, run_dominator])
    def test_exact_mode_repairs(self, relations, runner):
        r1, r2 = relations
        plan = JoinPlan(r1, r2, aggregate="sum")
        base = run_naive(plan, 4)
        exact = runner(plan, 4, mode="exact")
        assert exact.pair_set() == base.pair_set()


class TestTargetIncompletenessA1:
    """Obs. 3 target sets are incomplete for a = 1 (found by differential
    testing; seed pinned from the original discovery run).

    The false-positive joined tuples sit in the SS x SN cell; their true
    dominators' left components are better-or-equal in only
    k'' = k' - a attributes (the aggregate input is worse, compensated
    through the partner's aggregate input), hence outside the paper's
    k'-threshold target set.
    """

    @staticmethod
    def _discovery_pair():
        # Reconstruct the discovery configuration verbatim: seed 1001,
        # d=4, n=10, g=3, a=1, 4-level discretized independent data.
        rng = np.random.default_rng(1 + 1000 * 1)
        d = int(rng.integers(2, 5))
        n = int(rng.integers(4, 14))
        g = int(rng.integers(1, 4))
        from repro.datagen.synthetic import generate_matrix

        m1 = np.floor(generate_matrix(n, d, "independent", rng) * 4)
        m2 = np.floor(generate_matrix(n, d, "independent", rng) * 4)
        names = [f"s{i}" for i in range(d)]
        r1 = Relation.from_arrays(
            m1, names, join_key=[int(i % g) for i in range(n)], aggregate=names[:1]
        )
        r2 = Relation.from_arrays(
            m2, names, join_key=[int(i % g) for i in range(n)], aggregate=names[:1]
        )
        return r1, r2, d, n, g

    def test_pinned_false_positive(self):
        r1, r2, d, n, g = self._discovery_pair()
        assert (d, n, g) == (4, 10, 3)
        k = 7
        plan = JoinPlan(r1, r2, aggregate="sum")
        base = run_naive(plan, k)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", SoundnessWarning)
            faithful = run_grouping(plan, k, mode="faithful")
        extra = faithful.pair_set() - base.pair_set()
        assert extra == {(4, 1), (4, 7)}
        assert base.pair_set() <= faithful.pair_set()

    def test_false_positives_sit_in_likely_cell(self):
        r1, r2, *_ = self._discovery_pair()
        plan = JoinPlan(r1, r2, aggregate="sum")
        params = plan.params(7)
        cat1 = plan.categorize_left(params.k1_prime)
        cat2 = plan.categorize_right(params.k2_prime)
        assert cat1.category(4) is Category.SS
        assert cat2.category(1) is Category.SN
        assert cat2.category(7) is Category.SN

    def test_true_dominator_outside_paper_target(self):
        from repro.core import target_rows_exact, target_rows_paper

        r1, r2, *_ = self._discovery_pair()
        plan = JoinPlan(r1, r2, aggregate="sum")
        params = plan.params(7)
        # (3, 3) k-dominates the false positive (4, 1); its left
        # component 3 has boe count k'' = 3 < k' = 4 versus tuple 4.
        paper_targets = set(target_rows_paper(r1, 4, params.k1_prime).tolist())
        exact_targets = set(target_rows_exact(r1, 4, params.k1_min_local).tolist())
        assert 3 not in paper_targets
        assert 3 in exact_targets

    def test_exact_mode_repairs(self):
        r1, r2, *_ = self._discovery_pair()
        plan = JoinPlan(r1, r2, aggregate="sum")
        base = run_naive(plan, 7)
        for runner in (run_grouping, run_dominator):
            assert runner(plan, 7, mode="exact").pair_set() == base.pair_set()


class TestAlgorithm6OffByOne:
    """The printed Algorithm 6 loops ``while l < h`` and can exit
    without probing the final ``l == h`` value, returning an answer one
    too high. Our implementation uses ``while l <= h`` (documented
    deviation); this test pins the failure case and the fix.
    """

    def test_worked_example_delta_one(self):
        from repro.datagen import flight_example_relations

        f1, f2 = flight_example_relations()
        # Counts per k: k=5 -> 1, k=6 -> 4. The smallest k with >= 1
        # skyline tuple is 5.
        assert repro.ksjq(f1, f2, k=5, algorithm="naive").count == 1
        for method in ("naive", "range", "binary"):
            assert repro.find_k(f1, f2, delta=1, method=method).k == 5

    def test_printed_pseudocode_would_return_six(self):
        # Simulate the printed loop on the same counts to document why
        # the deviation is necessary: first probe k=6 succeeds, h drops
        # to 5, and the l<h guard exits before k=5 is ever probed.
        counts = {5: 1, 6: 4, 7: 4, 8: 12}
        low, high, cur = 5, 8, 8
        while low < high:  # the paper's guard
            k = (low + high) // 2
            if counts[k] >= 1:
                cur, high = k, k - 1
            else:
                low = k + 1
            if low >= cur:
                break
        assert cur == 6  # printed pseudocode's (wrong) answer


class TestFaithfulExactWithoutAggregation:
    """Without aggregation the faithful algorithms are exact — the
    empirical half of the paper's Theorems 3/4 and Obs. 3/4 for a=0."""

    @pytest.mark.parametrize("seed", range(20))
    def test_faithful_equals_naive(self, seed):
        left, right = make_random_pair(seed=seed, n=12, d=4, g=3, a=0)
        base = repro.ksjq(left, right, k=6, algorithm="naive")
        for algorithm in ("grouping", "dominator"):
            res = repro.ksjq(left, right, k=6, algorithm=algorithm, mode="faithful")
            assert res.pair_set() == base.pair_set()
