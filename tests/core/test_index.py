"""Unit coverage for :mod:`repro.core.index` structures and helpers."""

import numpy as np
import pytest

from repro.core import CellPartition, DominanceIndex, JoinPlan, run_naive
from repro.core.index import (
    IndexStats,
    _choose_grid_columns,
    _digitize,
    _quantile_edges,
    joined_cell_ids,
    lpt_buckets,
    run_indexed,
)
from repro.relational import Relation

from ..helpers import make_random_pair


def rel_from(matrix, name="X", join_key=None):
    matrix = np.asarray(matrix, dtype=np.float64)
    names = [f"s{i}" for i in range(matrix.shape[1])]
    if join_key is None:
        join_key = [0] * matrix.shape[0]
    return Relation.from_arrays(matrix, names, join_key=join_key, name=name)


# ----------------------------------------------------------------------
# Grid construction helpers
# ----------------------------------------------------------------------
class TestChooseGridColumns:
    def test_picks_two_highest_variance(self):
        rng = np.random.default_rng(0)
        matrix = np.column_stack(
            [
                rng.random(50) * 0.1,  # low variance
                rng.random(50) * 10.0,  # highest
                rng.random(50) * 3.0,  # second
                np.full(50, 7.0),  # constant
            ]
        )
        assert _choose_grid_columns(matrix) == (1, 2)

    def test_constant_columns_are_skipped(self):
        matrix = np.column_stack([np.full(10, 1.0), np.arange(10.0)])
        assert _choose_grid_columns(matrix) == (1,)

    def test_all_constant_gives_empty(self):
        assert _choose_grid_columns(np.ones((5, 3))) == ()

    def test_empty_matrix_gives_empty(self):
        assert _choose_grid_columns(np.empty((0, 4))) == ()
        assert _choose_grid_columns(np.empty((4, 0))) == ()


class TestQuantileEdges:
    def test_single_bin_has_no_edges(self):
        assert _quantile_edges(np.arange(10.0), 1).size == 0

    def test_no_values_has_no_edges(self):
        assert _quantile_edges(np.empty(0), 4).size == 0

    def test_heavy_ties_collapse(self):
        values = np.asarray([1.0] * 99 + [2.0])
        edges = _quantile_edges(values, 8)
        assert edges.size == np.unique(edges).size  # deduplicated
        assert edges.size < 7  # skew collapsed most cut points

    def test_edges_are_interior_and_sorted(self):
        edges = _quantile_edges(np.arange(100.0), 4)
        assert list(edges) == sorted(edges)
        assert 0.0 < edges[0] and edges[-1] < 99.0


class TestDigitize:
    def test_mixed_radix_codes_are_consistent(self):
        matrix = np.asarray([[0.0, 0.0], [5.0, 0.0], [0.0, 5.0], [5.0, 5.0]])
        edges = (np.asarray([2.5]), np.asarray([2.5]))
        codes = _digitize(matrix, (0, 1), edges)
        assert len(set(codes.tolist())) == 4

    def test_no_grid_columns_single_code(self):
        codes = _digitize(np.random.default_rng(0).random((6, 3)), (), ())
        assert (codes == 0).all()


class TestLptBuckets:
    def test_deterministic(self):
        sizes = np.asarray([5, 1, 9, 3, 3, 7], dtype=np.intp)
        assert lpt_buckets(sizes, 3) == lpt_buckets(sizes, 3)

    def test_partitions_exactly_once(self):
        sizes = np.asarray([4, 4, 4, 4, 1], dtype=np.intp)
        got = lpt_buckets(sizes, 2)
        assert sorted(i for b in got for i in b) == [0, 1, 2, 3, 4]

    def test_balances_loads(self):
        sizes = np.asarray([10, 10, 10, 10, 1, 1, 1, 1], dtype=np.intp)
        got = lpt_buckets(sizes, 4)
        loads = [int(sizes[b].sum()) for b in got]
        assert max(loads) - min(loads) <= 2

    def test_more_buckets_than_items(self):
        got = lpt_buckets(np.asarray([3, 2], dtype=np.intp), 8)
        assert len(got) == 2  # empty buckets dropped

    def test_empty_sizes(self):
        assert lpt_buckets(np.empty(0, dtype=np.intp), 4) == []


# ----------------------------------------------------------------------
# DominanceIndex
# ----------------------------------------------------------------------
class TestDominanceIndex:
    def test_empty_relation(self):
        index = DominanceIndex.build(rel_from(np.empty((0, 3))))
        assert index.n_rows == 0 and index.n_cells == 0
        assert index.cell_lb.shape == (0, 3)
        assert index.mean_cell_span == 0.0
        assert "0 cells" in index.describe()

    def test_single_row(self):
        index = DominanceIndex.build(rel_from([[1.0, 2.0, 3.0]]))
        assert index.n_rows == 1 and index.n_cells == 1
        assert (index.cell_lb[0] == index.cell_ub[0]).all()

    def test_constant_relation_is_single_cell(self):
        index = DominanceIndex.build(rel_from(np.ones((20, 3))))
        assert index.grid_columns == ()
        assert index.n_cells == 1
        assert (index.cell_of == 0).all()

    def test_anonymous_tokens_are_unique(self):
        rel = rel_from(np.random.default_rng(0).random((8, 2)))
        assert DominanceIndex.build(rel).token != DominanceIndex.build(rel).token

    def test_explicit_token_is_kept(self):
        rel = rel_from(np.random.default_rng(0).random((8, 2)))
        index = DominanceIndex.build(rel, token=("uid", 42, 3))
        assert index.token == ("uid", 42, 3)
        assert "('uid', 42, 3)" in repr(index)

    def test_bounds_cover_rows_columnwise(self):
        rel = rel_from(np.random.default_rng(1).random((60, 5)) * 9)
        index = DominanceIndex.build(rel)
        matrix = rel.oriented()
        assert index.cell_counts.sum() == 60
        for cell in range(index.n_cells):
            rows = matrix[index.cell_of == cell]
            assert (rows >= index.cell_lb[cell]).all()
            assert (rows <= index.cell_ub[cell]).all()

    def test_column_sorted_is_sorted(self):
        rel = rel_from(np.random.default_rng(2).random((30, 4)))
        index = DominanceIndex.build(rel)
        assert (np.diff(index.column_sorted, axis=0) >= 0).all()

    def test_mean_cell_span_shrinks_with_partitioning(self):
        """A partitioned index has tighter cells than a one-cell index
        over the same rows — the selectivity signal must reflect it."""
        matrix = np.random.default_rng(3).random((100, 3))
        rel = rel_from(matrix)
        partitioned = DominanceIndex.build(rel)
        single = DominanceIndex(("t",), rel.oriented(), (), (), np.zeros(100, dtype=np.intp))
        assert partitioned.n_cells > 1
        assert 0.0 < partitioned.mean_cell_span < single.mean_cell_span <= 1.0


class TestWithInsertedRows:
    def test_appended_tail_reuses_grid_geometry(self):
        rng = np.random.default_rng(5)
        base = rng.random((40, 4)) * 8
        tail = rng.random((10, 4)) * 8
        old = DominanceIndex.build(rel_from(base))
        new = old.with_inserted_rows(rel_from(np.vstack([base, tail])))
        assert new.grid_columns == old.grid_columns
        assert all(
            (a == b).all() for a, b in zip(new.bin_edges, old.bin_edges)
        )
        assert new.n_rows == 50
        # Old rows keep their raw codes; only the tail was digitized.
        assert (new.cell_codes[:40] == old.cell_codes).all()
        matrix = np.vstack([base, tail])
        for cell in range(new.n_cells):
            rows = matrix[new.cell_of == cell]
            assert (rows >= new.cell_lb[cell]).all()
            assert (rows <= new.cell_ub[cell]).all()

    def test_maintained_index_gives_same_answers_as_fresh(self):
        left, right = make_random_pair(seed=13, n=30, d=4, g=3)
        extra, _ = make_random_pair(seed=14, n=10, d=4, g=3)
        grown = Relation.from_records(
            left.schema, list(left.records()) + list(extra.records()), name=left.name
        )
        plan = JoinPlan(grown, right)
        maintained = DominanceIndex.build(left).with_inserted_rows(grown)
        fresh = DominanceIndex.build(grown)
        right_index = DominanceIndex.build(right)
        want = run_naive(plan, 8)
        for left_index in (maintained, fresh):
            got = run_indexed(plan, 8, left_index, right_index)
            assert got.pairs.tobytes() == want.pairs.tobytes()


class TestIndexStats:
    def test_as_dict_keys_and_defaults(self):
        assert IndexStats().as_dict() == {
            "index_builds": 0,
            "index_hits": 0,
            "index_invalidations": 0,
            "index_maintained": 0,
        }

    def test_as_dict_reflects_counts(self):
        stats = IndexStats(builds=2, hits=5, invalidations=1, maintained=3)
        assert stats.as_dict()["index_hits"] == 5
        assert stats.as_dict()["index_maintained"] == 3


# ----------------------------------------------------------------------
# CellPartition
# ----------------------------------------------------------------------
class TestCellPartition:
    def test_empty_matrix(self):
        partition = CellPartition(np.empty((0, 4)), np.empty(0, dtype=np.intp))
        assert partition.n_cells == 0
        assert partition.pruned_cells(5).size == 0
        assert partition.row_buckets(5, 4) == []
        assert partition.sorted_matrix().shape == (0, 4)

    def test_lower_bounds_are_per_cell_minima(self):
        matrix = np.asarray(
            [[3.0, 1.0], [1.0, 3.0], [5.0, 5.0], [4.0, 0.0]], dtype=np.float64
        )
        partition = CellPartition(matrix, np.asarray([1, 1, 0, 0], dtype=np.intp))
        # Cells are ordered by sorted cell id: cell 0 holds rows 2,3.
        assert (partition.cell_lb[0] == [4.0, 0.0]).all()
        assert (partition.cell_lb[1] == [1.0, 1.0]).all()
        assert partition.cell_counts.tolist() == [2, 2]

    def test_pruning_mask_is_memoized(self):
        rng = np.random.default_rng(8)
        matrix = np.floor(rng.random((20, 4)) * 4)
        partition = CellPartition(matrix, rng.integers(0, 4, 20).astype(np.intp))
        first = partition.pruned_cells(5)
        assert partition.pruned_cells(5) is first  # same object, no rescan
        assert first.dtype == bool

    def test_sorted_matrix_is_memoized_permutation(self):
        rng = np.random.default_rng(9)
        matrix = rng.random((15, 3))
        partition = CellPartition(matrix, np.zeros(15, dtype=np.intp))
        sorted_matrix = partition.sorted_matrix()
        assert partition.sorted_matrix() is sorted_matrix
        assert sorted_matrix.shape == matrix.shape
        # A permutation of the same rows, not a copy of different data.
        assert sorted(map(tuple, sorted_matrix)) == sorted(map(tuple, matrix))

    def test_row_buckets_cover_survivors_cell_whole(self):
        rng = np.random.default_rng(10)
        matrix = rng.random((30, 4)) * 9
        cell_ids = rng.integers(0, 6, 30).astype(np.intp)
        partition = CellPartition(matrix, cell_ids)
        k = 5
        pruned = partition.pruned_cells(k)
        buckets = partition.row_buckets(k, 3)
        covered = np.sort(np.concatenate(buckets)) if buckets else np.empty(0)
        unique_ids = np.unique(cell_ids)
        surviving_rows = np.flatnonzero(
            ~pruned[np.searchsorted(unique_ids, cell_ids)]
        )
        assert (covered == surviving_rows).all()
        # Cell-whole: a cell's rows never straddle two buckets.
        for bucket in buckets:
            for cell in np.unique(cell_ids[bucket]):
                assert (cell_ids[bucket] == cell).sum() == (cell_ids == cell).sum()

    def test_all_pruned_gives_no_buckets(self):
        # One dominating row in its own cell prunes the other cell;
        # its own cell cannot be pruned by itself alone... so add a
        # mutually-dominating pair (2-cycle) to prune everything.
        matrix = np.asarray(
            [[0.0, 0.0, 9.0, 9.0], [9.0, 9.0, 0.0, 0.0]], dtype=np.float64
        )
        partition = CellPartition(matrix, np.asarray([0, 1], dtype=np.intp))
        assert partition.pruned_cells(2).all()
        assert partition.row_buckets(2, 4) == []

    def test_has_candidates_tracks_memo(self):
        partition = CellPartition(np.ones((3, 2)), np.zeros(3, dtype=np.intp))
        assert not partition.has_candidates(3)
        partition.candidates_by_k[3] = np.arange(3, dtype=np.intp)
        assert partition.has_candidates(3)


# ----------------------------------------------------------------------
# joined_cell_ids / run_indexed plumbing
# ----------------------------------------------------------------------
class TestJoinedCellIds:
    def test_product_code(self):
        rng = np.random.default_rng(11)
        ia = DominanceIndex.build(rel_from(rng.random((20, 3)) * 5, name="A"))
        ib = DominanceIndex.build(rel_from(rng.random((12, 3)) * 5, name="B"))
        lefts = np.asarray([0, 7, 19], dtype=np.intp)
        rights = np.asarray([11, 0, 3], dtype=np.intp)
        ids = joined_cell_ids(ia, ib, lefts, rights)
        radix = max(1, ib.n_cells)
        for pos in range(3):
            assert ids[pos] == ia.cell_of[lefts[pos]] * radix + ib.cell_of[rights[pos]]

    def test_distinct_base_cells_give_distinct_joined_cells(self):
        rng = np.random.default_rng(12)
        ia = DominanceIndex.build(rel_from(rng.random((30, 2)) * 9, name="A"))
        ib = DominanceIndex.build(rel_from(rng.random((30, 2)) * 9, name="B"))
        rows = np.arange(30, dtype=np.intp)
        ids = joined_cell_ids(ia, ib, rows, rows)
        pairs = set(zip(ia.cell_of[rows].tolist(), ib.cell_of[rows].tolist()))
        assert len(set(ids.tolist())) == len(pairs)


class TestRunIndexedDefaults:
    def test_default_shard_plan(self):
        """run_indexed with shards=None builds its own plan and still
        matches naive."""
        left, right = make_random_pair(seed=21, n=20, d=4, g=3)
        plan = JoinPlan(left, right)
        left_index, built_left = plan.side_index("left")
        right_index, _ = plan.side_index("right")
        assert built_left is True
        got = run_indexed(plan, 8, left_index, right_index)
        assert got.pairs.tobytes() == run_naive(plan, 8).pairs.tobytes()
        assert got.cell_pair_counts["cells"] >= 1
        assert got.cell_pair_counts["pruned_cells"] >= 0

    def test_side_index_is_memoized_on_plan(self):
        left, right = make_random_pair(seed=22, n=15, d=4, g=3)
        plan = JoinPlan(left, right)
        index, built = plan.side_index("left")
        again, built_again = plan.side_index("left")
        assert built is True and built_again is False
        assert again is index
        assert plan.peek_side_index("left") is index
        assert plan.peek_side_index("right") is None

    def test_bad_side_rejected(self):
        left, right = make_random_pair(seed=22, n=10, d=4, g=3)
        plan = JoinPlan(left, right)
        with pytest.raises(Exception, match="side"):
            plan.side_index("middle")
