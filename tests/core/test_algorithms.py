"""Cross-algorithm tests for Algorithms 1-3 and the cartesian fast path."""

import warnings

import numpy as np
import pytest

import repro
from repro.core import JoinPlan, run_cartesian, run_dominator, run_grouping, run_naive
from repro.errors import AggregateError, AlgorithmError, JoinError, SoundnessWarning

from ..helpers import make_random_pair


def _pairs(result):
    return result.pair_set()


class TestNaive:
    def test_result_metadata(self, tiny_pair):
        plan = JoinPlan(*tiny_pair)
        res = run_naive(plan, 4)
        assert res.algorithm == "naive"
        assert res.mode == "exact"
        assert res.timings.join > 0
        assert res.left_counts == {}

    def test_inner_engines_agree(self, tiny_pair):
        plan = JoinPlan(*tiny_pair)
        assert _pairs(run_naive(plan, 4, skyline_method="tsa")) == _pairs(
            run_naive(plan, 4, skyline_method="naive")
        )

    def test_supports_weakly_monotone_aggregate(self, agg_pair):
        plan = JoinPlan(*agg_pair, aggregate="max")
        res = run_naive(plan, 4)  # must not raise
        assert res.count >= 0

    def test_skyline_pairs_truly_undominated(self, tiny_pair):
        from repro.skyline import is_k_dominated

        plan = JoinPlan(*tiny_pair)
        k = 4
        res = run_naive(plan, k)
        view = plan.view()
        joined = view.oriented()
        answer = _pairs(res)
        for pos in range(len(view)):
            vec = joined[pos]
            pair = tuple(map(int, view.pairs[pos]))
            assert (pair in answer) == (not is_k_dominated(joined, vec, k))


class TestOptimizedAgreement:
    @pytest.mark.parametrize("seed", range(12))
    def test_all_algorithms_agree_no_aggregation(self, seed):
        left, right = make_random_pair(seed=seed, n=12, d=4, g=3, a=0)
        k = 6
        base = repro.ksjq(left, right, k=k, algorithm="naive")
        for algorithm in ("grouping", "dominator"):
            for mode in ("faithful", "exact"):
                res = repro.ksjq(left, right, k=k, algorithm=algorithm, mode=mode)
                assert _pairs(res) == _pairs(base), (algorithm, mode)

    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("a", [1, 2])
    def test_exact_mode_agrees_with_aggregation(self, seed, a):
        left, right = make_random_pair(seed=seed, n=10, d=4, g=3, a=a)
        k = 6
        base = repro.ksjq(left, right, k=k, algorithm="naive", aggregate="sum")
        for algorithm in ("grouping", "dominator"):
            res = repro.ksjq(
                left, right, k=k, algorithm=algorithm, aggregate="sum", mode="exact"
            )
            assert _pairs(res) == _pairs(base), algorithm

    @pytest.mark.parametrize("algorithm", ["grouping", "dominator"])
    def test_faithful_never_underreports(self, algorithm):
        # Faithful mode may contain false positives under aggregation
        # but must never lose a true skyline tuple (NN pruning is sound).
        for seed in range(10):
            left, right = make_random_pair(seed=seed, n=10, d=4, g=3, a=1)
            base = repro.ksjq(left, right, k=6, algorithm="naive", aggregate="sum")
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", SoundnessWarning)
                res = repro.ksjq(
                    left, right, k=6, algorithm=algorithm, aggregate="sum",
                    mode="faithful",
                )
            assert _pairs(base) <= _pairs(res)

    def test_result_metadata(self, tiny_pair):
        plan = JoinPlan(*tiny_pair)
        res = run_grouping(plan, 4)
        assert res.algorithm == "grouping"
        assert set(res.left_counts) == {"SS", "SN", "NN"}
        assert set(res.cell_pair_counts) == {"SS*SS", "SS*SN", "SN*SS", "SN*SN"}
        dom = run_dominator(plan, 4)
        assert dom.algorithm == "dominator"
        assert dom.timings.dominator >= 0

    def test_soundness_warning_emitted(self):
        left, right = make_random_pair(seed=3, n=8, d=4, g=2, a=2)
        plan = JoinPlan(left, right, aggregate="sum")
        with pytest.warns(SoundnessWarning):
            run_grouping(plan, 6, mode="faithful")

    def test_no_warning_without_aggregation(self, tiny_pair):
        plan = JoinPlan(*tiny_pair)
        with warnings.catch_warnings():
            warnings.simplefilter("error", SoundnessWarning)
            run_grouping(plan, 4, mode="faithful")  # must not warn

    def test_unknown_mode(self, tiny_pair):
        plan = JoinPlan(*tiny_pair)
        with pytest.raises(AlgorithmError, match="unknown mode"):
            run_grouping(plan, 4, mode="fast")
        with pytest.raises(AlgorithmError, match="unknown mode"):
            run_dominator(plan, 4, mode="fast")

    def test_weakly_monotone_aggregate_rejected(self, agg_pair):
        plan = JoinPlan(*agg_pair, aggregate="max")
        with pytest.raises(AggregateError, match="strictly"):
            run_grouping(plan, 4)
        with pytest.raises(AggregateError, match="strictly"):
            run_dominator(plan, 4)


class TestCartesian:
    @pytest.mark.parametrize("seed", range(8))
    def test_fast_path_matches_naive(self, seed):
        left, right = make_random_pair(seed=seed, n=10, d=3, g=1, a=0)
        plan = JoinPlan(left, right, kind="cartesian")
        assert _pairs(run_cartesian(plan, 4)) == _pairs(run_naive(plan, 4))

    def test_matches_grouping_on_single_group(self):
        left, right = make_random_pair(seed=20, n=12, d=3, g=1, a=0)
        cart = JoinPlan(left, right, kind="cartesian")
        eq = JoinPlan(left, right, kind="equality")  # all in group 0
        assert _pairs(run_cartesian(cart, 4)) == _pairs(run_grouping(eq, 4))

    def test_requires_cartesian_plan(self, tiny_pair):
        plan = JoinPlan(*tiny_pair)
        with pytest.raises(JoinError, match="cartesian"):
            run_cartesian(plan, 4)

    def test_no_verification_in_faithful_mode(self):
        left, right = make_random_pair(seed=21, n=10, d=3, g=1)
        plan = JoinPlan(left, right, kind="cartesian")
        res = run_cartesian(plan, 4, mode="faithful")
        assert res.checked == 0

    def test_exact_mode_verifies(self):
        left, right = make_random_pair(seed=22, n=10, d=3, g=1, a=1)
        plan = JoinPlan(left, right, kind="cartesian", aggregate="sum")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", SoundnessWarning)
            exact = run_cartesian(plan, 4, mode="exact")
        base = run_naive(plan, 4)
        assert _pairs(exact) == _pairs(base)

    def test_unknown_mode(self):
        left, right = make_random_pair(seed=23, n=6, d=3, g=1)
        plan = JoinPlan(left, right, kind="cartesian")
        with pytest.raises(AlgorithmError):
            run_cartesian(plan, 4, mode="quick")


class TestThetaJoins:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("op_name", ["LT", "LE", "GT", "GE"])
    def test_optimized_match_naive_on_theta_join(self, seed, op_name):
        from repro.relational import Relation, RelationSchema, ThetaCondition, ThetaOp

        rng = np.random.default_rng(seed)
        schema = RelationSchema.build(skyline=["x", "y", "z"], payload=["t"])
        n = 10

        def mk(name):
            return Relation(
                schema,
                {
                    "x": np.floor(rng.uniform(0, 4, n)),
                    "y": np.floor(rng.uniform(0, 4, n)),
                    "z": np.floor(rng.uniform(0, 4, n)),
                    "t": np.floor(rng.uniform(0, 6, n)),
                },
                name=name,
            )

        left, right = mk("L"), mk("R")
        cond = ThetaCondition("t", ThetaOp[op_name], "t")
        plan = JoinPlan(left, right, kind="theta", theta=cond)
        if len(plan.view()) == 0:
            pytest.skip("empty theta join for this seed")
        base = run_naive(plan, 4)
        for mode in ("faithful", "exact"):
            assert _pairs(run_grouping(plan, 4, mode=mode)) == _pairs(base)
            assert _pairs(run_dominator(plan, 4, mode=mode)) == _pairs(base)
