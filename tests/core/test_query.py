"""Unit tests for the repro.core.query facade and result objects."""

import pytest

import repro
from repro.core import make_plan
from repro.errors import AlgorithmError

from ..helpers import make_random_pair


class TestKsjqFacade:
    def test_auto_selects_grouping(self, tiny_pair):
        res = repro.ksjq(*tiny_pair, k=4)
        assert res.algorithm == "grouping"

    def test_auto_selects_cartesian_for_cartesian_join(self, tiny_pair):
        res = repro.ksjq(*tiny_pair, k=4, join="cartesian")
        assert res.algorithm == "cartesian"

    def test_explicit_algorithms(self, tiny_pair):
        for algorithm in ("naive", "grouping", "dominator"):
            res = repro.ksjq(*tiny_pair, k=4, algorithm=algorithm)
            assert res.algorithm == algorithm

    def test_unknown_algorithm(self, tiny_pair):
        with pytest.raises(AlgorithmError, match="unknown algorithm"):
            repro.ksjq(*tiny_pair, k=4, algorithm="quantum")

    def test_plan_reuse(self, tiny_pair):
        plan = make_plan(*tiny_pair)
        a = repro.ksjq(*tiny_pair, k=4, plan=plan)
        b = repro.ksjq(*tiny_pair, k=4, algorithm="naive", plan=plan)
        assert a.pair_set() == b.pair_set()


class TestFindKFacade:
    def test_objectives(self, tiny_pair):
        at_least = repro.find_k(*tiny_pair, delta=3, objective="at_least")
        at_most = repro.find_k(*tiny_pair, delta=3, objective="at_most")
        assert at_most.k <= at_least.k

    def test_unknown_objective(self, tiny_pair):
        with pytest.raises(AlgorithmError, match="objective"):
            repro.find_k(*tiny_pair, delta=3, objective="exactly")

    def test_methods(self, tiny_pair):
        ks = {
            method: repro.find_k(*tiny_pair, delta=3, method=method).k
            for method in ("naive", "range", "binary")
        }
        assert len(set(ks.values())) == 1


class TestResultObject:
    def test_pairs_canonical_order(self, tiny_pair):
        res = repro.ksjq(*tiny_pair, k=4)
        pairs = res.pairs.tolist()
        assert pairs == sorted(pairs)

    def test_count_matches_pairs(self, tiny_pair):
        res = repro.ksjq(*tiny_pair, k=4)
        assert res.count == len(res.pairs)

    def test_summary_renders(self, tiny_pair):
        res = repro.ksjq(*tiny_pair, k=4)
        text = res.summary()
        assert "grouping" in text and "timings" in text

    def test_to_relation(self, tiny_pair):
        left, right = tiny_pair
        plan = make_plan(left, right)
        res = repro.ksjq(left, right, k=4, plan=plan)
        rel = res.to_relation(plan.view())
        assert len(rel) == res.count
        if res.count:
            rec = rel.record(0)
            assert "_left_row" in rec and "_right_row" in rec

    def test_empty_result_handles_gracefully(self):
        # k' = 1 on independent data annihilates nearly everything.
        left, right = make_random_pair(seed=40, n=12, d=4, g=2)
        res = repro.ksjq(left, right, k=5)
        assert res.count >= 0
        assert res.pairs.shape[1] == 2
