"""Unit tests for repro.core.find_k (Algorithms 4-6, Problems 3-4)."""

import pytest

import repro
from repro.core import JoinPlan
from repro.core.find_k import find_k_at_least_delta, find_k_at_most_delta
from repro.errors import ParameterError

from ..helpers import make_random_pair


def brute_force_find_k(plan, delta):
    """Reference implementation honoring the paper's default-to-d rule."""
    d1, d2 = plan.left.schema.d, plan.right.schema.d
    a = plan.left.schema.a
    k_min, k_max = max(d1, d2) + 1, (d1 - a) + (d2 - a) + a
    for k in range(k_min, k_max):
        if repro.run_naive(plan, k).count >= delta:
            return k
    return k_max


def skyline_count(plan, k):
    return repro.run_naive(plan, k).count


@pytest.fixture
def plan():
    left, right = make_random_pair(seed=31, n=16, d=4, g=4, a=0)
    return JoinPlan(left, right)


class TestCorrectness:
    @pytest.mark.parametrize("method", ["naive", "range", "binary"])
    @pytest.mark.parametrize("delta", [1, 3, 10, 40, 10_000])
    def test_matches_bruteforce(self, plan, method, delta):
        expected = brute_force_find_k(plan, delta)
        result = find_k_at_least_delta(plan, delta, method=method)
        assert result.k == expected, result.summary()

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("method", ["naive", "range", "binary"])
    def test_matches_bruteforce_random(self, seed, method):
        left, right = make_random_pair(seed=seed, n=14, d=4, g=3, a=0)
        plan = JoinPlan(left, right)
        for delta in (1, 5, 25, 500):
            assert find_k_at_least_delta(plan, delta, method=method).k == (
                brute_force_find_k(plan, delta)
            )

    def test_skyline_count_monotone_in_k(self, plan):
        # Lemma 1 consequence: the search's correctness precondition.
        counts = [skyline_count(plan, k) for k in range(5, 9)]
        assert counts == sorted(counts)

    def test_invalid_delta(self, plan):
        with pytest.raises(ParameterError, match="delta"):
            find_k_at_least_delta(plan, 0)

    def test_invalid_method(self, plan):
        with pytest.raises(ParameterError, match="method"):
            find_k_at_least_delta(plan, 5, method="quantum")


class TestBounds:
    def test_bounds_bracket_exact_count(self, plan):
        from repro.core.find_k import _FindKContext
        from repro.core.timing import PhaseClock

        ctx = _FindKContext(plan, "faithful", PhaseClock())
        for k in range(ctx.k_min, ctx.k_max + 1):
            lb, ub = ctx.bounds(k)
            count = skyline_count(plan, k)
            assert lb <= count <= ub, (k, lb, count, ub)

    def test_range_uses_fewer_full_evaluations_than_naive(self, plan):
        naive = find_k_at_least_delta(plan, 40, method="naive")
        ranged = find_k_at_least_delta(plan, 40, method="range")
        assert ranged.full_evaluations <= naive.full_evaluations

    def test_binary_probes_at_most_log_range(self, plan):
        result = find_k_at_least_delta(plan, 40, method="binary")
        k_range = 8 - 5 + 1
        # Each loop iteration halves [low, high]; allow the final
        # "lowest k reached" bookkeeping step.
        assert len(result.steps) <= k_range.bit_length() + 2


class TestDefaults:
    def test_unreachable_delta_returns_k_max(self, plan):
        result = find_k_at_least_delta(plan, 10**9, method="binary")
        assert result.k == 8  # joined dimensionality

    def test_delta_one_returns_smallest_feasible(self, plan):
        result = find_k_at_least_delta(plan, 1, method="binary")
        assert result.k == brute_force_find_k(plan, 1)

    def test_summary_renders(self, plan):
        text = find_k_at_least_delta(plan, 10, method="range").summary()
        assert "find-k[range]" in text and "delta=10" in text


class TestAtMostDelta:
    def test_reduction_basic(self, plan):
        # Problem 4: largest k with at most delta skylines.
        delta = 10
        at_least = find_k_at_least_delta(plan, delta, method="binary").k
        result = find_k_at_most_delta(plan, delta, method="binary")
        count_at_least = skyline_count(plan, at_least)
        if count_at_least == delta:
            assert result.k == at_least
        else:
            assert result.k in (at_least, at_least - 1)
        # The answer truly satisfies the at-most constraint when
        # feasible at all.
        if skyline_count(plan, result.k) > delta:
            # Only possible in the k_min corner case (Sec. 3).
            assert result.k == 5

    @pytest.mark.parametrize("delta", [1, 5, 20, 100])
    def test_at_most_vs_bruteforce(self, plan, delta):
        best = None
        for k in range(5, 9):
            if skyline_count(plan, k) <= delta:
                best = k
        result = find_k_at_most_delta(plan, delta, method="binary")
        if best is not None:
            # Paper semantics: k* - 1 where k* is the Problem-3 answer;
            # since counts are monotone this is the largest at-most k,
            # except the default-d corner where k*=d was never evaluated.
            assert skyline_count(plan, result.k) <= delta or result.k == 5


class TestFindKWithAggregates:
    @pytest.mark.parametrize("method", ["naive", "range", "binary"])
    def test_aggregate_plan(self, method):
        import warnings

        from repro.errors import SoundnessWarning

        left, right = make_random_pair(seed=33, n=12, d=4, g=3, a=1)
        plan = JoinPlan(left, right, aggregate="sum")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", SoundnessWarning)
            result = find_k_at_least_delta(plan, 5, method=method)
        assert 5 <= result.k <= 7

    def test_exact_mode_bounds_stay_valid(self):
        import warnings

        from repro.core.find_k import _FindKContext
        from repro.core.timing import PhaseClock
        from repro.errors import SoundnessWarning

        left, right = make_random_pair(seed=34, n=12, d=4, g=3, a=2)
        plan = JoinPlan(left, right, aggregate="sum")
        ctx = _FindKContext(plan, "exact", PhaseClock())
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", SoundnessWarning)
            for k in range(ctx.k_min, ctx.k_max + 1):
                lb, ub = ctx.bounds(k)
                count = repro.run_naive(plan, k).count
                assert lb <= count <= ub
