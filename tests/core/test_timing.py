"""Unit tests for repro.core.timing."""

import time

import pytest

from repro.core import PHASES, PhaseClock, TimingBreakdown


class TestTimingBreakdown:
    def test_total(self):
        t = TimingBreakdown(grouping=1.0, join=2.0, dominator=3.0, remaining=4.0)
        assert t.total == 10.0

    def test_as_dict_includes_total(self):
        d = TimingBreakdown(join=1.5).as_dict()
        assert d["join"] == 1.5 and d["total"] == 1.5
        assert set(d) == set(PHASES) | {"total"}

    def test_addition(self):
        a = TimingBreakdown(grouping=1.0, join=2.0)
        b = TimingBreakdown(grouping=0.5, remaining=1.0)
        c = a + b
        assert c.grouping == 1.5 and c.join == 2.0 and c.remaining == 1.0

    def test_scaled(self):
        t = TimingBreakdown(grouping=2.0, dominator=4.0).scaled(0.5)
        assert t.grouping == 1.0 and t.dominator == 2.0

    def test_immutable(self):
        t = TimingBreakdown()
        with pytest.raises(AttributeError):
            t.join = 1.0


class TestPhaseClock:
    def test_accumulates_wall_time(self):
        clock = PhaseClock()
        with clock.phase("join"):
            time.sleep(0.01)
        with clock.phase("join"):
            time.sleep(0.01)
        result = clock.freeze()
        assert result.join >= 0.02
        assert result.grouping == 0.0

    def test_add_premeasured(self):
        clock = PhaseClock()
        clock.add("remaining", 1.25)
        assert clock.freeze().remaining == 1.25

    def test_unknown_phase_rejected(self):
        clock = PhaseClock()
        with pytest.raises(KeyError):
            clock.add("warmup", 1.0)
        with pytest.raises(KeyError):
            with clock.phase("warmup"):
                pass

    def test_phase_records_even_on_exception(self):
        clock = PhaseClock()
        with pytest.raises(RuntimeError):
            with clock.phase("grouping"):
                time.sleep(0.005)
                raise RuntimeError("boom")
        assert clock.freeze().grouping >= 0.005
