"""Unit tests for repro.core.plan (JoinPlan)."""

import pytest

from repro.core import JoinPlan
from repro.errors import AggregateError, JoinError
from repro.relational import Relation, RelationSchema, ThetaCondition, ThetaOp

from ..helpers import make_random_pair


class TestConstruction:
    def test_unknown_kind(self, tiny_pair):
        with pytest.raises(JoinError, match="unknown join kind"):
            JoinPlan(*tiny_pair, kind="fancy")

    def test_theta_requires_condition(self, tiny_pair):
        with pytest.raises(JoinError, match="requires a ThetaCondition"):
            JoinPlan(*tiny_pair, kind="theta")

    def test_condition_requires_theta_kind(self, tiny_pair):
        cond = ThetaCondition("s0", ThetaOp.LT, "s0")
        with pytest.raises(JoinError, match="kind="):
            JoinPlan(*tiny_pair, kind="equality", theta=cond)

    def test_aggregate_schemas_require_function(self, agg_pair):
        with pytest.raises(JoinError, match="aggregate"):
            JoinPlan(*agg_pair)

    def test_strict_aggregate_enforcement(self, agg_pair):
        plan = JoinPlan(*agg_pair, aggregate="max")
        with pytest.raises(AggregateError, match="strictly"):
            plan.require_strict_aggregate("test algorithm")
        JoinPlan(*agg_pair, aggregate="sum").require_strict_aggregate("t")


class TestCompatiblePairs:
    def test_equality_pairs_respect_groups(self, tiny_pair):
        left, right = tiny_pair
        plan = JoinPlan(left, right)
        pairs = plan.compatible_pairs(range(len(left)), range(len(right)))
        for u, v in pairs.tolist():
            assert left.join_key(u) == right.join_key(v)
        # matches the full enumeration of the view
        assert set(map(tuple, pairs.tolist())) == set(
            map(tuple, plan.view().pairs.tolist())
        )

    def test_subset_pairs(self, tiny_pair):
        left, right = tiny_pair
        plan = JoinPlan(left, right)
        sub = plan.compatible_pairs([0, 1], [0, 1, 2])
        full = plan.compatible_pairs(range(len(left)), range(len(right)))
        assert set(map(tuple, sub.tolist())) <= set(map(tuple, full.tolist()))
        assert all(u in (0, 1) for u, _ in sub.tolist())

    def test_empty_inputs(self, tiny_pair):
        plan = JoinPlan(*tiny_pair)
        assert plan.compatible_pairs([], [1]).shape == (0, 2)

    def test_cartesian_pairs(self, tiny_pair):
        left, right = tiny_pair
        plan = JoinPlan(left, right, kind="cartesian")
        pairs = plan.compatible_pairs([0, 1], [2, 3])
        assert len(pairs) == 4

    def test_theta_pairs_filtered(self):
        schema = RelationSchema.build(skyline=["v"], payload=["t"])
        left = Relation(schema, {"v": [0.0, 0.0], "t": [1.0, 5.0]})
        right = Relation(schema, {"v": [0.0, 0.0], "t": [3.0, 6.0]})
        cond = ThetaCondition("t", ThetaOp.LT, "t")
        plan = JoinPlan(left, right, kind="theta", theta=cond)
        pairs = plan.compatible_pairs([0, 1], [0, 1])
        assert set(map(tuple, pairs.tolist())) == {(0, 0), (0, 1), (1, 1)}


class TestCompatiblePairCount:
    @pytest.mark.parametrize("kind", ["equality", "cartesian"])
    def test_count_matches_enumeration(self, tiny_pair, kind):
        left, right = tiny_pair
        plan = JoinPlan(left, right, kind=kind)
        rows_l, rows_r = [0, 2, 4, 5], [1, 3, 6]
        assert plan.compatible_pair_count(rows_l, rows_r) == len(
            plan.compatible_pairs(rows_l, rows_r)
        )

    @pytest.mark.parametrize("op", list(ThetaOp))
    def test_theta_count_matches_enumeration(self, op):
        schema = RelationSchema.build(skyline=["v"], payload=["t"])
        left = Relation(schema, {"v": [0.0] * 4, "t": [1.0, 3.0, 3.0, 7.0]})
        right = Relation(schema, {"v": [0.0] * 4, "t": [2.0, 3.0, 5.0, 8.0]})
        plan = JoinPlan(
            left, right, kind="theta", theta=ThetaCondition("t", op, "t")
        )
        rows_l, rows_r = [0, 1, 3], [0, 2, 3]
        assert plan.compatible_pair_count(rows_l, rows_r) == len(
            plan.compatible_pairs(rows_l, rows_r)
        )

    def test_zero_counts(self, tiny_pair):
        plan = JoinPlan(*tiny_pair)
        assert plan.compatible_pair_count([], [0]) == 0


class TestCartesianCategorization:
    def test_no_sn_category(self):
        left, right = make_random_pair(seed=14, n=15, d=3, g=3)
        plan = JoinPlan(left, right, kind="cartesian")
        cat = plan.categorize_left(2)
        assert len(cat.sn_rows) == 0
        assert len(cat.ss_rows) + len(cat.nn_rows) == len(left)

    def test_ss_equals_k_dominant_skyline(self):
        from repro.skyline import k_dominant_skyline_naive

        left, right = make_random_pair(seed=15, n=15, d=3, g=3)
        plan = JoinPlan(left, right, kind="cartesian")
        cat = plan.categorize_left(2)
        assert sorted(cat.ss_rows.tolist()) == k_dominant_skyline_naive(
            left.oriented(), 2
        )

    def test_params_delegation(self, tiny_pair):
        plan = JoinPlan(*tiny_pair)
        assert plan.params(4).k == 4

    def test_repr(self, tiny_pair):
        assert "JoinPlan" in repr(JoinPlan(*tiny_pair))
