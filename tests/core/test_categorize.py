"""Unit tests for repro.core.categorize (SS/SN/NN and the fate table)."""

from repro.core import FATE_TABLE, Category, Fate, categorize
from repro.core.categorize import categorize_theta
from repro.datagen import (
    EXPECTED_TABLE1_CATEGORIES,
    EXPECTED_TABLE2_CATEGORIES,
    flight_example_relations,
)
from repro.relational import Relation, RelationSchema, ThetaOp
from repro.relational.groups import ThetaGroupIndex

from ..helpers import make_random_pair


class TestFateTable:
    def test_matches_paper_table5(self):
        assert FATE_TABLE[(Category.SS, Category.SS)] is Fate.YES
        assert FATE_TABLE[(Category.SS, Category.SN)] is Fate.LIKELY
        assert FATE_TABLE[(Category.SN, Category.SS)] is Fate.LIKELY
        assert FATE_TABLE[(Category.SN, Category.SN)] is Fate.MAYBE

    def test_any_nn_is_no(self):
        for other in Category:
            assert FATE_TABLE[(Category.NN, other)] is Fate.NO
            assert FATE_TABLE[(other, Category.NN)] is Fate.NO

    def test_complete(self):
        assert len(FATE_TABLE) == 9


class TestCategorize:
    def test_paper_example_table1(self):
        f1, _ = flight_example_relations()
        cat = categorize(f1, 3)
        got = {
            int(f1.column("fno")[i]): cat.category(i).name for i in range(len(f1))
        }
        assert got == EXPECTED_TABLE1_CATEGORIES

    def test_paper_example_table2(self):
        _, f2 = flight_example_relations()
        cat = categorize(f2, 3)
        got = {
            int(f2.column("fno")[i]): cat.category(i).name for i in range(len(f2))
        }
        assert got == EXPECTED_TABLE2_CATEGORIES

    def test_partition_property(self):
        left, _ = make_random_pair(seed=5, n=20, d=4, g=4)
        cat = categorize(left, 2)
        all_rows = sorted(
            list(cat.ss_rows) + list(cat.sn_rows) + list(cat.nn_rows)
        )
        assert all_rows == list(range(len(left)))

    def test_counts_sum_to_n(self):
        left, _ = make_random_pair(seed=6, n=25, d=4, g=5)
        cat = categorize(left, 3)
        assert sum(cat.counts().values()) == len(left)

    def test_ss_tuples_not_dominated_anywhere(self):
        from repro.skyline import is_k_dominated

        left, _ = make_random_pair(seed=7, n=25, d=4, g=5)
        k_prime = 3
        cat = categorize(left, k_prime)
        matrix = left.oriented()
        for row in cat.ss_rows:
            assert not is_k_dominated(matrix, matrix[row], k_prime)

    def test_nn_tuples_dominated_within_group(self):
        from repro.relational.groups import GroupIndex
        from repro.skyline import is_k_dominated

        left, _ = make_random_pair(seed=8, n=25, d=4, g=5)
        k_prime = 3
        cat = categorize(left, k_prime)
        matrix = left.oriented()
        groups = GroupIndex(left)
        for row in cat.nn_rows:
            mates = groups.groupmates(int(row))
            assert is_k_dominated(matrix[mates], matrix[row], k_prime)

    def test_sn_tuples_group_skyline_but_dominated_overall(self):
        from repro.relational.groups import GroupIndex
        from repro.skyline import is_k_dominated

        left, _ = make_random_pair(seed=9, n=30, d=4, g=6)
        k_prime = 3
        cat = categorize(left, k_prime)
        matrix = left.oriented()
        groups = GroupIndex(left)
        for row in cat.sn_rows:
            mates = groups.groupmates(int(row))
            assert not is_k_dominated(matrix[mates], matrix[row], k_prime)
            assert is_k_dominated(matrix, matrix[row], k_prime)

    def test_single_group_has_no_sn(self):
        left, _ = make_random_pair(seed=10, n=20, d=4, g=1)
        cat = categorize(left, 3)
        assert len(cat.sn_rows) == 0


class TestCategorizeTheta:
    def test_theta_nn_requires_compatible_dominator(self):
        # Two tuples: row 1 dominated by row 0, but row 0 has a LARGER
        # theta attribute (arr), so it is NOT guaranteed-compatible and
        # row 1 must stay SN (not NN).
        schema = RelationSchema.build(skyline=["x", "y"], payload=["arr"])
        rel = Relation(
            schema,
            {"x": [0.0, 1.0], "y": [0.0, 1.0], "arr": [10.0, 5.0]},
        )
        idx = ThetaGroupIndex(rel, "arr", ThetaOp.LT, is_left=True)
        cat = categorize_theta(rel, 2, idx)
        assert cat.category(0) is Category.SS
        assert cat.category(1) is Category.SN

    def test_theta_nn_when_dominator_compatible(self):
        # Now the dominator has a smaller arr: guaranteed compatible -> NN.
        schema = RelationSchema.build(skyline=["x", "y"], payload=["arr"])
        rel = Relation(
            schema,
            {"x": [0.0, 1.0], "y": [0.0, 1.0], "arr": [5.0, 10.0]},
        )
        idx = ThetaGroupIndex(rel, "arr", ThetaOp.LT, is_left=True)
        cat = categorize_theta(rel, 2, idx)
        assert cat.category(1) is Category.NN
