"""Unit tests for repro.core.verify helpers."""

import numpy as np

from repro.core import JoinPlan
from repro.core.verify import (
    dominated_by_target_join,
    dominated_in_matrix,
    sort_rows_for_early_exit,
)
from repro.relational.join import JoinedView

from ..helpers import make_random_pair


class TestSortRowsForEarlyExit:
    def test_sorts_by_row_sum(self):
        matrix = np.array([[3.0, 3.0], [0.0, 0.0], [1.0, 2.0]])
        out = sort_rows_for_early_exit(matrix)
        np.testing.assert_array_equal(out, [[0.0, 0.0], [1.0, 2.0], [3.0, 3.0]])

    def test_empty(self):
        out = sort_rows_for_early_exit(np.empty((0, 2)))
        assert out.shape == (0, 2)

    def test_preserves_multiset(self):
        rng = np.random.default_rng(0)
        matrix = rng.uniform(size=(20, 3))
        out = sort_rows_for_early_exit(matrix)
        assert sorted(map(tuple, matrix.tolist())) == sorted(map(tuple, out.tolist()))


class TestDominatedInMatrix:
    def test_basic(self):
        matrix = np.array([[1.0, 1.0], [5.0, 5.0]])
        assert dominated_in_matrix(matrix, np.array([2.0, 2.0]), 2)
        assert not dominated_in_matrix(matrix, np.array([0.0, 0.0]), 2)


class TestDominatedByTargetJoin:
    def test_detects_domination_via_compatible_pair(self):
        left, right = make_random_pair(seed=90, n=10, d=3, g=2, a=0)
        plan = JoinPlan(left, right)
        view = JoinedView(left, right, np.empty((0, 2), dtype=np.intp))
        full = plan.view()
        joined = full.oriented()
        k = 4
        # Find a genuinely dominated joined tuple, then confirm the
        # helper detects it when handed the complete row sets.
        from repro.skyline import is_k_dominated

        for pos in range(len(full)):
            if is_k_dominated(joined, joined[pos], k):
                assert dominated_by_target_join(
                    plan,
                    view,
                    joined[pos],
                    range(len(left)),
                    range(len(right)),
                    k,
                )
                break
        else:
            raise AssertionError("expected at least one dominated tuple")

    def test_empty_targets_mean_undominated(self):
        left, right = make_random_pair(seed=91, n=8, d=3, g=2, a=0)
        plan = JoinPlan(left, right)
        view = JoinedView(left, right, np.empty((0, 2), dtype=np.intp))
        vec = np.zeros(6)
        assert not dominated_by_target_join(plan, view, vec, [], [0, 1], 4)

    def test_self_pair_does_not_self_dominate(self):
        left, right = make_random_pair(seed=92, n=8, d=3, g=2, a=0)
        plan = JoinPlan(left, right)
        view = JoinedView(left, right, np.empty((0, 2), dtype=np.intp))
        full = plan.view()
        joined = full.oriented()
        from repro.skyline import is_k_dominated

        k = 4
        for pos in range(len(full)):
            if not is_k_dominated(joined, joined[pos], k):
                u, v = map(int, full.pairs[pos])
                # Target sets containing only the tuple's own components
                # must not report domination.
                assert not dominated_by_target_join(
                    plan, view, joined[pos], [u], [v], k
                )
                break
