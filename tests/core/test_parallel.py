"""Unit tests of the sharded parallel execution layer (core/parallel.py)."""

import numpy as np
import pytest

from repro.core import JoinPlan, run_naive
from repro.core.parallel import (
    AUTO_MIN_ROWS,
    ShardPlan,
    available_cpus,
    batch_workers,
    plan_shards,
    run_cascade_parallel,
    run_parallel,
    shard_bounds,
)
from repro.core.parallel import _sharded_skyline
from repro.core.plan import CascadePlan
from repro.core.timing import PhaseClock
from repro.relational import Relation
from repro.skyline import (
    k_dominant_candidates_block,
    k_dominant_skyline_block,
    k_dominant_skyline_naive,
    k_dominated_any,
)

from ..helpers import make_random_pair


def thread_plan(workers: int, n_rows: int = 0) -> ShardPlan:
    """A fixed thread-pool shard plan for deterministic tests."""
    return ShardPlan(workers, n_rows, "thread" if workers > 1 else "serial", "test")


# ----------------------------------------------------------------------
# Shard geometry and the serial-vs-parallel decision
# ----------------------------------------------------------------------
class TestShardBounds:
    def test_even_split_covers_every_row_once(self):
        bounds = shard_bounds(10, 4)
        assert bounds == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_more_shards_than_rows_collapses_to_single_row_shards(self):
        bounds = shard_bounds(3, 8)
        assert bounds == [(0, 1), (1, 2), (2, 3)]

    def test_zero_rows_yield_one_empty_range_set(self):
        assert shard_bounds(0, 4) == []


class TestPlanShards:
    def test_auto_stays_serial_below_threshold(self):
        plan = plan_shards(AUTO_MIN_ROWS - 1, "auto")
        assert not plan.is_parallel
        assert "threshold" in plan.reason

    def test_explicit_workers_are_honored(self):
        plan = plan_shards(100_000, 4)
        assert plan.workers == 4
        assert plan.n_shards == 4
        assert plan.executor in ("process", "thread")

    def test_explicit_one_is_serial(self):
        assert not plan_shards(100_000, 1).is_parallel

    def test_workers_never_exceed_rows(self):
        assert plan_shards(3, 8).workers <= 3

    def test_small_shards_use_threads_large_use_processes(self):
        small = plan_shards(10_000, 4)
        assert small.executor == "thread"
        big = plan_shards(1_000_000, 4)
        assert big.executor == "process"

    def test_joined_width_feeds_the_executor_choice(self):
        # Same row count, wider rows -> bigger shard payload -> processes.
        narrow = plan_shards(100_000, 4, width=2)
        assert narrow.executor == "thread"
        wide = plan_shards(100_000, 4, width=16)
        assert wide.executor == "process"

    def test_capped_explicit_request_reports_the_cap(self):
        with batch_workers(available_cpus() * 2):
            plan = plan_shards(100_000, 64)
        assert not plan.is_parallel
        assert "capped to CPU budget" in plan.reason

    def test_batch_lanes_cap_the_worker_budget(self):
        # Oversubscribing batch lanes leaves one worker per query.
        with batch_workers(available_cpus() * 2):
            assert plan_shards(1_000_000, "auto").workers == 1
            assert plan_shards(1_000_000, 4).workers == 1
        # Outside the batch the explicit request is honored again.
        assert plan_shards(1_000_000, 4).workers == 4

    def test_describe_mentions_workers_and_executor(self):
        plan = plan_shards(1_000_000, 4)
        text = plan.describe()
        assert "4" in text and plan.executor in text


# ----------------------------------------------------------------------
# The block kernels
# ----------------------------------------------------------------------
class TestBlockKernels:
    def test_k_dominated_any_matches_per_row_naive(self):
        rng = np.random.default_rng(5)
        matrix = np.floor(rng.random((80, 5)) * 4)
        vectors = np.floor(rng.random((33, 5)) * 4)
        for k in range(1, 6):
            got = k_dominated_any(matrix, vectors, k)
            want = [
                any(
                    np.count_nonzero(row <= v) >= k and (row < v).any()
                    for row in matrix
                )
                for v in vectors
            ]
            assert got.tolist() == want

    def test_k_dominated_any_empty_inputs(self):
        empty = np.empty((0, 4))
        some = np.ones((3, 4))
        assert k_dominated_any(empty, some, 2).tolist() == [False] * 3
        assert k_dominated_any(some, empty, 2).size == 0

    def test_duplicates_do_not_dominate_each_other(self):
        row = np.array([[1.0, 2.0, 3.0]])
        assert not k_dominated_any(row, row, 2)[0]

    def test_candidates_block_is_a_superset_of_the_skyline(self):
        rng = np.random.default_rng(6)
        matrix = np.floor(rng.random((200, 4)) * 5)
        for k in (2, 3, 4):
            candidates = set(k_dominant_candidates_block(matrix, k, block=32).tolist())
            skyline = set(k_dominant_skyline_naive(matrix, k))
            assert skyline <= candidates

    def test_skyline_block_equals_naive_reference(self):
        rng = np.random.default_rng(7)
        for n in (0, 1, 17, 120):
            matrix = np.floor(rng.random((n, 5)) * 4)
            for k in (2, 4, 5):
                assert k_dominant_skyline_block(matrix, k) == k_dominant_skyline_naive(
                    matrix, k
                )


# ----------------------------------------------------------------------
# Cross-shard verification correctness (non-transitivity)
# ----------------------------------------------------------------------
class TestCrossShardVerification:
    def test_locally_eliminated_rows_still_eliminate_across_shards(self):
        # The classic 2-dominance 3-cycle: x >2> y >2> z >2> x, so the
        # 2-dominant skyline is empty. Shard 1 holds {x, z} (z falls to
        # x... x falls to nobody locally), shard 2 holds {y}. y's only
        # 2-dominator is x, and x is itself eliminated by z during the
        # merge — a verification pass that checked survivors only would
        # wrongly keep y. The mandatory all-rows pass must return empty.
        x = [0.0, 1.0, 2.0]
        y = [1.0, 2.0, 0.0]
        z = [2.0, 0.0, 1.0]
        matrix = np.array([x, z, y])  # shard split: [x, z] | [y]
        keep, checked = _sharded_skyline(matrix, 2, thread_plan(2, 3), PhaseClock())
        assert keep.size == 0
        assert checked >= 1
        assert k_dominant_skyline_naive(matrix, 2) == []

    def test_sharded_result_is_shard_count_invariant(self):
        rng = np.random.default_rng(8)
        matrix = np.floor(rng.random((150, 5)) * 3)
        for k in (3, 4, 5):
            want = k_dominant_skyline_naive(matrix, k)
            for workers in (1, 2, 3, 4, 7):
                keep, _ = _sharded_skyline(
                    matrix, k, thread_plan(workers, 150), PhaseClock()
                )
                assert keep.tolist() == want


# ----------------------------------------------------------------------
# Plan-based runners
# ----------------------------------------------------------------------
class TestRunParallel:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_equality_join_matches_naive(self, workers):
        left, right = make_random_pair(seed=21, n=50, d=4, g=4, a=1)
        plan = JoinPlan(left, right, aggregate="sum")
        for k in (5, 6, 7):
            want = run_naive(plan, k)
            got = run_parallel(plan, k, shards=thread_plan(workers))
            assert got.pair_set() == want.pair_set()
            assert (got.pairs == want.pairs).all()
            assert got.algorithm == "parallel"
            assert got.mode == "exact"

    def test_theta_join_matches_naive(self):
        from repro.relational import ThetaCondition, ThetaOp

        left, right = make_random_pair(seed=22, n=30, d=4, g=3)
        cond = ThetaCondition("s0", ThetaOp.LE, "s1")
        plan = JoinPlan(left, right, kind="theta", theta=cond)
        want = run_naive(plan, 5).pair_set()
        assert run_parallel(plan, 5, shards=thread_plan(3)).pair_set() == want

    def test_non_strict_aggregate_is_supported(self):
        # The parallel path works on the materialized joined view, so —
        # unlike grouping/dominator — it never needs monotonicity.
        left, right = make_random_pair(seed=23, n=30, d=4, g=3, a=1)
        plan = JoinPlan(left, right, aggregate="max")
        want = run_naive(plan, 5).pair_set()
        assert run_parallel(plan, 5, shards=thread_plan(4)).pair_set() == want

    def test_process_pool_path_matches(self):
        left, right = make_random_pair(seed=24, n=90, d=4, g=3)
        plan = JoinPlan(left, right)
        want = run_naive(plan, 6).pair_set()
        shards = ShardPlan(2, plan.stats().join_size, "process", "test")
        assert run_parallel(plan, 6, shards=shards).pair_set() == want

    def test_empty_relation(self):
        schema_matrix = np.empty((0, 3))
        empty = Relation.from_arrays(
            schema_matrix, ["s0", "s1", "s2"], join_key=[], name="E"
        )
        other = Relation.from_arrays(
            np.array([[1.0, 2.0, 3.0]]), ["s0", "s1", "s2"], join_key=[0], name="R"
        )
        plan = JoinPlan(empty, other)
        result = run_parallel(plan, 4, shards=thread_plan(4))
        assert result.count == 0

    def test_more_shards_than_candidate_rows(self):
        left, right = make_random_pair(seed=25, n=3, d=4, g=3)
        plan = JoinPlan(left, right)
        want = run_naive(plan, 5).pair_set()
        assert run_parallel(plan, 5, shards=thread_plan(8)).pair_set() == want

    def test_k_at_both_bounds(self):
        left, right = make_random_pair(seed=26, n=40, d=4, g=3, a=1)
        plan = JoinPlan(left, right, aggregate="sum")
        params_lo = max(left.schema.d, right.schema.d) + 1
        params_hi = left.schema.l + right.schema.l + left.schema.a
        for k in (params_lo, params_hi):
            want = run_naive(plan, k).pair_set()
            assert run_parallel(plan, k, shards=thread_plan(2)).pair_set() == want


class TestRunCascadeParallel:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_matches_naive_cascade(self, workers):
        from repro.core.cascade import run_cascade_naive

        rng = np.random.default_rng(30)
        legs = []
        for i in range(3):
            legs.append(
                Relation.from_arrays(
                    np.floor(rng.random((18, 3)) * 4),
                    ["s0", "s1", "s2"],
                    join_key=[int(j % 2) for j in range(18)],
                    name=f"L{i}",
                )
            )
        plan = CascadePlan(legs)
        for k in (4, 6, 9):
            want = run_cascade_naive(plan, k)
            got = run_cascade_parallel(plan, k, shards=thread_plan(workers))
            assert got.chain_set() == want.chain_set()
            assert (got.chains == want.chains).all()
            assert got.total_chains == want.total_chains
            assert got.algorithm == "parallel"
