"""Tests for conjunctive (multi-condition) theta joins.

Extension of paper Sec. 6.6: several non-equality conditions must hold
simultaneously (e.g. ``arr < dep`` and ``fee <= budget``). Soundness of
the SS/SN/NN machinery relies on the guaranteed-compatibility superset
being the *intersection* of the per-condition supersets.
"""

import numpy as np
import pytest

from repro.core import JoinPlan, run_dominator, run_grouping, run_naive
from repro.errors import JoinError
from repro.relational import Relation, RelationSchema, ThetaCondition, ThetaOp
from repro.relational.groups import ConjunctiveThetaIndex, ThetaGroupIndex
from repro.relational.join import normalize_theta, theta_pairs


def _rel(seed, n=10, name="R"):
    rng = np.random.default_rng(seed)
    schema = RelationSchema.build(skyline=["x", "y", "z"], payload=["t", "u"])
    return Relation(
        schema,
        {
            "x": np.floor(rng.uniform(0, 4, n)),
            "y": np.floor(rng.uniform(0, 4, n)),
            "z": np.floor(rng.uniform(0, 4, n)),
            "t": np.floor(rng.uniform(0, 6, n)),
            "u": np.floor(rng.uniform(0, 6, n)),
        },
        name=name,
    )


CONDS = [
    ThetaCondition("t", ThetaOp.LT, "t"),
    ThetaCondition("u", ThetaOp.GE, "u"),
]


class TestNormalizeTheta:
    def test_single_condition(self):
        assert normalize_theta(CONDS[0]) == (CONDS[0],)

    def test_sequence(self):
        assert normalize_theta(CONDS) == tuple(CONDS)

    def test_empty_rejected(self):
        with pytest.raises(JoinError, match="empty"):
            normalize_theta([])

    def test_wrong_type_rejected(self):
        with pytest.raises(JoinError):
            normalize_theta(42)
        with pytest.raises(JoinError, match="ThetaCondition"):
            normalize_theta(["t < t"])


class TestConjunctivePairs:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_bruteforce(self, seed):
        left, right = _rel(seed, name="L"), _rel(seed + 50, name="R")
        pairs = theta_pairs(left, right, CONDS)
        lt, lu = left.column("t"), left.column("u")
        rt, ru = right.column("t"), right.column("u")
        expected = {
            (i, j)
            for i in range(len(left))
            for j in range(len(right))
            if lt[i] < rt[j] and lu[i] >= ru[j]
        }
        assert set(map(tuple, pairs.tolist())) == expected

    def test_conjunction_subset_of_each_condition(self):
        left, right = _rel(1, name="L"), _rel(2, name="R")
        both = set(map(tuple, theta_pairs(left, right, CONDS).tolist()))
        for cond in CONDS:
            single = set(map(tuple, theta_pairs(left, right, cond).tolist()))
            assert both <= single


class TestConjunctiveIndex:
    def test_superset_is_intersection(self):
        rel = _rel(3)
        idx_t = ThetaGroupIndex(rel, "t", ThetaOp.LT, is_left=True)
        idx_u = ThetaGroupIndex(rel, "u", ThetaOp.GE, is_left=True)
        conj = ConjunctiveThetaIndex([idx_t, idx_u])
        for row in range(len(rel)):
            expected = set(idx_t.superset_rows(row)) & set(idx_u.superset_rows(row))
            assert set(conj.superset_rows(row)) == expected
            assert row in conj.superset_rows(row)

    def test_requires_conditions(self):
        with pytest.raises(JoinError):
            ConjunctiveThetaIndex([])


class TestConjunctiveKsjq:
    @pytest.mark.parametrize("seed", range(8))
    def test_all_algorithms_agree(self, seed):
        left, right = _rel(seed, name="L"), _rel(seed + 100, name="R")
        plan = JoinPlan(left, right, kind="theta", theta=CONDS)
        if len(plan.view()) == 0:
            pytest.skip("empty conjunction for this seed")
        base = run_naive(plan, 4)
        for mode in ("faithful", "exact"):
            assert run_grouping(plan, 4, mode=mode).pair_set() == base.pair_set()
            assert run_dominator(plan, 4, mode=mode).pair_set() == base.pair_set()

    def test_pair_count_matches_enumeration(self):
        left, right = _rel(7, name="L"), _rel(8, name="R")
        plan = JoinPlan(left, right, kind="theta", theta=CONDS)
        rows_l, rows_r = [0, 2, 4, 6], [1, 3, 5, 7, 9]
        assert plan.compatible_pair_count(rows_l, rows_r) == len(
            plan.compatible_pairs(rows_l, rows_r)
        )

    def test_facade_accepts_condition_list(self):
        import repro

        left, right = _rel(9, name="L"), _rel(10, name="R")
        result = repro.ksjq(left, right, k=4, join="theta", theta=CONDS)
        base = repro.ksjq(left, right, k=4, join="theta", theta=CONDS,
                          algorithm="naive")
        assert result.pair_set() == base.pair_set()
