"""Unit tests for repro.core.cascade (m-way KSJQ, paper Sec. 2.3)."""

import numpy as np
import pytest

from repro.core import Hop, cascade_ksjq
from repro.core.cascade import cascade_chains, cascade_oriented
from repro.errors import JoinError, ParameterError
from repro.relational import Relation, RelationSchema

from ..helpers import make_random_pair


def _leg(n, seed, name, a=0, cities_in=None, cities_out=None):
    """A flight-leg relation with distinct incoming/outgoing cities."""
    rng = np.random.default_rng(seed)
    d = 3
    names = [f"s{i}" for i in range(d)]
    schema = RelationSchema.build(
        skyline=names,
        aggregate=names[:a],
        payload=["src", "dst"],
    )
    cities_in = cities_in or ["A"]
    cities_out = cities_out or ["B", "C"]
    columns = {
        name: np.floor(rng.uniform(0, 4, n)) for name in names
    }
    columns["src"] = [cities_in[i % len(cities_in)] for i in range(n)]
    columns["dst"] = [cities_out[i % len(cities_out)] for i in range(n)]
    return Relation(schema, columns, name=name)


def brute_force_cascade(relations, hops, k, aggregate=None):
    chains = cascade_chains(relations, hops)
    from repro.relational.aggregates import get_aggregate
    from repro.skyline import k_dominant_skyline_naive

    agg = get_aggregate(aggregate) if aggregate else None
    matrix = cascade_oriented(relations, chains, agg)
    idx = k_dominant_skyline_naive(matrix, k)
    return frozenset(tuple(int(x) for x in chains[i]) for i in idx)


HOPS = [Hop("dst", "src"), Hop("dst", "src")]


class TestChainEnumeration:
    def test_hops_respected(self):
        r1 = _leg(6, 1, "L1", cities_out=["X", "Y"])
        r2 = _leg(6, 2, "L2", cities_in=["X", "Y"], cities_out=["Z"])
        r3 = _leg(4, 3, "L3", cities_in=["Z"], cities_out=["B"])
        chains = cascade_chains([r1, r2, r3], HOPS)
        dst1 = list(r1.column("dst"))
        src2 = list(r2.column("src"))
        dst2 = list(r2.column("dst"))
        src3 = list(r3.column("src"))
        assert chains.shape[1] == 3
        for c1, c2, c3 in chains.tolist():
            assert dst1[c1] == src2[c2]
            assert dst2[c2] == src3[c3]

    def test_two_way_default_hop_matches_joinplan(self):
        import repro

        left, right = make_random_pair(seed=70, n=10, d=3, g=3)
        chains = cascade_chains([left, right])
        plan = repro.make_plan(left, right)
        assert set(map(tuple, chains.tolist())) == set(
            map(tuple, plan.view().pairs.tolist())
        )

    def test_keep_restriction(self):
        r1 = _leg(6, 1, "L1", cities_out=["X"])
        r2 = _leg(6, 2, "L2", cities_in=["X"], cities_out=["Z"])
        chains = cascade_chains([r1, r2], [Hop("dst", "src")], keep=[[0, 1], [2]])
        assert all(c1 in (0, 1) and c2 == 2 for c1, c2 in chains.tolist())

    def test_empty_join(self):
        r1 = _leg(4, 1, "L1", cities_out=["X"])
        r2 = _leg(4, 2, "L2", cities_in=["Q"], cities_out=["Z"])
        chains = cascade_chains([r1, r2], [Hop("dst", "src")])
        assert chains.shape == (0, 2)

    def test_hop_count_validation(self):
        r1, r2 = make_random_pair(seed=71, n=6, d=3, g=2)
        with pytest.raises(JoinError, match="hops"):
            cascade_chains([r1, r2], [Hop(), Hop()])


class TestCascadeKsjq:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("a", [0, 1])
    def test_pruned_matches_naive_three_way(self, seed, a):
        r1 = _leg(8, seed, "L1", a=a, cities_out=["X", "Y"])
        r2 = _leg(8, seed + 100, "L2", a=a, cities_in=["X", "Y"], cities_out=["Z", "W"])
        r3 = _leg(8, seed + 200, "L3", a=a, cities_in=["Z", "W"], cities_out=["B"])
        agg = "sum" if a else None
        # joined d = 3 locals x3 relations - adjustments for aggregates
        joined_d = sum(r.schema.l for r in (r1, r2, r3)) + a
        k = joined_d - 1
        expected = brute_force_cascade([r1, r2, r3], HOPS, k, agg)
        naive = cascade_ksjq([r1, r2, r3], k, hops=HOPS, aggregate=agg,
                             algorithm="naive")
        pruned = cascade_ksjq([r1, r2, r3], k, hops=HOPS, aggregate=agg,
                              algorithm="pruned")
        assert naive.chain_set() == expected
        assert pruned.chain_set() == expected

    def test_two_way_cascade_matches_ksjq(self):
        import repro

        left, right = make_random_pair(seed=72, n=12, d=4, g=3)
        result = cascade_ksjq([left, right], k=6, algorithm="pruned")
        base = repro.ksjq(left, right, k=6, algorithm="naive")
        assert result.chain_set() == {
            (int(u), int(v)) for u, v in base.pairs
        }

    def test_pruning_reported(self):
        r1 = _leg(12, 9, "L1", cities_out=["X"])
        r2 = _leg(12, 10, "L2", cities_in=["X"], cities_out=["B"])
        result = cascade_ksjq([r1, r2], k=5, hops=[Hop("dst", "src")])
        assert result.pruned_rows >= 0
        assert result.total_chains == 144

    def test_k_validation(self):
        r1, r2 = make_random_pair(seed=73, n=6, d=3, g=2)
        with pytest.raises(ParameterError, match="cascade range"):
            cascade_ksjq([r1, r2], k=3)
        with pytest.raises(ParameterError, match="cascade range"):
            cascade_ksjq([r1, r2], k=7)

    def test_needs_two_relations(self):
        r1, _ = make_random_pair(seed=74, n=6, d=3, g=2)
        with pytest.raises(JoinError, match="at least two"):
            cascade_ksjq([r1], k=4)

    def test_aggregate_function_required(self):
        r1 = _leg(4, 11, "L1", a=1, cities_out=["X"])
        r2 = _leg(4, 12, "L2", a=1, cities_in=["X"], cities_out=["B"])
        with pytest.raises(JoinError, match="aggregate"):
            cascade_ksjq([r1, r2], k=4, hops=[Hop("dst", "src")])

    def test_weak_aggregate_requires_naive(self):
        r1 = _leg(4, 13, "L1", a=1, cities_out=["X"])
        r2 = _leg(4, 14, "L2", a=1, cities_in=["X"], cities_out=["B"])
        with pytest.raises(ParameterError, match="strictly monotone"):
            cascade_ksjq([r1, r2], k=4, hops=[Hop("dst", "src")], aggregate="max",
                         algorithm="pruned")
        result = cascade_ksjq([r1, r2], k=4, hops=[Hop("dst", "src")],
                              aggregate="max", algorithm="naive")
        assert result.count >= 0

    def test_unknown_algorithm(self):
        r1, r2 = make_random_pair(seed=75, n=6, d=3, g=2)
        with pytest.raises(ParameterError, match="unknown cascade algorithm"):
            cascade_ksjq([r1, r2], k=4, algorithm="magic")
