"""Unit tests for repro.core.targets (target-set predicates)."""

import numpy as np

from repro.core import target_rows_exact, target_rows_paper
from repro.relational import Relation

from ..helpers import make_random_pair


def _rel(matrix, aggregate=()):
    matrix = np.asarray(matrix, dtype=float)
    names = [f"s{i}" for i in range(matrix.shape[1])]
    return Relation.from_arrays(matrix, names, aggregate=aggregate)


class TestPaperPredicate:
    def test_self_always_included(self):
        left, _ = make_random_pair(seed=11, n=15, d=4)
        for row in range(len(left)):
            assert row in target_rows_paper(left, row, 4)

    def test_dominators_included(self):
        rel = _rel([[5.0, 5.0, 5.0], [1.0, 1.0, 9.0], [9.0, 9.0, 9.0]])
        # Row 1 is better-or-equal to row 0 in 2 attributes.
        targets = target_rows_paper(rel, 0, 2)
        assert 1 in targets and 0 in targets and 2 not in targets

    def test_equal_sharers_included(self):
        rel = _rel([[5.0, 5.0, 5.0], [5.0, 5.0, 9.0]])
        # Row 1 agrees on 2 attributes and is worse elsewhere: still a
        # potential joined-dominator component (Obs. 3 augmentation).
        assert 1 in target_rows_paper(rel, 0, 2)

    def test_threshold_filters(self):
        rel = _rel([[5.0, 5.0, 5.0], [5.0, 9.0, 9.0]])
        assert 1 not in target_rows_paper(rel, 0, 2)
        assert 1 in target_rows_paper(rel, 0, 1)


class TestExactPredicate:
    def test_equals_paper_without_aggregates(self):
        left, _ = make_random_pair(seed=12, n=20, d=4, a=0)
        for row in range(len(left)):
            np.testing.assert_array_equal(
                target_rows_paper(left, row, 3),
                target_rows_exact(left, row, 3),
            )

    def test_counts_local_attributes_only(self):
        # s0 is the aggregate input; locals are s1, s2.
        rel = _rel([[5.0, 5.0, 5.0], [9.0, 1.0, 1.0]], aggregate=["s0"])
        # Row 1: worse in the aggregate input, better in both locals ->
        # local boe count = 2.
        assert 1 in target_rows_exact(rel, 0, 2)
        # Paper predicate over all 3 attrs with k' = 3 would miss it.
        assert 1 not in target_rows_paper(rel, 0, 3)

    def test_all_rows_when_no_locals(self):
        rel = _rel([[1.0], [2.0], [3.0]], aggregate=["s0"])
        np.testing.assert_array_equal(target_rows_exact(rel, 0, 0), [0, 1, 2])

    def test_exact_completeness_against_bruteforce(self):
        # Every component of a real joined dominator must be in the
        # exact target set of the dominated tuple's component.
        import repro

        left, right = make_random_pair(seed=13, n=10, d=3, g=2, a=1)
        k = 5
        plan = repro.make_plan(left, right, aggregate="sum")
        params = plan.params(k)
        view = plan.view()
        joined = view.oriented()
        from repro.skyline import boe_counts, strict_any

        for pos in range(len(view)):
            vec = joined[pos]
            dominators = np.flatnonzero(
                (boe_counts(joined, vec) >= k) & strict_any(joined, vec)
            )
            u_prime, v_prime = map(int, view.pairs[pos])
            left_targets = set(
                target_rows_exact(left, u_prime, params.k1_min_local).tolist()
            )
            right_targets = set(
                target_rows_exact(right, v_prime, params.k2_min_local).tolist()
            )
            for dom_pos in dominators:
                u, v = map(int, view.pairs[dom_pos])
                assert u in left_targets
                assert v in right_targets
