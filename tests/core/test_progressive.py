"""Unit tests for repro.core.progressive."""

import itertools
import warnings

import pytest

from repro.core import Category, JoinPlan, ksjq_progressive, run_grouping, run_naive
from repro.errors import AggregateError, SoundnessWarning

from ..helpers import make_random_pair


class TestProgressiveCorrectness:
    @pytest.mark.parametrize("seed", range(10))
    def test_complete_consumption_equals_grouping(self, seed):
        left, right = make_random_pair(seed=seed, n=12, d=4, g=3, a=0)
        plan = JoinPlan(left, right)
        progressive = set(ksjq_progressive(plan, 6))
        batch = run_grouping(plan, 6).pair_set()
        assert progressive == batch

    @pytest.mark.parametrize("seed", range(6))
    def test_equals_naive_without_aggregation(self, seed):
        left, right = make_random_pair(seed=seed + 50, n=12, d=4, g=4, a=0)
        plan = JoinPlan(left, right)
        assert set(ksjq_progressive(plan, 6)) == run_naive(plan, 6).pair_set()

    def test_no_duplicates(self):
        left, right = make_random_pair(seed=61, n=15, d=4, g=3, a=0)
        plan = JoinPlan(left, right)
        out = list(ksjq_progressive(plan, 6))
        assert len(out) == len(set(out))


class TestProgressiveOrdering:
    def test_yes_tuples_come_first(self):
        left, right = make_random_pair(seed=62, n=20, d=4, g=4, a=0)
        plan = JoinPlan(left, right)
        params = plan.params(6)
        cat1 = plan.categorize_left(params.k1_prime)
        cat2 = plan.categorize_right(params.k2_prime)
        out = list(ksjq_progressive(plan, 6))
        # Once a non-"yes" pair appears, no "yes" pair may follow.
        seen_non_yes = False
        for u, v in out:
            is_yes = (
                cat1.category(u) is Category.SS and cat2.category(v) is Category.SS
            )
            if not is_yes:
                seen_non_yes = True
            elif seen_non_yes:
                pytest.fail("a 'yes' pair was emitted after verified pairs")

    def test_prefix_consumption_is_lazy(self):
        # Taking just the first result must not fail even though later
        # stages would need the full join.
        left, right = make_random_pair(seed=63, n=20, d=4, g=4, a=0)
        plan = JoinPlan(left, right)
        gen = ksjq_progressive(plan, 7)
        first = list(itertools.islice(gen, 1))
        assert len(first) <= 1  # may be empty if skyline is empty


class TestProgressiveGuards:
    def test_weakly_monotone_aggregate_rejected(self):
        left, right = make_random_pair(seed=64, n=8, d=3, g=2, a=1)
        plan = JoinPlan(left, right, aggregate="max")
        with pytest.raises(AggregateError):
            list(ksjq_progressive(plan, 5))

    def test_soundness_warning_with_aggregates(self):
        left, right = make_random_pair(seed=65, n=8, d=4, g=2, a=2)
        plan = JoinPlan(left, right, aggregate="sum")
        with pytest.warns(SoundnessWarning):
            list(ksjq_progressive(plan, 6))

    def test_aggregate_results_match_grouping_faithful(self):
        left, right = make_random_pair(seed=66, n=10, d=4, g=3, a=1)
        plan = JoinPlan(left, right, aggregate="sum")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", SoundnessWarning)
            progressive = set(ksjq_progressive(plan, 6))
            batch = run_grouping(plan, 6, mode="faithful").pair_set()
        assert progressive == batch
