"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from .helpers import make_random_pair

__all__ = ["make_random_pair"]


@pytest.fixture
def tiny_pair():
    """Deterministic 8-tuple pair with 3 attributes, 2 groups, no aggregates."""
    return make_random_pair(seed=123, n=8, d=3, g=2, a=0)


@pytest.fixture
def agg_pair():
    """Deterministic pair with one aggregate attribute."""
    return make_random_pair(seed=321, n=8, d=3, g=2, a=1)
