"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen.synthetic import generate_matrix
from repro.relational import Relation


def make_random_pair(
    seed: int,
    n: int = 10,
    d: int = 4,
    g: int = 3,
    a: int = 0,
    levels: int = 4,
    distribution: str = "independent",
):
    """Small random relation pair with discretized values (forces ties).

    Discretization matters: ties exercise the equal-sharer logic in the
    target sets, which continuous data would almost never hit.
    """
    rng = np.random.default_rng(seed)
    names = [f"s{i}" for i in range(d)]
    rels = []
    for name in ("R1", "R2"):
        matrix = np.floor(generate_matrix(n, d, distribution, rng) * levels)
        rels.append(
            Relation.from_arrays(
                matrix,
                names,
                join_key=[int(i % g) for i in range(n)],
                aggregate=names[:a],
                name=name,
            )
        )
    return rels[0], rels[1]


@pytest.fixture
def tiny_pair():
    """Deterministic 8-tuple pair with 3 attributes, 2 groups, no aggregates."""
    return make_random_pair(seed=123, n=8, d=3, g=2, a=0)


@pytest.fixture
def agg_pair():
    """Deterministic pair with one aggregate attribute."""
    return make_random_pair(seed=321, n=8, d=3, g=2, a=1)
