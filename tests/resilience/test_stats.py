"""Unit tests for the process-wide resilience counters."""

from __future__ import annotations

import pytest

from repro.resilience import COUNTER_NAMES, ResilienceStats, resilience_stats


class TestResilienceStats:
    def test_snapshot_starts_at_zero_for_every_counter(self):
        stats = ResilienceStats()
        assert stats.snapshot() == {name: 0 for name in COUNTER_NAMES}

    def test_record_increments_and_supports_batches(self):
        stats = ResilienceStats()
        stats.record("shard_retries")
        stats.record("shard_retries", 4)
        assert stats.snapshot()["shard_retries"] == 5

    def test_unknown_counter_is_a_loud_error(self):
        with pytest.raises(KeyError):
            ResilienceStats().record("made_up_counter")

    def test_reset_zeroes_everything(self):
        stats = ResilienceStats()
        for name in COUNTER_NAMES:
            stats.record(name, 2)
        stats.reset()
        assert stats.snapshot() == {name: 0 for name in COUNTER_NAMES}

    def test_snapshot_is_a_copy(self):
        stats = ResilienceStats()
        snap = stats.snapshot()
        snap["degradations"] = 99
        assert stats.snapshot()["degradations"] == 0

    def test_process_singleton(self):
        assert resilience_stats() is resilience_stats()
        assert "ResilienceStats" in repr(resilience_stats())
