"""Unit tests for the bounded, deterministically-jittered retry loop."""

from __future__ import annotations

import pytest

from repro.errors import ResilienceError
from repro.resilience import RetryPolicy, retry_call


class TestRetryPolicy:
    def test_schedule_is_deterministic(self):
        policy = RetryPolicy(seed=3)
        assert [policy.delay(a) for a in range(4)] == [
            policy.delay(a) for a in range(4)
        ]

    def test_seed_desynchronizes_call_sites(self):
        a = RetryPolicy(seed=1)
        b = RetryPolicy(seed=2)
        assert [a.delay(i) for i in range(4)] != [b.delay(i) for i in range(4)]

    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.25, jitter=0.0)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(2) == pytest.approx(0.25)  # ceiling
        assert policy.delay(10) == pytest.approx(0.25)

    def test_jitter_only_shrinks_the_backoff(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=1.0, jitter=0.5)
        for attempt in range(5):
            full = RetryPolicy(base_delay=0.1, max_delay=1.0, jitter=0.0).delay(
                attempt
            )
            jittered = policy.delay(attempt)
            assert 0.5 * full <= jittered <= full


class TestRetryCall:
    def test_succeeds_after_transient_failures(self):
        calls = []
        naps = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        out = retry_call(
            flaky, policy=RetryPolicy(max_attempts=3, jitter=0.0), sleep=naps.append
        )
        assert out == "ok"
        assert len(calls) == 3 and len(naps) == 2
        assert naps[1] > naps[0]  # exponential

    def test_exhaustion_propagates_the_typed_error(self):
        calls = []

        def doomed():
            calls.append(1)
            raise ResilienceError("always")

        with pytest.raises(ResilienceError, match="always"):
            retry_call(
                doomed, policy=RetryPolicy(max_attempts=3), sleep=lambda _s: None
            )
        assert len(calls) == 3  # the policy's whole budget, no more

    def test_non_retryable_bugs_propagate_immediately(self):
        calls = []

        def buggy():
            calls.append(1)
            raise ValueError("a bug, not a fault")

        with pytest.raises(ValueError):
            retry_call(buggy, sleep=lambda _s: None)
        assert len(calls) == 1
