"""Unit tests for the circuit breaker's three-state machine.

Driven by an injected fake clock, so every transition — trip, timed
reopen, single half-open probe, close — is exercised deterministically.
"""

from __future__ import annotations

import pytest

from repro.resilience import CircuitBreaker, resilience_stats


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


def tripped(clock: FakeClock, threshold: int = 3) -> CircuitBreaker:
    breaker = CircuitBreaker(
        failure_threshold=threshold, reset_timeout=1.0, clock=clock
    )
    for _ in range(threshold):
        breaker.record_failure()
    return breaker


class TestCircuitBreaker:
    def test_closed_allows_and_counts_failures(self, clock):
        breaker = CircuitBreaker(failure_threshold=3, clock=clock)
        assert breaker.state == "closed"
        assert breaker.allow()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"  # below threshold
        assert breaker.retry_after == 0.0

    def test_success_resets_the_failure_count(self, clock):
        breaker = CircuitBreaker(failure_threshold=2, clock=clock)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # streak broken by the success

    def test_trips_open_at_threshold(self, clock):
        breaker = tripped(clock)
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.retry_after == pytest.approx(1.0)
        clock.advance(0.4)
        assert breaker.retry_after == pytest.approx(0.6)

    def test_half_open_admits_exactly_one_probe(self, clock):
        breaker = tripped(clock)
        clock.advance(1.5)
        assert breaker.allow()  # wins the probe slot
        assert breaker.state == "half_open"
        assert not breaker.allow()  # everyone else stays shed

    def test_probe_success_closes(self, clock):
        breaker = tripped(clock)
        clock.advance(1.5)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow() and breaker.allow()  # fully re-admitted

    def test_probe_failure_reopens_for_a_full_timeout(self, clock):
        breaker = tripped(clock)
        clock.advance(1.5)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.retry_after == pytest.approx(1.0)

    def test_stale_success_in_open_state_is_neutral(self, clock):
        """A slow request admitted before the trip that finishes well
        says nothing about current health: it must not close an open
        breaker and let queued traffic skip the reset timeout."""
        breaker = tripped(clock)
        breaker.record_success()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.retry_after == pytest.approx(1.0)

    def test_neutral_outcome_releases_the_probe_slot(self, clock):
        """A probe that ends with no health verdict (client error,
        disconnect) must release the slot — a leaked slot would shed
        all traffic forever, since half_open has no timeout."""
        breaker = tripped(clock)
        clock.advance(1.5)
        assert breaker.allow()  # wins the probe slot
        assert not breaker.allow()  # slot held
        breaker.record_neutral()
        assert breaker.state == "half_open"
        assert breaker.allow()  # the next arrival may probe again
        breaker.record_success()
        assert breaker.state == "closed"

    def test_neutral_never_resets_the_failure_streak(self, clock):
        breaker = CircuitBreaker(failure_threshold=2, clock=clock)
        breaker.record_failure()
        breaker.record_neutral()  # unlike a success: no streak reset
        breaker.record_failure()
        assert breaker.state == "open"

    def test_opens_are_counted(self, clock):
        resilience_stats().reset()
        breaker = tripped(clock)
        clock.advance(1.5)
        assert breaker.allow()
        breaker.record_failure()  # re-open from half_open
        assert resilience_stats().snapshot()["breaker_opens"] == 2
        assert "open" in repr(breaker)
