"""Unit tests for the fault-injection framework itself.

The framework's own determinism is what makes the chaos suite a proof
rather than a dice roll, so these tests pin the schedule semantics
(``after`` / ``times`` / ``rate``), the arming lifecycle, and the
disarmed fast path.
"""

from __future__ import annotations

import multiprocessing
import pickle

import pytest

from repro.errors import ResilienceError
from repro.resilience import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    arm,
    armed_plan,
    arming,
    checkpoint,
    disarm,
    mark_pool_worker,
    resilience_stats,
)
from repro.resilience.faults import CRASH_EXIT_CODE


def _crash_probe_child(conn, marked: bool) -> None:
    """Run one crash-fault checkpoint in a child process.

    Reports ``"raised"`` when the fault degraded to a typed raise; a
    marked worker instead dies hard (``os._exit``) before reporting.
    """
    if marked:
        mark_pool_worker()
    plan = FaultPlan([FaultSpec("probe.site", kind="crash", times=1)])
    try:
        with arming(plan):
            try:
                checkpoint("probe.site")
            except InjectedFault:
                conn.send("raised")
                return
            conn.send("clean")
    finally:
        conn.close()


def _fork_ctx():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        pytest.skip("fork start method unavailable")


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("s", kind="meteor")

    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError):
            FaultSpec("s", times=-1)
        with pytest.raises(ValueError):
            FaultSpec("s", after=-1)
        with pytest.raises(ValueError):
            FaultSpec("s", rate=1.5)

    def test_after_skips_then_times_bounds(self):
        spec = FaultSpec("s", times=2, after=3)
        fired = [spec.fires(h, seed=0) for h in range(8)]
        assert fired == [False, False, False, True, True, False, False, False]

    def test_times_none_is_persistent(self):
        spec = FaultSpec("s", times=None)
        assert all(spec.fires(h, seed=0) for h in range(50))

    def test_rate_is_deterministic_in_seed_and_hit(self):
        spec = FaultSpec("s", rate=0.5)
        a = [spec.fires(h, seed=7) for h in range(64)]
        b = [spec.fires(h, seed=7) for h in range(64)]
        c = [spec.fires(h, seed=8) for h in range(64)]
        assert a == b
        assert a != c  # a different seed reshuffles the schedule
        assert any(a) and not all(a)  # a real coin, not a constant

    def test_kinds_catalog(self):
        assert FAULT_KINDS == ("crash", "slow", "corrupt", "io")


class TestFaultPlan:
    def test_times_one_fires_exactly_once(self):
        plan = FaultPlan([FaultSpec("site", kind="io", times=1)])
        with pytest.raises(InjectedFault):
            plan.hit("site")
        for _ in range(5):
            plan.hit("site")  # budget spent: clean from now on
        assert plan.hits("site") == 6

    def test_unknown_site_is_a_clean_pass(self):
        plan = FaultPlan([FaultSpec("site", kind="io")])
        plan.hit("elsewhere")
        assert plan.hits("elsewhere") == 0

    def test_injected_fault_is_typed_and_picklable(self):
        exc = InjectedFault("shard.verify", "crash")
        assert isinstance(exc, ResilienceError)
        clone = pickle.loads(pickle.dumps(exc))
        assert (clone.site, clone.kind) == ("shard.verify", "crash")
        assert "shard.verify" in str(clone)

    def test_firing_counts_toward_stats(self):
        plan = FaultPlan([FaultSpec("site", kind="io", times=2)])
        for _ in range(2):
            with pytest.raises(InjectedFault):
                plan.hit("site")
        assert resilience_stats().snapshot()["faults_injected"] == 2

    def test_slow_fault_sleeps_instead_of_raising(self):
        plan = FaultPlan([FaultSpec("site", kind="slow", delay=0.0)])
        plan.hit("site")  # must not raise
        assert plan.hits("site") == 1


class TestArming:
    def test_checkpoint_is_noop_while_disarmed(self):
        disarm()
        checkpoint("shard.verify")  # must not raise, record, or count
        assert resilience_stats().snapshot()["faults_injected"] == 0

    def test_arming_context_restores_previous_plan(self):
        outer = arm(FaultPlan())
        inner = FaultPlan([FaultSpec("x", kind="io")])
        with arming(inner) as active:
            assert active is inner and armed_plan() is inner
        assert armed_plan() is outer
        disarm()
        assert armed_plan() is None

    def test_checkpoint_fires_through_armed_plan(self):
        with arming(FaultPlan([FaultSpec("site", kind="corrupt", times=1)])):
            with pytest.raises(InjectedFault) as excinfo:
                checkpoint("site")
        assert excinfo.value.kind == "corrupt"


class TestCrashScoping:
    """``crash`` faults may only kill processes that *declared*
    themselves expendable pool workers via :func:`mark_pool_worker`.

    Regression: worker-ness used to be inferred from
    ``multiprocessing.parent_process()``, which is true of ANY
    multiprocessing child — an engine or server legitimately running
    inside a ``multiprocessing.Process`` (prefork servers, forking test
    harnesses) would be killed outright instead of degrading to a
    typed raise the recovery ladder can absorb.
    """

    def test_crash_in_unmarked_multiprocessing_child_degrades_to_raise(self):
        ctx = _fork_ctx()
        parent, child = ctx.Pipe()
        proc = ctx.Process(target=_crash_probe_child, args=(child, False))
        proc.start()
        proc.join(30)
        assert proc.exitcode == 0  # survived: the fault raised, typed
        assert parent.recv() == "raised"

    def test_crash_in_marked_pool_worker_dies_hard(self):
        ctx = _fork_ctx()
        parent, child = ctx.Pipe()
        proc = ctx.Process(target=_crash_probe_child, args=(child, True))
        proc.start()
        proc.join(30)
        assert proc.exitcode == CRASH_EXIT_CODE  # a genuine worker death
        assert not parent.poll()  # it never got to report anything

    def test_crash_in_the_main_process_degrades_to_raise(self):
        with arming(FaultPlan([FaultSpec("site", kind="crash", times=1)])):
            with pytest.raises(InjectedFault) as excinfo:
                checkpoint("site")
        assert excinfo.value.kind == "crash"
