"""Shared hygiene for the resilience suite: every test starts disarmed
with zeroed counters, and can never leak an armed plan to its
neighbors."""

from __future__ import annotations

import pytest

from repro.resilience import disarm, resilience_stats


@pytest.fixture(autouse=True)
def clean_resilience_state():
    disarm()
    resilience_stats().reset()
    yield
    disarm()
    resilience_stats().reset()
