"""Regression tests for the recovery ladder: worker crashes, transient
shard faults, degradation, and index quarantine.

The load-bearing property throughout: recovery never changes the
answer. k-dominance is non-transitive, so the parallel path's
mandatory cross-shard verification re-checks every merged candidate
against the full matrix — which is exactly why re-executing a failed
shard (on a rebuilt pool, on threads, or serially) is provably
answer-preserving. Every test asserts *byte identity* against the
clean serial ground truth, not set equality.
"""

from __future__ import annotations

import pytest

from repro.api import Engine, QuerySpec
from repro.core import JoinPlan, run_naive, run_parallel
from repro.core.parallel import ShardPlan
from repro.errors import ResilienceError
from repro.resilience import FaultPlan, FaultSpec, arming, resilience_stats

from ..helpers import make_random_pair

K = 6  # with d=4, a=1 the paper's valid range is [5, 7]


def make_plan(seed: int = 7, n: int = 48) -> tuple[JoinPlan, object]:
    left, right = make_random_pair(seed=seed, n=n, d=4, g=3, a=1)
    plan = JoinPlan(left, right, aggregate="sum")
    return plan, run_naive(plan, K)


class TestShardRecovery:
    def test_transient_fault_is_retried_in_place_on_threads(self):
        plan, want = make_plan()
        faults = FaultPlan([FaultSpec("shard.verify", kind="io", times=1)])
        with arming(faults):
            got = run_parallel(plan, K, shards=ShardPlan(4, 0, "thread", "test"))
        assert got.pairs.tobytes() == want.pairs.tobytes()
        snap = resilience_stats().snapshot()
        assert snap["faults_injected"] == 1
        assert snap["shard_retries"] >= 1
        assert snap["degradations"] == 0  # recovered on the same rung

    def test_worker_crash_mid_verify_rebuilds_pool_and_stays_exact(self):
        """Satellite (a): a process-pool worker dies hard (``os._exit``,
        the parent sees a genuine ``BrokenProcessPool``) in the middle
        of cross-shard verification; only the failed shard buckets are
        re-executed on a rebuilt pool, and the answer is byte-identical
        to the clean serial run."""
        plan, want = make_plan()
        faults = FaultPlan([FaultSpec("shard.verify", kind="crash", times=1)])
        with arming(faults):
            got = run_parallel(plan, K, shards=ShardPlan(2, 0, "process", "test"))
        assert got.pairs.tobytes() == want.pairs.tobytes()
        snap = resilience_stats().snapshot()
        assert snap["pool_rebuilds"] >= 1
        assert snap["shard_retries"] >= 1

    def test_crash_during_candidate_generation_is_recovered_too(self):
        plan, want = make_plan(seed=11)
        faults = FaultPlan([FaultSpec("shard.candidates", kind="crash", times=1)])
        with arming(faults):
            got = run_parallel(plan, K, shards=ShardPlan(2, 0, "process", "test"))
        assert got.pairs.tobytes() == want.pairs.tobytes()
        assert resilience_stats().snapshot()["pool_rebuilds"] >= 1

    def test_transient_task_fault_keeps_the_process_pool_alive(self):
        """Regression: a task-level transient (an injected I/O fault
        raised *inside* a worker) must retry on the live pool — no
        teardown, no ``pool_rebuilds`` count, no re-fork cost. Only an
        actual ``BrokenProcessPool`` justifies a rebuild."""
        plan, want = make_plan(seed=13)
        faults = FaultPlan([FaultSpec("shard.verify", kind="io", times=1)])
        with arming(faults):
            got = run_parallel(plan, K, shards=ShardPlan(2, 0, "process", "test"))
        assert got.pairs.tobytes() == want.pairs.tobytes()
        snap = resilience_stats().snapshot()
        assert snap["shard_retries"] >= 1
        assert snap["pool_rebuilds"] == 0  # the pool never broke

    def test_persistent_fault_degrades_then_surfaces_typed(self):
        """A fault no rung can outlast must end in a typed
        ResilienceError — never a silently dropped shard."""
        plan, _want = make_plan()
        faults = FaultPlan([FaultSpec("shard.verify", kind="corrupt", times=None)])
        with arming(faults):
            with pytest.raises(ResilienceError):
                run_parallel(plan, K, shards=ShardPlan(4, 0, "thread", "test"))
        assert resilience_stats().snapshot()["degradations"] >= 1

    def test_slow_fault_is_just_a_straggler(self):
        plan, want = make_plan()
        faults = FaultPlan(
            [FaultSpec("shard.verify", kind="slow", times=2, delay=0.002)]
        )
        with arming(faults):
            got = run_parallel(plan, K, shards=ShardPlan(4, 0, "thread", "test"))
        assert got.pairs.tobytes() == want.pairs.tobytes()
        assert resilience_stats().snapshot()["shard_retries"] == 0


class TestIndexQuarantine:
    def make_engine(self) -> tuple[Engine, object]:
        left, right = make_random_pair(seed=5, n=48, d=4, g=3, a=1)
        engine = Engine()
        engine.register("left", left)
        engine.register("right", right)
        want = engine.execute(
            "left", "right", spec=QuerySpec.for_ksjq(k=K, algorithm="naive", aggregate="sum")
        )
        return engine, want

    def test_index_failure_quarantines_and_falls_back_exact(self):
        engine, want = self.make_engine()
        spec = QuerySpec.for_ksjq(k=K, algorithm="indexed", aggregate="sum")
        faults = FaultPlan([FaultSpec("index.build", kind="corrupt", times=None)])
        with arming(faults):
            got = engine.execute("left", "right", spec=spec)
        assert got.pairs.tobytes() == want.pairs.tobytes()
        assert got.algorithm != "indexed"  # degraded to an exact family
        assert resilience_stats().snapshot()["index_quarantines"] >= 1
        assert engine.cache_info()["resilience"]["index_quarantines"] >= 1

    def test_recovered_index_serves_again_after_quarantine(self):
        engine, want = self.make_engine()
        spec = QuerySpec.for_ksjq(k=K, algorithm="indexed", aggregate="sum")
        faults = FaultPlan([FaultSpec("index.build", kind="corrupt", times=1)])
        with arming(faults):
            first = engine.execute("left", "right", spec=spec)
        second = engine.execute("left", "right", spec=spec)  # clean rebuild
        assert first.pairs.tobytes() == want.pairs.tobytes()
        assert second.pairs.tobytes() == want.pairs.tobytes()
        assert second.algorithm == "indexed"

    def test_explain_reports_the_resilience_posture(self):
        engine, _want = self.make_engine()
        report = engine.explain(
            "left", "right", spec=QuerySpec.for_ksjq(k=K, algorithm="auto", aggregate="sum")
        )
        assert report.resilience is not None
        assert "recovery ladder" in report.resilience
        assert "resilience:" in report.summary()
