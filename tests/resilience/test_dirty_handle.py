"""Satellite (b): maintained handles survive failed delta application.

A fault inside ``_apply_insert`` / ``_apply_delete`` / the recompute
path must *dirty* the handle — stale answer, recomputed lazily on the
next read — never poison it (a raising subscriber would propagate into
the mutating writer's ``insert_rows`` call) and never leave a silently
half-applied answer.
"""

from __future__ import annotations

from repro.api import Engine, QuerySpec
from repro.resilience import FaultPlan, FaultSpec, arming, resilience_stats

from ..helpers import make_random_pair

K = 6


def fresh_engine(seed: int = 9, n: int = 40):
    left, right = make_random_pair(seed=seed, n=n, d=4, g=3, a=1)
    engine = Engine()
    engine.register("left", left)
    engine.register("right", right)
    return engine, left, right


def spec() -> QuerySpec:
    return QuerySpec.for_ksjq(k=K, algorithm="naive", aggregate="sum")


def new_rows(engine, name: str = "left", count: int = 3, skip: int = 0):
    """Valid insertable records, cloned from the dataset's own rows."""
    rows = list(engine.catalog[name].relation.records())
    return rows[skip : skip + count]


class TestDirtyHandle:
    def test_failed_delta_dirties_instead_of_poisoning(self):
        engine, left, _right = fresh_engine()
        live = engine.maintain("left", "right", spec())
        live.result()  # cold answer, pre-delta
        faults = FaultPlan([FaultSpec("delta.apply", kind="io", times=1)])
        with arming(faults):
            # The mutating writer must NOT see the subscriber's fault.
            engine.catalog["left"].insert_rows(new_rows(engine))
        assert live.dirty  # stale, not wedged
        assert resilience_stats().snapshot()["delta_failures"] == 1
        # The next read recomputes and matches a from-scratch execution.
        want = engine.execute("left", "right", spec=spec())
        got = live.result()
        assert got.pairs.tobytes() == want.pairs.tobytes()
        assert not live.dirty
        live.close()

    def test_handle_keeps_absorbing_deltas_after_a_failure(self):
        engine, left, _right = fresh_engine(seed=21)
        live = engine.maintain("left", "right", spec())
        faults = FaultPlan([FaultSpec("delta.apply", kind="corrupt", times=1)])
        with arming(faults):
            engine.catalog["left"].insert_rows(new_rows(engine, skip=0))
            assert live.dirty
            # A later clean delta still routes through the handle: the
            # dirty flag survives (versions were not advanced by the
            # failed one) and the read path recomputes once.
            engine.catalog["left"].insert_rows(new_rows(engine, skip=3))
        want = engine.execute("left", "right", spec=spec())
        assert live.result().pairs.tobytes() == want.pairs.tobytes()
        assert not live.dirty
        live.close()

    def test_failed_delta_counts_as_failed_not_applied(self):
        """Regression: a failed application defers its recompute to the
        dirty read — it must not inflate ``applied_deltas`` or
        ``fallback_recomputes``, on the handle or engine-wide."""
        engine, _left, _right = fresh_engine(seed=57)
        live = engine.maintain("left", "right", spec())
        faults = FaultPlan([FaultSpec("delta.apply", kind="io", times=1)])
        with arming(faults):
            engine.catalog["left"].insert_rows(new_rows(engine))
        stats = live.stats()
        assert stats["failed_deltas"] == 1
        assert stats["applied_deltas"] == 0
        assert stats["fallback_recomputes"] == 0
        info = engine.cache_info()
        assert info["failed_deltas"] == 1
        assert info["maintained"] == 0 and info["fallback_recomputes"] == 0
        # The deferred dirty-read recompute is the explicit-read kind:
        # still not a fallback_recompute.
        live.result()
        assert live.stats()["fallback_recomputes"] == 0
        live.close()

    def test_clean_deltas_never_set_the_dirty_flag(self):
        engine, left, _right = fresh_engine(seed=33)
        live = engine.maintain("left", "right", spec())
        engine.catalog["left"].insert_rows(new_rows(engine))
        assert not live.dirty
        assert resilience_stats().snapshot()["delta_failures"] == 0
        want = engine.execute("left", "right", spec=spec())
        assert live.result().pairs.tobytes() == want.pairs.tobytes()
        live.close()

    def test_stream_window_survives_a_failed_delta(self):
        """The sliding-window iterator rides an internal maintained
        handle; a failed window delta must dirty that handle and the
        next window's answer must still be exact."""
        engine, left, right = fresh_engine(seed=45)
        feed = left  # stream the left relation through the window
        clean = [
            r.pairs.tobytes()
            for r in engine.stream_window(
                feed, "right", spec(), size=24, slide=8
            )
        ]
        faults = FaultPlan([FaultSpec("delta.apply", kind="io", times=1)])
        engine2, left2, _right2 = fresh_engine(seed=45)
        with arming(faults):
            chaotic = [
                r.pairs.tobytes()
                for r in engine2.stream_window(
                    left2, "right", spec(), size=24, slide=8
                )
            ]
        assert chaotic == clean
        assert resilience_stats().snapshot()["delta_failures"] >= 1
