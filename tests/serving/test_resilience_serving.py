"""Serving-layer resilience: degraded bodies, the circuit breaker, and
Retry-After honoring — over a real socket, like the rest of the suite.
"""

from __future__ import annotations

import time

import pytest

from repro.resilience import FaultPlan, FaultSpec, disarm, resilience_stats
from repro.serving.client import parse_retry_after, request_with_backoff
from repro.serving.server import ServingConfig

from .conftest import RunningServer, demo_engine

QUERY = {"datasets": ["left", "right"], "k": 10}


@pytest.fixture()
def chaotic_server():
    """A server whose every engine execution fails (persistent fault),
    with a hair-trigger breaker and a long reset timeout."""
    resilience_stats().reset()
    plan = FaultPlan([FaultSpec("serving.execute", kind="io", times=None)], seed=3)
    running = RunningServer(
        demo_engine(n=40),
        ServingConfig(
            workers=2,
            max_queue=2,
            probe_costs=False,
            breaker_threshold=3,
            breaker_reset_s=30.0,
            fault_plan=plan,
        ),
    )
    yield running
    running.close()
    disarm()
    resilience_stats().reset()


@pytest.fixture()
def recovering_server():
    """A server whose engine fails exactly 3 times, then heals; the
    breaker (threshold 3) trips and must re-close via its probe."""
    resilience_stats().reset()
    plan = FaultPlan([FaultSpec("serving.execute", kind="io", times=3)], seed=3)
    running = RunningServer(
        demo_engine(n=40),
        ServingConfig(
            workers=2,
            max_queue=2,
            probe_costs=False,
            breaker_threshold=3,
            breaker_reset_s=0.05,
            fault_plan=plan,
        ),
    )
    yield running
    running.close()
    disarm()
    resilience_stats().reset()


class TestDegradedBodies:
    def test_resilience_exhaustion_is_a_typed_degraded_503(self, chaotic_server):
        status, headers, body = chaotic_server.request("POST", "/query", body=QUERY)
        assert status == 503
        assert body["degraded"] is True
        assert body["error"]["code"] == "resilience_exhausted"
        assert parse_retry_after(headers) is not None

    def test_deadline_partial_carries_degraded_marker(self, served):
        status, _headers, body = served.request(
            "POST",
            "/query",
            body={**QUERY, "k": 12, "algorithm": "naive", "deadline_ms": 5},
        )
        assert status == 200
        assert body["partial"] is True and body["degraded"] is True
        assert body["error"]["code"] == "deadline_exceeded"

    def test_clean_responses_carry_no_degraded_marker(self, served):
        status, _headers, body = served.request("POST", "/query", body=QUERY)
        assert status == 200
        assert "degraded" not in body

    def test_degraded_count_is_surfaced_at_metrics(self, chaotic_server):
        for _ in range(2):
            chaotic_server.request("POST", "/query", body=QUERY)
        _status, _h, body = chaotic_server.request("GET", "/metrics")
        assert body["routes"]["/query"]["degraded"] >= 2


class TestCircuitBreaker:
    def test_breaker_opens_and_sheds_with_circuit_open(self, chaotic_server):
        statuses = [
            chaotic_server.request("POST", "/query", body=QUERY)[0]
            for _ in range(3)
        ]
        assert statuses == [503, 503, 503]  # typed failures, breaker counting
        status, headers, body = chaotic_server.request("POST", "/query", body=QUERY)
        assert status == 503
        assert body["error"]["code"] == "circuit_open"
        assert body["error"]["retry_after_ms"] > 0
        assert parse_retry_after(headers) == pytest.approx(
            body["error"]["retry_after_ms"] / 1000.0, abs=0.05
        )
        _s, _h, metrics = chaotic_server.request("GET", "/metrics")
        assert metrics["breaker"]["state"] == "open"
        assert metrics["admission"]["shed_total"] >= 1
        assert resilience_stats().snapshot()["breaker_opens"] >= 1

    def test_breaker_closes_after_probe_success(self, recovering_server):
        for _ in range(3):
            assert recovering_server.request("POST", "/query", body=QUERY)[0] == 503
        time.sleep(0.1)  # past reset_timeout: next request is the probe
        status, _h, body = recovering_server.request("POST", "/query", body=QUERY)
        assert status == 200 and body["partial"] is False
        _s, _h, metrics = recovering_server.request("GET", "/metrics")
        assert metrics["breaker"]["state"] == "closed"

    def test_client_error_probe_does_not_leak_the_half_open_slot(
        self, recovering_server
    ):
        """Regression: a request that wins the half-open probe slot but
        ends with a *neutral* outcome (here a 400 for an unknown
        dataset) must release the slot. Leaked, allow() would return
        False forever — half_open has no timeout — and the server would
        shed every request with 503 until restart."""
        for _ in range(3):
            assert recovering_server.request("POST", "/query", body=QUERY)[0] == 503
        time.sleep(0.1)  # past reset_timeout: the next request probes
        status, _h, body = recovering_server.request(
            "POST", "/query", body={**QUERY, "datasets": ["left", "nonesuch"]}
        )
        assert status == 400  # client error: neutral, not a verdict
        status, _h, body = recovering_server.request("POST", "/query", body=QUERY)
        assert status == 200 and body["partial"] is False
        _s, _h, metrics = recovering_server.request("GET", "/metrics")
        assert metrics["breaker"]["state"] == "closed"

    def test_client_backoff_rides_out_the_outage(self, recovering_server):
        """request_with_backoff + the server's Retry-After together
        recover without the caller seeing a single failure."""
        naps = []

        def send():
            return recovering_server.request("POST", "/query", body=QUERY)

        def sleep(seconds):
            naps.append(seconds)
            time.sleep(min(seconds, 0.2))

        status, _h, body = request_with_backoff(
            send, max_attempts=8, max_backoff=0.2, sleep=sleep
        )
        assert status == 200
        assert body["count"] >= 0 and naps  # it did retry, then succeed
