"""Unit tests for the client-side Retry-After backoff helper."""

from __future__ import annotations

import pytest

from repro.serving.client import (
    RETRYABLE_STATUSES,
    parse_retry_after,
    request_with_backoff,
)


def respond(*responses):
    """A ``send`` callable replaying canned (status, headers, body)."""
    queue = list(responses)

    def send():
        return queue.pop(0) if len(queue) > 1 else queue[0]

    return send


class TestParseRetryAfter:
    def test_reads_delta_seconds_case_insensitively(self):
        assert parse_retry_after({"Retry-After": "1.5"}) == 1.5
        assert parse_retry_after({"retry-after": "2"}) == 2.0

    def test_absent_or_garbage_is_none(self):
        assert parse_retry_after({}) is None
        assert parse_retry_after({"Retry-After": "Wed, 21 Oct"}) is None

    def test_negative_clamps_to_zero(self):
        assert parse_retry_after({"Retry-After": "-3"}) == 0.0


class TestRequestWithBackoff:
    def test_success_returns_immediately(self):
        naps = []
        status, _h, body = request_with_backoff(
            respond((200, {}, "ok")), sleep=naps.append
        )
        assert (status, body) == (200, "ok")
        assert naps == []

    def test_honors_retry_after_on_shed_then_succeeds(self):
        naps = []
        send = respond(
            (429, {"Retry-After": "0.25"}, "busy"),
            (503, {"Retry-After": "0.5"}, "sick"),
            (200, {}, "ok"),
        )
        status, _h, body = request_with_backoff(send, sleep=naps.append)
        assert (status, body) == (200, "ok")
        assert naps == [0.25, 0.5]  # exactly what the server asked for

    def test_caps_each_wait_at_max_backoff(self):
        naps = []
        send = respond((503, {"Retry-After": "30"}, "sick"), (200, {}, "ok"))
        request_with_backoff(send, max_backoff=0.1, sleep=naps.append)
        assert naps == [0.1]

    def test_bounded_attempts_return_the_last_shed_response(self):
        naps = []
        calls = []

        def send():
            calls.append(1)
            return 429, {"Retry-After": "0.01"}, "busy"

        status, _h, body = request_with_backoff(
            send, max_attempts=3, sleep=naps.append
        )
        assert (status, body) == (429, "busy")
        assert len(calls) == 3 and len(naps) == 2

    def test_missing_header_falls_back_to_deterministic_backoff(self):
        naps_a, naps_b = [], []
        send = respond((503, {}, "sick"), (200, {}, "ok"))
        request_with_backoff(send, sleep=naps_a.append)
        request_with_backoff(respond((503, {}, "s"), (200, {}, "ok")), sleep=naps_b.append)
        assert naps_a == naps_b  # reproducible schedule
        assert all(n > 0 for n in naps_a)

    def test_client_errors_are_not_retried(self):
        calls = []

        def send():
            calls.append(1)
            return 400, {}, "bad request"

        status, _h, _b = request_with_backoff(send, sleep=lambda _s: None)
        assert status == 400 and len(calls) == 1

    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError):
            request_with_backoff(respond((200, {}, "ok")), max_attempts=0)

    def test_retryable_statuses_are_the_shedding_pair(self):
        assert RETRYABLE_STATUSES == (429, 503)
