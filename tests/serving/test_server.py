"""End-to-end server tests over a real socket.

Covers the four routes, the structured-error contract (typed JSON
bodies, never tracebacks), deadline partials over HTTP, 429 load
shedding under saturation, and the progressive chunked stream.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.api.spec import QuerySpec
from repro.serving.server import ServingConfig

from .conftest import RunningServer, demo_engine


# ----------------------------------------------------------------------
# Routes
# ----------------------------------------------------------------------
def test_healthz(served):
    status, _, body = served.request("GET", "/healthz")
    assert status == 200
    assert body["status"] == "ok"
    assert body["capacity"] == 4  # 2 workers + queue of 2


def test_query_matches_direct_engine_answer(served):
    status, headers, body = served.request(
        "POST", "/query", {"datasets": ["left", "right"], "k": 10}
    )
    assert status == 200
    assert headers["Content-Type"] == "application/json"
    assert body["partial"] is False
    expected = served.engine.execute(
        "left", "right", spec=QuerySpec.for_ksjq(k=10)
    )
    assert body["count"] == expected.count
    assert {tuple(p) for p in body["pairs"]} == set(
        map(tuple, expected.pairs.tolist())
    )
    assert body["algorithm"] == expected.algorithm


def test_find_k(served):
    status, _, body = served.request(
        "POST", "/find_k", {"datasets": ["left", "right"], "delta": 50}
    )
    assert status == 200
    assert isinstance(body["k"], int)
    assert body["method"] == "binary"
    assert body["steps"] and all("decision" in step for step in body["steps"])
    assert body["partial"] is False


def test_metrics_route_and_cache_info(served):
    served.request("POST", "/query", {"datasets": ["left", "right"], "k": 10})
    status, _, body = served.request("GET", "/metrics")
    assert status == 200
    assert body["routes"]["/query"]["requests"] >= 1
    assert "p99" in body["routes"]["/query"]["latency"]
    assert body["admission"]["capacity"] == 4
    # The same counters surface through the engine's cache_info.
    info = served.engine.cache_info()
    assert info["serving"]["/query"]["requests"] >= 1


# ----------------------------------------------------------------------
# Structured errors — typed JSON bodies, never tracebacks
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    ("method", "path", "raw", "status", "code"),
    [
        ("POST", "/query", b"not json", 400, "protocol_error"),
        ("POST", "/query", b"", 400, "protocol_error"),
        ("POST", "/query", b"[1, 2]", 400, "protocol_error"),
        ("GET", "/query", None, 405, "method_not_allowed"),
        ("POST", "/healthz", b"{}", 405, "method_not_allowed"),
        ("POST", "/nope", b"{}", 404, "not_found"),
    ],
)
def test_malformed_requests_get_structured_errors(
    served, method, path, raw, status, code
):
    got_status, _, body = served.request(method, path, raw=raw)
    assert got_status == status
    assert body["error"]["code"] == code
    assert "message" in body["error"]
    assert body["error"]["partial"] is False
    assert "Traceback" not in json.dumps(body)


@pytest.mark.parametrize(
    ("payload", "code"),
    [
        ({"datasets": ["left", "right"]}, "protocol_error"),  # missing k
        ({"datasets": "left", "k": 10}, "protocol_error"),
        ({"datasets": ["left"], "k": 10}, "protocol_error"),
        ({"datasets": ["left", "right"], "k": 10, "deadline_ms": -5}, "protocol_error"),
        ({"datasets": ["left", "right"], "k": 99}, "parameter_error"),
        ({"datasets": ["left", "right"], "k": 10, "algorithm": "bogus"}, "algorithm_error"),
        ({"datasets": ["left", "nope"], "k": 10}, "catalog_error"),
    ],
)
def test_invalid_queries_fail_fast_with_typed_codes(served, payload, code):
    status, _, body = served.request("POST", "/query", payload)
    assert status == 400
    assert body["error"]["code"] == code
    assert "Traceback" not in json.dumps(body)


# ----------------------------------------------------------------------
# Deadlines over HTTP
# ----------------------------------------------------------------------
def test_deadline_partial_is_a_subset_of_the_exact_answer(served):
    exact = served.engine.execute(
        "left", "right", spec=QuerySpec.for_ksjq(k=12)
    ).pair_set()
    status, _, body = served.request(
        "POST",
        "/query",
        {"datasets": ["left", "right"], "k": 12, "algorithm": "naive",
         "deadline_ms": 150},
    )
    assert status == 200
    assert body["partial"] is True
    assert body["error"]["code"] == "deadline_exceeded"
    assert body["error"]["partial"] is True
    assert body["budget"] == pytest.approx(0.150)
    got = {tuple(p) for p in body["pairs"]}
    assert got <= exact
    assert body["count"] == len(got)


def test_default_deadline_from_config():
    running = RunningServer(
        demo_engine(), ServingConfig(workers=1, default_deadline_ms=1.0)
    )
    try:
        status, _, body = running.request(
            "POST",
            "/query",
            {"datasets": ["left", "right"], "k": 12, "algorithm": "naive"},
        )
        assert status == 200
        assert body["partial"] is True  # the 1 ms default applied
    finally:
        running.close()


# ----------------------------------------------------------------------
# Load shedding
# ----------------------------------------------------------------------
def test_saturated_server_sheds_with_429():
    running = RunningServer(
        demo_engine(),
        ServingConfig(workers=1, max_queue=0, probe_costs=False),
    )
    try:
        occupant: dict[str, object] = {}

        def run_occupant() -> None:
            occupant["response"] = running.request(
                "POST",
                "/query",
                # naive k=12 runs ~1s on the demo pair: plenty of time
                # to observe saturation, bounded by the deadline.
                {"datasets": ["left", "right"], "k": 12, "algorithm": "naive",
                 "deadline_ms": 5000},
            )

        thread = threading.Thread(target=run_occupant)
        thread.start()
        # Wait until the occupant is admitted (visible via /healthz).
        for _ in range(500):
            _, _, health = running.request("GET", "/healthz")
            if health["in_flight"] >= 1:
                break
            time.sleep(0.01)
        else:
            pytest.fail("occupant was never admitted")

        status, headers, body = running.request(
            "POST", "/query", {"datasets": ["left", "right"], "k": 10}
        )
        assert status == 429
        assert body["error"]["code"] == "admission_rejected"
        assert body["error"]["retry_after_ms"] > 0
        assert float(headers["Retry-After"]) > 0

        thread.join(timeout=60)
        occupant_status, _, occupant_body = occupant["response"]
        assert occupant_status == 200  # the admitted request completed

        _, _, metrics = running.request("GET", "/metrics")
        assert metrics["routes"]["/query"]["shed"] >= 1
        assert metrics["admission"]["shed_total"] >= 1
        # The shed slot drained: the server admits again.
        status, _, body = running.request(
            "POST", "/query", {"datasets": ["left", "right"], "k": 10}
        )
        assert status == 200
    finally:
        running.close()


# ----------------------------------------------------------------------
# Progressive streaming
# ----------------------------------------------------------------------
def read_stream(served, payload):
    """Issue a progressive query; returns (status, headers, parsed lines,
    client-side receive time per line)."""
    conn = served.connection()
    conn.request("POST", "/query", body=json.dumps(payload).encode())
    response = conn.getresponse()
    lines: list[dict] = []
    received_at: list[float] = []
    while True:
        raw = response.readline()
        if not raw:
            break
        raw = raw.strip()
        if not raw:
            continue
        lines.append(json.loads(raw))
        received_at.append(time.monotonic())
        if lines[-1].get("done"):
            break
    headers = dict(response.getheaders())
    conn.close()
    return response.status, headers, lines, received_at


def test_progressive_stream_delivers_first_pair_before_completion(served):
    status, headers, lines, received_at = read_stream(
        served,
        {"datasets": ["left", "right"], "k": 11, "progressive": True},
    )
    assert status == 200
    assert headers["Transfer-Encoding"] == "chunked"
    assert headers["Content-Type"] == "application/x-ndjson"

    done = lines[-1]
    assert done["done"] is True and done["partial"] is False
    pairs = [tuple(line["pair"]) for line in lines[:-1]]
    assert done["count"] == len(pairs)

    # The whole point: the first pair reached the client before the
    # query finished — by the client's own clock and the server's.
    assert received_at[0] < received_at[-1]
    assert lines[0]["emitted_at"] < done["emitted_at"]

    # And the streamed answer is the exact one.
    exact = served.engine.execute(
        "left", "right", spec=QuerySpec.for_ksjq(k=11)
    ).pair_set()
    assert set(pairs) == exact


def test_progressive_stream_with_deadline_marks_partial(served):
    status, _, lines, _ = read_stream(
        served,
        {"datasets": ["left", "right"], "k": 12, "progressive": True,
         "deadline_ms": 100},
    )
    assert status == 200
    done = lines[-1]
    assert done["done"] is True
    if done["partial"]:  # virtually always at 100 ms; never flaky if not
        assert done["error"]["code"] == "deadline_exceeded"
        exact = served.engine.execute(
            "left", "right", spec=QuerySpec.for_ksjq(k=12)
        ).pair_set()
        assert {tuple(line["pair"]) for line in lines[:-1]} <= exact
