"""Admission controller and cost probe behavior."""

from __future__ import annotations

import pytest

from repro.api.engine import Engine
from repro.api.spec import QuerySpec
from repro.errors import AdmissionRejected
from repro.serving.admission import AdmissionController, CostProbe

from ..helpers import make_random_pair


class TestAdmissionController:
    def test_hard_shed_at_capacity(self):
        controller = AdmissionController(max_workers=2, max_queue=1)
        for _ in range(3):  # 2 running + 1 queued
            controller.reserve()
        with pytest.raises(AdmissionRejected) as err:
            controller.reserve()
        assert err.value.code == "admission_rejected"
        assert err.value.queue_depth == 3
        assert err.value.retry_after > 0
        assert controller.shed_total == 1
        # Releasing one slot re-opens admission.
        controller.release(0.01)
        controller.reserve()

    def test_queue_depth_counts_only_waiters(self):
        controller = AdmissionController(max_workers=2, max_queue=4)
        controller.reserve()
        assert controller.queue_depth == 0  # still a free worker
        controller.reserve()
        controller.reserve()
        assert controller.in_flight == 3
        assert controller.queue_depth == 1

    def test_soft_cost_limit_sheds_expensive_work_only_when_congested(self):
        controller = AdmissionController(max_workers=1, max_queue=4, soft_cost_limit=100.0)
        # Idle server: even an expensive request is admitted.
        controller.reserve(cost=1e9)
        # Congested: cheap work queues, expensive work is shed.
        controller.reserve(cost=50.0)
        with pytest.raises(AdmissionRejected):
            controller.reserve(cost=101.0)
        assert controller.shed_total == 1
        # Cost unknown (probe disabled): the soft policy never applies.
        controller.reserve(cost=None)

    def test_retry_after_grows_with_queue_depth(self):
        controller = AdmissionController(max_workers=1, max_queue=10)
        controller.release(1.0)  # push the EWMA well above the floor
        baseline = controller.retry_after()
        for _ in range(4):
            controller.reserve()
        assert controller.retry_after() > baseline

    def test_release_feeds_the_ewma(self):
        controller = AdmissionController(max_workers=1, max_queue=0)
        before = controller.retry_after()
        for _ in range(20):
            controller.reserve()
            controller.release(2.0)
        assert controller.retry_after() > before
        # A shed (never-ran) release must not poison the estimate.
        estimate = controller.retry_after()
        controller.reserve()
        controller.release(None)
        assert controller.retry_after() == estimate

    def test_release_never_goes_negative(self):
        controller = AdmissionController(max_workers=1, max_queue=0)
        controller.release()
        assert controller.in_flight == 0


class TestCostProbe:
    def test_estimate_is_positive_and_warms_the_plan_cache(self):
        left, right = make_random_pair(seed=5, n=60, d=4, g=3)
        engine = Engine()
        engine.register("left", left)
        engine.register("right", right)
        probe = CostProbe(engine)
        spec = QuerySpec.for_ksjq(k=8)
        cost = probe.estimate(("left", "right"), spec)
        assert isinstance(cost, float) and cost > 0
        # The probe bound the plan; executing the query now hits it.
        before = engine.cache_info()["hits"]
        engine.execute("left", "right", spec=spec)
        assert engine.cache_info()["hits"] > before

    def test_estimate_is_deterministic(self):
        """Repeat probes of one spec must price identically — the soft
        shed decision cannot wobble between retries of one request."""
        left, right = make_random_pair(seed=5, n=60, d=4, g=3)
        engine = Engine()
        engine.register("left", left)
        engine.register("right", right)
        probe = CostProbe(engine)
        spec = QuerySpec.for_ksjq(k=8)
        assert probe.estimate(("left", "right"), spec) == probe.estimate(
            ("left", "right"), spec
        )
