"""Serving metrics: histogram math and per-route aggregation."""

from __future__ import annotations

import threading

import pytest

from repro.serving.metrics import LatencyHistogram, ServingMetrics


class TestLatencyHistogram:
    def test_empty_histogram_reports_zero(self):
        histogram = LatencyHistogram()
        assert histogram.quantile(0.5) == 0.0
        assert histogram.mean == 0.0
        assert histogram.as_dict()["count"] == 0.0

    def test_quantile_lands_in_the_observed_bucket(self):
        histogram = LatencyHistogram()
        for _ in range(100):
            histogram.record(0.001)
        # 0.001 falls in the (0.0008, 0.0016] bucket; interpolation
        # must stay inside it for every quantile.
        for q in (0.5, 0.9, 0.99):
            assert 0.0008 <= histogram.quantile(q) <= 0.0016
        assert histogram.mean == pytest.approx(0.001)

    def test_p99_separates_tail_from_body(self):
        histogram = LatencyHistogram()
        for _ in range(99):
            histogram.record(0.001)
        histogram.record(1.0)
        assert histogram.quantile(0.50) < 0.01
        assert histogram.quantile(0.999) > 0.5

    def test_negative_values_clamp_to_zero(self):
        histogram = LatencyHistogram()
        histogram.record(-5.0)
        assert histogram.total == 1
        assert histogram.sum == 0.0

    def test_as_dict_shape(self):
        histogram = LatencyHistogram()
        histogram.record(0.2)
        assert set(histogram.as_dict()) == {"count", "mean", "p50", "p99"}


class TestServingMetrics:
    def test_observe_aggregates_per_route(self):
        metrics = ServingMetrics()
        metrics.observe("/query", 0.1, queue_wait=0.02)
        metrics.observe("/query", 0.2, deadline_hit=True)
        metrics.observe("/query", 0.0, shed=True)
        metrics.observe("/find_k", 0.05, error=True)
        snap = metrics.snapshot()
        q = snap["/query"]
        assert q["requests"] == 3
        assert q["shed"] == 1
        assert q["deadline_hits"] == 1
        assert q["latency"]["count"] == 2.0  # shed requests never ran
        assert snap["/find_k"]["errors"] == 1

    def test_shed_requests_record_no_latency(self):
        metrics = ServingMetrics()
        metrics.observe("/query", 123.0, shed=True)
        snap = metrics.snapshot()
        assert snap["/query"]["latency"]["count"] == 0.0

    def test_snapshot_is_plain_data(self):
        import json

        metrics = ServingMetrics()
        metrics.observe("/query", 0.1)
        json.dumps(metrics.snapshot())  # must not raise

    def test_concurrent_observers_lose_nothing(self):
        metrics = ServingMetrics()

        def hammer() -> None:
            for _ in range(500):
                metrics.observe("/query", 0.001)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert metrics.snapshot()["/query"]["requests"] == 4000
