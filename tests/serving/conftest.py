"""Fixtures for the serving suite: a real server on a background loop.

The harness is deliberately the same shape a production client sees —
an actual ``asyncio.start_server`` socket spoken to through
``http.client`` — so these tests exercise the full request path
(framing, admission, executor hand-off, streaming), not mocked
internals.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading

import pytest

from repro.api.engine import Engine
from repro.datagen.synthetic import generate_relation_pair
from repro.serving.server import KSJQServer, ServingConfig

__all__ = ["RunningServer", "demo_engine"]


def demo_engine(n: int = 200, seed: int = 42) -> Engine:
    """Engine with the demo ``left``/``right`` pair registered.

    At ``n=200, d=6, g=10`` the joined space is 40k rows: ``k=10`` is
    milliseconds, ``k=12`` under the naive algorithm is ~1s — enough
    dynamic range to exercise deadlines and saturation deterministically.
    """
    left, right = generate_relation_pair(n=n, d=6, g=10, a=0, seed=seed)
    engine = Engine()
    engine.register("left", left)
    engine.register("right", right)
    return engine


class RunningServer:
    """A :class:`KSJQServer` running on a dedicated event-loop thread."""

    def __init__(self, engine: Engine, config: ServingConfig) -> None:
        self.engine = engine
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self.loop.run_forever, daemon=True)
        self._thread.start()
        self.server = KSJQServer(engine, config)
        asyncio.run_coroutine_threadsafe(self.server.start(), self.loop).result(10)
        self.port = self.server.port

    def close(self) -> None:
        asyncio.run_coroutine_threadsafe(self.server.stop(), self.loop).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(10)
        self.loop.close()

    # ------------------------------------------------------------------
    def connection(self, timeout: float = 60) -> http.client.HTTPConnection:
        return http.client.HTTPConnection("127.0.0.1", self.port, timeout=timeout)

    def request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        raw: bytes | None = None,
        timeout: float = 60,
    ):
        """One round trip; returns ``(status, headers, parsed json)``."""
        conn = self.connection(timeout=timeout)
        payload = raw
        if payload is None and body is not None:
            payload = json.dumps(body).encode("utf-8")
        conn.request(method, path, body=payload)
        response = conn.getresponse()
        data = response.read()
        conn.close()
        return response.status, dict(response.getheaders()), (
            json.loads(data) if data else None
        )


@pytest.fixture(scope="module")
def served():
    """One shared server over the demo engine (2 workers, queue of 2)."""
    running = RunningServer(demo_engine(), ServingConfig(workers=2, max_queue=2))
    yield running
    running.close()
