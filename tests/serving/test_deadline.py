"""Deadline mechanics and per-algorithm cooperative cancellation.

The counting clock makes expiry exact: ``Deadline(budget=m,
clock=tick)`` consumes one tick at construction and one per
:meth:`check`, so it trips at precisely the m-th checkpoint — no
wall-clock flakiness anywhere in this module.
"""

from __future__ import annotations

import threading
from collections.abc import Callable

import numpy as np
import pytest

from repro.api.engine import Engine
from repro.api.spec import QuerySpec
from repro.core.verify import checkpointed_skyline
from repro.errors import DeadlineExceeded, ParameterError
from repro.serving.deadline import Deadline, active_deadline
from repro.skyline.kdominant import k_dominant_skyline

from ..helpers import make_random_pair


def counting_clock() -> Callable[[], float]:
    calls = [0]

    def tick() -> float:
        calls[0] += 1
        return float(calls[0])

    return tick


# ----------------------------------------------------------------------
# Deadline object
# ----------------------------------------------------------------------
class TestDeadline:
    def test_budget_must_be_positive(self):
        with pytest.raises(ParameterError):
            Deadline(0)
        with pytest.raises(ParameterError):
            Deadline(-0.5)

    def test_counting_clock_expires_at_exactly_the_mth_check(self):
        deadline = Deadline(3, clock=counting_clock())
        deadline.check()
        deadline.check()
        with pytest.raises(DeadlineExceeded):
            deadline.check()

    def test_error_carries_partial_and_budget(self):
        deadline = Deadline(1, clock=counting_clock())
        with pytest.raises(DeadlineExceeded) as err:
            deadline.check(lambda: ((1, 2), (3, 4)))
        exc = err.value
        assert exc.partial_pairs == ((1, 2), (3, 4))
        assert exc.partial is True
        assert exc.code == "deadline_exceeded"
        assert exc.budget == 1.0
        assert exc.elapsed >= exc.budget

    def test_partial_provider_only_evaluated_on_expiry(self):
        evaluated = []
        deadline = Deadline(100, clock=counting_clock())
        deadline.check(lambda: evaluated.append(1) or ())
        assert evaluated == []

    def test_activate_nests_and_restores(self):
        outer, inner = Deadline(10), Deadline(5)
        assert active_deadline() is None
        with outer.activate():
            assert active_deadline() is outer
            with inner.activate():
                assert active_deadline() is inner
            assert active_deadline() is outer
        assert active_deadline() is None

    def test_active_deadline_is_thread_local(self):
        seen = []
        with Deadline(10).activate():
            thread = threading.Thread(target=lambda: seen.append(active_deadline()))
            thread.start()
            thread.join()
        assert seen == [None]

    def test_remaining_and_expired(self):
        deadline = Deadline(5, clock=counting_clock())
        assert deadline.remaining() == pytest.approx(4.0)  # one tick elapsed
        assert not deadline.expired


# ----------------------------------------------------------------------
# checkpointed_skyline: equivalence and partial subsets
# ----------------------------------------------------------------------
class TestCheckpointedSkyline:
    @pytest.mark.parametrize("k", [4, 5, 6])
    def test_matches_uncheckpointed_kernel(self, k):
        rng = np.random.default_rng(7)
        matrix = np.floor(rng.random((300, 6)) * 5)
        exact = k_dominant_skyline(matrix, k)
        got = checkpointed_skyline(
            matrix, k, Deadline(1e9), lambda survivors: tuple((i,) for i in survivors)
        )
        assert np.array_equal(np.sort(got), np.sort(exact))

    @pytest.mark.parametrize("m", [1, 2, 4, 8, 1_000_000])
    def test_expiry_partial_is_subset_of_exact(self, m):
        rng = np.random.default_rng(11)
        matrix = np.floor(rng.random((400, 5)) * 4)
        k = 4
        exact = {int(i) for i in k_dominant_skyline(matrix, k)}
        deadline = Deadline(m, clock=counting_clock())
        try:
            got = checkpointed_skyline(
                matrix, k, deadline, lambda survivors: tuple((i,) for i in survivors)
            )
        except DeadlineExceeded as exc:
            partial = {pair[0] for pair in exc.partial_pairs}
            assert partial <= exact
        else:
            assert {int(i) for i in got} == exact


# ----------------------------------------------------------------------
# Engine-level cancellation, per algorithm
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    ("algorithm", "parallelism"),
    [("naive", "auto"), ("grouping", "auto"), ("auto", 2)],
    ids=["naive", "grouping", "parallel"],
)
def test_engine_partial_is_subset_and_rerun_is_exact(algorithm, parallelism):
    left, right = make_random_pair(seed=5, n=60, d=4, g=3)
    spec = QuerySpec.for_ksjq(k=8, algorithm=algorithm, parallelism=parallelism)
    exact = Engine().execute(left, right, spec=spec).pair_set()
    assert exact, "fixture must have a non-empty skyline to be meaningful"

    engine = Engine()
    saw_expiry = False
    for m in (1, 4, 16, 64, 256):
        try:
            result = engine.execute(
                left, right, spec=spec, deadline=Deadline(m, clock=counting_clock())
            )
        except DeadlineExceeded as exc:
            saw_expiry = True
            assert set(exc.partial_pairs) <= exact
        else:
            assert result.pair_set() == exact
    assert saw_expiry, "at least the m=1 deadline must trip"
    # After any number of cancellations, a plain re-run is still exact.
    assert engine.execute(left, right, spec=spec).pair_set() == exact


def test_cascade_partial_is_subset_and_rerun_is_exact():
    r1, r2 = make_random_pair(seed=9, n=30, d=4, g=3)
    r3, _ = make_random_pair(seed=11, n=30, d=4, g=3)
    spec = QuerySpec.for_cascade(k=12)
    exact_chains = Engine().execute(r1, r2, r3, spec=spec).chains
    exact = {tuple(int(x) for x in row) for row in exact_chains}

    engine = Engine()
    saw_expiry = False
    for m in (1, 8, 64, 512):
        try:
            result = engine.execute(
                r1, r2, r3, spec=spec, deadline=Deadline(m, clock=counting_clock())
            )
        except DeadlineExceeded as exc:
            saw_expiry = True
            assert set(exc.partial_pairs) <= exact
        else:
            assert {tuple(int(x) for x in row) for row in result.chains} == exact
    assert saw_expiry
    final = engine.execute(r1, r2, r3, spec=spec)
    assert {tuple(int(x) for x in row) for row in final.chains} == exact


def test_stream_deadline_partial_covers_emitted_pairs():
    """A cancelled progressive stream raises mid-iteration, and the
    error's partial contains every pair the consumer already saw."""
    left, right = make_random_pair(seed=5, n=60, d=4, g=3)
    spec = QuerySpec.for_ksjq(k=8)
    engine = Engine()
    exact = engine.execute(left, right, spec=spec).pair_set()

    collected: list[tuple[int, ...]] = []
    deadline = Deadline(20, clock=counting_clock())
    with pytest.raises(DeadlineExceeded) as err:
        for pair in engine.stream(left, right, spec=spec, deadline=deadline):
            collected.append(tuple(int(x) for x in pair))
    partial = set(err.value.partial_pairs)
    assert set(collected) <= partial <= exact


def test_expired_run_does_not_pollute_the_result_cache():
    left, right = make_random_pair(seed=5, n=60, d=4, g=3)
    spec = QuerySpec.for_ksjq(k=8, algorithm="naive")
    engine = Engine()
    with pytest.raises(DeadlineExceeded):
        engine.execute(
            left, right, spec=spec, deadline=Deadline(1, clock=counting_clock())
        )
    info = engine.cache_info()
    assert info["results"]["size"] == 0
    # The full run that follows is a cache miss, then exact.
    exact = engine.execute(left, right, spec=spec).pair_set()
    assert exact == Engine().execute(left, right, spec=spec).pair_set()
