"""Property-based tests for dominance primitives (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.skyline import (
    boe_counts,
    dominates,
    k_dominates,
    k_dominator_mask,
    strict_any,
)

# Small discrete values force plenty of ties, the interesting case.
scalars = st.integers(min_value=0, max_value=4)


def vectors(d):
    return st.lists(scalars, min_size=d, max_size=d).map(
        lambda xs: np.asarray(xs, dtype=float)
    )


vector_pairs = st.integers(min_value=1, max_value=6).flatmap(
    lambda d: st.tuples(vectors(d), vectors(d))
)


@given(vector_pairs)
def test_irreflexive(pair):
    u, _ = pair
    for k in range(1, len(u) + 1):
        assert not k_dominates(u, u, k)


@given(vector_pairs)
def test_full_k_equals_classic_dominance(pair):
    u, v = pair
    assert k_dominates(u, v, len(u)) == dominates(u, v)


@given(vector_pairs)
def test_monotone_in_k(pair):
    """If u k-dominates v then u j-dominates v for every j <= k."""
    u, v = pair
    d = len(u)
    flags = [k_dominates(u, v, k) for k in range(1, d + 1)]
    # Once False, stays False for larger k.
    for earlier, later in zip(flags, flags[1:]):
        assert earlier or not later


@given(vector_pairs)
def test_antisymmetric_above_half_without_ties(pair):
    """For k > d/2 and tie-free pairs, mutual k-domination is impossible.

    The tie-free condition is necessary: with ties the better-or-equal
    counts of the two directions can sum above d (e.g. (0,0,1) vs
    (0,1,0) mutually 2-dominate with d=3), so the paper's Sec. 2.2
    remark that mutual domination needs k <= d/2 implicitly assumes
    distinct attribute values.
    """
    u, v = pair
    d = len(u)
    if np.any(u == v):
        return
    for k in range(d // 2 + 1, d + 1):
        assert not (k_dominates(u, v, k) and k_dominates(v, u, k))


def test_mutual_domination_with_ties_above_half():
    """The documented counterexample for the tie case."""
    u = np.array([0.0, 0.0, 1.0])
    v = np.array([0.0, 1.0, 0.0])
    assert k_dominates(u, v, 2) and k_dominates(v, u, 2)


@given(vector_pairs)
def test_definition_expansion(pair):
    """k-dominance is exactly: boe count >= k and one strict attribute."""
    u, v = pair
    boe = int(np.count_nonzero(u <= v))
    strict = bool(np.any(u < v))
    for k in range(1, len(u) + 1):
        assert k_dominates(u, v, k) == (boe >= k and strict)


matrices = st.integers(min_value=1, max_value=4).flatmap(
    lambda d: st.lists(
        st.lists(scalars, min_size=d, max_size=d), min_size=1, max_size=20
    ).map(lambda rows: np.asarray(rows, dtype=float))
)


@given(matrices)
@settings(max_examples=60)
def test_vectorized_matches_scalar(matrix):
    d = matrix.shape[1]
    probe = matrix[0]
    counts = boe_counts(matrix, probe)
    stricts = strict_any(matrix, probe)
    for k in range(1, d + 1):
        mask = k_dominator_mask(matrix, probe, k)
        for i in range(matrix.shape[0]):
            assert mask[i] == k_dominates(matrix[i], probe, k)
            assert counts[i] == int(np.count_nonzero(matrix[i] <= probe))
            assert stricts[i] == bool(np.any(matrix[i] < probe))
