"""Differential fuzz suite for the dominance-index layer.

The acceptance contract of ``core/index.py``: the indexed path is an
*access-method* optimization, never an answer change. For every data
distribution, dimensionality, dataset size, k at both ends of its legal
range, and worker count, the indexed results are **byte-identical** to
the naive serial exact path — canonical pair arrays compare equal
element-wise, not just as sets.

Why this must be fuzzed rather than argued: k-dominance is
non-transitive (cycles exist for small k), so a cell-pruning rule that
chains bounds through virtual corner points is *unsound* even though it
looks like a textbook grid-file bound argument. The witness rule in
``core/index.py`` prunes a cell only when one **actual** joined tuple
k-dominates the cell's lower bound corner with a strict attribute
against the corner itself — one real dominator hop, no chaining. The
hand-built fixtures at the bottom pin exactly the configurations where
a transitivity-assuming implementation returns wrong answers.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Engine, QuerySpec
from repro.core import CellPartition, DominanceIndex, JoinPlan, run_indexed, run_naive
from repro.core.index import joined_cell_ids, lpt_buckets
from repro.core.parallel import ShardPlan
from repro.relational import Relation
from repro.skyline.dominance import cells_k_dominated, is_k_dominated
from repro.skyline.kdominant import k_dominant_skyline

from ..helpers import make_random_pair

PARALLELISMS = (1, 2, 4)
DISTRIBUTIONS = ("independent", "correlated", "anticorrelated")


def thread_plan(workers: int) -> ShardPlan:
    return ShardPlan(workers, 0, "thread" if workers > 1 else "serial", "test")


def k_bounds(left, right):
    """The legal k range of a two-way join (paper Sec. 2)."""
    k_lo = max(left.schema.d, right.schema.d) + 1
    k_hi = left.schema.l + right.schema.l + left.schema.a
    return k_lo, k_hi


def assert_identical(got, want):
    assert got.pair_set() == want.pair_set()
    assert got.pairs.shape == want.pairs.shape
    assert got.pairs.tobytes() == want.pairs.tobytes()


# ----------------------------------------------------------------------
# Two-way: distributions x d x k-bounds x parallelism
# ----------------------------------------------------------------------
@pytest.mark.parametrize("distribution", DISTRIBUTIONS)
@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000), d=st.integers(4, 8), at_hi=st.booleans())
def test_indexed_equals_naive_across_distributions(distribution, seed, d, at_hi):
    left, right = make_random_pair(
        seed=seed, n=36, d=d, g=3, a=0, distribution=distribution
    )
    k_lo, k_hi = k_bounds(left, right)
    k = k_hi if at_hi else k_lo
    plan = JoinPlan(left, right)
    want = run_naive(plan, k)
    left_index, _ = plan.side_index("left")
    right_index, _ = plan.side_index("right")
    for workers in PARALLELISMS:
        got = run_indexed(
            plan, k, left_index, right_index, shards=thread_plan(workers)
        )
        assert_identical(got, want)
        assert got.algorithm == "indexed" and got.mode == "exact"


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.sampled_from([4, 12, 36, 80]),
    k_off=st.integers(0, 4),
)
def test_indexed_equals_naive_across_sizes(seed, n, k_off):
    """The n ladder, k swept inward from the lower bound, aggregates on."""
    left, right = make_random_pair(seed=seed, n=n, d=5, g=3, a=1)
    k_lo, k_hi = k_bounds(left, right)
    k = min(k_lo + k_off, k_hi)
    plan = JoinPlan(left, right, aggregate="sum")
    want = run_naive(plan, k)
    left_index, _ = plan.side_index("left")
    right_index, _ = plan.side_index("right")
    got = run_indexed(plan, k, left_index, right_index)
    assert_identical(got, want)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 10_000), at_hi=st.booleans())
def test_engine_indexed_is_answer_invariant(seed, at_hi):
    """Engine wiring: indexed x parallelism x use_index vs naive bytes."""
    left, right = make_random_pair(seed=seed, n=30, d=4, g=4)
    k_lo, k_hi = k_bounds(left, right)
    k = k_hi if at_hi else k_lo
    engine = Engine()
    want = engine.execute(left, right, QuerySpec.for_ksjq(k=k, algorithm="naive"))
    for w in PARALLELISMS:
        got = engine.execute(
            left,
            right,
            QuerySpec.for_ksjq(k=k, algorithm="indexed", parallelism=w),
        )
        assert got.pairs.tobytes() == want.pairs.tobytes()
    forced = engine.execute(left, right, QuerySpec.for_ksjq(k=k, use_index=True))
    assert forced.algorithm == "indexed"
    assert forced.pairs.tobytes() == want.pairs.tobytes()


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_warm_repeat_is_identical_to_cold(seed):
    """Second run answers from the memoized candidate superset; the
    verification-only warm path must not change a byte."""
    left, right = make_random_pair(seed=seed, n=40, d=5, g=3)
    k_lo, k_hi = k_bounds(left, right)
    engine = Engine()
    spec = QuerySpec.for_ksjq(k=k_hi - 1, algorithm="indexed")
    cold = engine.execute(left, right, spec)
    warm = engine.execute(left, right, spec)
    want = engine.execute(
        left, right, QuerySpec.for_ksjq(k=k_hi - 1, algorithm="naive")
    )
    assert cold.pairs.tobytes() == want.pairs.tobytes()
    assert warm.pairs.tobytes() == want.pairs.tobytes()


# ----------------------------------------------------------------------
# find_k: use_index is carried but must not perturb the search
# ----------------------------------------------------------------------
@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 10_000), delta=st.integers(1, 30))
def test_find_k_is_use_index_invariant(seed, delta):
    left, right = make_random_pair(seed=seed, n=25, d=4, g=3)
    engine = Engine()
    results = [
        engine.execute(
            left, right, QuerySpec.for_find_k(delta=delta, use_index=ui)
        )
        for ui in ("auto", True, False)
    ]
    ks = {r.k for r in results}
    assert len(ks) == 1
    probes = {tuple(step.k for step in r.steps) for r in results}
    assert len(probes) == 1
    # find_k never touches the index layer, whatever the knob says.
    assert engine.cache_info()["index_builds"] == 0


# ----------------------------------------------------------------------
# Cascades: m-way chains through the same witness rule
# ----------------------------------------------------------------------
@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    workers=st.sampled_from(PARALLELISMS),
    at_hi=st.booleans(),
)
def test_cascade_indexed_equals_naive(seed, workers, at_hi):
    rng = np.random.default_rng(seed)
    legs = [
        Relation.from_arrays(
            np.floor(rng.random((12, 4)) * 4),
            ["s0", "s1", "s2", "s3"],
            join_key=[int(j % 2) for j in range(12)],
            name=f"L{i}",
        )
        for i in range(3)
    ]
    k = 12 if at_hi else 5
    engine = Engine()
    want = engine.execute(*legs, spec=QuerySpec.for_cascade(k=k, algorithm="naive"))
    got = engine.execute(
        *legs,
        spec=QuerySpec.for_cascade(k=k, algorithm="indexed", parallelism=workers),
    )
    assert got.chain_set() == want.chain_set()
    assert got.chains.tobytes() == want.chains.tobytes()
    assert got.algorithm == "indexed"


# ----------------------------------------------------------------------
# Hand-built non-transitivity fixtures
# ----------------------------------------------------------------------
def _paired_plan(left_rows, right_rows):
    """One joined tuple per row i (unique join keys pair L_i with R_i)."""
    n = len(left_rows)
    names = [f"s{i}" for i in range(len(left_rows[0]))]
    left = Relation.from_arrays(
        np.asarray(left_rows, dtype=np.float64),
        names,
        join_key=list(range(n)),
        name="L",
    )
    right = Relation.from_arrays(
        np.asarray(right_rows, dtype=np.float64),
        names,
        join_key=list(range(n)),
        name="R",
    )
    return JoinPlan(left, right)


def test_three_cycle_dominance_fixture():
    """v1 >k v2 >k v3 >k v1 at k=4 of 6: a pure dominance cycle.

    The exact answer is empty (every tuple has a real dominator). Any
    implementation that treats k-dominance as transitive — e.g. by
    electing a single cycle "representative" as undominated, or by
    verifying candidates only against surviving tuples — returns a
    non-empty answer here.
    """
    v1 = (0, 0, 0, 0, 1, 1)
    v2 = (1, 1, 0, 0, 0, 0)
    v3 = (0, 0, 1, 1, 0, 0)
    cycle = np.asarray([v1, v2, v3], dtype=np.float64)
    # Pin the cycle itself before trusting the differential check.
    assert is_k_dominated(cycle[[0]], cycle[1], 4)  # v1 >k v2
    assert is_k_dominated(cycle[[1]], cycle[2], 4)  # v2 >k v3
    assert is_k_dominated(cycle[[2]], cycle[0], 4)  # v3 >k v1
    plan = _paired_plan(
        [row[:3] for row in (v1, v2, v3)],
        [row[3:] for row in (v1, v2, v3)],
    )
    for k in (4, 5, 6):
        want = run_naive(plan, k)
        left_index, _ = plan.side_index("left")
        right_index, _ = plan.side_index("right")
        for workers in (1, 2):
            got = run_indexed(
                plan, k, left_index, right_index, shards=thread_plan(workers)
            )
            assert_identical(got, want)


def test_cell_pruning_does_not_assume_transitivity():
    """The w / t / c trap: w >k t (so t's cell is pruned), t >k c, but
    w does NOT k-dominate c.

    A transitivity-assuming implementation reasons "w covers everything
    t could prune" and verifies c only against surviving tuples — c
    then wrongly survives. The sound implementation prunes c's cell via
    the *pruned* tuple t (witnesses need not survive; pruned tuples are
    non-winning but still dominate), and the exact answer excludes c.
    """
    w = (0, 0, 0, 99, 1, 9)
    t = (0, 0, 0, 9, 9, 5)
    c = (2, 2, 2, 9, 0, 0)
    k = 4
    matrix = np.asarray([w, t, c], dtype=np.float64)
    # The trap's premises, pinned one by one:
    assert is_k_dominated(matrix[[0]], matrix[1], k)  # w >k t
    assert is_k_dominated(matrix[[1]], matrix[2], k)  # t >k c
    assert not is_k_dominated(matrix[[0]], matrix[2], k)  # w !>k c
    # Hand-built partition: one cell per tuple, so every prune decision
    # is visible. All three cells must be pruned — t's via w, c's via
    # the pruned witness t, w's via t (w >k t >k w is a 2-cycle here).
    partition = CellPartition(matrix, np.arange(3, dtype=np.intp))
    pruned = partition.pruned_cells(k)
    assert pruned.all(), (
        "cell of c must be pruned by the pruned tuple t: witness "
        "soundness is per-tuple and does not depend on witness survival"
    )
    # Per-tuple soundness audit: every pruned tuple has a real one-hop
    # dominator somewhere in the matrix.
    for row in range(3):
        others = np.delete(matrix, row, axis=0)
        assert is_k_dominated(others, matrix[row], k)
    # And the exact skyline agrees: nobody wins.
    assert k_dominant_skyline(matrix, k) == []
    # End-to-end through the engine path (single joined cell or not,
    # the answer must match naive bytes).
    plan = _paired_plan([row[:3] for row in (w, t, c)], [row[3:] for row in (w, t, c)])
    want = run_naive(plan, k)
    left_index, _ = plan.side_index("left")
    right_index, _ = plan.side_index("right")
    got = run_indexed(plan, k, left_index, right_index)
    assert_identical(got, want)
    assert want.pairs.shape[0] == 0


def test_pruned_cells_never_prune_a_winner():
    """Random audit of the witness rule in isolation: every row of every
    pruned cell is k-dominated by some actual row of the matrix."""
    rng = np.random.default_rng(42)
    for _ in range(10):
        matrix = np.floor(rng.random((30, 6)) * 4)
        cell_ids = rng.integers(0, 5, size=30).astype(np.intp)
        partition = CellPartition(matrix, cell_ids)
        for k in (4, 5, 6):
            pruned = partition.pruned_cells(k)
            for cell in np.flatnonzero(pruned):
                for row in np.flatnonzero(cell_ids == np.unique(cell_ids)[cell]):
                    assert is_k_dominated(matrix, matrix[row], k)


def test_cells_k_dominated_matches_scalar_definition():
    """The kernel against a literal transcription of the witness rule."""
    rng = np.random.default_rng(7)
    matrix = np.floor(rng.random((20, 5)) * 3)
    bounds = np.floor(rng.random((6, 5)) * 3)
    for k in (3, 4, 5):
        got = cells_k_dominated(matrix, bounds, k)
        for b in range(bounds.shape[0]):
            expect = any(
                (matrix[i] <= bounds[b]).sum() >= k and (matrix[i] < bounds[b]).any()
                for i in range(matrix.shape[0])
            )
            assert bool(got[b]) == expect


# ----------------------------------------------------------------------
# Index structure invariants
# ----------------------------------------------------------------------
@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.sampled_from([0, 1, 7, 40]))
def test_index_structure_invariants(seed, n):
    rng = np.random.default_rng(seed)
    rel = Relation.from_arrays(
        np.floor(rng.random((n, 4)) * 5),
        ["s0", "s1", "s2", "s3"],
        join_key=[0] * n,
        name="X",
    )
    index = DominanceIndex.build(rel)
    matrix = rel.oriented()
    assert index.n_rows == n
    if n == 0:
        assert index.n_cells == 0
        return
    assert index.cell_of.shape == (n,)
    assert index.cell_counts.sum() == n
    assert (index.cell_of < index.n_cells).all()
    # Per-cell bounds really bound the cell's rows, in every column.
    for cell in range(index.n_cells):
        rows = matrix[index.cell_of == cell]
        assert (rows >= index.cell_lb[cell]).all()
        assert (rows <= index.cell_ub[cell]).all()
    assert 0.0 <= index.mean_cell_span <= 1.0


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000), buckets=st.integers(1, 6))
def test_lpt_buckets_partition_all_items(seed, buckets):
    rng = np.random.default_rng(seed)
    sizes = rng.integers(0, 50, size=rng.integers(0, 12)).astype(np.intp)
    got = lpt_buckets(sizes, buckets)
    flat = sorted(i for bucket in got for i in bucket)
    assert flat == list(range(sizes.size))
    assert all(bucket for bucket in got)


def test_joined_cell_ids_are_the_cell_product():
    rng = np.random.default_rng(3)
    rel_a = Relation.from_arrays(
        np.floor(rng.random((20, 3)) * 4), ["s0", "s1", "s2"],
        join_key=[0] * 20, name="A",
    )
    rel_b = Relation.from_arrays(
        np.floor(rng.random((15, 3)) * 4), ["s0", "s1", "s2"],
        join_key=[0] * 15, name="B",
    )
    ia, ib = DominanceIndex.build(rel_a), DominanceIndex.build(rel_b)
    lefts = np.asarray([0, 3, 19], dtype=np.intp)
    rights = np.asarray([1, 0, 14], dtype=np.intp)
    ids = joined_cell_ids(ia, ib, lefts, rights)
    for pos in range(3):
        expect = ia.cell_of[lefts[pos]] * max(1, ib.n_cells) + ib.cell_of[rights[pos]]
        assert ids[pos] == expect
