"""CSV round-trip property tests (hypothesis) for relational/csvio.py.

``write_csv`` -> ``read_csv`` must be lossless for any well-formed
relation: schema roles, preference directions and aggregate marks
survive, skyline values round-trip exactly (including arbitrary finite
floats, not just integer-valued ones), and join/payload columns come
back with their values intact.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import (
    Preference,
    Relation,
    RelationSchema,
    Role,
    read_csv,
    write_csv,
)

# Finite floats round-trip through repr() -> float() exactly in Python;
# NaN/inf are rejected by Relation itself, so exclude them here.
finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)

# Payload text that can never be mistaken for an integer literal by the
# reader's int-sniffing (which is csvio's documented behaviour).
payload_text = st.text(alphabet="abcxyz_-", min_size=1, max_size=8)


@st.composite
def schema_and_columns(draw):
    """A random schema exercising every role/preference/aggregate combo,
    plus matching column data."""
    d = draw(st.integers(min_value=1, max_value=5))
    n = draw(st.integers(min_value=0, max_value=12))
    sky = [f"s{i}" for i in range(d)]
    aggregate = [name for name in sky if draw(st.booleans())]
    higher = [name for name in sky if draw(st.booleans())]
    n_join = draw(st.integers(min_value=0, max_value=2))
    n_payload = draw(st.integers(min_value=0, max_value=2))
    join = [f"j{i}" for i in range(n_join)]
    payload = [f"p{i}" for i in range(n_payload)]
    schema = RelationSchema.build(
        join=join,
        skyline=sky,
        aggregate=aggregate,
        higher_is_better=higher,
        payload=payload,
    )
    columns = {name: [draw(finite_floats) for _ in range(n)] for name in sky}
    for name in join:
        # Mix integer and string keys: both are csvio-representable.
        if draw(st.booleans()):
            columns[name] = [draw(st.integers(-1000, 1000)) for _ in range(n)]
        else:
            columns[name] = [draw(payload_text) for _ in range(n)]
    for name in payload:
        columns[name] = [draw(payload_text) for _ in range(n)]
    return schema, columns


@given(schema_and_columns())
@settings(max_examples=60, deadline=None)
def test_csv_roundtrip_is_lossless(tmp_path_factory, sc):
    schema, columns = sc
    relation = Relation(schema, columns, name="roundtrip")
    path = tmp_path_factory.mktemp("csvio") / "relation.csv"

    write_csv(relation, path)
    back = read_csv(schema, path, name="roundtrip")

    # Schema survives attribute by attribute: role, preference
    # direction, and the aggregate mark.
    assert list(back.schema.names) == list(schema.names)
    for name in schema.names:
        original, restored = schema[name], back.schema[name]
        assert restored.role is original.role
        assert restored.preference is original.preference
        assert restored.aggregate == original.aggregate
    assert list(back.schema.aggregate_names) == list(schema.aggregate_names)
    assert back.schema.a == schema.a and back.schema.d == schema.d

    # Values survive: exact float round-trip, join keys, payloads.
    assert len(back) == len(relation)
    assert back.records() == relation.records()
    assert back.join_keys() == relation.join_keys()

    # Derived structures agree too: orientation applies the same
    # preference signs to the same values.
    assert (back.oriented() == relation.oriented()).all()


@given(schema_and_columns())
@settings(max_examples=25, deadline=None)
def test_roundtrip_relation_fingerprint_is_stable(tmp_path_factory, sc):
    """A lossless round-trip implies the content fingerprint — the
    engine's anonymous-relation cache key — is preserved, except for
    join/payload values whose python type the reader normalizes."""
    schema, columns = sc
    relation = Relation(schema, columns, name="fp")
    only_csv_native_types = all(
        spec.role is Role.SKYLINE or all(isinstance(v, (int, str)) for v in columns[name])
        for name, spec in ((n, schema[n]) for n in schema.names)
    )
    path = tmp_path_factory.mktemp("csvio") / "relation.csv"
    write_csv(relation, path)
    back = read_csv(schema, path, name="fp")
    if only_csv_native_types:
        assert back.fingerprint() == relation.fingerprint()


def test_preference_signs_apply_after_roundtrip(tmp_path_factory):
    """Deterministic spot check: a higher-is-better attribute keeps its
    orientation through the round-trip."""
    schema = RelationSchema.build(join=["g"], skyline=["lo", "hi"],
                                  higher_is_better=["hi"])
    rel = Relation(schema, {"g": [1, 1], "lo": [1.5, 2.5], "hi": [3.25, 4.75]})
    path = tmp_path_factory.mktemp("csvio") / "pref.csv"
    write_csv(rel, path)
    back = read_csv(schema, path)
    assert back.schema["hi"].preference is Preference.HIGHER
    assert list(back.oriented()[:, 1]) == [-3.25, -4.75]
