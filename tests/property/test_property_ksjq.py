"""Property-based tests for the KSJQ algorithms (hypothesis).

The central invariants:

* exact-mode grouping/dominator == naïve, for any join shape, any
  number of aggregates, any valid k;
* faithful mode == naïve without aggregation, and never *under*-reports
  with aggregation;
* the categorization is a partition consistent with its definitions;
* the cartesian fast path agrees with the general machinery.
"""

import warnings

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Category, JoinPlan, run_cartesian, run_dominator, run_grouping, run_naive
from repro.errors import SoundnessWarning
from repro.relational import Relation


@st.composite
def ksjq_instances(draw, max_a=2):
    d = draw(st.integers(min_value=2, max_value=4))
    a = draw(st.integers(min_value=0, max_value=min(max_a, d - 1)))
    n1 = draw(st.integers(min_value=1, max_value=10))
    n2 = draw(st.integers(min_value=1, max_value=10))
    g = draw(st.integers(min_value=1, max_value=3))
    k_min = d + 1
    k_max = 2 * d - a
    k = draw(st.integers(min_value=k_min, max_value=k_max))

    names = [f"s{i}" for i in range(d)]

    def rel(n, name):
        rows = draw(
            st.lists(
                st.lists(st.integers(0, 3), min_size=d, max_size=d),
                min_size=n,
                max_size=n,
            )
        )
        groups = [draw(st.integers(0, g - 1)) for _ in range(n)]
        return Relation.from_arrays(
            np.asarray(rows, dtype=float),
            names,
            join_key=groups,
            aggregate=names[:a],
            name=name,
        )

    return rel(n1, "R1"), rel(n2, "R2"), k, a


@given(ksjq_instances())
@settings(max_examples=60, deadline=None)
def test_exact_mode_equals_naive(instance):
    left, right, k, a = instance
    agg = "sum" if a else None
    plan = JoinPlan(left, right, aggregate=agg)
    base = run_naive(plan, k).pair_set()
    assert run_grouping(plan, k, mode="exact").pair_set() == base
    assert run_dominator(plan, k, mode="exact").pair_set() == base


@given(ksjq_instances(max_a=0))
@settings(max_examples=60, deadline=None)
def test_faithful_equals_naive_without_aggregation(instance):
    left, right, k, _ = instance
    plan = JoinPlan(left, right)
    base = run_naive(plan, k).pair_set()
    assert run_grouping(plan, k, mode="faithful").pair_set() == base
    assert run_dominator(plan, k, mode="faithful").pair_set() == base


@given(ksjq_instances())
@settings(max_examples=60, deadline=None)
def test_faithful_never_underreports(instance):
    left, right, k, a = instance
    agg = "sum" if a else None
    plan = JoinPlan(left, right, aggregate=agg)
    base = run_naive(plan, k).pair_set()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", SoundnessWarning)
        for runner in (run_grouping, run_dominator):
            assert base <= runner(plan, k, mode="faithful").pair_set()


@given(ksjq_instances())
@settings(max_examples=40, deadline=None)
def test_categorization_is_consistent_partition(instance):
    from repro.relational.groups import GroupIndex
    from repro.skyline import is_k_dominated

    left, right, k, a = instance
    agg = "sum" if a else None
    plan = JoinPlan(left, right, aggregate=agg)
    params = plan.params(k)
    for rel, cat in (
        (left, plan.categorize_left(params.k1_prime)),
        (right, plan.categorize_right(params.k2_prime)),
    ):
        matrix = rel.oriented()
        groups = GroupIndex(rel)
        seen = 0
        for row in range(len(rel)):
            label = cat.category(row)
            seen += 1
            mates = groups.groupmates(row)
            group_dominated = is_k_dominated(
                matrix[mates], matrix[row], cat.k_prime
            )
            overall_dominated = is_k_dominated(matrix, matrix[row], cat.k_prime)
            if label is Category.NN:
                assert group_dominated
            elif label is Category.SN:
                assert not group_dominated and overall_dominated
            else:
                assert not overall_dominated
        assert seen == len(rel)


@given(ksjq_instances())
@settings(max_examples=40, deadline=None)
def test_cartesian_fast_path_equals_naive(instance):
    left, right, k, a = instance
    agg = "sum" if a else None
    plan = JoinPlan(left, right, kind="cartesian", aggregate=agg)
    base = run_naive(plan, k).pair_set()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", SoundnessWarning)
        exact = run_cartesian(plan, k, mode="exact").pair_set()
    assert exact == base


@given(ksjq_instances(max_a=0), st.integers(min_value=1, max_value=200))
@settings(max_examples=40, deadline=None)
def test_find_k_binary_matches_linear(instance, delta):
    left, right, k, _ = instance
    plan = JoinPlan(left, right)
    from repro.core.find_k import find_k_at_least_delta

    answers = {
        method: find_k_at_least_delta(plan, delta, method=method).k
        for method in ("naive", "range", "binary")
    }
    assert len(set(answers.values())) == 1, answers
