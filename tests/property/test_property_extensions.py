"""Property-based tests for the progressive and cascade extensions."""

import warnings

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Hop, JoinPlan, cascade_ksjq, ksjq_progressive, run_grouping
from repro.core.cascade import cascade_chains, cascade_oriented
from repro.errors import SoundnessWarning
from repro.relational import Relation, RelationSchema


@st.composite
def two_relation_instances(draw):
    d = draw(st.integers(min_value=2, max_value=4))
    a = draw(st.integers(min_value=0, max_value=min(1, d - 1)))
    g = draw(st.integers(min_value=1, max_value=3))
    k = draw(st.integers(min_value=d + 1, max_value=2 * d - a))
    names = [f"s{i}" for i in range(d)]

    def rel(name):
        n = draw(st.integers(min_value=1, max_value=8))
        rows = draw(
            st.lists(
                st.lists(st.integers(0, 3), min_size=d, max_size=d),
                min_size=n, max_size=n,
            )
        )
        groups = [draw(st.integers(0, g - 1)) for _ in range(n)]
        return Relation.from_arrays(
            np.asarray(rows, dtype=float), names, join_key=groups,
            aggregate=names[:a], name=name,
        )

    return rel("R1"), rel("R2"), k, a


@given(two_relation_instances())
@settings(max_examples=50, deadline=None)
def test_progressive_equals_batch_grouping(instance):
    left, right, k, a = instance
    agg = "sum" if a else None
    plan = JoinPlan(left, right, aggregate=agg)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", SoundnessWarning)
        progressive = set(ksjq_progressive(plan, k))
        batch = run_grouping(plan, k, mode="faithful").pair_set()
    assert progressive == batch


@st.composite
def cascade_instances(draw):
    """Three relations chained by payload hop columns."""
    d = 3
    a = draw(st.integers(min_value=0, max_value=1))
    names = [f"s{i}" for i in range(d)]
    schema = RelationSchema.build(
        skyline=names, aggregate=names[:a], payload=["src", "dst"]
    )
    cities = ["X", "Y"]

    def rel(name, ins, outs):
        n = draw(st.integers(min_value=1, max_value=6))
        rows = draw(
            st.lists(
                st.lists(st.integers(0, 3), min_size=d, max_size=d),
                min_size=n, max_size=n,
            )
        )
        columns = {names[i]: [float(r[i]) for r in rows] for i in range(d)}
        columns["src"] = [draw(st.sampled_from(ins)) for _ in range(n)]
        columns["dst"] = [draw(st.sampled_from(outs)) for _ in range(n)]
        return Relation(schema, columns, name=name)

    relations = [
        rel("L1", ["A"], cities),
        rel("L2", cities, cities),
        rel("L3", cities, ["B"]),
    ]
    joined_d = sum(r.schema.l for r in relations) + a
    k = draw(st.integers(min_value=d + 1, max_value=joined_d))
    return relations, k, a


@given(cascade_instances())
@settings(max_examples=40, deadline=None)
def test_cascade_pruned_equals_naive(instance):
    relations, k, a = instance
    hops = [Hop("dst", "src"), Hop("dst", "src")]
    agg = "sum" if a else None
    naive = cascade_ksjq(relations, k, hops=hops, aggregate=agg, algorithm="naive")
    pruned = cascade_ksjq(relations, k, hops=hops, aggregate=agg, algorithm="pruned")
    assert pruned.chain_set() == naive.chain_set()


@given(cascade_instances())
@settings(max_examples=30, deadline=None)
def test_cascade_chains_are_join_compatible(instance):
    relations, _, _ = instance
    hops = [Hop("dst", "src"), Hop("dst", "src")]
    chains = cascade_chains(relations, hops)
    for chain in chains.tolist():
        for i in range(len(relations) - 1):
            dst = relations[i].column("dst")[chain[i]]
            src = relations[i + 1].column("src")[chain[i + 1]]
            assert dst == src


@given(cascade_instances())
@settings(max_examples=30, deadline=None)
def test_cascade_oriented_width(instance):
    relations, _, a = instance
    from repro.relational.aggregates import get_aggregate

    hops = [Hop("dst", "src"), Hop("dst", "src")]
    chains = cascade_chains(relations, hops)
    agg = get_aggregate("sum") if a else None
    matrix = cascade_oriented(relations, chains, agg)
    expected_width = sum(r.schema.l for r in relations) + a
    assert matrix.shape == (chains.shape[0], expected_width)
