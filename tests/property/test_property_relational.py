"""Property-based tests for the relational substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import Relation, RelationSchema, read_csv, write_csv


@st.composite
def relations(draw):
    d = draw(st.integers(min_value=1, max_value=4))
    n = draw(st.integers(min_value=0, max_value=15))
    higher = draw(st.booleans())
    names = [f"s{i}" for i in range(d)]
    schema = RelationSchema.build(
        join=["g"],
        skyline=names,
        higher_is_better=names[:1] if higher else [],
        payload=["tag"],
    )
    columns = {
        name: [
            float(draw(st.integers(min_value=-50, max_value=50))) for _ in range(n)
        ]
        for name in names
    }
    columns["g"] = [draw(st.sampled_from(["a", "b", "c"])) for _ in range(n)]
    columns["tag"] = [f"t{i}" for i in range(n)]
    return Relation(schema, columns)


@given(relations())
@settings(max_examples=50, deadline=None)
def test_csv_roundtrip(tmp_path_factory, rel):
    path = tmp_path_factory.mktemp("csv") / "rel.csv"
    write_csv(rel, path)
    back = read_csv(rel.schema, path)
    assert back.records() == rel.records()


@given(relations())
@settings(max_examples=50, deadline=None)
def test_oriented_orientation_contract(rel):
    """Oriented values equal raw values times the preference sign."""
    oriented = rel.oriented()
    signs = rel.schema.preference_signs()
    for j, sign in enumerate(signs):
        np.testing.assert_allclose(oriented[:, j], rel.matrix[:, j] * sign)


@given(relations())
@settings(max_examples=50, deadline=None)
def test_take_preserves_records(rel):
    if len(rel) == 0:
        return
    rows = list(range(len(rel) - 1, -1, -2))  # reversed stride-2 subset
    sub = rel.take(rows)
    assert len(sub) == len(rows)
    for pos, row in enumerate(rows):
        assert sub.record(pos) == rel.record(row)


@given(relations())
@settings(max_examples=50, deadline=None)
def test_sort_by_is_stable_permutation(rel):
    if rel.schema.d == 0 or len(rel) == 0:
        return
    key = rel.schema.skyline_names[0]
    out = rel.sort_by(key)
    assert sorted(map(tuple, out.matrix.tolist())) == sorted(
        map(tuple, rel.matrix.tolist())
    )
    values = [rec[key] for rec in out.records()]
    assert values == sorted(values)


@given(relations())
@settings(max_examples=50, deadline=None)
def test_group_index_partitions(rel):
    from repro.relational.groups import GroupIndex

    idx = GroupIndex(rel)
    rows = sorted(r for _, members in idx.items() for r in members)
    assert rows == list(range(len(rel)))
    for row in range(len(rel)):
        assert row in idx.groupmates(row)
        assert idx.key_of(row) == rel.join_key(row)
