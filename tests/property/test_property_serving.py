"""Cancellation-safety property suite for the serving deadline layer.

The contract checkpoints must uphold (see ``serving/deadline.py``):
cancelling a query at *any* checkpoint — driven deterministically by a
counting clock that expires at exactly the m-th check — leaves every
shared structure exactly as a completed query would. Concretely, after
an expiry:

* the partial carried by the error is a subset of the exact answer,
* catalog versions are untouched (no phantom mutations),
* live :class:`~repro.core.incremental.MaintainedResult` handles still
  answer correctly and keep absorbing deltas,
* re-issuing the identical query returns the exact full answer (the
  result cache holds no partial entry).
"""

from __future__ import annotations

from collections.abc import Callable

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Engine, QuerySpec
from repro.errors import DeadlineExceeded
from repro.serving.deadline import Deadline

from ..helpers import make_random_pair


def counting_clock() -> Callable[[], float]:
    calls = [0]

    def tick() -> float:
        calls[0] += 1
        return float(calls[0])

    return tick


@settings(max_examples=30, deadline=None)
@given(
    m=st.integers(min_value=1, max_value=300),
    algorithm=st.sampled_from(["naive", "grouping", "auto"]),
)
def test_cancellation_at_any_checkpoint_is_invisible(m: int, algorithm: str) -> None:
    left, right = make_random_pair(seed=5, n=60, d=4, g=3)
    spec = QuerySpec.for_ksjq(k=8, algorithm=algorithm)
    exact = Engine().execute(left, right, spec=spec).pair_set()

    engine = Engine()
    engine.register("left", left)
    engine.register("right", right)
    with engine.maintain("left", "right", spec=QuerySpec.for_ksjq(k=8)) as live:
        live_before = live.result().pair_set()
        versions_before = engine.catalog.versions()

        try:
            result = engine.execute(
                "left", "right", spec=spec,
                deadline=Deadline(m, clock=counting_clock()),
            )
        except DeadlineExceeded as exc:
            assert set(exc.partial_pairs) <= exact
        else:
            assert result.pair_set() == exact

        # No phantom mutations, no disturbed handles, no poisoned cache.
        assert engine.catalog.versions() == versions_before
        assert live.result().pair_set() == live_before
        assert engine.execute("left", "right", spec=spec).pair_set() == exact

        # The maintained handle still absorbs deltas after the expiry.
        records = engine.catalog["left"].relation.records()
        engine.catalog["left"].insert_rows([dict(records[0])])
        recomputed = Engine().execute(
            engine.catalog["left"].relation,
            engine.catalog["right"].relation,
            QuerySpec.for_ksjq(k=8),
        ).pair_set()
        assert live.result().pair_set() == recomputed


@settings(max_examples=15, deadline=None)
@given(m=st.integers(min_value=1, max_value=120))
def test_stream_cancellation_is_invisible(m: int) -> None:
    """The progressive generator obeys the same contract: whatever was
    yielded before expiry is a subset, and the engine stays consistent."""
    left, right = make_random_pair(seed=5, n=60, d=4, g=3)
    spec = QuerySpec.for_ksjq(k=8)
    exact = Engine().execute(left, right, spec=spec).pair_set()

    engine = Engine()
    collected: list[tuple[int, ...]] = []
    try:
        for pair in engine.stream(
            left, right, spec=spec, deadline=Deadline(m, clock=counting_clock())
        ):
            collected.append(tuple(int(x) for x in pair))
    except DeadlineExceeded as exc:
        assert set(collected) <= set(exc.partial_pairs) <= exact
    else:
        assert set(collected) == exact
    assert engine.execute(left, right, spec=spec).pair_set() == exact
