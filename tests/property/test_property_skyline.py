"""Property-based tests for the skyline algorithms (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.skyline import (
    is_k_dominated,
    k_dominant_skyline_naive,
    k_dominant_skyline_tsa,
    skyline_bnl,
    skyline_sfs,
)

matrices = st.integers(min_value=1, max_value=5).flatmap(
    lambda d: st.lists(
        st.lists(st.integers(0, 4), min_size=d, max_size=d),
        min_size=0,
        max_size=25,
    ).map(lambda rows: np.asarray(rows, dtype=float).reshape(len(rows), d))
)


@given(matrices)
@settings(max_examples=80)
def test_bnl_equals_sfs(matrix):
    assert skyline_bnl(matrix) == skyline_sfs(matrix)


@given(matrices)
@settings(max_examples=80)
def test_tsa_equals_naive_for_all_k(matrix):
    d = matrix.shape[1]
    for k in range(1, d + 1):
        assert k_dominant_skyline_tsa(matrix, k) == (
            k_dominant_skyline_naive(matrix, k)
        )


@given(matrices)
@settings(max_examples=80)
def test_osa_equals_naive_for_all_k(matrix):
    from repro.skyline import k_dominant_skyline_osa

    d = matrix.shape[1]
    for k in range(1, d + 1):
        assert k_dominant_skyline_osa(matrix, k) == (
            k_dominant_skyline_naive(matrix, k)
        )


@given(matrices)
@settings(max_examples=80)
def test_skyline_members_are_exactly_undominated(matrix):
    d = matrix.shape[1]
    for k in (max(1, d - 1), d):
        members = set(k_dominant_skyline_naive(matrix, k))
        for i in range(matrix.shape[0]):
            dominated = is_k_dominated(matrix, matrix[i], k, exclude=i)
            assert (i in members) == (not dominated)


@given(matrices)
@settings(max_examples=80)
def test_lemma1_skyline_monotone_in_k(matrix):
    """Lemma 1: the j-dominant skyline is contained in the i-dominant
    skyline for i >= j; hence sizes are non-decreasing in k."""
    d = matrix.shape[1]
    previous = set()
    for k in range(1, d + 1):
        current = set(k_dominant_skyline_naive(matrix, k))
        assert previous <= current
        previous = current


@given(matrices)
@settings(max_examples=60)
def test_full_k_dominant_equals_classic_skyline(matrix):
    d = matrix.shape[1]
    assert k_dominant_skyline_naive(matrix, d) == skyline_sfs(matrix)
