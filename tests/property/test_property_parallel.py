"""Parallel-vs-serial equivalence suite (property-tested).

The acceptance contract of the sharded execution layer: for every data
distribution, worker count and k, the parallel path returns result sets
**byte-identical** to serial execution — the canonical pair arrays
compare equal element-wise, not just as sets. Serial ground truth is
the naïve algorithm (always exact); ``parallelism=1`` through the
parallel path is additionally checked against higher worker counts, so
both the shard merge and the engine wiring are covered.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Engine, QuerySpec
from repro.core import JoinPlan, run_naive, run_parallel
from repro.core.parallel import ShardPlan

from ..helpers import make_random_pair

WORKER_COUNTS = (1, 2, 4)


def thread_plan(workers: int) -> ShardPlan:
    return ShardPlan(workers, 0, "thread" if workers > 1 else "serial", "test")


@pytest.mark.parametrize(
    "distribution", ["independent", "correlated", "anticorrelated"]
)
@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 10_000), k_off=st.integers(0, 3))
def test_parallel_equals_serial_across_distributions(distribution, seed, k_off):
    left, right = make_random_pair(
        seed=seed, n=40, d=4, g=3, a=1, distribution=distribution
    )
    k_lo = max(left.schema.d, right.schema.d) + 1
    k_hi = left.schema.l + right.schema.l + left.schema.a
    k = min(k_lo + k_off, k_hi)
    plan = JoinPlan(left, right, aggregate="sum")
    want = run_naive(plan, k)
    for workers in WORKER_COUNTS:
        got = run_parallel(plan, k, shards=thread_plan(workers))
        assert got.pair_set() == want.pair_set()
        assert got.pairs.shape == want.pairs.shape
        assert (got.pairs == want.pairs).all()
        assert got.pairs.tobytes() == want.pairs.tobytes()


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_engine_parallelism_knob_is_answer_invariant(seed):
    """The engine-level knob: same spec, parallelism 1/2/4, same bytes."""
    left, right = make_random_pair(seed=seed, n=35, d=4, g=4)
    engine = Engine()
    results = [
        engine.execute(
            left,
            right,
            QuerySpec.for_ksjq(k=5, algorithm="parallel", parallelism=w),
        )
        for w in WORKER_COUNTS
    ]
    baseline = engine.execute(left, right, QuerySpec.for_ksjq(k=5, algorithm="naive"))
    for result in results:
        assert result.pairs.tobytes() == baseline.pairs.tobytes()


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000), workers=st.sampled_from(WORKER_COUNTS))
def test_cascade_parallel_equals_naive(seed, workers):
    rng = np.random.default_rng(seed)
    from repro.core.cascade import run_cascade_naive
    from repro.core.parallel import run_cascade_parallel
    from repro.core.plan import CascadePlan
    from repro.relational import Relation

    legs = [
        Relation.from_arrays(
            np.floor(rng.random((12, 3)) * 4),
            ["s0", "s1", "s2"],
            join_key=[int(j % 2) for j in range(12)],
            name=f"L{i}",
        )
        for i in range(3)
    ]
    plan = CascadePlan(legs)
    want = run_cascade_naive(plan, 5)
    got = run_cascade_parallel(plan, 5, shards=thread_plan(workers))
    assert got.chain_set() == want.chain_set()
    assert got.chains.tobytes() == want.chains.tobytes()
