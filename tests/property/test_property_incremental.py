"""Delta-maintenance equivalence suite (property-tested).

The acceptance contract of the incremental subsystem: after **every**
mutation in a random insert/delete sequence — over every data
distribution and with k at both ends of its valid range — the
maintained answer is byte-identical to a from-scratch recompute of the
same spec over the current snapshots (canonical pair arrays compare as
bytes, not just as sets). The deterministic 3-cycle case pins the
non-transitivity trap on the delete/re-promotion path: a re-promotion
candidate must be verified against the full surviving matrix, because
its surviving dominators need not be winners.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Engine, QuerySpec
from repro.errors import SoundnessWarning
from repro.relational import Relation

from ..helpers import make_random_pair


def fresh_answer(engine: Engine, spec: QuerySpec):
    """Ground truth: a brand-new engine running the same spec over the
    current snapshots (no shared caches, no shared state)."""
    return Engine().execute(
        engine.catalog["left"].relation,
        engine.catalog["right"].relation,
        spec,
    )


def random_mutation(rng, dataset, source_records, batch):
    """Apply one random insert or delete; keeps the dataset non-empty."""
    n = len(dataset.relation)
    if rng.random() < 0.5 and n > batch + 1:
        rows = sorted(rng.choice(n, size=batch, replace=False).tolist())
        dataset.delete_rows(rows)
    else:
        picks = rng.choice(len(source_records), size=batch)
        dataset.insert_rows([dict(source_records[i]) for i in picks])


@pytest.mark.parametrize(
    "distribution", ["independent", "correlated", "anticorrelated"]
)
@pytest.mark.parametrize("k_bound", ["low", "high"])
@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_maintained_equals_recompute_after_every_step(
    distribution, k_bound, seed
):
    left, right = make_random_pair(
        seed=seed, n=22, d=4, g=3, a=1, distribution=distribution
    )
    k_lo = max(left.schema.d, right.schema.d) + 1
    k_hi = left.schema.l + right.schema.l + left.schema.a
    k = k_lo if k_bound == "low" else k_hi
    spec = QuerySpec.for_ksjq(k=k, aggregate="sum", mode="exact")

    engine = Engine()
    engine.register("left", left)
    engine.register("right", right)
    live = engine.maintain("left", "right", spec)

    assert live.result().pairs.tobytes() == fresh_answer(engine, spec).pairs.tobytes()

    rng = np.random.default_rng(seed + 1)
    sources = {"left": left.records(), "right": right.records()}
    for step in range(6):
        name = "left" if step % 2 == 0 else "right"
        random_mutation(rng, engine.catalog[name], sources[name], batch=2)
        got = live.result()
        want = fresh_answer(engine, spec)
        assert got.pairs.tobytes() == want.pairs.tobytes(), (
            f"step {step}: maintained {got.count} pairs != recompute "
            f"{want.count}"
        )
    stats = live.stats()
    assert stats["applied_deltas"] == 6
    # Small deltas over these sizes must actually take the incremental
    # paths — an implementation that always falls back would pass the
    # equality assertions vacuously.
    assert stats["applied_deltas"] > stats["fallback_recomputes"]
    assert stats["delta_rows"] == 12


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_faithful_family_spec_maintains_by_recompute(seed):
    """Faithful grouping answers are paper-faithful supersets, not the
    exact joined-view skyline the delta paths maintain — such specs must
    fall back to full recompute on every mutation and still match."""
    left, right = make_random_pair(seed=seed, n=18, d=4, g=3, a=1)
    spec = QuerySpec.for_ksjq(
        k=7, aggregate="sum", mode="faithful", algorithm="grouping"
    )
    engine = Engine()
    engine.register("left", left)
    engine.register("right", right)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", SoundnessWarning)
        live = engine.maintain("left", "right", spec)
        rng = np.random.default_rng(seed)
        for _ in range(3):
            random_mutation(rng, engine.catalog["left"], left.records(), batch=2)
            assert (
                live.result().pairs.tobytes()
                == fresh_answer(engine, spec).pairs.tobytes()
            )
    stats = live.stats()
    assert stats["fallback_recomputes"] == stats["applied_deltas"] == 3


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_tiny_fallback_ratio_forces_recompute_and_stays_identical(seed):
    """With the cost budget squeezed to nothing every delta exceeds it;
    the fallback path must still track recomputation byte-for-byte."""
    left, right = make_random_pair(seed=seed, n=18, d=4, g=3, a=1)
    spec = QuerySpec.for_ksjq(k=6, aggregate="sum", mode="exact")
    engine = Engine()
    engine.register("left", left)
    engine.register("right", right)
    live = engine.maintain("left", "right", spec, fallback_ratio=1e-9)
    rng = np.random.default_rng(seed)
    for _ in range(3):
        random_mutation(rng, engine.catalog["right"], right.records(), batch=2)
        assert (
            live.result().pairs.tobytes()
            == fresh_answer(engine, spec).pairs.tobytes()
        )
    assert live.stats()["fallback_recomputes"] == 3


# ----------------------------------------------------------------------
# The 3-cycle non-transitivity split on the delete/re-promotion path
# ----------------------------------------------------------------------
def cycle_relations() -> tuple[Relation, Relation]:
    """A join whose vectors form a 5-dominance 3-cycle plus one winner.

    The right relation has a single all-zero tuple, so each joined
    vector is the left tuple's three local attributes plus its
    aggregate contribution (the three right-side dims are constant
    ties). In those four varying dims (MIN preferences):

    * ``x=(1,1,2,2)``, ``y=(2,1,1,2)``, ``z=(2,2,1,1)`` — a 3-cycle at
      ``k=5`` over the 7-dim joined space: x dominates y dominates z
      dominates x, so none of them is ever a winner while the others
      survive;
    * ``r=(0,0,0,0)`` — dominates all three; the sole winner.
    """
    # Column order: s0 (aggregate), s1..s3 (locals); varying vector is
    # (s1, s2, s3, s0).
    left = Relation.from_arrays(
        np.array(
            [
                [2.0, 1.0, 1.0, 2.0],  # x
                [2.0, 2.0, 1.0, 1.0],  # y
                [1.0, 2.0, 2.0, 1.0],  # z
                [0.0, 0.0, 0.0, 0.0],  # r
            ]
        ),
        ["s0", "s1", "s2", "s3"],
        join_key=[0, 0, 0, 0],
        aggregate=["s0"],
        name="cycle",
    )
    right = Relation.from_arrays(
        np.zeros((1, 4)),
        ["s0", "s1", "s2", "s3"],
        join_key=[0],
        aggregate=["s0"],
        name="unit",
    )
    return left, right


def test_three_cycle_delete_repromotion_rejects_cycle_members():
    """Deleting the sole dominator of a 3-cycle must promote nobody.

    After ``r`` goes, every cycle member is "touched" (r dominated all
    three) and the winner set is empty — so an implementation that
    re-verifies candidates against surviving *winners* instead of the
    full surviving matrix would wrongly promote all three. k-dominance
    is non-transitive; dominators need not be winners.
    """
    left, right = cycle_relations()
    spec = QuerySpec.for_ksjq(k=5, aggregate="sum", mode="exact")
    engine = Engine()
    engine.register("left", left)
    engine.register("right", right)
    live = engine.maintain("left", "right", spec)
    assert live.count == 1  # r is the sole winner
    assert live.result().pairs[0, 0] == 3  # left row 3 == r

    engine.catalog["left"].delete_rows([3])  # remove r
    got = live.result()
    assert got.count == 0, (
        "a cycle member was wrongly re-promoted: candidates must be "
        f"verified against the full surviving matrix, got {got.pairs}"
    )
    assert got.pairs.tobytes() == fresh_answer(engine, spec).pairs.tobytes()
    stats = live.stats()
    # The delete must have gone down the incremental path — a fallback
    # recompute would make this test vacuous.
    assert stats["applied_deltas"] == 1 and stats["fallback_recomputes"] == 0


def test_three_cycle_insert_eviction_and_roundtrip():
    """The same construction through the insert path: adding ``r`` to
    the bare cycle makes it the only winner (the cycle members stay
    out), and deleting it again empties the answer."""
    left, right = cycle_relations()
    bare = left.take([0, 1, 2], name="cycle")  # x, y, z only
    spec = QuerySpec.for_ksjq(k=5, aggregate="sum", mode="exact")
    engine = Engine()
    engine.register("left", bare)
    engine.register("right", right)
    live = engine.maintain("left", "right", spec)
    assert live.count == 0  # the cycle eliminates itself

    engine.catalog["left"].insert_rows(left.take([3]).records())  # add r
    assert live.count == 1
    assert live.result().pairs[0, 0] == 3

    engine.catalog["left"].delete_rows([3])
    assert live.count == 0
    stats = live.stats()
    assert stats["applied_deltas"] == 2 and stats["fallback_recomputes"] == 0
    assert (
        live.result().pairs.tobytes()
        == fresh_answer(engine, spec).pairs.tobytes()
    )
