"""Property tests: engine cascade parity on random 3-chain workloads.

Complements ``test_property_extensions`` (which exercises the legacy
``cascade_ksjq`` surface): here the chains run through
``Engine.query(...)``, mix equality and theta hops, and assert that

* the pruned algorithm matches the naive ground truth exactly,
* ``algorithm="auto"`` returns the same answer as both, and
* a cached second execution is identical to the first.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Engine
from repro.relational import Relation, RelationSchema, ThetaCondition, ThetaOp


@st.composite
def chain_instances(draw):
    """Three relations chained by hop columns, plus a valid k."""
    d = 3
    a = draw(st.integers(min_value=0, max_value=1))
    names = [f"s{i}" for i in range(d)]
    schema = RelationSchema.build(
        skyline=names, aggregate=names[:a], payload=["src", "dst", "hour"]
    )
    cities = ["X", "Y"]

    def rel(name, ins, outs):
        n = draw(st.integers(min_value=1, max_value=6))
        rows = draw(
            st.lists(
                st.lists(st.integers(0, 3), min_size=d, max_size=d),
                min_size=n, max_size=n,
            )
        )
        columns = {names[i]: [float(r[i]) for r in rows] for i in range(d)}
        columns["src"] = [draw(st.sampled_from(ins)) for _ in range(n)]
        columns["dst"] = [draw(st.sampled_from(outs)) for _ in range(n)]
        columns["hour"] = [float(draw(st.integers(0, 5))) for _ in range(n)]
        return Relation(schema, columns, name=name)

    relations = (
        rel("L1", ["A"], cities),
        rel("L2", cities, cities),
        rel("L3", cities, ["B"]),
    )
    joined_d = sum(r.schema.l for r in relations) + a
    k = draw(st.integers(min_value=d + 1, max_value=joined_d))
    theta_second_hop = draw(st.booleans())
    return relations, k, a, theta_second_hop


def _query(engine, relations, a, theta_second_hop):
    query = engine.query(*relations).hop("dst", "src")
    if theta_second_hop:
        query = query.theta(ThetaCondition("hour", ThetaOp.LE, "hour"))
    else:
        query = query.hop("dst", "src")
    if a:
        query = query.aggregate("sum")
    return query


@given(chain_instances())
@settings(max_examples=60, deadline=None)
def test_engine_pruned_equals_naive_on_random_chains(instance):
    relations, k, a, theta_second_hop = instance
    engine = Engine()
    pruned = _query(engine, relations, a, theta_second_hop).algorithm("pruned").k(k).run()
    naive = _query(engine, relations, a, theta_second_hop).algorithm("naive").k(k).run()
    auto = _query(engine, relations, a, theta_second_hop).algorithm("auto").k(k).run()
    assert pruned.chain_set() == naive.chain_set()
    assert auto.chain_set() == naive.chain_set()
    assert pruned.total_chains == naive.total_chains


@given(chain_instances())
@settings(max_examples=30, deadline=None)
def test_cached_second_execution_is_identical(instance):
    relations, k, a, theta_second_hop = instance
    engine = Engine()
    query = _query(engine, relations, a, theta_second_hop).k(k)
    first = query.run()
    second = query.run()
    assert engine.cache_info()["hits"] >= 1
    assert second.chain_set() == first.chain_set()
    assert second.source is first.source


@given(chain_instances())
@settings(max_examples=30, deadline=None)
def test_chain_count_statistics_are_exact(instance):
    relations, k, a, theta_second_hop = instance
    engine = Engine()
    query = _query(engine, relations, a, theta_second_hop).k(k)
    report = query.explain()
    result = query.run()
    assert report.stats.join_size == result.total_chains
    assert report.stats.base_sizes == tuple(len(r) for r in relations)


@given(chain_instances())
@settings(max_examples=20, deadline=None)
def test_stream_equals_run(instance):
    relations, k, a, theta_second_hop = instance
    engine = Engine()
    query = _query(engine, relations, a, theta_second_hop).k(k)
    assert set(query.stream()) == query.run().chain_set()
