"""Chaos property suite: fault kind × parallelism × algorithm family.

The resilience contract, property-tested: under any deterministic
fault schedule — crash, slow, corrupt, or I/O faults at any execution
checkpoint, across parallelism 1/2/4, on the indexed or naive plan —
a query either returns an answer **byte-identical** to the clean run
or raises a typed :class:`~repro.errors.ResilienceError`. Never a
silently wrong answer: that is the invariant the recovery ladder's
mandatory cross-shard verification buys (k-dominance is
non-transitive, so every merged candidate is re-checked against the
full matrix regardless of which rung produced it).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Engine, QuerySpec
from repro.core import JoinPlan, run_naive, run_parallel
from repro.core.parallel import ShardPlan
from repro.errors import ResilienceError
from repro.resilience import FaultPlan, FaultSpec, arming, disarm

from ..helpers import make_random_pair

WORKER_COUNTS = (1, 2, 4)
SHARD_SITES = ("shard.candidates", "shard.verify")
#: Thread-rung fault kinds ("crash" degrades to a raise off-process,
#: so on thread executors it behaves as one more transient kind).
KINDS = ("crash", "slow", "corrupt", "io")
K = 6  # valid mid-range k for d=4, a=1 pairs


def thread_plan(workers: int) -> ShardPlan:
    return ShardPlan(workers, 0, "thread" if workers > 1 else "serial", "test")


@pytest.fixture(autouse=True)
def always_disarm():
    yield
    disarm()


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    kind=st.sampled_from(KINDS),
    site=st.sampled_from(SHARD_SITES),
    times=st.sampled_from([1, 2, None]),
    workers=st.sampled_from(WORKER_COUNTS),
)
def test_chaos_parallel_is_exact_or_typed(seed, kind, site, times, workers):
    left, right = make_random_pair(seed=seed, n=32, d=4, g=3, a=1)
    plan = JoinPlan(left, right, aggregate="sum")
    want = run_naive(plan, K)
    faults = FaultPlan(
        [FaultSpec(site, kind=kind, times=times, delay=0.001)], seed=seed
    )
    with arming(faults):
        try:
            got = run_parallel(plan, K, shards=thread_plan(workers))
        except ResilienceError:
            # Only a fault that outlasts every rung may surface — and it
            # surfaces *typed*, not as a wrong answer.
            assert times is None and kind in ("crash", "corrupt", "io")
            return
    assert got.pairs.tobytes() == want.pairs.tobytes()
    assert got.pair_set() == want.pair_set()


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    rate=st.sampled_from([0.1, 0.5]),
    workers=st.sampled_from(WORKER_COUNTS),
)
def test_chaos_random_rate_faults_never_corrupt(seed, rate, workers):
    """Probabilistic (but seeded, hence reproducible) fault schedules:
    same contract, any outcome mix."""
    left, right = make_random_pair(seed=seed, n=32, d=4, g=3, a=1)
    plan = JoinPlan(left, right, aggregate="sum")
    want = run_naive(plan, K)
    faults = FaultPlan(
        [
            FaultSpec("shard.candidates", kind="io", rate=rate),
            FaultSpec("shard.verify", kind="io", rate=rate),
        ],
        seed=seed,
    )
    with arming(faults):
        try:
            got = run_parallel(plan, K, shards=thread_plan(workers))
        except ResilienceError:
            return  # typed surfacing is always acceptable
    assert got.pairs.tobytes() == want.pairs.tobytes()


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    kind=st.sampled_from(("corrupt", "io")),
    times=st.sampled_from([1, None]),
    site=st.sampled_from(("index.build", "index.maintain")),
)
def test_chaos_indexed_path_quarantines_to_exact(seed, kind, times, site):
    """The indexed family never surfaces index faults at all: a failed
    load/build quarantines the index and falls back to an exact
    non-indexed plan — the answer matches clean naive byte-for-byte."""
    left, right = make_random_pair(seed=seed, n=32, d=4, g=3, a=1)
    engine = Engine()
    engine.register("left", left)
    engine.register("right", right)
    want = engine.execute(
        "left",
        "right",
        spec=QuerySpec.for_ksjq(k=K, algorithm="naive", aggregate="sum"),
    )
    spec = QuerySpec.for_ksjq(k=K, algorithm="indexed", aggregate="sum")
    faults = FaultPlan([FaultSpec(site, kind=kind, times=times)], seed=seed)
    with arming(faults):
        got = engine.execute("left", "right", spec=spec)
    assert got.pairs.tobytes() == want.pairs.tobytes()


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000), workers=st.sampled_from(WORKER_COUNTS))
def test_chaos_is_reproducible(seed, workers):
    """Same plan seed + same fault seed -> the same outcome, twice.
    Determinism is what turns the chaos suite from a dice roll into a
    regression test."""
    left, right = make_random_pair(seed=seed, n=32, d=4, g=3, a=1)
    plan = JoinPlan(left, right, aggregate="sum")

    def one_run() -> bytes | str:
        faults = FaultPlan(
            [FaultSpec("shard.verify", kind="io", rate=0.3)], seed=seed
        )
        with arming(faults):
            try:
                return run_parallel(
                    plan, K, shards=thread_plan(workers)
                ).pairs.tobytes()
            except ResilienceError as exc:
                return f"typed:{exc}"

    assert one_run() == one_run()
