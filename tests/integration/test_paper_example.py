"""End-to-end reproduction of the paper's worked example (Tables 1-6).

These tests ARE the paper's Tables 1-6: the base relations (Tables 1-2),
the joined categorization and skyline (Tables 3-5) and the aggregate
variant (Table 6), computed by every algorithm. Two documented printing
errata in the paper are asserted explicitly (see the datagen module
docstring and DESIGN.md).
"""

import numpy as np
import pytest

import repro
from repro.core import Category, Fate, FATE_TABLE, categorize, make_plan
from repro.datagen import (
    EXPECTED_AGGREGATE_SKYLINE_FNOS,
    EXPECTED_SKYLINE_FNOS,
    EXPECTED_TABLE1_CATEGORIES,
    EXPECTED_TABLE2_CATEGORIES,
    PAPER_TABLE1_CATEGORIES,
    flight_example_aggregate_relations,
    flight_example_relations,
    fno_pairs,
)


@pytest.fixture(scope="module")
def plain():
    return flight_example_relations()


@pytest.fixture(scope="module")
def aggregate():
    return flight_example_aggregate_relations()


class TestTables1And2:
    def test_table_sizes(self, plain):
        f1, f2 = plain
        assert len(f1) == 9 and len(f2) == 8

    def test_table1_categorization(self, plain):
        f1, _ = plain
        cat = categorize(f1, 3)
        got = {int(f1.column("fno")[i]): cat.category(i).name for i in range(len(f1))}
        assert got == EXPECTED_TABLE1_CATEGORIES

    def test_table2_categorization(self, plain):
        _, f2 = plain
        cat = categorize(f2, 3)
        got = {int(f2.column("fno")[i]): cat.category(i).name for i in range(len(f2))}
        assert got == EXPECTED_TABLE2_CATEGORIES

    def test_erratum_flight18(self, plain):
        # The paper prints 18 as SS1, but 16 3-dominates 18 under the
        # paper's own Sec. 2.2 definition; our categorization says SN.
        f1, _ = plain
        cat = categorize(f1, 3)
        row18 = list(f1.column("fno")).index(18)
        assert PAPER_TABLE1_CATEGORIES[18] == "SS"
        assert cat.category(row18) is Category.SN


class TestTable3JoinedRelation:
    def test_joined_size(self, plain):
        plan = make_plan(*plain)
        assert len(plan.view()) == 13  # Table 3 has 13 rows

    def test_skyline_k7_all_algorithms(self, plain):
        f1, f2 = plain
        for algorithm in ("naive", "grouping", "dominator"):
            res = repro.ksjq(f1, f2, k=7, algorithm=algorithm)
            assert fno_pairs(f1, f2, res.pairs) == EXPECTED_SKYLINE_FNOS

    def test_example_18_28_eliminated_by_19_25(self, plain):
        # The paper's Obs. 3 narrative: (19,25) 7-dominates (18,28).
        f1, f2 = plain
        fnos1, fnos2 = list(f1.column("fno")), list(f2.column("fno"))
        m1, m2 = f1.oriented(), f2.oriented()
        vec_18_28 = np.concatenate([m1[fnos1.index(18)], m2[fnos2.index(28)]])
        vec_19_25 = np.concatenate([m1[fnos1.index(19)], m2[fnos2.index(25)]])
        from repro.skyline import k_dominates

        assert k_dominates(vec_19_25, vec_18_28, 7)

    def test_example_15_25_survives_due_to_join_incompatibility(self, plain):
        # Dominators 11 (city C) and 21 (city D) cannot join (Obs. 2).
        f1, f2 = plain
        res = repro.ksjq(f1, f2, k=7)
        assert (15, 25) in fno_pairs(f1, f2, res.pairs)

    def test_example_17_27_eliminated_by_16_26(self, plain):
        f1, f2 = plain
        res = repro.ksjq(f1, f2, k=7)
        got = fno_pairs(f1, f2, res.pairs)
        assert (17, 27) not in got
        assert (16, 26) in got


class TestTables4And5FateMatrix:
    def test_category_cells_match_table3_outcomes(self, plain):
        # Every Table 3 row's fate cell must be consistent with the
        # actual skyline outcome: "no" rows are never skylines and
        # "yes" rows always are.
        f1, f2 = plain
        plan = make_plan(f1, f2)
        params = plan.params(7)
        cat1 = plan.categorize_left(params.k1_prime)
        cat2 = plan.categorize_right(params.k2_prime)
        result = repro.ksjq(f1, f2, k=7)
        answer = result.pair_set()
        for u, v in plan.view().pairs.tolist():
            fate = FATE_TABLE[(cat1.category(u), cat2.category(v))]
            if fate is Fate.NO:
                assert (u, v) not in answer
            elif fate is Fate.YES:
                assert (u, v) in answer


class TestTable6Aggregate:
    def test_skyline_k6_all_algorithms_and_modes(self, aggregate):
        import warnings

        from repro.errors import SoundnessWarning

        g1, g2 = aggregate
        for algorithm in ("naive", "grouping", "dominator"):
            for mode in ("faithful", "exact"):
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", SoundnessWarning)
                    res = repro.ksjq(
                        g1, g2, k=6, algorithm=algorithm, aggregate="sum", mode=mode
                    )
                assert fno_pairs(g1, g2, res.pairs) == (
                    EXPECTED_AGGREGATE_SKYLINE_FNOS
                ), (algorithm, mode)

    def test_aggregate_costs_match_table6(self, aggregate):
        # Spot-check the printed aggregated costs: (11,23) -> 804,
        # (15,25) -> 800, (17,27) -> 844.
        g1, g2 = aggregate
        plan = make_plan(g1, g2, aggregate="sum")
        rel = plan.view().to_relation()
        fnos1 = list(g1.column("fno"))
        fnos2 = list(g2.column("fno"))
        costs = {}
        for rec in rel.records():
            key = (fnos1[rec["_left_row"]], fnos2[rec["_right_row"]])
            costs[key] = rec["cost"]
        assert costs[(11, 23)] == 804.0
        assert costs[(15, 25)] == 800.0
        assert costs[(17, 27)] == 844.0

    def test_paper_thresholds(self, aggregate):
        # Sec. 5.6 example: k''=2, k'=3 with d=4, a=1, k=6.
        g1, g2 = aggregate
        params = make_plan(g1, g2, aggregate="sum").params(6)
        assert params.k1_min_local == 2
        assert params.k1_prime == 3


class TestFindKOnExample:
    def test_find_k_small_deltas(self, plain):
        f1, f2 = plain
        # 4 skyline tuples at k=7; full domination (k=8) can only shrink
        # ... it cannot: Lemma 1 says k=8 has at least as many.
        for method in ("naive", "range", "binary"):
            res = repro.find_k(f1, f2, delta=4, method=method)
            assert res.k == 7 or repro.ksjq(f1, f2, k=res.k).count >= 4

    def test_methods_agree(self, plain):
        f1, f2 = plain
        for delta in (1, 2, 4, 8, 100):
            ks = {
                repro.find_k(f1, f2, delta=delta, method=m).k
                for m in ("naive", "range", "binary")
            }
            assert len(ks) == 1, (delta, ks)
