"""End-to-end acceptance: cascades and theta joins through one engine.

Covers the PR's acceptance criteria on realistic data:

* a 3-relation cascade and a theta-join query both run through
  ``Engine.query(...)`` with working ``explain()`` and a visible
  plan-cache hit on the second execution;
* ``cascade_ksjq`` returns results identical to the engine path on the
  paper's flight example.
"""

import warnings

import pytest

import repro
from repro.api import Engine
from repro.datagen import make_flight_relations
from repro.errors import SoundnessWarning
from repro.relational import ThetaCondition, ThetaOp


@pytest.fixture(autouse=True)
def _silence_soundness_warnings():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", SoundnessWarning)
        yield


@pytest.fixture(scope="module")
def flights():
    # Modest sizes keep the naive ground truth fast.
    return make_flight_relations(n_out=60, n_in=50, n_hubs=6, seed=11)


def test_cascade_ksjq_matches_engine_path_on_flights(flights):
    out, inbound = flights
    engine = Engine()
    legacy = repro.cascade_ksjq(
        [out, inbound], k=7, aggregate="sum", engine=engine
    )
    spec = repro.QuerySpec.for_cascade(k=7, aggregate="sum")
    via_engine = engine.execute(out, inbound, spec)
    assert legacy.chain_set() == via_engine.chain_set()
    assert legacy.total_chains == via_engine.total_chains
    assert engine.cache_info()["hits"] >= 1  # the wrapper shared the plan
    # The two-way engine path agrees on the same pairs (naive: the
    # cascade algorithms are exact, so compare against the exact
    # two-way answer rather than the faithful a>=2 superset).
    two_way = engine.query(out, inbound).aggregate("sum").algorithm("naive").k(7).run()
    assert legacy.chain_set() == {(int(u), int(v)) for u, v in two_way.pairs}


def test_three_relation_cascade_with_explain_and_cache(flights):
    out, inbound = flights
    # Chain a third leg (Mumbai -> hub again) behind the paper's pair:
    # hub-to-Mumbai joins Mumbai-to-hub on the shared schema's join key.
    third, _ = make_flight_relations(n_out=40, n_in=10, n_hubs=6, seed=23)
    engine = Engine()
    query = engine.query(out, inbound, third).hop().hop().aggregate("sum").k(9)

    report = query.explain()
    assert report.stats.n_relations == 3
    assert report.algorithm in ("naive", "pruned")
    assert "chains" in report.summary()

    first = query.run()
    hits_before = engine.cache_info()["hits"]
    second = query.run()
    assert engine.cache_info()["hits"] > hits_before  # cached second execution
    assert second.chain_set() == first.chain_set()
    assert first.total_chains == report.stats.join_size

    naive = query.algorithm("naive").run()
    assert naive.chain_set() == first.chain_set()


def test_theta_join_with_explain_and_cache(flights):
    out, inbound = flights
    condition = ThetaCondition("fly_time", ThetaOp.LT, "fly_time")
    engine = Engine()
    query = engine.query(out, inbound).theta(condition).aggregate("sum").k(7)

    report = query.explain()
    assert report.spec.join == "theta"
    assert report.costs  # cost model ran over the theta plan

    first = query.run()
    hits_before = engine.cache_info()["hits"]
    second = query.run()
    assert engine.cache_info()["hits"] > hits_before
    assert second.pair_set() == first.pair_set()
    assert second.source is first.source
