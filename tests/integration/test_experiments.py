"""Integration tests for the experiment harness, figures registry and CLI."""

import pytest

from repro.errors import ParameterError
from repro.experiments import (
    FIGURES,
    PaperDefaults,
    Scale,
    SweepPoint,
    figure_ids,
    get_figure,
    render_shape_summary,
    render_spec_result,
    render_table,
    run_figure,
    run_spec,
    write_csv,
)
from repro.experiments.cli import main
from repro.experiments.spec import ExperimentSpec


class TestConfig:
    def test_paper_defaults_match_table7(self):
        defaults = PaperDefaults()
        assert defaults.n == 3300
        assert defaults.d == 7
        assert defaults.k == 11
        assert defaults.a == 2
        assert defaults.g == 10
        assert defaults.distribution == "independent"
        assert defaults.delta == 10_000
        assert defaults.joined_size == 1_089_000

    def test_scale_mapping(self):
        scale = Scale(factor=0.1)
        assert scale.n(3300) == 330
        assert scale.delta(10_000) == 100
        assert scale.n(50) == 20  # floor at min_n

    def test_scale_fits(self):
        scale = Scale(factor=1.0, max_joined=1000)
        assert scale.fits(100, 10)
        assert not scale.fits(1000, 10)

    def test_invalid_scale(self):
        with pytest.raises(ParameterError):
            Scale(factor=0.0)
        with pytest.raises(ParameterError):
            Scale(factor=0.5, repeats=0)


class TestRegistry:
    def test_all_paper_figures_present(self):
        expected = {
            "fig1a", "fig1b", "fig2a", "fig2b", "fig3a", "fig3b", "fig4",
            "fig5a", "fig5b", "fig6a", "fig6b", "fig7",
            "fig8a", "fig8b", "fig9a", "fig9b", "fig10", "fig11",
        }
        assert set(figure_ids()) == expected

    def test_get_figure_unknown(self):
        with pytest.raises(KeyError, match="unknown figure"):
            get_figure("fig99")

    def test_series_letters(self):
        assert FIGURES["fig1a"].series == ("G", "D", "N")
        assert FIGURES["fig8a"].series == ("B", "R", "N")

    def test_every_ksjq_point_has_k(self):
        for spec in FIGURES.values():
            if spec.kind == "ksjq":
                assert all(p.k is not None for p in spec.points), spec.figure
            else:
                assert all(p.delta is not None for p in spec.points), spec.figure

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="unknown experiment kind"):
            ExperimentSpec(figure="x", title="t", kind="magic", points=())
        with pytest.raises(ValueError, match="unknown series"):
            ExperimentSpec(
                figure="x", title="t", kind="ksjq", points=(), series=("Z",)
            )


SMALL = Scale(factor=0.02, max_joined=5000)


class TestHarness:
    def test_run_ksjq_figure(self):
        result = run_figure("fig5a", SMALL)
        # 4 sweep points x 3 algorithms
        assert len(result.records) == 12
        by_point = {}
        for rec in result.records:
            by_point.setdefault(rec.point, {})[rec.series] = rec
        for point, series in by_point.items():
            # All algorithms agree on the answer (a=0 -> exact).
            counts = {rec.result for rec in series.values()}
            assert len(counts) == 1, point

    def test_run_findk_figure(self):
        spec = ExperimentSpec(
            figure="mini",
            title="mini find-k",
            kind="findk",
            series=("B", "R", "N"),
            points=(SweepPoint(label="delta=1000", d=5, a=0, delta=1000),),
        )
        result = run_spec(spec, SMALL)
        assert len(result.records) == 3
        assert len({rec.result for rec in result.records}) == 1  # same k

    def test_oversized_points_skipped(self):
        scale = Scale(factor=1.0, max_joined=10)
        result = run_figure("fig5a", scale)
        assert result.records == []
        assert len(result.skipped) == 4

    def test_flights_figure_runs(self):
        result = run_figure("fig11", Scale(factor=1.0))
        assert len(result.records) == 9  # 3 k values x 3 algorithms
        for rec in result.records:
            assert rec.joined_size > 2000


class TestReport:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure("fig5a", SMALL)

    def test_render_table(self, result):
        text = render_table(result.records)
        assert "grouping" in text and "total" in text
        assert "k=6" in text

    def test_render_shape_summary(self, result):
        text = render_shape_summary(result)
        assert "faster than N" in text

    def test_render_spec_result(self, result):
        text = render_spec_result(result)
        assert "fig5a" in text and "paper shape" in text

    def test_write_csv(self, result, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(result.records, path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == len(result.records) + 1
        assert lines[0].startswith("figure,point,series")

    def test_write_csv_empty(self, tmp_path):
        path = tmp_path / "empty.csv"
        write_csv([], path)
        assert path.read_text() == ""


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1a" in out and "fig11" in out

    def test_run_with_csv(self, capsys, tmp_path):
        code = main(
            ["run", "fig5a", "--scale", "0.02", "--max-joined", "5000",
             "--csv", str(tmp_path)]
        )
        assert code == 0
        assert (tmp_path / "fig5a.csv").exists()
        assert "fig5a" in capsys.readouterr().out

    def test_run_unknown_figure(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown figures" in capsys.readouterr().err
