"""Smoke tests: every shipped example runs end-to-end and prints results.

The examples are part of the public deliverable; these tests keep them
working as the library evolves.
"""

import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _run(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = _run("quickstart.py")
    # The paper's Table 3 answer.
    assert "k-dominant skyline paths (k=7): 4" in out
    for pair in ("11 -> 23", "13 -> 21", "15 -> 25", "16 -> 26"):
        assert pair in out


def test_flight_stopovers():
    out = _run("flight_stopovers.py")
    assert "192 Delhi->hub" in out
    assert "grouping" in out and "naive" in out
    assert "skyline itineraries at k=6" in out


def test_product_shipping():
    out = _run("product_shipping.py")
    assert "find-k: smallest k" in out
    assert "cheapest bundles" in out


def test_tune_k():
    out = _run("tune_k.py")
    assert "skyline sizes by k" in out
    assert "binary-search trace" in out
    assert "methods disagree" not in out


def test_nonequality_layover():
    out = _run("nonequality_layover.py")
    assert "time-feasible itineraries" in out
    assert "skyline size by k" in out
    # Engine API: explain plan + every sweep point reusing one cached plan.
    assert "chosen:" in out
    assert "plan cache: 6 hits / 1 miss" in out


def test_two_stop_cascade():
    out = _run("two_stop_cascade.py")
    assert "valid itineraries" in out
    assert "progressive results" in out
    # Engine API: cascade explain plan + cached second execution.
    assert "chains" in out and "chosen:" in out
    assert "plan cache: 2 hits / 1 miss" in out


def test_examples_inventory():
    """At least the five deliverable examples exist and are runnable files."""
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "flight_stopovers.py",
        "product_shipping.py",
        "tune_k.py",
        "nonequality_layover.py",
        "two_stop_cascade.py",
    } <= names
