"""Lock-order recording and deadlock (cycle) detection.

The serving layer holds four kinds of locks: ``Catalog._lock``,
``Dataset._lock``, ``Engine._lock`` and the plans' ``_memo_lock``. The
documented global order is *catalog before dataset* (and both before
nothing else: engine and memo locks are leaves — no code calls out of
them). A cycle in the observed held-before-acquired relation means two
threads can deadlock even if this particular run did not.

The harness here instruments those locks with recording proxies, drives
a concurrent serving workload (queries, mutations, re-registrations,
explains) and asserts the observed acquisition-order graph is acyclic.
It would have caught the historical defect where ``Dataset`` mutators
notified listeners *while holding* ``Dataset._lock``: the listener
chain (catalog fan-out -> engine invalidation) produced a
dataset -> catalog edge, closing a cycle with the catalog -> dataset
edge of ``Catalog.versions()`` / ``register()``.
"""

from __future__ import annotations

import threading

import pytest

from repro.api.engine import Engine
from repro.api.spec import QuerySpec
from repro.datagen.paper_example import flight_example_relations
from repro.relational.dataset import Dataset


class LockOrderGraph:
    """Held-before-acquired edges across all instrumented locks.

    Each thread keeps its own stack of currently-held lock names; at
    every acquisition an edge ``outer -> acquired`` is recorded for each
    distinct lock already held by that thread.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._edges: dict[str, set[str]] = {}
        self._local = threading.local()

    def held(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def record_acquire(self, name: str) -> None:
        stack = self.held()
        with self._mutex:
            for outer in stack:
                if outer != name:
                    self._edges.setdefault(outer, set()).add(name)
        stack.append(name)

    def record_release(self, name: str) -> None:
        stack = self.held()
        for i in range(len(stack) - 1, -1, -1):  # re-entrant: drop last
            if stack[i] == name:
                del stack[i]
                return

    def edges(self) -> dict[str, set[str]]:
        with self._mutex:
            return {src: set(dst) for src, dst in self._edges.items()}

    def find_cycle(self) -> list[str] | None:
        """One cycle of the edge graph as ``[a, b, ..., a]``, or None."""
        edges = self.edges()
        nodes = set(edges) | {d for dsts in edges.values() for d in dsts}
        color = dict.fromkeys(nodes, 0)  # 0 white, 1 on path, 2 done
        path: list[str] = []

        def dfs(node: str) -> list[str] | None:
            color[node] = 1
            path.append(node)
            for nxt in sorted(edges.get(node, ())):
                if color[nxt] == 1:
                    return path[path.index(nxt) :] + [nxt]
                if color[nxt] == 0:
                    found = dfs(nxt)
                    if found is not None:
                        return found
            color[node] = 2
            path.pop()
            return None

        for node in sorted(nodes):
            if color[node] == 0:
                found = dfs(node)
                if found is not None:
                    return found
        return None


class InstrumentedLock:
    """Context-manager proxy recording acquisitions into a graph."""

    def __init__(self, name: str, inner: object, graph: LockOrderGraph) -> None:
        self._name = name
        self._inner = inner
        self._graph = graph

    def __enter__(self) -> "InstrumentedLock":
        self._graph.record_acquire(self._name)
        self._inner.__enter__()
        return self

    def __exit__(self, *exc: object) -> None:
        self._inner.__exit__(*exc)
        self._graph.record_release(self._name)


def instrument(obj: object, attr: str, name: str, graph: LockOrderGraph) -> None:
    setattr(obj, attr, InstrumentedLock(name, getattr(obj, attr), graph))


# ----------------------------------------------------------------------
# Harness self-tests
# ----------------------------------------------------------------------
def test_ab_ba_ordering_is_reported_as_a_cycle():
    graph = LockOrderGraph()
    la = InstrumentedLock("A", threading.Lock(), graph)
    lb = InstrumentedLock("B", threading.Lock(), graph)
    with la:
        with lb:
            pass
    with lb:
        with la:
            pass
    cycle = graph.find_cycle()
    assert cycle is not None
    assert {"A", "B"} <= set(cycle)


def test_consistent_ordering_has_no_cycle():
    graph = LockOrderGraph()
    la = InstrumentedLock("A", threading.Lock(), graph)
    lb = InstrumentedLock("B", threading.Lock(), graph)
    for _ in range(3):
        with la:
            with lb:
                pass
    assert graph.find_cycle() is None
    assert graph.edges() == {"A": {"B"}}


def test_reentrant_acquisition_is_not_a_self_edge():
    graph = LockOrderGraph()
    lock = InstrumentedLock("R", threading.RLock(), graph)
    with lock:
        with lock:
            pass
    assert graph.edges() == {}
    assert graph.held() == []


# ----------------------------------------------------------------------
# The serving layer under concurrency
# ----------------------------------------------------------------------
def _fresh_record(i: int) -> dict:
    return {
        "fno": 900 + i,
        "city": "C",
        "cost": 500.0 + i,
        "dur": 5.0,
        "rtg": 50.0,
        "amn": 50.0,
    }


def test_engine_workload_lock_order_is_acyclic():
    graph = LockOrderGraph()
    engine = Engine(max_results=8)
    f1, f2 = flight_example_relations()
    f2_variant = f2.take(range(len(f2) - 1))

    instrument(engine, "_lock", "engine", graph)
    instrument(engine.catalog, "_lock", "catalog", graph)
    hotels = engine.register("hotels", f1)
    flights = engine.register("flights", f2)
    instrument(hotels, "_lock", "ds:hotels", graph)
    instrument(flights, "_lock", "ds:flights", graph)

    spec = QuerySpec.for_ksjq(k=7)
    engine.execute("hotels", "flights", spec)  # warm the plan cache
    for plan in list(engine._plans.values()):
        instrument(plan, "_memo_lock", "plan-memo", graph)

    errors: list[BaseException] = []
    barrier = threading.Barrier(3)

    def guarded(fn):
        def run():
            barrier.wait()
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        return run

    def query_loop():
        for _ in range(6):
            engine.execute("hotels", "flights", spec)
            engine.explain("hotels", "flights", spec=spec)
            engine.catalog.versions()

    def mutate_loop():
        for i in range(6):
            hotels.insert_rows([_fresh_record(i)])

    def register_loop():
        for i in range(6):
            engine.register("flights", f2_variant if i % 2 else f2)

    threads = [
        threading.Thread(target=guarded(fn))
        for fn in (query_loop, mutate_loop, register_loop)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors

    cycle = graph.find_cycle()
    assert cycle is None, f"lock-order cycle observed: {' -> '.join(cycle)}"

    # Non-vacuous: the documented catalog -> dataset order was exercised
    # (Catalog.versions / register hold the catalog lock across dataset
    # lock acquisitions), and no dataset -> catalog inversion appeared.
    edges = graph.edges()
    assert any(dst.startswith("ds:") for dst in edges.get("catalog", set()))
    for name in ("ds:hotels", "ds:flights"):
        assert "catalog" not in edges.get(name, set())


def test_dataset_listeners_run_without_the_dataset_lock():
    """Regression: mutators must notify with ``_lock`` released.

    Listeners (catalog fan-out, engine invalidation) take their own
    locks; running them under ``Dataset._lock`` inverts the documented
    catalog -> dataset order and can deadlock against
    ``Catalog.versions()``.
    """
    graph = LockOrderGraph()
    f1, _ = flight_example_relations()
    dataset = Dataset("d", f1)
    instrument(dataset, "_lock", "ds", graph)

    held_during_notify: list[list[str]] = []
    dataset.subscribe(lambda _ds: held_during_notify.append(list(graph.held())))

    dataset.insert_rows([_fresh_record(0)])
    dataset.delete_rows([0])
    dataset.replace(f1)

    assert len(held_during_notify) == 3
    for held in held_during_notify:
        assert "ds" not in held, "listener notified while Dataset._lock held"


def test_catalog_docstring_states_the_lock_order():
    from repro.api.catalog import Catalog

    assert "Lock order" in (Catalog.__doc__ or "")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
