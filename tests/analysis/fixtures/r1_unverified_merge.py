"""R1 fixture: merges per-shard candidates without cross-shard verification.

The merge below is exactly the bug R1 exists to catch: per-shard local
skyline candidates are concatenated and returned as the answer, but
k-dominance is non-transitive, so a tuple eliminated inside one shard
may still k-dominate a survivor of another shard. The merged set MUST
be re-checked against all rows; this function never does.
"""

from __future__ import annotations

import numpy as np

from repro.skyline.kdominant import k_dominant_candidates_block


def broken_sharded_skyline(matrix: np.ndarray, k: int, n_shards: int) -> np.ndarray:
    """Per-shard candidates, merged and returned unverified (WRONG)."""
    bounds = np.linspace(0, matrix.shape[0], n_shards + 1, dtype=int)
    locals_ = [
        k_dominant_candidates_block(matrix[start:stop], k) + start
        for start, stop in zip(bounds[:-1], bounds[1:])
    ]
    return np.sort(np.concatenate(locals_))
