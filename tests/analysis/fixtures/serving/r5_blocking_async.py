"""R5 fixture: a blocking engine call directly inside ``async def``.

Exactly one violation: ``broken_handler`` calls ``engine.execute``
on the event loop thread instead of handing a sync wrapper to
``loop.run_in_executor``. The compliant pattern below it must NOT be
flagged — the executor receives a method *reference* (an attribute
load), and the nested sync wrapper body is exempt by design.
"""

from __future__ import annotations

import asyncio


class _FakeEngine:
    def execute(self, *names: str, spec: object = None) -> object:
        return object()


async def broken_handler(engine: _FakeEngine, spec: object) -> object:
    return engine.execute("left", "right", spec=spec)


async def compliant_handler(engine: _FakeEngine, spec: object) -> object:
    loop = asyncio.get_running_loop()

    def run_sync() -> object:
        return engine.execute("left", "right", spec=spec)

    return await loop.run_in_executor(None, run_sync)
