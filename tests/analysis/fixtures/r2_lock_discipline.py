"""R2 fixture: a documented lock-guarded field written outside its lock."""

from __future__ import annotations

import threading


class LeakyCache:
    """A cache whose mutator forgets the lock its docstring promises.

    # guarded-by: _lock: _entries
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._entries: dict[str, int] = {}

    def get(self, key: str) -> int | None:
        with self._lock:
            return self._entries.get(key)

    def put(self, key: str, value: int) -> None:
        self._entries = {key: value}  # WRONG: no lock held
