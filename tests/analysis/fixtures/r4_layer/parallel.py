"""R4 fixture: in the parallel layer but missing the main-thread check.

Forking while sibling batch-lane threads run risks child processes
inheriting locks held mid-operation; the construction must sit under
``threading.current_thread() is threading.main_thread()``.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor


def unguarded_map(fn: Callable[[int], int], items: Sequence[int]) -> list[int]:
    """Process pool without the main-thread guard (WRONG)."""
    with ProcessPoolExecutor(max_workers=2) as pool:
        return list(pool.map(fn, items))
