"""Namespace for the in-layer-but-unguarded R4 fixture."""
