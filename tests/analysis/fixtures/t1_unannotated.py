"""T1 fixture: one function with an unannotated parameter and return."""

from __future__ import annotations


def half(x):  # WRONG: no parameter or return annotation
    return x / 2
