"""R6 fixture: swallowing an index-load failure instead of routing it.

Exactly one violation: the second ``except`` eats the failure — no
re-raise, no re-verification, no resilience route — so a corrupt index
silently downgrades to an *empty* answer, which is exactly the
wrong-answer mode R6 exists to forbid. The first handler (re-raise)
and the ``quarantine`` route in ``good_indexed_lookup`` are clean.
"""


def dominance_index(dataset):  # pragma: no cover - fixture scaffolding
    raise OSError("index file corrupt")


def quarantine_and_fallback(dataset):  # pragma: no cover - scaffolding
    return []


def good_indexed_lookup(dataset):
    try:
        return dominance_index(dataset)
    except OSError:
        return quarantine_and_fallback(dataset)


def bad_indexed_lookup(dataset):
    try:
        return dominance_index(dataset)
    except ValueError:
        raise
    except OSError:  # R6: swallowed index-load failure
        return []
