"""R4 fixture: process fan-out outside the parallel execution layer."""

from __future__ import annotations

from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor


def rogue_map(fn: Callable[[int], int], items: Sequence[int]) -> list[int]:
    """Spawns a process pool from arbitrary code paths (WRONG)."""
    with ProcessPoolExecutor(max_workers=2) as pool:
        return list(pool.map(fn, items))
