"""Seeded-violation fixtures for the invariant linter (tools.check).

Each module here deliberately violates exactly one of the rules R1-R4;
``tests/analysis/test_invariant_linter.py`` asserts that the linter
produces exactly one diagnostic per fixture, with the right rule id and
line. The modules are import-safe (importing them runs nothing) but are
never imported by the library.
"""
