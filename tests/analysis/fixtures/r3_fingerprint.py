"""R3 fixture: a dataclass field missing from its fingerprint digest."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


@dataclass(frozen=True)
class PartialSpec:
    """Two specs differing only in ``mode`` share a fingerprint (WRONG)."""

    k: int
    algorithm: str
    mode: str

    def fingerprint(self) -> str:
        payload = f"{self.k}|{self.algorithm}"  # `mode` forgotten
        return hashlib.sha1(payload.encode()).hexdigest()[:16]
