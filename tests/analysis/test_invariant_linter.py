"""The invariant linter's own tests: seeded violations and a clean tree.

Every rule R1-R6 is demonstrated by a fixture module carrying exactly
one violation; the linter must report exactly one diagnostic per
fixture, with the right rule id and the right line. The current source
tree must produce zero diagnostics — that is the CI gate.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT))  # tools/ is repo-level, not in src/

from tools.check import SRC_ROOT, run_checks  # noqa: E402
from tools.check.invariants import check_file  # noqa: E402
from tools.check.typing_gate import check_annotations, in_strict_scope  # noqa: E402

FIXTURES = Path(__file__).parent / "fixtures"


def _source_line(path: Path, lineno: int) -> str:
    return path.read_text().splitlines()[lineno - 1]


# ----------------------------------------------------------------------
# Seeded violations: exactly one diagnostic each, with file:line
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    ("fixture", "rule", "anchor"),
    [
        ("r1_unverified_merge.py", "R1", "def broken_sharded_skyline"),
        ("r2_lock_discipline.py", "R2", "self._entries = "),
        ("r3_fingerprint.py", "R3", "def fingerprint"),
        ("r4_fork_outside_layer.py", "R4", "ProcessPoolExecutor(max_workers=2)"),
        ("r4_layer/parallel.py", "R4", "ProcessPoolExecutor(max_workers=2)"),
        ("serving/r5_blocking_async.py", "R5", "engine.execute("),
        ("r6_swallowed_recovery.py", "R6", "except OSError:  # R6"),
    ],
)
def test_fixture_produces_exactly_one_diagnostic(
    fixture: str, rule: str, anchor: str
) -> None:
    path = FIXTURES / fixture
    diagnostics = check_file(path)
    assert len(diagnostics) == 1, [d.render() for d in diagnostics]
    (diag,) = diagnostics
    assert diag.rule == rule
    assert diag.path == path
    assert anchor in _source_line(path, diag.line)
    rendered = diag.render(REPO_ROOT)
    assert rendered.startswith(f"tests/analysis/fixtures/{fixture}:{diag.line}: {rule}")


def test_r3_message_names_the_missing_field() -> None:
    (diag,) = check_file(FIXTURES / "r3_fingerprint.py")
    assert "'mode'" in diag.message


def test_r2_message_names_lock_and_field() -> None:
    (diag,) = check_file(FIXTURES / "r2_lock_discipline.py")
    assert "self._entries" in diag.message
    assert "self._lock" in diag.message


def test_t1_flags_unannotated_function() -> None:
    diagnostics = check_annotations(FIXTURES / "t1_unannotated.py")
    assert {d.rule for d in diagnostics} == {"T1"}
    messages = "\n".join(d.message for d in diagnostics)
    assert "'x'" in messages and "return annotation" in messages


# ----------------------------------------------------------------------
# The library tree itself is clean (the CI gate)
# ----------------------------------------------------------------------
def test_source_tree_has_zero_diagnostics() -> None:
    diagnostics = run_checks()
    assert diagnostics == [], "\n".join(d.render(REPO_ROOT) for d in diagnostics)


def test_strict_scope_covers_the_six_packages_and_top_level() -> None:
    assert in_strict_scope(SRC_ROOT / "api" / "engine.py")
    assert in_strict_scope(SRC_ROOT / "core" / "parallel.py")
    assert in_strict_scope(SRC_ROOT / "serving" / "server.py")
    assert in_strict_scope(SRC_ROOT / "errors.py")
    assert not in_strict_scope(SRC_ROOT / "experiments" / "harness.py")
    assert not in_strict_scope(FIXTURES / "t1_unannotated.py")


def test_real_parallel_module_satisfies_r1_non_vacuously() -> None:
    """The real merge function is *seen* by R1 (reaches a generator and
    merges) and passes only because it also reaches the verifier."""
    from tools.check import invariants

    path = SRC_ROOT / "core" / "parallel.py"
    assert check_file(path) == []
    source = path.read_text()
    # The rule's three ingredients are all present in the real module.
    assert "k_dominant_candidates_block" in source
    assert "concatenate" in source
    assert "k_dominated_any" in source
    # Removing the verification pass must trip R1.
    import ast

    stripped = source.replace("k_dominated_any", "k_dominated_unchecked").replace(
        "_verify_chunk", "_chunk_flags"
    )
    tree = ast.parse(stripped)
    diags = invariants._check_unverified_merge(path, tree)
    assert any(d.rule == "R1" for d in diags)


def test_incremental_merge_satisfies_r1_non_vacuously() -> None:
    """The delta-maintenance insert path is R1's exact shape: it merges
    newcomer candidates (generator + concatenate) into the cached
    matrix, and passes the rule only because every merged candidate is
    re-verified against the full matrix — methods count, the rule walks
    the whole tree."""
    from tools.check import invariants

    path = SRC_ROOT / "core" / "incremental.py"
    assert check_file(path) == []
    source = path.read_text()
    assert "k_dominant_candidates_block" in source
    assert "concatenate" in source
    assert "k_dominated_any" in source
    import ast

    stripped = source.replace("k_dominated_any", "k_dominated_unchecked")
    tree = ast.parse(stripped)
    diags = invariants._check_unverified_merge(path, tree)
    flagged = {d for d in diags if d.rule == "R1"}
    assert flagged, "stripping the verifier must trip R1 on the merge path"
    merge_line = next(
        i + 1
        for i, line in enumerate(source.splitlines())
        if "def _merge_inserted" in line
    )
    assert merge_line in {d.line for d in flagged}


def test_r5_sees_the_real_server_non_vacuously() -> None:
    """The real serving front-end is in R5's scope, uses the sanctioned
    run_in_executor pattern (clean), and tripping the pattern — calling
    the engine directly in an async handler — is caught."""
    import ast

    from tools.check import invariants

    path = SRC_ROOT / "serving" / "server.py"
    assert check_file(path) == []
    source = path.read_text()
    assert "async def" in source and "run_in_executor" in source
    # Inject a direct engine call ahead of every executor hand-off.
    mutated = source.replace(
        "await loop.run_in_executor(",
        "self.engine.execute(*inputs, spec=spec) and await loop.run_in_executor(",
    )
    assert mutated != source
    diags = invariants._check_async_executor_discipline(path, ast.parse(mutated))
    assert diags and all(d.rule == "R5" for d in diags)


def test_r5_is_scoped_to_the_serving_package() -> None:
    """The same violating code outside a serving/ directory is not R5's
    business — core algorithms are allowed to call the engine."""
    import ast

    from tools.check import invariants

    fixture = FIXTURES / "serving" / "r5_blocking_async.py"
    tree = ast.parse(fixture.read_text())
    assert invariants._check_async_executor_discipline(fixture, tree)
    elsewhere = FIXTURES / "r5_blocking_async.py"  # not on disk; path-only
    assert invariants._check_async_executor_discipline(elsewhere, tree) == []


def test_r6_sees_the_real_engine_non_vacuously() -> None:
    """The engine's indexed dispatch is *seen* by R6 (its try bodies
    reach index-load sites) and passes only because the generic handler
    routes through the quarantine path — gutting that route trips R6."""
    import ast

    from tools.check import invariants

    path = SRC_ROOT / "api" / "engine.py"
    assert not [d for d in check_file(path) if d.rule == "R6"]
    source = path.read_text()
    assert "self._quarantine_indexes(plan, inputs)" in source
    mutated = source.replace("self._quarantine_indexes(plan, inputs)", "pass")
    assert mutated != source
    diags = invariants._check_swallowed_recovery(path, ast.parse(mutated))
    assert diags and all(d.rule == "R6" for d in diags)


def test_r6_sees_the_catalog_maintenance_guard_non_vacuously() -> None:
    """Index maintenance swallows failures *by design* — but only
    because the handler records the quarantine; a handler stripped down
    to a bare ``pass`` is exactly what R6 forbids."""
    import ast

    from tools.check import invariants

    path = SRC_ROOT / "api" / "catalog.py"
    assert not [d for d in check_file(path) if d.rule == "R6"]
    source = path.read_text()
    assert "with_inserted_rows" in source
    mutated = source.replace("resilience_stats", "plain_stats").replace(
        "invalidations", "skipped"
    )
    diags = invariants._check_swallowed_recovery(path, ast.parse(mutated))
    assert any(d.rule == "R6" for d in diags)


def test_r5_flags_lock_acquisition_in_async_code() -> None:
    import ast

    from tools.check import invariants

    source = (
        "class S:\n"
        "    async def handler(self):\n"
        "        with self._lock:\n"
        "            return self.depth\n"
    )
    path = SRC_ROOT / "serving" / "synthetic.py"  # path-only, for scoping
    diags = invariants._check_async_executor_discipline(path, ast.parse(source))
    assert len(diags) == 1 and diags[0].rule == "R5"
    assert "lock" in diags[0].message


# ----------------------------------------------------------------------
# CLI behaviour
# ----------------------------------------------------------------------
def test_cli_exit_status_and_output() -> None:
    clean = subprocess.run(
        [sys.executable, "-m", "tools.check"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert clean.returncode == 0, clean.stdout + clean.stderr
    assert "OK" in clean.stdout

    dirty = subprocess.run(
        [sys.executable, "-m", "tools.check", "--rule", "R3",
         str(FIXTURES / "r3_fingerprint.py")],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert dirty.returncode == 1
    assert "R3" in dirty.stdout
    assert "fingerprint" in dirty.stdout
