"""Packaging of the PEP 561 typing marker.

``src/repro/py.typed`` tells type checkers in *consuming* projects that
the distribution ships inline annotations. It only works if (a) the
marker exists next to the package's ``__init__`` and (b) setuptools is
told to include non-Python data in wheels/sdists via
``[tool.setuptools.package-data]``.
"""

from __future__ import annotations

from importlib import resources
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_py_typed_marker_is_importable_package_data():
    assert resources.files("repro").joinpath("py.typed").is_file()


def test_py_typed_marker_is_empty():
    # PEP 561: the marker's presence is the signal; content is ignored,
    # and an empty file avoids any temptation to treat it as config.
    marker = REPO_ROOT / "src" / "repro" / "py.typed"
    assert marker.read_text() == ""


def test_pyproject_ships_the_marker_in_package_data():
    pyproject = (REPO_ROOT / "pyproject.toml").read_text()
    assert "[tool.setuptools.package-data]" in pyproject
    assert 'repro = ["py.typed"]' in pyproject
