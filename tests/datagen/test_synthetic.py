"""Unit tests for repro.datagen.synthetic."""

import numpy as np
import pytest

from repro.datagen import generate_matrix, generate_relation, generate_relation_pair
from repro.errors import ParameterError


class TestGenerateMatrix:
    @pytest.mark.parametrize("dist", ["independent", "correlated", "anticorrelated"])
    def test_shape_and_range(self, dist):
        matrix = generate_matrix(200, 5, dist, seed=1)
        assert matrix.shape == (200, 5)
        assert matrix.min() >= 0.0 and matrix.max() <= 1.0

    def test_deterministic_with_seed(self):
        a = generate_matrix(50, 3, "independent", seed=7)
        b = generate_matrix(50, 3, "independent", seed=7)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = generate_matrix(50, 3, "independent", seed=7)
        b = generate_matrix(50, 3, "independent", seed=8)
        assert not np.array_equal(a, b)

    def test_correlated_has_positive_pairwise_correlation(self):
        matrix = generate_matrix(3000, 2, "correlated", seed=3)
        corr = np.corrcoef(matrix[:, 0], matrix[:, 1])[0, 1]
        assert corr > 0.5

    def test_anticorrelated_has_negative_pairwise_correlation(self):
        matrix = generate_matrix(3000, 2, "anticorrelated", seed=3)
        corr = np.corrcoef(matrix[:, 0], matrix[:, 1])[0, 1]
        assert corr < -0.3

    def test_independent_near_zero_correlation(self):
        matrix = generate_matrix(3000, 2, "independent", seed=3)
        corr = np.corrcoef(matrix[:, 0], matrix[:, 1])[0, 1]
        assert abs(corr) < 0.1

    def test_skyline_size_ordering(self):
        # The motivation for the distributions: anti-correlated data has
        # the largest skyline, correlated the smallest (paper Sec. 7).
        from repro.skyline import skyline_sfs

        sizes = {}
        for dist in ("correlated", "independent", "anticorrelated"):
            matrix = generate_matrix(400, 4, dist, seed=11)
            sizes[dist] = len(skyline_sfs(matrix))
        assert sizes["correlated"] < sizes["independent"] < sizes["anticorrelated"]

    def test_invalid_params(self):
        with pytest.raises(ParameterError):
            generate_matrix(-1, 3)
        with pytest.raises(ParameterError):
            generate_matrix(10, 0)
        with pytest.raises(ParameterError):
            generate_matrix(10, 3, "gaussian")

    def test_zero_rows(self):
        assert generate_matrix(0, 3).shape == (0, 3)


class TestGenerateRelation:
    def test_schema_roles(self):
        rel = generate_relation(30, 5, g=3, a=2, seed=1)
        assert rel.schema.d == 5 and rel.schema.a == 2
        assert rel.schema.join_names == ("grp",)
        assert rel.schema.aggregate_names == ("s1", "s2")

    def test_round_robin_groups_balanced(self):
        rel = generate_relation(30, 3, g=3, seed=1)
        from repro.relational.groups import GroupIndex

        sizes = GroupIndex(rel).sizes()
        assert set(sizes.values()) == {10}

    def test_joined_size_formula(self):
        # Table 7's derived parameter: N = n^2 / g when g | n.
        import repro

        left, right = generate_relation_pair(n=20, d=3, g=4, seed=2)
        plan = repro.make_plan(left, right)
        assert len(plan.view()) == 20 * 20 // 4

    def test_invalid_params(self):
        with pytest.raises(ParameterError):
            generate_relation(10, 3, g=0)
        with pytest.raises(ParameterError):
            generate_relation(10, 3, a=4)

    def test_pair_shares_seed_stream_but_differs(self):
        left, right = generate_relation_pair(n=20, d=3, g=2, seed=5)
        assert not np.array_equal(left.matrix, right.matrix)
        left2, right2 = generate_relation_pair(n=20, d=3, g=2, seed=5)
        np.testing.assert_array_equal(left.matrix, left2.matrix)
        np.testing.assert_array_equal(right.matrix, right2.matrix)
