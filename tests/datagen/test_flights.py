"""Unit tests for repro.datagen.flights (the Sec. 7.4 substitute)."""

import numpy as np
import pytest

import repro
from repro.datagen import HUB_CITIES, make_flight_relations
from repro.errors import ParameterError


@pytest.fixture(scope="module")
def flights():
    return make_flight_relations()


class TestShape:
    def test_paper_table_sizes(self, flights):
        out, inbound = flights
        assert len(out) == 192
        assert len(inbound) == 155

    def test_thirteen_hubs(self, flights):
        out, inbound = flights
        assert set(out.column("via")) <= set(HUB_CITIES[:13])
        assert set(inbound.column("via")) <= set(HUB_CITIES[:13])

    def test_attribute_roles_match_paper(self, flights):
        out, _ = flights
        # 5 skyline attributes, 2 aggregated, 3 local (Sec. 7.4).
        assert out.schema.d == 5
        assert set(out.schema.aggregate_names) == {"cost", "fly_time"}
        assert set(out.schema.local_names) == {"fee", "popularity", "amenities"}

    def test_preferences(self, flights):
        out, _ = flights
        assert out.schema["cost"].preference.value == "lower"
        assert out.schema["popularity"].preference.value == "higher"
        assert out.schema["amenities"].preference.value == "higher"

    def test_joined_size_near_paper(self, flights):
        # Paper: 2,649 two-leg itineraries. The synthetic network's hub
        # skew should land in the same ballpark (not the uniform 2,289).
        out, inbound = flights
        plan = repro.make_plan(out, inbound, aggregate="sum")
        joined = len(plan.view())
        assert 2000 <= joined <= 3400

    def test_deterministic(self):
        a_out, a_in = make_flight_relations(seed=7)
        b_out, b_in = make_flight_relations(seed=7)
        np.testing.assert_array_equal(a_out.matrix, b_out.matrix)
        np.testing.assert_array_equal(a_in.matrix, b_in.matrix)

    def test_invalid_hub_count(self):
        with pytest.raises(ParameterError):
            make_flight_relations(n_hubs=0)
        with pytest.raises(ParameterError):
            make_flight_relations(n_hubs=99)


class TestMarketplaceRealism:
    def test_quality_price_anticorrelation(self, flights):
        # Popular flights must cost more on average (anti-correlated
        # marketplace, the premise of skyline queries on such data).
        out, _ = flights
        cost = np.asarray(out.column("cost"))
        popularity = np.asarray(out.column("popularity"))
        corr = np.corrcoef(cost, popularity)[0, 1]
        assert corr > 0.2

    def test_fig11_queries_run(self, flights):
        out, inbound = flights
        import warnings

        from repro.errors import SoundnessWarning

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", SoundnessWarning)
            counts = [
                repro.ksjq(out, inbound, k=k, aggregate="sum").count
                for k in (6, 7, 8)
            ]
        # Lemma 1: skyline grows with k; and the queries return something.
        assert counts == sorted(counts)
        assert counts[-1] > 0
