"""Contract tests for the public API surface.

Guards the deliverable: everything exported in ``__all__`` exists, is
importable, and carries documentation.
"""

import importlib
import inspect

import pytest

MODULES = [
    "repro",
    "repro.relational",
    "repro.skyline",
    "repro.core",
    "repro.api",
    "repro.datagen",
    "repro.experiments",
    "repro.errors",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__"), f"{module_name} lacks __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.{name} missing"


@pytest.mark.parametrize("module_name", MODULES)
def test_module_docstrings(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), f"{module_name} undocumented"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_callables_documented(module_name):
    """Every public function/class exported by the package has a docstring."""
    module = importlib.import_module(module_name)
    for name in module.__all__:
        obj = getattr(module, name)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            assert obj.__doc__ and obj.__doc__.strip(), (
                f"{module_name}.{name} lacks a docstring"
            )


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_primary_entry_points_signature():
    """The facade keeps its documented signature stable."""
    import repro

    ksjq_params = inspect.signature(repro.ksjq).parameters
    assert list(ksjq_params)[:3] == ["left", "right", "k"]
    assert "algorithm" in ksjq_params and "mode" in ksjq_params

    find_k_params = inspect.signature(repro.find_k).parameters
    assert list(find_k_params)[:3] == ["left", "right", "delta"]
    assert "method" in find_k_params and "objective" in find_k_params
