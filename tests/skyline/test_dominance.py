"""Unit tests for repro.skyline.dominance."""

import numpy as np
import pytest

from repro.skyline import (
    boe_counts,
    dominates,
    dominator_rows,
    is_k_dominated,
    k_dominates,
    k_dominator_mask,
    strict_any,
)


class TestDominates:
    def test_strict_domination(self):
        assert dominates([1, 1], [2, 2])

    def test_partial_improvement(self):
        assert dominates([1, 2], [2, 2])

    def test_equal_vectors_do_not_dominate(self):
        assert not dominates([1, 2], [1, 2])

    def test_incomparable(self):
        assert not dominates([1, 3], [2, 2])
        assert not dominates([2, 2], [1, 3])


class TestKDominates:
    def test_full_k_equals_classic(self):
        u, v = [1, 2, 3], [2, 2, 4]
        assert k_dominates(u, v, 3) == dominates(u, v)

    def test_k_dominance_relaxation(self):
        # u is better in 2 of 3 attributes, worse in one.
        u, v = [1, 1, 9], [2, 2, 2]
        assert not dominates(u, v)
        assert k_dominates(u, v, 2)
        assert not k_dominates(u, v, 3)

    def test_requires_strict_attribute(self):
        assert not k_dominates([1, 1], [1, 1], 1)
        assert not k_dominates([1, 1], [1, 1], 2)

    def test_ties_count_toward_k(self):
        # better-or-equal in 3 (one strict), so 3-dominates.
        assert k_dominates([1, 5, 5], [2, 5, 5], 3)

    def test_mutual_k_domination_possible(self):
        # For k <= d/2 two objects can dominate each other (Sec. 2.2).
        u, v = [1, 9], [9, 1]
        assert k_dominates(u, v, 1)
        assert k_dominates(v, u, 1)

    def test_paper_example_25_dominates_28(self):
        # Flights 25 and 28 (k' = 3): better-or-equal in cost, dur, rtg.
        f25 = [350, 2.4, 30, 38]
        f28 = [350, 2.4, 35, 39]
        assert k_dominates(f25, f28, 3)
        assert not k_dominates(f28, f25, 3)

    def test_paper_example_16_dominates_18(self):
        # The Table 1 erratum: 16 does 3-dominate 18 under the paper's
        # own definition (dur and amn strictly, rtg tied).
        f16 = [452, 3.6, 20, 36]
        f18 = [451, 3.7, 20, 37]
        assert k_dominates(f16, f18, 3)


class TestVectorized:
    @pytest.fixture
    def matrix(self):
        return np.array([[1.0, 1.0], [2.0, 0.0], [3.0, 3.0], [1.0, 1.0]])

    def test_boe_counts(self, matrix):
        # [1,1]: 2 boe; [2,0]: 2<=2 and 0<=1 -> 2; [3,3]: 0; [1,1]: 2.
        np.testing.assert_array_equal(boe_counts(matrix, np.array([2.0, 1.0])), [2, 2, 0, 2])

    def test_strict_any(self, matrix):
        np.testing.assert_array_equal(
            strict_any(matrix, np.array([2.0, 1.0])), [True, True, False, True]
        )

    def test_k_dominator_mask(self, matrix):
        mask = k_dominator_mask(matrix, np.array([2.0, 1.0]), k=2)
        np.testing.assert_array_equal(mask, [True, True, False, True])

    def test_k_dominator_mask_exclude(self, matrix):
        mask = k_dominator_mask(matrix, np.array([2.0, 1.0]), k=2, exclude=0)
        np.testing.assert_array_equal(mask, [False, True, False, True])

    def test_dominator_rows(self, matrix):
        rows = dominator_rows(matrix, np.array([2.0, 1.0]), k=2)
        assert rows.tolist() == [0, 1, 3]

    def test_is_k_dominated(self, matrix):
        assert is_k_dominated(matrix, np.array([2.0, 1.0]), 2)
        assert not is_k_dominated(matrix, np.array([0.0, 0.0]), 2)

    def test_is_k_dominated_empty_matrix(self):
        assert not is_k_dominated(np.empty((0, 2)), np.array([1.0, 1.0]), 1)

    def test_is_k_dominated_excludes_row(self):
        matrix = np.array([[1.0, 1.0], [5.0, 5.0]])
        # Row 0 dominates the probe, but excluding it leaves nothing.
        assert not is_k_dominated(matrix, np.array([1.0, 2.0]), 2, exclude=0)

    def test_is_k_dominated_blocked_scan(self):
        # Dominator far beyond the first block still found.
        n = 10_000
        matrix = np.full((n, 2), 5.0)
        matrix[-1] = [0.0, 0.0]
        assert is_k_dominated(matrix, np.array([1.0, 1.0]), 2)

    def test_self_never_dominates_itself(self):
        matrix = np.array([[1.0, 2.0]])
        assert not is_k_dominated(matrix, np.array([1.0, 2.0]), 1)
