"""Unit tests for repro.skyline.kdominant."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.skyline import (
    k_dominant_skyline,
    k_dominant_skyline_naive,
    k_dominant_skyline_tsa,
    skyline_sfs,
)


class TestNaive:
    def test_reduces_to_classic_at_k_equals_d(self):
        rng = np.random.default_rng(0)
        matrix = np.floor(rng.uniform(0, 5, size=(30, 3)))
        assert k_dominant_skyline_naive(matrix, 3) == skyline_sfs(matrix)

    def test_smaller_k_gives_smaller_or_equal_set(self):
        rng = np.random.default_rng(1)
        matrix = np.floor(rng.uniform(0, 6, size=(40, 4)))
        sizes = [len(k_dominant_skyline_naive(matrix, k)) for k in (2, 3, 4)]
        assert sizes == sorted(sizes)

    def test_lemma1_membership_monotone_in_k(self):
        # A j-dominant skyline tuple is an i-dominant one for i >= j.
        rng = np.random.default_rng(2)
        matrix = np.floor(rng.uniform(0, 4, size=(30, 4)))
        previous = set()
        for k in (2, 3, 4):
            current = set(k_dominant_skyline_naive(matrix, k))
            assert previous <= current
            previous = current

    def test_cyclic_domination_annihilates(self):
        # For k <= d/2 tuples can eliminate each other pairwise, leaving
        # an empty k-dominant skyline (Sec. 2.2).
        matrix = np.array([[1.0, 9.0], [9.0, 1.0]])
        assert k_dominant_skyline_naive(matrix, 1) == []

    def test_duplicates_do_not_eliminate(self):
        matrix = np.array([[1.0, 1.0], [1.0, 1.0]])
        assert k_dominant_skyline_naive(matrix, 1) == [0, 1]

    def test_empty_matrix(self):
        assert k_dominant_skyline_naive(np.empty((0, 3)), 2) == []

    def test_k_out_of_range(self):
        with pytest.raises(ParameterError):
            k_dominant_skyline_naive(np.zeros((2, 3)), 0)
        with pytest.raises(ParameterError):
            k_dominant_skyline_naive(np.zeros((2, 3)), 4)

    def test_non_2d_rejected(self):
        with pytest.raises(ParameterError, match="2-D"):
            k_dominant_skyline_naive(np.zeros(3), 1)


class TestTSA:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("k_offset", [0, 1, 2])
    def test_matches_naive(self, seed, k_offset):
        rng = np.random.default_rng(seed)
        d = 5
        matrix = np.floor(rng.uniform(0, 5, size=(60, d)))
        k = d - k_offset
        assert k_dominant_skyline_tsa(matrix, k) == k_dominant_skyline_naive(matrix, k)

    def test_matches_naive_without_presort(self):
        rng = np.random.default_rng(99)
        matrix = np.floor(rng.uniform(0, 4, size=(50, 4)))
        assert k_dominant_skyline_tsa(matrix, 3, presort=False) == (
            k_dominant_skyline_naive(matrix, 3)
        )

    def test_scan2_catches_false_candidates(self):
        # Non-transitivity: an eliminated point can still dominate a
        # candidate, so scan 2 must verify against the full dataset.
        # Rock-paper-scissors cycle under 2-of-3 dominance:
        # b 2-dominates a; c 2-dominates b; a 2-dominates c.
        a = [1.0, 2.0, 3.0]
        b = [3.0, 1.0, 2.0]
        c = [2.0, 3.0, 1.0]
        matrix = np.array([a, b, c])
        expected = k_dominant_skyline_naive(matrix, 2)
        assert k_dominant_skyline_tsa(matrix, 2) == expected == []

    def test_empty(self):
        assert k_dominant_skyline_tsa(np.empty((0, 2)), 1) == []


class TestOSA:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("k_offset", [0, 1, 2])
    def test_matches_naive(self, seed, k_offset):
        from repro.skyline import k_dominant_skyline_osa

        rng = np.random.default_rng(seed + 500)
        d = 5
        matrix = np.floor(rng.uniform(0, 5, size=(60, d)))
        k = d - k_offset
        assert k_dominant_skyline_osa(matrix, k) == (
            k_dominant_skyline_naive(matrix, k)
        )

    def test_witness_inheritance_case(self):
        from repro.skyline import k_dominant_skyline_osa

        # q = (1,1,5) is classically dominated by q0 = (0,0,4); the
        # witness set drops q, but q0 must still 2-dominate what q
        # would have (t = (2,2,0)).
        q0 = [0.0, 0.0, 4.0]
        q = [1.0, 1.0, 5.0]
        t = [2.0, 2.0, 0.0]
        matrix = np.array([q0, q, t])
        assert k_dominant_skyline_osa(matrix, 2) == (
            k_dominant_skyline_naive(matrix, 2)
        )

    def test_cycle(self):
        from repro.skyline import k_dominant_skyline_osa

        matrix = np.array([[1.0, 2.0, 3.0], [3.0, 1.0, 2.0], [2.0, 3.0, 1.0]])
        assert k_dominant_skyline_osa(matrix, 2) == []

    def test_empty(self):
        from repro.skyline import k_dominant_skyline_osa

        assert k_dominant_skyline_osa(np.empty((0, 2)), 1) == []


class TestFacade:
    def test_dispatch(self):
        matrix = np.array([[1.0, 1.0], [2.0, 2.0]])
        assert k_dominant_skyline(matrix, 2, "tsa") == [0]
        assert k_dominant_skyline(matrix, 2, "osa") == [0]
        assert k_dominant_skyline(matrix, 2, "naive") == [0]

    def test_unknown_method(self):
        with pytest.raises(ParameterError, match="unknown k-dominant method"):
            k_dominant_skyline(np.zeros((1, 2)), 1, "magic")
