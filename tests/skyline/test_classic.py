"""Unit tests for repro.skyline.classic (BNL / SFS)."""

import numpy as np
import pytest

from repro.skyline import dominates, skyline, skyline_bnl, skyline_sfs


def brute_force_skyline(matrix):
    out = []
    for i in range(matrix.shape[0]):
        if not any(
            dominates(matrix[j], matrix[i]) for j in range(matrix.shape[0]) if j != i
        ):
            out.append(i)
    return out


class TestKnownCases:
    def test_single_point(self):
        assert skyline_bnl(np.array([[1.0, 2.0]])) == [0]

    def test_empty(self):
        assert skyline_bnl(np.empty((0, 2))) == []
        assert skyline_sfs(np.empty((0, 2))) == []

    def test_chain(self):
        matrix = np.array([[3.0, 3.0], [2.0, 2.0], [1.0, 1.0]])
        assert skyline_bnl(matrix) == [2]
        assert skyline_sfs(matrix) == [2]

    def test_anti_diagonal_all_skyline(self):
        matrix = np.array([[1.0, 4.0], [2.0, 3.0], [3.0, 2.0], [4.0, 1.0]])
        assert skyline_bnl(matrix) == [0, 1, 2, 3]
        assert skyline_sfs(matrix) == [0, 1, 2, 3]

    def test_duplicates_both_survive(self):
        matrix = np.array([[1.0, 1.0], [1.0, 1.0], [2.0, 2.0]])
        assert skyline_bnl(matrix) == [0, 1]
        assert skyline_sfs(matrix) == [0, 1]

    def test_late_eviction_bnl(self):
        # A later strong point evicts earlier window members.
        matrix = np.array([[2.0, 3.0], [3.0, 2.0], [1.0, 1.0]])
        assert skyline_bnl(matrix) == [2]


class TestAgreement:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("d", [1, 2, 4])
    def test_bnl_sfs_bruteforce_agree(self, seed, d):
        rng = np.random.default_rng(seed)
        matrix = np.floor(rng.uniform(0, 5, size=(40, d)))
        expected = brute_force_skyline(matrix)
        assert skyline_bnl(matrix) == expected
        assert skyline_sfs(matrix) == expected


class TestFacade:
    def test_method_dispatch(self):
        matrix = np.array([[1.0, 1.0], [2.0, 2.0]])
        assert skyline(matrix, "bnl") == [0]
        assert skyline(matrix, "sfs") == [0]

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown skyline method"):
            skyline(np.zeros((1, 1)), "magic")
