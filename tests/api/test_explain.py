"""Cost-based algorithm choice and explain reports."""

import warnings

from repro.api import Engine, choose_algorithm
from repro.core.plan import JoinPlan
from repro.errors import SoundnessWarning
from repro.relational import Relation

from ..helpers import make_random_pair


class TestChooseAlgorithm:
    def test_equality_join_picks_grouping(self):
        left, right = make_random_pair(seed=40, n=40, d=4, g=4)
        algorithm, costs, _ = choose_algorithm(JoinPlan(left, right))
        assert algorithm == "grouping"
        assert costs["grouping"] < costs["naive"]

    def test_cartesian_join_picks_cartesian(self):
        left, right = make_random_pair(seed=41, n=12, d=4, g=3)
        algorithm, _, reason = choose_algorithm(JoinPlan(left, right, kind="cartesian"))
        assert algorithm == "cartesian"
        assert "fate table" in reason

    def test_many_tiny_groups_pick_dominator(self):
        left, right = make_random_pair(seed=42, n=30, d=4, g=15)
        algorithm, costs, _ = choose_algorithm(JoinPlan(left, right))
        assert algorithm == "dominator"
        assert costs["dominator"] < costs["grouping"]

    def test_empty_join_picks_naive(self):
        left, _ = make_random_pair(seed=43, n=8, d=3, g=2)
        right = Relation.from_arrays(
            left.matrix,
            list(left.schema.skyline_names),
            join_key=["elsewhere"] * len(left),
            name="R2",
        )
        algorithm, costs, _ = choose_algorithm(JoinPlan(left, right))
        assert algorithm == "naive"
        assert costs["naive"] == 0.0

    def test_non_monotone_aggregate_forces_naive(self):
        left, right = make_random_pair(seed=44, n=10, d=4, g=3, a=1)
        plan = JoinPlan(left, right, aggregate="max")
        algorithm, _, reason = choose_algorithm(plan)
        assert algorithm == "naive"
        assert "monotone" in reason

    def test_faithful_mode_with_two_aggregates_excludes_naive(self):
        left, right = make_random_pair(seed=45, n=10, d=4, g=3, a=2)
        plan = JoinPlan(left, right, aggregate="sum")
        _, faithful_costs, _ = choose_algorithm(plan, mode="faithful")
        assert "naive" not in faithful_costs
        _, exact_costs, _ = choose_algorithm(plan, mode="exact")
        assert "naive" in exact_costs


class TestExplainReport:
    def test_explain_does_not_execute(self):
        left, right = make_random_pair(seed=46, n=12, d=4, g=3)
        eng = Engine()
        report = eng.query(left, right).k(5).explain()
        assert report.algorithm == "grouping"
        assert report.stats.n_left == 12
        assert not report.cache_hit
        assert "chosen: grouping" in report.summary()

    def test_explain_reports_cache_hit(self):
        left, right = make_random_pair(seed=46, n=12, d=4, g=3)
        eng = Engine()
        eng.query(left, right).k(5).run()
        assert eng.query(left, right).k(5).explain().cache_hit

    def test_explicit_algorithm_is_reported_as_requested(self):
        left, right = make_random_pair(seed=46, n=12, d=4, g=3)
        report = Engine().query(left, right).algorithm("naive").k(5).explain()
        assert report.algorithm == "naive"
        assert report.reason == "explicitly requested"

    def test_auto_runs_the_explained_algorithm(self):
        """The report's choice is what run() actually executes."""
        for seed, n, g in ((40, 40, 4), (42, 30, 15)):
            left, right = make_random_pair(seed=seed, n=n, d=4, g=g)
            eng = Engine()
            report = eng.query(left, right).k(5).explain()
            result = eng.query(left, right).k(5).run()
            assert result.algorithm == report.algorithm

    def test_non_monotone_aggregate_runs_naive_instead_of_raising(self):
        left, right = make_random_pair(seed=47, n=10, d=4, g=3, a=1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", SoundnessWarning)
            result = Engine().query(left, right).aggregate("max").k(5).run()
        assert result.algorithm == "naive"

    def test_find_k_explain(self):
        left, right = make_random_pair(seed=48, n=12, d=4, g=3)
        report = Engine().query(left, right).delta(3).method("binary").explain()
        assert report.algorithm == "binary"
        assert report.costs["binary"] <= report.costs["naive"]
        assert "search over k" in report.reason
