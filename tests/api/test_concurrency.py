"""Concurrent front-end: execute_many fan-out and engine thread-safety."""

import threading

import pytest

from repro.api import Engine, QuerySpec
from repro.errors import ParameterError

from ..helpers import make_random_pair


@pytest.fixture
def pair():
    return make_random_pair(seed=21, n=16, d=4, g=3)


def _mixed_requests(pair, other):
    """A batch mixing named/anonymous inputs, ks, algorithms, and find_k."""
    requests = []
    for k in (5, 6, 7, 8):
        requests.append(("L", "R", QuerySpec.for_ksjq(k=k)))
        requests.append((pair[0], pair[1], QuerySpec.for_ksjq(k=k, algorithm="naive")))
        requests.append(("L2", "R2", QuerySpec.for_ksjq(k=k, mode="exact")))
    requests.append(("L", "R", QuerySpec.for_find_k(delta=3)))
    requests.append(("L2", "R2", QuerySpec.for_find_k(delta=2, method="range")))
    return requests


def _comparable(result):
    if hasattr(result, "pair_set"):
        return result.pair_set()
    return result.k  # FindKResult


class TestExecuteMany:
    def test_results_in_request_order(self, pair):
        eng = Engine()
        eng.register("L", pair[0])
        eng.register("R", pair[1])
        specs = [QuerySpec.for_ksjq(k=k) for k in (5, 6, 7)]
        out = eng.execute_many([("L", "R", s) for s in specs], max_workers=3)
        assert [r.spec for r in out] == specs

    def test_serial_fallback_matches_parallel(self, pair):
        other = make_random_pair(seed=22, n=12, d=4, g=2)
        for eng_kwargs in ({}, {"max_results": 16}):
            parallel_eng = Engine(**eng_kwargs)
            serial_eng = Engine(**eng_kwargs)
            for eng in (parallel_eng, serial_eng):
                eng.register("L", pair[0])
                eng.register("R", pair[1])
                eng.register("L2", other[0])
                eng.register("R2", other[1])
            requests = _mixed_requests(pair, other)
            parallel = parallel_eng.execute_many(requests, max_workers=8)
            serial = serial_eng.execute_many(requests, max_workers=1)
            assert [_comparable(r) for r in parallel] == [_comparable(r) for r in serial]

    def test_stress_eight_plus_workers_identical_to_serial(self, pair):
        """The acceptance stress test: a large shared-engine batch on 8+
        threads returns exactly the serial answers, repeatedly."""
        other = make_random_pair(seed=22, n=12, d=4, g=2)
        eng = Engine(max_results=32)
        eng.register("L", pair[0])
        eng.register("R", pair[1])
        eng.register("L2", other[0])
        eng.register("R2", other[1])
        requests = _mixed_requests(pair, other) * 4  # 56 requests

        serial = [
            Engine().execute(
                *(eng.catalog[x].relation if isinstance(x, str) else x for x in req[:-1]),
                req[-1],
            )
            for req in requests
        ]
        expected = [_comparable(r) for r in serial]
        for _ in range(3):  # repeat: later rounds run against warm caches
            results = eng.execute_many(requests, max_workers=8)
            assert [_comparable(r) for r in results] == expected

    def test_accepts_builders(self, pair):
        eng = Engine()
        eng.register("L", pair[0])
        eng.register("R", pair[1])
        batch = [eng.query("L", "R").k(k) for k in (5, 6)]
        out = eng.execute_many(batch, max_workers=2)
        assert [r.spec.k for r in out] == [5, 6]

    def test_exception_propagates_by_default(self, pair):
        eng = Engine()
        bad = ("missing", "also-missing", QuerySpec.for_ksjq(k=5))
        with pytest.raises(Exception):
            eng.execute_many([bad], max_workers=2)

    def test_return_exceptions_keeps_batch_alive(self, pair):
        eng = Engine()
        eng.register("L", pair[0])
        eng.register("R", pair[1])
        good = ("L", "R", QuerySpec.for_ksjq(k=5))
        bad = ("missing", "R", QuerySpec.for_ksjq(k=5))
        out = eng.execute_many([good, bad, good], max_workers=4, return_exceptions=True)
        assert out[0].pair_set() == out[2].pair_set()
        assert isinstance(out[1], Exception)

    def test_rejects_malformed_requests(self, pair):
        with pytest.raises(ParameterError, match="request"):
            Engine().execute_many(["not-a-request"], max_workers=2)


class TestThreadSafety:
    def test_concurrent_execute_shares_one_plan(self, pair):
        """Many threads issuing the same query against a cold engine
        produce identical answers; the cache ends at one entry."""
        eng = Engine()
        eng.register("L", pair[0])
        eng.register("R", pair[1])
        spec = QuerySpec.for_ksjq(k=6)
        results, errors = [], []
        barrier = threading.Barrier(10)

        def worker():
            try:
                barrier.wait()
                results.append(eng.execute("L", "R", spec))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(10)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        expected = Engine().execute(*pair, spec).pair_set()
        assert all(r.pair_set() == expected for r in results)
        assert eng.cache_info()["size"] == 1

    def test_concurrent_mutation_and_query_stays_consistent(self, pair):
        """Queries racing a mutator always see a consistent snapshot:
        every answer equals the serial answer for one of the versions."""
        eng = Engine()
        ds = eng.register("L", pair[0])
        eng.register("R", pair[1])
        spec = QuerySpec.for_ksjq(k=6)
        before = Engine().execute(ds.relation, pair[1], spec).pair_set()
        extra = dict(pair[0].record(0))

        answers, errors = [], []
        start = threading.Barrier(5)

        def querier():
            try:
                start.wait()
                for _ in range(5):
                    answers.append(eng.execute("L", "R", spec).pair_set())
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def mutator():
            start.wait()
            ds.insert_rows([extra])

        threads = [threading.Thread(target=querier) for _ in range(4)]
        threads.append(threading.Thread(target=mutator))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        after = Engine().execute(ds.relation, pair[1], spec).pair_set()
        assert all(ans in (before, after) for ans in answers)
