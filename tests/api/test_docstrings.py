"""Docstring audit of the public API surface.

The documentation build (``pdoc`` in CI) renders whatever docstrings
exist; this test keeps them existent and substantive so the build check
cannot silently degrade into empty pages. Every public class and every
public method/property of the serving surface must carry a docstring of
at least one full sentence.
"""

import inspect

import pytest

from repro.api import (
    Catalog,
    Engine,
    ExplainReport,
    QueryBuilder,
    QueryHandle,
    QuerySpec,
)
from repro.relational.dataset import Dataset

SURFACE = [Engine, QuerySpec, QueryBuilder, Catalog, QueryHandle, ExplainReport, Dataset]


def public_members(cls):
    for name, member in inspect.getmembers(cls):
        if name.startswith("_"):
            continue
        if inspect.isfunction(member) or isinstance(member, property):
            yield name, member


@pytest.mark.parametrize("cls", SURFACE, ids=lambda c: c.__name__)
def test_class_has_docstring(cls):
    assert cls.__doc__ and len(cls.__doc__.strip()) > 20


@pytest.mark.parametrize("cls", SURFACE, ids=lambda c: c.__name__)
def test_every_public_member_is_documented(cls):
    undocumented = []
    for name, member in public_members(cls):
        doc = (
            member.fget.__doc__
            if isinstance(member, property)
            else member.__doc__
        )
        if not doc or len(doc.strip()) < 10:
            undocumented.append(name)
    assert not undocumented, (
        f"{cls.__name__} has undocumented public members: {undocumented}"
    )
