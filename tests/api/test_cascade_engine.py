"""Engine cascade path: specs, plan cache, explain, streaming, fail-fast."""

import warnings

import numpy as np
import pytest

from repro.api import Engine, QuerySpec, choose_cascade_algorithm
from repro.core import CascadePlan, CascadeResult, Hop, cascade_ksjq
from repro.errors import JoinError, ParameterError, SoundnessWarning
from repro.relational import HopSpec, Relation, RelationSchema, ThetaCondition, ThetaOp

from ..helpers import make_random_pair


def make_leg(n, seed, name, a=0, cities_in=("A",), cities_out=("B", "C")):
    rng = np.random.default_rng(seed)
    names = ["s0", "s1", "s2"]
    schema = RelationSchema.build(
        skyline=names, aggregate=names[:a], payload=["src", "dst", "hour"]
    )
    columns = {name: np.floor(rng.uniform(0, 4, n)) for name in names}
    columns["src"] = [cities_in[i % len(cities_in)] for i in range(n)]
    columns["dst"] = [cities_out[i % len(cities_out)] for i in range(n)]
    columns["hour"] = list(np.round(rng.uniform(0, 24, n), 1))
    return Relation(schema, columns, name=name)


@pytest.fixture
def chain():
    return (
        make_leg(10, 1, "L1", cities_out=("X", "Y")),
        make_leg(10, 2, "L2", cities_in=("X", "Y"), cities_out=("Z", "W")),
        make_leg(10, 3, "L3", cities_in=("Z", "W")),
    )


HOPS = [Hop("dst", "src"), Hop("dst", "src")]


class TestEngineCascade:
    def test_three_way_through_query(self, chain):
        eng = Engine()
        result = (
            eng.query(*chain).hop("dst", "src").hop("dst", "src").k(8).run()
        )
        assert isinstance(result, CascadeResult)
        legacy = cascade_ksjq(chain, k=8, hops=HOPS, engine=Engine())
        assert result.chain_set() == legacy.chain_set()

    def test_second_execution_hits_cache(self, chain):
        eng = Engine()
        query = eng.query(*chain).hop("dst", "src").hop("dst", "src").k(8)
        first = query.run()
        assert eng.cache_info()["misses"] == 1
        second = query.run()
        info = eng.cache_info()
        assert info["hits"] == 1 and info["misses"] == 1
        assert second.source is first.source  # same cached CascadePlan
        assert second.chain_set() == first.chain_set()

    def test_cascade_and_theta_specs_cache_independently(self, chain):
        pair = make_random_pair(seed=21, n=10, d=4, g=3)
        cond = ThetaCondition("s0", ThetaOp.LT, "s1")
        eng = Engine()
        eng.query(*chain).hop("dst", "src").hop("dst", "src").k(8).run()
        eng.query(*pair).theta(cond).k(5).run()
        assert eng.cache_info()["misses"] == 2
        eng.query(*chain).hop("dst", "src").hop("dst", "src").k(8).run()
        eng.query(*pair).theta(cond).k(5).run()
        info = eng.cache_info()
        assert info["hits"] == 2 and info["misses"] == 2 and info["size"] == 2

    def test_lru_eviction_across_join_shapes(self, chain):
        pair = make_random_pair(seed=22, n=10, d=4, g=3)
        cond = ThetaCondition("s0", ThetaOp.LT, "s1")
        eng = Engine(max_plans=1)
        eng.query(*chain).hop("dst", "src").hop("dst", "src").k(8).run()
        eng.query(*pair).theta(cond).k(5).run()  # evicts the cascade plan
        info = eng.cache_info()
        assert info["evictions"] == 1 and info["size"] == 1
        eng.query(*chain).hop("dst", "src").hop("dst", "src").k(8).run()
        assert eng.cache_info()["misses"] == 3

    def test_different_hops_are_different_plans(self, chain):
        eng = Engine()
        eng.query(*chain).hop("dst", "src").hop("dst", "src").k(8).run()
        cond = ThetaCondition("hour", ThetaOp.LT, "hour")
        eng.query(*chain).hop("dst", "src").theta(cond).k(8).run()
        info = eng.cache_info()
        assert info["misses"] == 2 and info["size"] == 2

    def test_default_hops_share_plan_with_explicit_key_hops(self):
        pair = make_random_pair(seed=23, n=10, d=4, g=3)
        eng = Engine()
        spec_default = QuerySpec.for_cascade(k=6)
        spec_explicit = QuerySpec.for_cascade(k=6, hops=[HopSpec.key()])
        eng.execute(*pair, spec=spec_default)
        eng.execute(*pair, spec=spec_explicit)
        info = eng.cache_info()
        assert info["misses"] == 1 and info["hits"] == 1

    def test_auto_picks_cascade_algorithm(self, chain):
        eng = Engine()
        result = eng.query(*chain).hop("dst", "src").hop("dst", "src").k(8).run()
        plan = result.source
        chosen, costs, _ = choose_cascade_algorithm(plan)
        assert result.algorithm == chosen
        assert set(costs) == {"naive", "pruned"}

    def test_weak_aggregate_forces_naive_on_auto(self):
        left, right = make_random_pair(seed=24, n=8, d=3, g=2, a=1)
        eng = Engine()
        result = (
            eng.query(left, right)
            .hop(None, None)
            .aggregate("max")
            .algorithm("auto")
            .k(4)
            .run()
        )
        assert result.algorithm == "naive"

    def test_stream_matches_run(self, chain):
        eng = Engine()
        query = eng.query(*chain).hop("dst", "src").hop("dst", "src").k(8)
        ran = query.run().chain_set()
        streamed = set(query.stream())
        assert streamed == ran
        assert eng.cache_info()["misses"] == 1  # stream reused the plan

    def test_stream_honors_naive_with_weak_aggregate(self):
        left, right = make_random_pair(seed=28, n=8, d=3, g=2, a=1)
        eng = Engine()
        query = (
            eng.query(left, right)
            .hop("grp", "grp")
            .aggregate("max")
            .algorithm("naive")
            .k(4)
        )
        assert set(query.stream()) == query.run().chain_set()

    def test_stream_validates_eagerly(self, chain):
        query = Engine().query(*chain).hop("dst", "src").hop("dst", "src")
        with pytest.raises(ParameterError, match="cascade range"):
            query.stream(k=99)  # fails at the call, not on first next()

    def test_repeat_pruned_query_reuses_candidate_set(self, chain):
        eng = Engine()
        query = eng.query(*chain).hop("dst", "src").hop("dst", "src").k(8)
        first = query.run()
        plan = first.source
        candidates, matrix = plan.pruned_candidates(8)
        query.run()
        again_candidates, again_matrix = plan.pruned_candidates(8)
        assert again_candidates is candidates and again_matrix is matrix

    def test_provenance_and_records(self, chain):
        eng = Engine()
        result = eng.query(*chain).hop("dst", "src").hop("dst", "src").k(8).run()
        assert isinstance(result.spec, QuerySpec)
        assert result.spec.join == "cascade" and result.spec.k == 8
        assert isinstance(result.source, CascadePlan)
        records = result.to_records()
        assert len(records) == result.count
        if records:
            assert {"r1.s0", "r2.s0", "r3.s0", "r1._row"} <= set(records[0])


class TestExplain:
    def test_explain_reports_chain_stats(self, chain):
        eng = Engine()
        report = (
            eng.query(*chain).hop("dst", "src").hop("dst", "src").k(8).explain()
        )
        assert report.algorithm in ("naive", "pruned")
        assert report.stats.n_relations == 3
        assert report.stats.base_sizes == (10, 10, 10)
        assert set(report.costs) == {"naive", "pruned"}
        text = report.summary()
        assert "chains" in text and "cascade" in text

    def test_stats_join_size_matches_total_chains(self, chain):
        eng = Engine()
        query = eng.query(*chain).hop("dst", "src").hop("dst", "src").k(8)
        report = query.explain()
        result = query.run()
        assert report.stats.join_size == result.total_chains

    def test_stats_join_size_matches_for_theta_hop(self, chain):
        cond = ThetaCondition("hour", ThetaOp.LT, "hour")
        eng = Engine()
        query = eng.query(*chain).hop("dst", "src").theta(cond).k(8)
        assert query.explain().stats.join_size == query.run().total_chains

    def test_explicit_algorithm_reported(self, chain):
        eng = Engine()
        report = (
            eng.query(*chain)
            .hop("dst", "src")
            .hop("dst", "src")
            .algorithm("naive")
            .k(8)
            .explain()
        )
        assert report.algorithm == "naive"
        assert report.reason == "explicitly requested"

    def test_cache_hit_flag(self, chain):
        eng = Engine()
        query = eng.query(*chain).hop("dst", "src").hop("dst", "src").k(8)
        assert query.explain().cache_hit is False
        assert query.explain().cache_hit is True


class TestFailFast:
    def test_unknown_cascade_algorithm(self):
        with pytest.raises(ParameterError, match="unknown cascade algorithm"):
            QuerySpec.for_cascade(k=5, algorithm="grouping")

    def test_pruned_rejects_weak_aggregate_before_joining(self):
        with pytest.raises(ParameterError, match="strictly monotone"):
            QuerySpec.for_cascade(k=5, aggregate="max", algorithm="pruned")

    def test_find_k_rejects_cascades(self, chain):
        with pytest.raises(ParameterError, match="two-way"):
            QuerySpec(problem="find_k", join="cascade", delta=3)
        with pytest.raises(ParameterError, match="two-way"):
            Engine().query(*chain).hop("dst", "src").hop("dst", "src").find_k(delta=3)

    def test_hops_require_cascade_join(self):
        with pytest.raises(JoinError, match="hops given"):
            QuerySpec.for_ksjq(k=5, join="equality").replace(hops=(HopSpec(),))

    def test_hop_count_mismatch(self, chain):
        with pytest.raises(JoinError, match="need 2 hops for 3 relations"):
            Engine().query(*chain).hop("dst", "src").k(8).run()

    def test_missing_hop_column(self, chain):
        eng = Engine()
        with pytest.raises(JoinError, match="no attribute 'dest'"):
            eng.query(*chain).hop("dest", "src").hop("dst", "src").k(8).run()
        assert eng.cache_info()["size"] == 0  # the broken plan was not cached

    def test_composite_key_hop_needs_join_attributes(self, chain):
        with pytest.raises(JoinError, match="no join attributes"):
            Engine().query(*chain).hop(None, None).hop(None, None).k(8).run()

    def test_k_range_validated_before_joining(self, chain):
        eng = Engine()
        query = eng.query(*chain).hop("dst", "src").hop("dst", "src")
        with pytest.raises(ParameterError, match="cascade range"):
            query.k(3).run()
        with pytest.raises(ParameterError, match="max_i d_i < k <= sum_i l_i \\+ a"):
            query.k(10).run()
        # Validation happened on the plan, before any chain enumeration.
        plan = eng.cascade_plan(chain, hops=HOPS)
        assert plan._chains is None

    def test_mixing_join_kind_and_hops(self, chain):
        builder = Engine().query(*chain).join("cartesian").hop("dst", "src")
        with pytest.raises(ParameterError, match="two-way"):
            builder.k(8).run()

    def test_query_needs_two_relations(self, chain):
        with pytest.raises(ParameterError, match="at least two"):
            Engine().query(chain[0])

    def test_theta_shorthand_on_pairs_keeps_two_way_algorithms(self):
        pair = make_random_pair(seed=25, n=10, d=4, g=3)
        cond = ThetaCondition("s0", ThetaOp.LT, "s1")
        result = Engine().query(*pair).theta(cond).algorithm("grouping").k(5).run()
        assert result.spec.join == "theta"
        assert result.algorithm == "grouping"


class TestSpecHops:
    def test_spec_coerces_legacy_hops(self):
        spec = QuerySpec.for_cascade(k=6, hops=[Hop("dst", "src"), None])
        assert spec.hops == (
            HopSpec.on_columns("dst", "src"),
            HopSpec.key(),
        )

    def test_spec_coerces_theta_hops(self):
        cond = ThetaCondition("hour", ThetaOp.LT, "hour")
        spec = QuerySpec.for_cascade(k=6, hops=[cond, [cond, cond]])
        assert spec.hops[0] == HopSpec.on_theta(cond)
        assert spec.hops[1] == HopSpec.on_theta((cond, cond))

    def test_equal_specs_hash_equal(self):
        a = QuerySpec.for_cascade(k=6, hops=[Hop("dst", "src")])
        b = QuerySpec.for_cascade(k=6, hops=[HopSpec.on_columns("dst", "src")])
        assert a == b and hash(a) == hash(b)

    def test_plan_key_ignores_execution_parameters(self):
        a = QuerySpec.for_cascade(k=6, hops=[Hop("dst", "src")], algorithm="naive")
        b = QuerySpec.for_cascade(k=7, hops=[Hop("dst", "src")], algorithm="pruned")
        assert a.plan_key() == b.plan_key()
        assert a.plan_key() != QuerySpec.for_cascade(k=6).plan_key()

    def test_describe_mentions_hops(self):
        spec = QuerySpec.for_cascade(k=6, hops=[Hop("dst", "src")])
        assert "left.dst == right.src" in spec.describe()

    def test_hopspec_validation(self):
        with pytest.raises(JoinError, match="unknown hop kind"):
            HopSpec(kind="outer")
        with pytest.raises(JoinError, match="theta"):
            HopSpec(kind="equality", theta=(ThetaCondition("a", ThetaOp.LT, "b"),))
        with pytest.raises(JoinError, match="columns"):
            HopSpec(kind="cartesian", left_column="dst")
        with pytest.raises(JoinError, match="cannot interpret"):
            HopSpec.coerce(42)


class TestCartesianHops:
    def test_cartesian_hop_joins_everything(self):
        left, right = make_random_pair(seed=26, n=6, d=3, g=2)
        eng = Engine()
        spec = QuerySpec.for_cascade(k=4, hops=[HopSpec.cross()])
        result = eng.execute(left, right, spec)
        assert result.total_chains == len(left) * len(right)
        naive = eng.execute(
            left, right, spec=spec.replace(algorithm="naive")
        )
        assert result.chain_set() == naive.chain_set()

    def test_cartesian_hop_stats(self):
        left, right = make_random_pair(seed=27, n=6, d=3, g=2)
        plan = CascadePlan((left, right), hops=[HopSpec.cross()])
        assert plan.stats().join_size == 36


@pytest.fixture(autouse=True)
def _silence_soundness_warnings():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", SoundnessWarning)
        yield
