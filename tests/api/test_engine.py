"""Engine plan cache: hit/miss accounting, reuse, eviction, provenance."""

import pytest

import repro
from repro.api import Engine, QuerySpec
import repro.api.engine as engine_mod
from repro.core.plan import JoinPlan

from ..helpers import make_random_pair


@pytest.fixture
def pair():
    return make_random_pair(seed=11, n=12, d=4, g=3)


class TestPlanCache:
    def test_second_query_hits_cache(self, pair):
        eng = Engine()
        eng.query(*pair).k(5).run()
        assert eng.cache_info()["misses"] == 1
        eng.query(*pair).k(5).run()
        info = eng.cache_info()
        assert info["hits"] == 1 and info["misses"] == 1 and info["size"] == 1

    def test_ksjq_then_find_k_share_one_plan(self, pair):
        eng = Engine()
        eng.query(*pair).k(5).run()
        eng.query(*pair).find_k(delta=3)
        info = eng.cache_info()
        assert info["misses"] == 1
        assert info["hits"] >= 1

    def test_plan_built_once_by_call_count(self, pair, monkeypatch):
        built = []
        real = JoinPlan

        def counting(*args, **kwargs):
            built.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(engine_mod, "JoinPlan", counting)
        eng = Engine()
        for k in (5, 6, 7):
            eng.query(*pair).k(k).run()
        eng.query(*pair).find_k(delta=2)
        assert len(built) == 1

    def test_memoized_structures_reused_across_queries(self, pair):
        eng = Engine()
        plan_a = eng.plan(*pair)
        view = plan_a.view()  # force the expensive enumeration
        plan_b = eng.plan(*pair)
        assert plan_b is plan_a
        assert plan_b.view() is view

    def test_equal_content_relations_share_entry(self, pair):
        eng = Engine()
        eng.query(*pair).k(5).run()
        clone = make_random_pair(seed=11, n=12, d=4, g=3)
        assert clone[0] is not pair[0]
        eng.query(*clone).k(5).run()
        info = eng.cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_different_join_config_misses(self, pair):
        eng = Engine()
        eng.query(*pair).k(5).run()
        eng.query(*pair).join("cartesian").k(5).run()
        info = eng.cache_info()
        assert info["misses"] == 2 and info["size"] == 2

    def test_lru_eviction(self, pair):
        other = make_random_pair(seed=12, n=10, d=4, g=2)
        eng = Engine(max_plans=1)
        eng.query(*pair).k(5).run()
        eng.query(*other).k(5).run()
        info = eng.cache_info()
        assert info["evictions"] == 1 and info["size"] == 1
        # The first pair was evicted: querying it again misses.
        eng.query(*pair).k(5).run()
        assert eng.cache_info()["misses"] == 3

    def test_lru_eviction_order_respects_recency(self, pair):
        """Eviction drops the least-recently-*used* entry, not the
        least-recently-inserted one: touching an old plan protects it."""
        second = make_random_pair(seed=12, n=10, d=4, g=2)
        third = make_random_pair(seed=13, n=10, d=4, g=2)
        eng = Engine(max_plans=2)
        eng.query(*pair).k(5).run()    # plan A
        eng.query(*second).k(5).run()  # plan B
        eng.query(*pair).k(6).run()    # touch A: B is now the LRU entry
        eng.query(*third).k(5).run()   # plan C evicts B, not A
        info = eng.cache_info()
        assert info["evictions"] == 1 and info["size"] == 2
        misses = info["misses"]
        eng.query(*pair).k(7).run()    # A survived
        eng.query(*third).k(6).run()   # C survived
        assert eng.cache_info()["misses"] == misses
        eng.query(*second).k(6).run()  # B was evicted: rebuild
        assert eng.cache_info()["misses"] == misses + 1

    def test_eviction_sequence_is_fifo_without_touches(self, pair):
        """Untouched entries leave in insertion order as capacity rolls."""
        pairs = [make_random_pair(seed=30 + i, n=8, d=4, g=2) for i in range(4)]
        eng = Engine(max_plans=2)
        for p in pairs:
            eng.query(*p).k(5).run()
        info = eng.cache_info()
        assert info["evictions"] == 2 and info["size"] == 2
        misses = info["misses"]
        eng.query(*pairs[2]).k(6).run()  # two newest entries survived
        eng.query(*pairs[3]).k(6).run()
        assert eng.cache_info()["misses"] == misses
        eng.query(*pairs[0]).k(6).run()  # the two oldest were evicted
        eng.query(*pairs[1]).k(6).run()
        assert eng.cache_info()["misses"] == misses + 2

    def test_zero_capacity_disables_caching(self, pair):
        eng = Engine(max_plans=0)
        eng.query(*pair).k(5).run()
        eng.query(*pair).k(5).run()
        info = eng.cache_info()
        assert info["hits"] == 0 and info["misses"] == 2 and info["size"] == 0

    def test_clear_cache(self, pair):
        eng = Engine()
        eng.query(*pair).k(5).run()
        eng.clear_cache()
        assert eng.cache_info()["size"] == 0
        eng.query(*pair).k(5).run()
        assert eng.cache_info()["misses"] == 2

    def test_custom_aggregate_does_not_collide_with_registry(self):
        """A custom function named 'sum' gets its own cache entry and
        its own (correct) answer — it is not swapped for registry SUM."""
        from repro.relational.aggregates import AggregateFunction

        left, right = make_random_pair(seed=13, n=10, d=4, g=3, a=1)
        shifted_sum = AggregateFunction(
            "sum", lambda x, y: x + y + 100.0, strictly_monotone=True
        )
        eng = Engine()
        import warnings

        from repro.errors import SoundnessWarning

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", SoundnessWarning)
            via_registry = eng.query(left, right).aggregate("sum").k(5).run()
            via_custom = eng.query(left, right).aggregate(shifted_sum).k(5).run()
            # legacy facade path accepts the custom object too
            res = repro.ksjq(left, right, k=5, aggregate=shifted_sum, engine=eng)
        assert eng.cache_info()["size"] == 2  # distinct plans
        assert via_custom.source.aggregate is shifted_sum
        assert res.source.aggregate is shifted_sum
        assert via_registry.source.aggregate.name == "sum"

    def test_explicit_plan_bypasses_cache(self, pair):
        eng = Engine()
        plan = JoinPlan(*pair)
        res = repro.ksjq(*pair, k=5, plan=plan, engine=eng)
        assert eng.cache_info()["requests"] == 0
        assert res.source is plan


class TestProvenance:
    def test_result_carries_spec_and_plan(self, pair):
        eng = Engine()
        res = eng.query(*pair).k(5).run()
        assert isinstance(res.spec, QuerySpec)
        assert res.spec.k == 5 and res.spec.problem == "ksjq"
        assert isinstance(res.source, JoinPlan)
        again = eng.query(*pair).k(5).run()
        assert again.source is res.source  # same cached plan object

    def test_find_k_provenance(self, pair):
        eng = Engine()
        res = eng.query(*pair).find_k(delta=3)
        assert res.spec.problem == "find_k" and res.spec.delta == 3
        assert isinstance(res.source, JoinPlan)

    def test_to_records_roundtrip(self, pair):
        eng = Engine()
        res = eng.query(*pair).k(5).run()
        records = res.to_records()
        assert len(records) == res.count
        if records:
            assert "_left_row" in records[0] and "r1.s0" in records[0]

    def test_elapsed_matches_timings(self, pair):
        res = Engine().query(*pair).k(5).run()
        assert res.elapsed == res.timings.total


class TestStreaming:
    def test_stream_matches_run(self, pair):
        eng = Engine()
        streamed = set(eng.query(*pair).k(5).stream())
        ran = eng.query(*pair).k(5).run().pair_set()
        assert streamed == ran
        assert eng.cache_info()["misses"] == 1  # stream shared the plan

    def test_stream_rejects_exact_mode(self, pair):
        with pytest.raises(repro.AlgorithmError, match="faithful"):
            Engine().query(*pair).k(5).mode("exact").stream()


class TestBuilder:
    def test_requires_k_or_delta(self, pair):
        with pytest.raises(repro.ParameterError, match="k"):
            Engine().query(*pair).run()
        with pytest.raises(repro.ParameterError, match="delta"):
            Engine().query(*pair).find_k()

    def test_builder_is_reusable(self, pair):
        query = Engine().query(*pair).k(5)
        first = query.run()
        report = query.explain()
        second = query.run()
        assert first.pair_set() == second.pair_set()
        assert report.spec == first.spec

    def test_find_k_after_k_prefers_delta(self, pair):
        query = Engine().query(*pair).k(5)
        tuned = query.find_k(delta=3)
        assert tuned.spec.problem == "find_k"
        # the configured k survives for later run() calls
        assert query.run().spec.k == 5
