"""Engine/spec/builder surface of the sharded parallel execution layer."""

import pytest

from repro.api import Engine, QuerySpec, choose_algorithm, choose_cascade_algorithm
from repro.core.parallel import ShardPlan
from repro.core.plan import CascadePlan, JoinPlan
from repro.errors import ParameterError

from ..helpers import make_random_pair


class TestSpecParallelism:
    def test_default_is_auto_and_equality_is_preserved(self):
        assert QuerySpec.for_ksjq(k=5).parallelism == "auto"
        assert QuerySpec.for_ksjq(k=5) == QuerySpec.for_ksjq(k=5, parallelism="auto")

    def test_explicit_workers_change_the_fingerprint(self):
        base = QuerySpec.for_ksjq(k=5)
        par = QuerySpec.for_ksjq(k=5, parallelism=4)
        assert base != par
        assert base.fingerprint() != par.fingerprint()
        assert "parallelism=4" in par.describe()

    @pytest.mark.parametrize("bad", [0, -2, True, 1.5, "four"])
    def test_invalid_parallelism_is_rejected(self, bad):
        with pytest.raises(ParameterError):
            QuerySpec.for_ksjq(k=5, parallelism=bad)

    def test_parallel_algorithm_is_a_valid_spec(self):
        spec = QuerySpec.for_ksjq(k=5, algorithm="parallel")
        assert spec.algorithm == "parallel"
        assert QuerySpec.for_cascade(k=5, algorithm="parallel").algorithm == "parallel"

    def test_find_k_accepts_but_carries_parallelism(self):
        spec = QuerySpec.for_find_k(delta=10, parallelism=2)
        assert spec.parallelism == 2

    def test_plan_key_ignores_parallelism(self):
        # Two specs differing only in parallelism share one cached plan.
        assert (
            QuerySpec.for_ksjq(k=5).plan_key()
            == QuerySpec.for_ksjq(k=5, parallelism=4).plan_key()
        )


class TestCostModel:
    def test_parallel_candidate_appears_only_with_workers(self):
        left, right = make_random_pair(seed=50, n=40, d=4, g=4)
        plan = JoinPlan(left, right)
        _, serial_costs, _ = choose_algorithm(plan, workers=1)
        assert "parallel" not in serial_costs
        _, par_costs, _ = choose_algorithm(plan, workers=4)
        assert "parallel" in par_costs

    def test_faithful_mode_with_two_aggregates_excludes_parallel(self):
        # Same answer-family gate as naive: the parallel path is exact,
        # so faithful auto with a >= 2 must not switch families.
        left, right = make_random_pair(seed=51, n=12, d=4, g=3, a=2)
        plan = JoinPlan(left, right, aggregate="sum")
        _, costs, reason = choose_algorithm(plan, mode="faithful", workers=4)
        assert "parallel" not in costs
        assert "excluded" in reason
        _, exact_costs, _ = choose_algorithm(plan, mode="exact", workers=4)
        assert "parallel" in exact_costs

    def test_non_monotone_aggregate_admits_parallel_with_workers(self):
        left, right = make_random_pair(seed=52, n=12, d=4, g=3, a=1)
        plan = JoinPlan(left, right, aggregate="max")
        algorithm, costs, _ = choose_algorithm(plan, workers=1)
        assert algorithm == "naive"
        _, costs, _ = choose_algorithm(plan, workers=4)
        assert set(costs) == {"naive", "parallel"}

    def test_huge_joins_prefer_parallel_over_naive(self):
        left, right = make_random_pair(seed=53, n=60, d=4, g=1)
        plan = JoinPlan(left, right)
        algorithm, costs, _ = choose_algorithm(plan, mode="exact", workers=4)
        assert costs["parallel"] < costs["naive"]

    def test_cascade_cost_model_gains_parallel_candidate(self):
        rng_pair = make_random_pair(seed=54, n=15, d=3, g=2)
        plan = CascadePlan(rng_pair)
        _, costs, _ = choose_cascade_algorithm(plan, workers=4)
        assert "parallel" in costs
        _, serial_costs, _ = choose_cascade_algorithm(plan)
        assert "parallel" not in serial_costs


class TestEngineParallel:
    def test_explicit_parallel_algorithm_matches_serial_auto_exact(self):
        left, right = make_random_pair(seed=55, n=45, d=4, g=3)
        engine = Engine()
        serial = engine.query(left, right).mode("exact").k(5).run()
        parallel = (
            engine.query(left, right).algorithm("parallel").parallelism(4).k(5).run()
        )
        assert parallel.pair_set() == serial.pair_set()

    def test_explain_reports_the_shard_plan(self):
        left, right = make_random_pair(seed=56, n=30, d=4, g=3)
        report = (
            Engine()
            .query(left, right)
            .algorithm("parallel")
            .parallelism(4)
            .k(5)
            .explain()
        )
        assert isinstance(report.shards, ShardPlan)
        assert report.shards.workers == 4
        assert "execution: 4" in report.summary()

    def test_explain_does_not_claim_workers_for_a_serial_choice(self):
        # A shard plan with workers may exist while the cost model still
        # picks a serial algorithm; the summary must say serial then.
        left, right = make_random_pair(seed=56, n=30, d=4, g=3)
        report = Engine().query(left, right).parallelism(4).k(5).explain()
        assert report.algorithm != "parallel"
        summary = report.summary()
        assert "execution: serial" in summary
        assert "chosen over the parallel path" in summary

    def test_explain_auto_small_join_is_serial(self):
        left, right = make_random_pair(seed=57, n=20, d=4, g=3)
        report = Engine().query(left, right).k(5).explain()
        assert report.shards is not None
        assert not report.shards.is_parallel

    def test_find_k_explain_has_no_shard_plan(self):
        left, right = make_random_pair(seed=58, n=20, d=4, g=3)
        report = Engine().query(left, right).delta(5).explain()
        assert report.shards is None

    def test_result_cache_does_not_fragment_on_worker_count(self):
        # Explicit algorithms answer identically at any parallelism, so
        # a w=2 result must serve a w=4 repeat from the result cache.
        left, right = make_random_pair(seed=63, n=30, d=4, g=3)
        engine = Engine(max_results=8)
        engine.execute(
            left, right, QuerySpec.for_ksjq(k=5, algorithm="parallel", parallelism=2)
        )
        hit = engine.execute(
            left, right, QuerySpec.for_ksjq(k=5, algorithm="parallel", parallelism=4)
        )
        assert engine.result_stats.hits == 1
        # The cached answer is reused, but provenance reports the spec
        # this caller actually passed.
        assert hit.spec.parallelism == 4
        # auto specs keep parallelism in the key: the worker budget can
        # steer the algorithm choice between answer families.
        engine.execute(left, right, QuerySpec.for_ksjq(k=5, parallelism=2))
        engine.execute(left, right, QuerySpec.for_ksjq(k=5, parallelism=4))
        assert engine.result_stats.hits == 1

    def test_execute_many_composes_with_parallel_specs(self):
        left, right = make_random_pair(seed=59, n=40, d=4, g=3)
        engine = Engine()
        spec = QuerySpec.for_ksjq(k=5, algorithm="parallel", parallelism=2)
        requests = [(left, right, spec)] * 6
        serial = engine.execute_many(requests, max_workers=1)
        fanned = engine.execute_many(requests, max_workers=4)
        for a, b in zip(serial, fanned):
            assert a.pair_set() == b.pair_set()

    def test_cascade_parallel_through_engine(self):
        left, right = make_random_pair(seed=60, n=20, d=4, g=2)
        engine = Engine()
        naive = (
            engine.query(left, right, left)
            .hop()
            .hop()
            .algorithm("naive")
            .k(7)
            .run()
        )
        parallel = (
            engine.query(left, right, left)
            .hop()
            .hop()
            .algorithm("parallel")
            .parallelism(2)
            .k(7)
            .run()
        )
        assert parallel.chain_set() == naive.chain_set()

    def test_cascade_parallel_does_not_stream(self):
        left, right = make_random_pair(seed=61, n=10, d=4, g=2)
        engine = Engine()
        builder = (
            engine.query(left, right, left).hop().hop().algorithm("parallel").k(7)
        )
        with pytest.raises(ParameterError):
            builder.stream()

    def test_handle_explain_reflects_current_state(self):
        left, right = make_random_pair(seed=62, n=20, d=4, g=3)
        engine = Engine()
        handle = engine.query(left, right).parallelism(2).k(5).prepare()
        report = handle.explain()
        assert report.shards is not None and report.shards.workers == 2
