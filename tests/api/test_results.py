"""Unified result protocol: to_records, elapsed, provenance."""

import pytest

import repro
from repro.api import Engine
from repro.core import cascade_ksjq
from repro.core.result import QueryResult
from repro.errors import AlgorithmError

from ..helpers import make_random_pair


@pytest.fixture
def pair():
    return make_random_pair(seed=50, n=10, d=4, g=3)


class TestProtocol:
    def test_all_results_implement_the_protocol(self, pair):
        eng = Engine()
        ksjq_res = eng.query(*pair).k(5).run()
        findk_res = eng.query(*pair).find_k(delta=2)
        cascade_res = cascade_ksjq([*pair], k=5)
        for res in (ksjq_res, findk_res, cascade_res):
            assert isinstance(res, QueryResult)
            assert res.elapsed >= 0.0
            assert res.count >= 0
            assert isinstance(res.to_records(), list)

    def test_ksjq_records_have_joined_columns(self, pair):
        res = Engine().query(*pair).k(5).run()
        records = res.to_records()
        assert len(records) == res.count
        for record in records:
            assert {"r1.s0", "r2.s0", "_left_row", "_right_row"} <= set(record)

    def test_ksjq_records_need_a_source(self, pair):
        from repro.core import run_naive
        from repro.core.plan import JoinPlan

        bare = run_naive(JoinPlan(*pair), 5)
        assert bare.source is None
        if bare.count:
            with pytest.raises(AlgorithmError, match="Engine"):
                bare.to_records()

    def test_find_k_records_trace_the_search(self, pair):
        res = Engine().query(*pair).find_k(delta=2)
        records = res.to_records()
        assert len(records) == len(res.steps)
        assert {"k", "lower_bound", "upper_bound", "exact_count", "decision"} <= set(
            records[0]
        )

    def test_cascade_records_prefix_per_relation(self, pair):
        res = cascade_ksjq([*pair], k=5)
        records = res.to_records()
        assert len(records) == res.count
        if records:
            assert "r1.s0" in records[0] and "r2.s0" in records[0]
            assert records[0]["r1._row"] >= 0
        assert res.timings.total >= 0.0

    def test_with_provenance_round_trip(self, pair):
        from repro.core import run_naive
        from repro.core.plan import JoinPlan

        plan = JoinPlan(*pair)
        spec = repro.QuerySpec.for_ksjq(k=5)
        res = run_naive(plan, 5).with_provenance(spec, plan)
        assert res.spec is spec and res.source is plan
        assert res.pair_set() == run_naive(plan, 5).pair_set()

    def test_legacy_facade_results_carry_provenance(self, pair):
        res = repro.ksjq(*pair, k=5, engine=Engine())
        assert res.spec is not None and res.source is not None
