"""Engine results are pair-identical to the legacy facade and raw runners."""

import warnings

import pytest

import repro
from repro.api import Engine
from repro.core import run_cartesian, run_dominator, run_grouping, run_naive
from repro.core.find_k import find_k_at_least_delta, find_k_at_most_delta
from repro.core.plan import JoinPlan
from repro.datagen.paper_example import flight_example_relations
from repro.errors import SoundnessWarning

from ..helpers import make_random_pair

RUNNERS = {
    "naive": run_naive,
    "grouping": run_grouping,
    "dominator": run_dominator,
    "cartesian": run_cartesian,
}


def _run_reference(algorithm, plan, k, mode):
    if algorithm == "naive":
        return run_naive(plan, k)
    return RUNNERS[algorithm](plan, k, mode=mode)


def _pairs_for(name):
    if name == "paper":
        return flight_example_relations()
    seed = {"random-a": 31, "random-b": 32}[name]
    return make_random_pair(seed=seed, n=12, d=4, g=3)


@pytest.mark.parametrize("dataset", ["paper", "random-a", "random-b"])
@pytest.mark.parametrize("algorithm", ["naive", "grouping", "dominator"])
@pytest.mark.parametrize("mode", ["faithful", "exact"])
class TestKsjqParity:
    def test_equality_join(self, dataset, algorithm, mode):
        left, right = _pairs_for(dataset)
        k = left.schema.d + 1
        expected = _run_reference(algorithm, JoinPlan(left, right), k, mode)
        eng = Engine()
        via_engine = (
            eng.query(left, right).algorithm(algorithm).mode(mode).k(k).run()
        )
        via_facade = repro.ksjq(
            left, right, k=k, algorithm=algorithm, mode=mode, engine=eng
        )
        assert via_engine.pair_set() == expected.pair_set()
        assert via_facade.pair_set() == expected.pair_set()
        assert via_engine.algorithm == expected.algorithm


@pytest.mark.parametrize("algorithm", ["naive", "grouping", "dominator", "cartesian"])
@pytest.mark.parametrize("mode", ["faithful", "exact"])
def test_cartesian_join_parity_all_four_algorithms(algorithm, mode):
    left, right = make_random_pair(seed=33, n=9, d=4, g=3)
    k = left.schema.d + 1
    plan = JoinPlan(left, right, kind="cartesian")
    expected = _run_reference(algorithm, plan, k, mode)
    via_engine = (
        Engine()
        .query(left, right)
        .join("cartesian")
        .algorithm(algorithm)
        .mode(mode)
        .k(k)
        .run()
    )
    assert via_engine.pair_set() == expected.pair_set()


@pytest.mark.parametrize("mode", ["faithful", "exact"])
def test_aggregate_parity(mode):
    left, right = make_random_pair(seed=34, n=10, d=4, g=3, a=1)
    k = left.schema.d + 1
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", SoundnessWarning)
        expected = run_grouping(JoinPlan(left, right, aggregate="sum"), k, mode=mode)
        via_engine = (
            Engine()
            .query(left, right)
            .aggregate("sum")
            .algorithm("grouping")
            .mode(mode)
            .k(k)
            .run()
        )
    assert via_engine.pair_set() == expected.pair_set()


def test_auto_matches_explicit_choice():
    """auto runs whatever the cost model picks; the answer is unchanged."""
    left, right = make_random_pair(seed=35, n=12, d=4, g=3)
    eng = Engine()
    auto = eng.query(left, right).k(5).run()
    explicit = eng.query(left, right).algorithm(auto.algorithm).k(5).run()
    assert auto.pair_set() == explicit.pair_set()
    # and agrees with the exact ground truth (a=0: all algorithms exact)
    truth = run_naive(JoinPlan(left, right), 5)
    assert auto.pair_set() == truth.pair_set()


@pytest.mark.parametrize("method", ["naive", "range", "binary"])
@pytest.mark.parametrize("objective", ["at_least", "at_most"])
def test_find_k_parity(method, objective):
    left, right = make_random_pair(seed=36, n=12, d=4, g=3)
    finder = find_k_at_least_delta if objective == "at_least" else find_k_at_most_delta
    expected = finder(JoinPlan(left, right), 3, method=method)
    eng = Engine()
    via_engine = eng.query(left, right).find_k(
        delta=3, method=method, objective=objective
    )
    via_facade = repro.find_k(
        left, right, delta=3, method=method, objective=objective, engine=eng
    )
    assert via_engine.k == expected.k
    assert via_facade.k == expected.k
    assert [s.k for s in via_engine.steps] == [s.k for s in expected.steps]


def test_facade_fails_fast_before_plan_construction(monkeypatch):
    """Bad arguments must not pay the join-preparation cost."""
    left, right = make_random_pair(seed=37, n=10, d=4, g=3)

    def exploding_init(self, *args, **kwargs):
        raise AssertionError("JoinPlan was constructed for an invalid query")

    monkeypatch.setattr(JoinPlan, "__init__", exploding_init)
    with pytest.raises(repro.AlgorithmError, match="unknown algorithm"):
        repro.ksjq(left, right, k=4, algorithm="quantum")
    with pytest.raises(repro.AlgorithmError, match="unknown mode"):
        repro.ksjq(left, right, k=4, mode="sloppy")
    with pytest.raises(repro.ParameterError, match="method"):
        repro.find_k(left, right, delta=3, method="ternary")
    with pytest.raises(repro.AlgorithmError, match="objective"):
        repro.find_k(left, right, delta=3, objective="exactly")
    with pytest.raises(repro.ParameterError, match="delta"):
        repro.find_k(left, right, delta=0)
