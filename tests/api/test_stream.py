"""Streaming front-end tests: maintain(), stream_window(), counters.

The serving-layer contract of the delta-maintenance subsystem: handles
only attach to registered datasets (that is where the delta feed
lives), results track mutations exactly, engine-wide counters surface
in ``cache_info()``, and sliding windows advance by batched
delete+insert deltas while leaving no catalog residue behind.
"""

import numpy as np
import pytest

from repro.api import Catalog, Engine, MaintainedResult, QuerySpec
from repro.errors import CatalogError, ParameterError

from ..helpers import make_random_pair

SPEC = QuerySpec.for_ksjq(k=7, aggregate="sum", mode="exact")


def build_engine(seed: int = 5, n: int = 20) -> Engine:
    left, right = make_random_pair(seed=seed, n=n, d=4, g=3, a=1)
    engine = Engine()
    engine.register("left", left)
    engine.register("right", right)
    return engine


def reference(engine: Engine, spec: QuerySpec = SPEC):
    return Engine().execute(
        engine.catalog["left"].relation, engine.catalog["right"].relation, spec
    )


# ----------------------------------------------------------------------
# maintain(): lifecycle and correctness
# ----------------------------------------------------------------------
class TestMaintain:
    def test_initial_answer_matches_execute(self):
        engine = build_engine()
        live = engine.maintain("left", "right", SPEC)
        assert isinstance(live, MaintainedResult)
        assert live.result().pairs.tobytes() == reference(engine).pairs.tobytes()
        assert live.spec == SPEC
        assert not live.closed

    def test_insert_and_delete_track_mutations(self):
        engine = build_engine()
        live = engine.maintain("left", "right", SPEC)
        engine.catalog["left"].insert_rows(
            engine.catalog["left"].relation.take([0, 1]).records()
        )
        assert live.result().pairs.tobytes() == reference(engine).pairs.tobytes()
        engine.catalog["right"].delete_rows([0, 3])
        assert live.result().pairs.tobytes() == reference(engine).pairs.tobytes()
        stats = live.stats()
        assert stats["applied_deltas"] == 2
        assert stats["delta_rows"] == 4

    def test_replace_falls_back_to_recompute(self):
        engine = build_engine()
        live = engine.maintain("left", "right", SPEC)
        engine.catalog["left"].replace(engine.catalog["right"].relation)
        assert live.result().pairs.tobytes() == reference(engine).pairs.tobytes()
        assert live.stats()["fallback_recomputes"] == 1

    def test_close_detaches_and_context_manager(self):
        engine = build_engine()
        with engine.maintain("left", "right", SPEC) as live:
            frozen = live.result()
        assert live.closed
        engine.catalog["left"].delete_rows([0])
        assert live.result() is frozen  # no further updates after close
        assert live.stats()["applied_deltas"] == 0
        live.close()  # idempotent

    def test_refresh_recomputes_without_counting_fallback(self):
        engine = build_engine()
        live = engine.maintain("left", "right", SPEC)
        result = live.refresh()
        assert result.pairs.tobytes() == reference(engine).pairs.tobytes()
        assert live.stats()["fallback_recomputes"] == 0

    def test_dataset_handle_inputs_accepted(self):
        engine = build_engine()
        live = engine.maintain(
            engine.catalog["left"], engine.catalog["right"], SPEC
        )
        assert live.count == reference(engine).count

    def test_builder_terminal(self):
        engine = build_engine()
        live = (
            engine.query("left", "right")
            .aggregate("sum")
            .mode("exact")
            .k(7)
            .maintain()
        )
        assert isinstance(live, MaintainedResult)
        engine.catalog["left"].delete_rows([2])
        assert live.result().pairs.tobytes() == reference(engine).pairs.tobytes()

    def test_repr_mentions_state(self):
        engine = build_engine()
        live = engine.maintain("left", "right", SPEC)
        assert "live" in repr(live)
        live.close()
        assert "closed" in repr(live)


class TestMaintainValidation:
    def test_plain_relation_input_rejected(self):
        engine = build_engine()
        left, _ = make_random_pair(seed=9, n=8, d=4, g=3, a=1)
        with pytest.raises(ParameterError, match="register"):
            engine.maintain(left, "right", SPEC)

    def test_foreign_dataset_rejected(self):
        engine = build_engine()
        other = Engine()
        foreign = other.register("left", engine.catalog["left"].relation)
        with pytest.raises(ParameterError, match="not registered"):
            engine.maintain(foreign, "right", SPEC)

    def test_find_k_spec_rejected(self):
        engine = build_engine()
        spec = QuerySpec.for_find_k(delta=10, aggregate="sum")
        with pytest.raises(ParameterError, match="find_k"):
            engine.maintain("left", "right", spec)

    def test_bad_fallback_ratio_rejected(self):
        engine = build_engine()
        with pytest.raises(ParameterError, match="fallback_ratio"):
            engine.maintain("left", "right", SPEC, fallback_ratio=0.0)


# ----------------------------------------------------------------------
# cache_info(): engine-wide maintenance counters (satellite)
# ----------------------------------------------------------------------
class TestCacheInfoCounters:
    def test_counters_sit_next_to_invalidations(self):
        engine = build_engine()
        info = engine.cache_info()
        assert info["maintained"] == 0
        assert info["fallback_recomputes"] == 0
        assert info["delta_rows"] == 0
        assert "invalidations" in info

        live = engine.maintain("left", "right", SPEC)
        engine.catalog["left"].insert_rows(
            engine.catalog["left"].relation.take([0]).records()
        )
        engine.catalog["left"].replace(engine.catalog["left"].relation)
        info = engine.cache_info()
        assert info["maintained"] == 1  # the insert, absorbed in place
        assert info["fallback_recomputes"] == 1  # the replace
        assert info["delta_rows"] == 1
        assert live.stats()["applied_deltas"] == 2

    def test_unrelated_mutations_not_counted(self):
        engine = build_engine()
        engine.register("bystander", engine.catalog["left"].relation)
        engine.maintain("left", "right", SPEC)
        engine.catalog["bystander"].delete_rows([0])
        info = engine.cache_info()
        assert info["maintained"] == 0
        assert info["fallback_recomputes"] == 0
        assert info["delta_rows"] == 0


# ----------------------------------------------------------------------
# stream_window(): sliding-window continuous queries
# ----------------------------------------------------------------------
class TestStreamWindow:
    def test_windows_match_per_window_recompute(self):
        engine = build_engine(seed=13, n=12)
        stream, _ = make_random_pair(seed=21, n=14, d=4, g=3, a=1)
        results = list(
            engine.stream_window("left", stream, SPEC, size=8, slide=2)
        )
        assert len(results) == 4  # starts 0, 2, 4, 6
        fixed = engine.catalog["left"].relation
        checker = Engine()
        for i, got in enumerate(results):
            window = stream.take(range(2 * i, 2 * i + 8))
            want = checker.execute(fixed, window, SPEC)
            assert got.pairs.tobytes() == want.pairs.tobytes(), f"window {i}"

    def test_window_dataset_is_dropped_after_iteration(self):
        engine = build_engine(seed=13, n=10)
        stream, _ = make_random_pair(seed=22, n=10, d=4, g=3, a=1)
        before = engine.catalog.names()
        list(engine.stream_window("left", stream, SPEC, size=6, slide=3))
        assert engine.catalog.names() == before

    def test_self_join_stream(self):
        stream, _ = make_random_pair(seed=23, n=9, d=4, g=3, a=1)
        engine = Engine()
        results = list(
            engine.stream_window(stream, stream, SPEC, size=6, slide=3)
        )
        assert len(results) == 2
        checker = Engine()
        for i, got in enumerate(results):
            window = stream.take(range(3 * i, 3 * i + 6))
            want = checker.execute(window, window, SPEC)
            assert got.pairs.tobytes() == want.pairs.tobytes()
        assert engine.catalog.names() == []

    def test_validation_is_eager(self):
        engine = build_engine()
        stream, _ = make_random_pair(seed=24, n=10, d=4, g=3, a=1)
        with pytest.raises(ParameterError, match="size"):
            engine.stream_window("left", stream, SPEC, size=0)
        with pytest.raises(ParameterError, match="slide"):
            engine.stream_window("left", stream, SPEC, size=4, slide=5)
        with pytest.raises(ParameterError, match="first window"):
            engine.stream_window("left", stream, SPEC, size=11)
        with pytest.raises(ParameterError, match="Relation"):
            engine.stream_window("left", "right", SPEC, size=4)
        other, _ = make_random_pair(seed=25, n=10, d=4, g=3, a=1)
        with pytest.raises(ParameterError, match="single stream"):
            engine.stream_window(other, stream, SPEC, size=4)

    def test_window_name_collision_raises(self):
        engine = build_engine()
        stream, _ = make_random_pair(seed=26, n=10, d=4, g=3, a=1)
        engine.register("taken", stream)
        with pytest.raises(CatalogError, match="taken"):
            engine.stream_window("left", stream, SPEC, size=4, name="taken")


# ----------------------------------------------------------------------
# Engine routing details
# ----------------------------------------------------------------------
class TestRouting:
    def test_shared_catalog_routes_only_to_owning_engine(self):
        catalog = Catalog()
        engine_a = Engine(catalog=catalog)
        engine_b = Engine(catalog=catalog)
        left, right = make_random_pair(seed=31, n=12, d=4, g=3, a=1)
        engine_a.register("left", left)
        engine_a.register("right", right)
        live = engine_a.maintain("left", "right", SPEC)
        catalog["left"].delete_rows([1])
        assert live.stats()["applied_deltas"] == 1
        assert engine_a.cache_info()["delta_rows"] == 1
        assert engine_b.cache_info()["delta_rows"] == 0

    def test_abandoned_handle_is_not_kept_alive(self):
        import gc

        engine = build_engine()
        engine.maintain("left", "right", SPEC)  # dropped immediately
        gc.collect()
        engine.catalog["left"].delete_rows([0])
        # The dead handle was pruned; nothing was maintained.
        info = engine.cache_info()
        assert info["maintained"] == 0 and info["fallback_recomputes"] == 0

    def test_maintained_timings_use_fixed_phases(self):
        engine = build_engine()
        live = engine.maintain("left", "right", SPEC)
        engine.catalog["left"].delete_rows([0])
        result = live.result()
        assert result.algorithm == "maintained"
        timings = result.timings
        assert timings.join >= 0.0 and timings.remaining >= 0.0
        assert np.isclose(
            timings.total, timings.grouping + timings.join
            + timings.dominator + timings.remaining,
        )
