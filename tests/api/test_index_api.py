"""Dominance-index lifecycle through the Catalog and Engine.

The index cache is keyed by the dataset's uid-carrying version token:
every mutation either *maintains* the index (appends re-use the grid
geometry) or *invalidates* it, and a dropped-and-re-registered dataset
can never be served a stale index even under the same name. Every
transition is observable through ``Engine.cache_info()``'s
``index_builds`` / ``index_hits`` / ``index_invalidations`` /
``index_maintained`` counters, and every post-mutation answer is
checked against a fresh naive run.
"""

import pytest

from repro.api import Engine, QuerySpec
from repro.errors import ParameterError

from ..helpers import make_random_pair

K = 10  # nonempty for the (n=40, d=5, g=3) pair used below


def index_counters(engine):
    info = engine.cache_info()
    return {
        key: info[key]
        for key in (
            "index_builds",
            "index_hits",
            "index_invalidations",
            "index_maintained",
        )
    }


def naive_answer(engine, k=K):
    return engine.execute(
        "L", "R", QuerySpec.for_ksjq(k=k, algorithm="naive")
    ).pairs.tobytes()


def indexed_answer(engine, k=K):
    return engine.execute(
        "L", "R", QuerySpec.for_ksjq(k=k, algorithm="indexed")
    ).pairs.tobytes()


@pytest.fixture
def engine():
    left, right = make_random_pair(seed=7, n=40, d=5, g=3)
    eng = Engine()
    eng.register("L", left)
    eng.register("R", right)
    return eng


def some_records(engine, name, count=3):
    """Valid insertable records, cloned from the dataset's own rows."""
    return list(engine.catalog[name].relation.records())[:count]


class TestLifecycleCounters:
    def test_miss_build_then_hit(self, engine):
        assert index_counters(engine) == {
            "index_builds": 0,
            "index_hits": 0,
            "index_invalidations": 0,
            "index_maintained": 0,
        }
        want = naive_answer(engine)
        assert indexed_answer(engine) == want
        after_cold = index_counters(engine)
        assert after_cold["index_builds"] == 2  # one per side
        assert after_cold["index_hits"] == 0
        # Warm repeat: both sides hit, nothing rebuilt.
        assert indexed_answer(engine) == want
        after_warm = index_counters(engine)
        assert after_warm["index_builds"] == 2
        assert after_warm["index_hits"] == 2
        # A different k reuses the same indexes too.
        assert indexed_answer(engine, k=9) == naive_answer(engine, k=9)
        assert index_counters(engine)["index_builds"] == 2

    def test_insert_maintains_and_stays_correct(self, engine):
        indexed_answer(engine)  # build
        engine.catalog["L"].insert_rows(some_records(engine, "L"))
        counters = index_counters(engine)
        assert counters["index_maintained"] == 1
        assert counters["index_invalidations"] == 0
        # The maintained index serves the new version as a hit, and the
        # answer over the mutated data matches naive exactly.
        before_hits = counters["index_hits"]
        assert indexed_answer(engine) == naive_answer(engine)
        after = index_counters(engine)
        assert after["index_builds"] == 2  # no rebuild
        assert after["index_hits"] >= before_hits + 1

    def test_delete_invalidates_then_rebuilds(self, engine):
        indexed_answer(engine)  # build
        engine.catalog["R"].delete_rows([0, 3])
        counters = index_counters(engine)
        assert counters["index_invalidations"] == 1
        assert indexed_answer(engine) == naive_answer(engine)
        assert index_counters(engine)["index_builds"] == 3  # R rebuilt

    def test_replace_invalidates(self, engine):
        indexed_answer(engine)
        fresh_left, _ = make_random_pair(seed=99, n=30, d=5, g=3)
        engine.catalog["L"].replace(fresh_left)
        assert index_counters(engine)["index_invalidations"] == 1
        assert indexed_answer(engine) == naive_answer(engine)

    def test_mutation_cycle_end_to_end(self, engine):
        """miss -> build -> hit -> mutate -> correct answer, repeatedly."""
        for round_no in range(3):
            assert indexed_answer(engine) == naive_answer(engine)
            engine.catalog["L"].insert_rows(some_records(engine, "L", 1))
            engine.catalog["R"].delete_rows([round_no])
        assert indexed_answer(engine) == naive_answer(engine)
        counters = index_counters(engine)
        assert counters["index_maintained"] == 3  # one per insert
        assert counters["index_invalidations"] == 3  # one per delete

    def test_drop_and_reregister_never_serves_stale(self, engine):
        first = indexed_answer(engine)
        builds = index_counters(engine)["index_builds"]
        # Same name, different data: the uid-carrying token must miss.
        replacement, _ = make_random_pair(seed=23, n=35, d=5, g=3)
        engine.catalog.drop("L")
        engine.register("L", replacement)
        second = indexed_answer(engine)
        assert index_counters(engine)["index_builds"] == builds + 1
        assert second == naive_answer(engine)
        assert second != first  # genuinely different data, not a replay

    def test_use_index_false_never_builds(self, engine):
        result = engine.execute(
            "L", "R", QuerySpec.for_ksjq(k=K, use_index=False)
        )
        assert result.algorithm != "indexed"
        counters = index_counters(engine)
        assert counters["index_builds"] == 0
        assert counters["index_hits"] == 0

    def test_find_k_never_builds(self, engine):
        engine.execute("L", "R", QuerySpec.for_find_k(delta=10, use_index=True))
        assert index_counters(engine)["index_builds"] == 0

    def test_anonymous_relations_use_plan_local_indexes(self):
        """Unregistered inputs still run indexed — via plan-local builds
        that are *counted* but never cached in the catalog."""
        left, right = make_random_pair(seed=3, n=25, d=4, g=3)
        engine = Engine()
        spec = QuerySpec.for_ksjq(k=8, algorithm="indexed")
        want = engine.execute(
            left, right, QuerySpec.for_ksjq(k=8, algorithm="naive")
        ).pairs.tobytes()
        assert engine.execute(left, right, spec).pairs.tobytes() == want
        assert index_counters(engine)["index_builds"] == 2
        # Re-running through the cached plan reuses the plan-local
        # indexes: no further builds.
        assert engine.execute(left, right, spec).pairs.tobytes() == want
        assert index_counters(engine)["index_builds"] == 2


class TestMaintainedComposition:
    def test_maintained_result_survives_mutations(self, engine):
        spec = QuerySpec.for_ksjq(k=K, algorithm="indexed")
        live = engine.maintain("L", "R", spec=spec)
        engine.catalog["L"].insert_rows(some_records(engine, "L"))
        engine.catalog["R"].delete_rows([1])
        assert live.result().pairs.tobytes() == naive_answer(engine)

    def test_maintained_result_use_index_auto(self, engine):
        live = engine.maintain("L", "R", spec=QuerySpec.for_ksjq(k=K))
        engine.catalog["L"].insert_rows(some_records(engine, "L", 2))
        assert live.result().pairs.tobytes() == naive_answer(engine)


class TestExplain:
    def test_cold_then_warm(self, engine):
        spec = QuerySpec.for_ksjq(k=K, algorithm="indexed")
        cold = engine.explain("L", "R", spec)
        assert cold.index is not None
        assert cold.index.startswith("cold")
        assert cold.index.endswith("consumed by the indexed path")
        engine.execute("L", "R", spec)
        warm = engine.explain("L", "R", spec)
        assert warm.index.startswith("warm (mean cell span ")
        assert "consumed by the indexed path" in warm.index
        assert "index:" in warm.summary()

    def test_unused_line_names_the_chosen_algorithm(self, engine):
        report = engine.explain("L", "R", QuerySpec.for_ksjq(k=K, algorithm="naive"))
        assert report.index.endswith("unused by naive")

    def test_disabled_line(self, engine):
        report = engine.explain("L", "R", QuerySpec.for_ksjq(k=K, use_index=False))
        assert report.index == "disabled (use_index=False)"
        assert "index: disabled (use_index=False)" in report.summary()

    def test_find_k_not_applicable(self, engine):
        report = engine.explain("L", "R", QuerySpec.for_find_k(delta=10))
        assert report.index.startswith("not applicable")

    def test_use_index_true_forces_indexed(self, engine):
        report = engine.explain("L", "R", QuerySpec.for_ksjq(k=K, use_index=True))
        assert report.algorithm == "indexed"
        assert report.reason == "use_index=True forces the indexed path"
        assert "indexed" in report.costs
        assert report.shards is not None
        assert report.shards.partition == "cells"
        assert "(cells partition)" in report.summary()

    def test_warm_auto_lets_indexed_compete(self, engine):
        """Cold auto never pays a speculative build; once warm, the
        indexed path enters the cost race (and is taken if cheapest)."""
        cold = engine.explain("L", "R", QuerySpec.for_ksjq(k=K))
        assert "indexed" not in cold.costs
        engine.execute("L", "R", QuerySpec.for_ksjq(k=K, algorithm="indexed"))
        warm = engine.explain("L", "R", QuerySpec.for_ksjq(k=K))
        assert "indexed" in warm.costs
        executed = engine.execute("L", "R", QuerySpec.for_ksjq(k=K))
        assert executed.algorithm == warm.algorithm


class TestSpecValidation:
    def test_truthy_nonbool_rejected(self):
        with pytest.raises(ParameterError, match="use_index"):
            QuerySpec.for_ksjq(k=5, use_index=1)

    def test_bad_string_rejected(self):
        with pytest.raises(ParameterError, match="use_index"):
            QuerySpec.for_ksjq(k=5, use_index="yes")

    def test_indexed_with_use_index_false_contradiction(self):
        with pytest.raises(ParameterError, match="contradicts"):
            QuerySpec.for_ksjq(k=5, algorithm="indexed", use_index=False)

    def test_use_index_is_fingerprinted(self):
        prints = {
            QuerySpec.for_ksjq(k=5, use_index=ui).fingerprint()
            for ui in ("auto", True, False)
        }
        assert len(prints) == 3

    def test_describe_mentions_non_default_use_index(self):
        assert "use_index=True" in QuerySpec.for_ksjq(k=5, use_index=True).describe()
        assert "use_index" not in QuerySpec.for_ksjq(k=5).describe()


class TestBuilder:
    def test_builder_knob_round_trip(self, engine):
        result = engine.query("L", "R").k(K).use_index().run()
        assert result.algorithm == "indexed"
        assert result.pairs.tobytes() == naive_answer(engine)

    def test_builder_disable(self, engine):
        result = engine.query("L", "R").k(K).use_index(False).run()
        assert result.algorithm != "indexed"
        assert index_counters(engine)["index_builds"] == 0
