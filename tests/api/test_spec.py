"""QuerySpec: validation, normalization, hashing."""

import pytest

from repro.api import QuerySpec
from repro.errors import AlgorithmError, JoinError, ParameterError
from repro.relational import ThetaCondition, ThetaOp
from repro.relational.aggregates import get_aggregate


class TestValidation:
    def test_requires_k_for_ksjq(self):
        with pytest.raises(ParameterError, match="requires k"):
            QuerySpec(problem="ksjq")

    def test_requires_delta_for_find_k(self):
        with pytest.raises(ParameterError, match="requires delta"):
            QuerySpec(problem="find_k")

    def test_unknown_problem(self):
        with pytest.raises(ParameterError, match="unknown problem"):
            QuerySpec(problem="skyline")

    def test_unknown_algorithm(self):
        with pytest.raises(AlgorithmError, match="unknown algorithm"):
            QuerySpec.for_ksjq(k=5, algorithm="quantum")

    def test_unknown_mode(self):
        with pytest.raises(AlgorithmError, match="unknown mode"):
            QuerySpec.for_ksjq(k=5, mode="sloppy")

    def test_unknown_join_kind(self):
        with pytest.raises(JoinError, match="unknown join kind"):
            QuerySpec.for_ksjq(k=5, join="outer")

    def test_unknown_method(self):
        with pytest.raises(ParameterError, match="method"):
            QuerySpec.for_find_k(delta=3, method="ternary")

    def test_unknown_objective(self):
        with pytest.raises(AlgorithmError, match="objective"):
            QuerySpec.for_find_k(delta=3, objective="exactly")

    def test_nonpositive_delta(self):
        with pytest.raises(ParameterError, match="delta"):
            QuerySpec.for_find_k(delta=0)

    def test_cartesian_algorithm_needs_cartesian_join(self):
        with pytest.raises(JoinError, match="cartesian"):
            QuerySpec.for_ksjq(k=5, algorithm="cartesian", join="equality")
        QuerySpec.for_ksjq(k=5, algorithm="cartesian", join="cartesian")

    def test_theta_requires_theta_join(self):
        cond = ThetaCondition("x", ThetaOp.LT, "y")
        with pytest.raises(JoinError, match="theta"):
            QuerySpec.for_ksjq(k=5, join="equality", theta=cond)
        with pytest.raises(JoinError, match="theta"):
            QuerySpec.for_ksjq(k=5, join="theta")

    def test_k_and_delta_are_mutually_exclusive(self):
        with pytest.raises(ParameterError, match="delta"):
            QuerySpec(problem="ksjq", k=5, delta=3)
        with pytest.raises(ParameterError, match="k is tuned"):
            QuerySpec(problem="find_k", delta=3, k=5)

    def test_k_must_be_int(self):
        with pytest.raises(ParameterError, match="integer"):
            QuerySpec.for_ksjq(k="seven")


class TestNormalization:
    def test_registry_aggregate_object_normalized_to_name(self):
        spec = QuerySpec.for_ksjq(k=5, aggregate=get_aggregate("sum"))
        assert spec.aggregate == "sum"
        assert spec == QuerySpec.for_ksjq(k=5, aggregate="sum")

    def test_custom_aggregate_object_kept_intact(self):
        """Unregistered (even name-colliding) functions must not be
        silently replaced by the registry entry of the same name."""
        from repro.relational.aggregates import AggregateFunction

        custom = AggregateFunction("sum", lambda x, y: x - y, strictly_monotone=True)
        spec = QuerySpec.for_ksjq(k=5, aggregate=custom)
        assert spec.aggregate is custom
        assert spec != QuerySpec.for_ksjq(k=5, aggregate="sum")
        unregistered = AggregateFunction("mycustom", lambda x, y: x + y, strictly_monotone=True)
        assert QuerySpec.for_ksjq(k=5, aggregate=unregistered).aggregate is unregistered

    def test_single_theta_condition_becomes_tuple(self):
        cond = ThetaCondition("x", ThetaOp.LT, "y")
        spec = QuerySpec.for_ksjq(k=5, join="theta", theta=cond)
        assert spec.theta == (cond,)
        as_list = QuerySpec.for_ksjq(k=5, join="theta", theta=[cond])
        assert spec == as_list

    def test_replace_revalidates(self):
        spec = QuerySpec.for_ksjq(k=5)
        assert spec.replace(k=6).k == 6
        with pytest.raises(AlgorithmError):
            spec.replace(algorithm="quantum")


class TestHashing:
    def test_equal_specs_hash_equal(self):
        a = QuerySpec.for_ksjq(k=7, aggregate="sum")
        b = QuerySpec.for_ksjq(k=7, aggregate="sum")
        assert a == b and hash(a) == hash(b)
        assert {a: "cached"}[b] == "cached"

    def test_distinct_specs_differ(self):
        assert QuerySpec.for_ksjq(k=7) != QuerySpec.for_ksjq(k=8)
        assert QuerySpec.for_ksjq(k=7) != QuerySpec.for_ksjq(k=7, mode="exact")

    def test_plan_key_ignores_execution_parameters(self):
        a = QuerySpec.for_ksjq(k=7, algorithm="naive", mode="exact", aggregate="sum")
        b = QuerySpec.for_find_k(delta=10, method="range", aggregate="sum")
        assert a.plan_key() == b.plan_key()
        assert a.plan_key() != QuerySpec.for_ksjq(k=7).plan_key()

    def test_describe_mentions_problem(self):
        assert "ksjq" in QuerySpec.for_ksjq(k=7).describe()
        assert "delta=3" in QuerySpec.for_find_k(delta=3).describe()
