"""Catalog & Dataset: versioning, copy-on-write, exact cache invalidation."""

import pytest

import repro
from repro.api import Catalog, Engine, QuerySpec
from repro.errors import CatalogError, SchemaError
from repro.relational import Dataset, Relation, RelationSchema

from ..helpers import make_random_pair


def tiny_schema():
    return RelationSchema.build(join=["g"], skyline=["x1", "x2"])


def tiny_relation(rows, name="T"):
    """Rows are (g, x1, x2) triples."""
    return Relation.from_records(
        tiny_schema(),
        [{"g": g, "x1": float(x1), "x2": float(x2)} for g, x1, x2 in rows],
        name=name,
    )


@pytest.fixture
def pair():
    return make_random_pair(seed=11, n=12, d=4, g=3)


# ----------------------------------------------------------------------
# Dataset: copy-on-write versioning
# ----------------------------------------------------------------------
class TestDataset:
    def test_insert_bumps_version_and_preserves_old_snapshot(self):
        ds = Dataset("t", tiny_relation([(1, 5, 5)]))
        old = ds.relation
        assert ds.version == 1
        new = ds.insert_rows([{"g": 1, "x1": 2.0, "x2": 2.0}])
        assert ds.version == 2
        assert len(old) == 1  # old snapshot untouched (copy-on-write)
        assert len(new) == 2 and ds.relation is new

    def test_delete_rows(self):
        ds = Dataset("t", tiny_relation([(1, 5, 5), (1, 6, 6), (2, 7, 7)]))
        new = ds.delete_rows([1])
        assert ds.version == 2
        assert [rec["x1"] for rec in new.records()] == [5.0, 7.0]

    def test_delete_out_of_range_raises_without_bump(self):
        ds = Dataset("t", tiny_relation([(1, 5, 5)]))
        with pytest.raises(SchemaError, match="out of range"):
            ds.delete_rows([3])
        assert ds.version == 1

    def test_replace_swaps_relation(self):
        ds = Dataset("t", tiny_relation([(1, 5, 5)]))
        ds.replace(tiny_relation([(2, 1, 1), (2, 2, 2)]))
        assert ds.version == 2 and len(ds) == 2

    def test_insert_validates_schema(self):
        ds = Dataset("t", tiny_relation([(1, 5, 5)]))
        with pytest.raises(SchemaError):
            ds.insert_rows([{"g": 1, "x1": 2.0}])  # missing x2
        assert ds.version == 1

    def test_listeners_notified_per_mutation(self):
        ds = Dataset("t", tiny_relation([(1, 5, 5)]))
        seen = []
        ds.subscribe(lambda d: seen.append(d.version))
        ds.insert_rows([{"g": 1, "x1": 2.0, "x2": 2.0}])
        ds.delete_rows([0])
        assert seen == [2, 3]

    def test_snapshot_is_consistent_pair(self):
        ds = Dataset("t", tiny_relation([(1, 5, 5)]))
        relation, version = ds.snapshot()
        assert relation is ds.relation and version == ds.version


# ----------------------------------------------------------------------
# Catalog: registration semantics
# ----------------------------------------------------------------------
class TestCatalog:
    def test_register_and_lookup(self, pair):
        cat = Catalog()
        ds = cat.register("left", pair[0])
        assert cat.get("left") is ds and cat["left"] is ds
        assert "left" in cat and "missing" not in cat
        assert cat.names() == ["left"] and cat.versions() == {"left": 1}

    def test_unknown_name_raises_with_known_names(self, pair):
        cat = Catalog()
        cat.register("left", pair[0])
        with pytest.raises(CatalogError, match="'left'"):
            cat.get("rigth")

    def test_reregister_identical_content_keeps_version(self, pair):
        cat = Catalog()
        ds = cat.register("left", pair[0])
        clone = make_random_pair(seed=11, n=12, d=4, g=3)[0]
        assert cat.register("left", clone) is ds
        assert ds.version == 1  # content-identical: caches stay warm

    def test_reregister_new_content_bumps_version(self, pair):
        cat = Catalog()
        ds = cat.register("left", pair[0])
        cat.register("left", pair[1])
        assert ds.version == 2 and ds.relation is pair[1]

    def test_register_dataset_name_mismatch(self, pair):
        cat = Catalog()
        with pytest.raises(CatalogError, match="must match"):
            cat.register("other", Dataset("left", pair[0]))

    def test_drop(self, pair):
        cat = Catalog()
        cat.register("left", pair[0])
        cat.drop("left")
        assert "left" not in cat
        with pytest.raises(CatalogError):
            cat.drop("left")

    def test_drop_then_reregister_never_serves_stale_plans(self, pair):
        """Same name, new Dataset, both at version 1: the uid in the
        cache token keeps the old entries from colliding."""
        small = make_random_pair(seed=41, n=8, d=4, g=2)
        eng = Engine()
        eng.register("L", small[0])
        eng.register("R", small[1])
        stale = eng.plan("L", "R")
        eng.catalog.drop("L")
        eng.register("L", pair[0])  # fresh Dataset, also version 1
        fresh = eng.plan("L", "R")
        assert fresh is not stale
        assert len(fresh.left) == len(pair[0])

    def test_subscribers_are_weak(self, pair):
        """A shared catalog must not keep dead engines (and their
        caches) alive, and mutations must survive their collection."""
        import gc
        import weakref

        cat = Catalog()
        ds = cat.register("L", pair[0])
        cat.register("R", pair[1])
        eng = Engine(catalog=cat)
        eng.query("L", "R").k(5).run()
        ref = weakref.ref(eng)
        del eng
        gc.collect()
        assert ref() is None
        ds.insert_rows([pair[0].record(0)])  # fan-out past the dead engine


# ----------------------------------------------------------------------
# Engine x catalog: query by name, exact invalidation
# ----------------------------------------------------------------------
class TestEngineCatalog:
    def test_query_by_name_matches_query_by_relation(self, pair):
        eng = Engine()
        eng.register("L", pair[0])
        eng.register("R", pair[1])
        by_name = eng.query("L", "R").k(5).run()
        by_rel = Engine().query(*pair).k(5).run()
        assert by_name.pair_set() == by_rel.pair_set()

    def test_unregistered_name_fails_fast(self):
        with pytest.raises(CatalogError, match="register"):
            Engine().query("nope", "nada").k(5).run()

    def test_named_plans_hit_cache_without_fingerprinting(self, pair):
        eng = Engine()
        eng.register("L", pair[0])
        eng.register("R", pair[1])
        eng.query("L", "R").k(5).run()
        eng.query("L", "R").k(6).run()
        info = eng.cache_info()
        assert info["misses"] == 1 and info["hits"] == 1

    def test_mutation_invalidates_exactly_affected_entries(self, pair):
        other = make_random_pair(seed=12, n=10, d=4, g=2)
        eng = Engine()
        ds = eng.register("L", pair[0])
        eng.register("R", pair[1])
        eng.register("L2", other[0])
        eng.register("R2", other[1])
        eng.query("L", "R").k(5).run()
        eng.query("L2", "R2").k(5).run()
        assert eng.cache_info()["size"] == 2
        ds.insert_rows([pair[0].record(0)])
        info = eng.cache_info()
        # only the ("L", "R") plan is gone; ("L2", "R2") survives
        assert info["invalidations"] == 1 and info["size"] == 1
        eng.query("L2", "R2").k(6).run()
        assert eng.cache_info()["hits"] == 1  # survivor still serves

    def test_acceptance_mutation_cycle(self):
        """Register -> execute (miss) -> re-execute (hit) -> insert_rows
        changing the KSJQ answer -> re-execute returns the new answer
        with a recorded invalidation."""
        left = tiny_relation([(1, 5, 5), (1, 6, 6)], name="L")
        right = tiny_relation([(1, 5, 5)], name="R")
        eng = Engine(max_results=8)
        ds = eng.register("L", left)
        eng.register("R", right)
        spec = QuerySpec.for_ksjq(k=3)

        first = eng.execute("L", "R", spec)
        info = eng.cache_info()
        assert info["misses"] == 1 and info["results"]["misses"] == 1
        assert first.pair_set() == {(0, 0)}  # (5,5) 3-dominates (6,6)

        again = eng.execute("L", "R", spec)
        info = eng.cache_info()
        assert again is first  # result-cache hit: no algorithm ran
        assert info["results"]["hits"] == 1 and info["misses"] == 1

        # A strictly better tuple changes the 3-dominant skyline join.
        ds.insert_rows([{"g": 1, "x1": 1.0, "x2": 1.0}])
        info = eng.cache_info()
        assert info["invalidations"] == 1
        assert info["results"]["invalidations"] == 1

        fresh = eng.execute("L", "R", spec)
        assert fresh.pair_set() == {(2, 0)}  # the new row took over
        assert fresh.pair_set() != first.pair_set()
        info = eng.cache_info()
        assert info["misses"] == 2  # plan was rebuilt for v2

    def test_result_cache_bounded_lru(self, pair):
        eng = Engine(max_results=2)
        eng.register("L", pair[0])
        eng.register("R", pair[1])
        for k in (5, 6, 7):
            eng.execute("L", "R", QuerySpec.for_ksjq(k=k))
        info = eng.cache_info()["results"]
        assert info["size"] == 2 and info["evictions"] == 1
        # k=5 (least recently used) was evicted: re-running it misses.
        eng.execute("L", "R", QuerySpec.for_ksjq(k=5))
        assert eng.cache_info()["results"]["misses"] == 4

    def test_result_cache_keys_anonymous_relations_by_content(self, pair):
        eng = Engine(max_results=4)
        first = eng.execute(*pair, QuerySpec.for_ksjq(k=5))
        clone = make_random_pair(seed=11, n=12, d=4, g=3)
        assert eng.execute(*clone, QuerySpec.for_ksjq(k=5)) is first

    def test_counters_under_register_mutate_cycles(self, pair):
        """Repeated register/mutate cycles: every version change costs
        exactly one invalidation + one rebuild, and size stays at 1."""
        eng = Engine()
        ds = eng.register("L", pair[0])
        eng.register("R", pair[1])
        for cycle in range(1, 4):
            eng.query("L", "R").k(5).run()
            eng.query("L", "R").k(6).run()
            info = eng.cache_info()
            assert info["misses"] == cycle
            assert info["hits"] == cycle
            assert info["size"] == 1
            assert info["invalidations"] == cycle - 1
            ds.insert_rows([pair[0].record(0)])
        assert eng.cache_info()["invalidations"] == 3

    def test_shared_catalog_invalidates_every_engine(self, pair):
        cat = Catalog()
        eng_a = Engine(catalog=cat)
        eng_b = Engine(catalog=cat)
        ds = cat.register("L", pair[0])
        cat.register("R", pair[1])
        eng_a.query("L", "R").k(5).run()
        eng_b.query("L", "R").k(5).run()
        ds.insert_rows([pair[0].record(0)])
        assert eng_a.cache_info()["invalidations"] == 1
        assert eng_b.cache_info()["invalidations"] == 1


# ----------------------------------------------------------------------
# QueryHandle: prepared queries over live datasets
# ----------------------------------------------------------------------
class TestQueryHandle:
    def test_handle_tracks_freshness_across_mutations(self, pair):
        eng = Engine()
        ds = eng.register("L", pair[0])
        eng.register("R", pair[1])
        handle = eng.prepare("L", "R", QuerySpec.for_ksjq(k=5))
        assert not handle.is_fresh() and handle.last_result is None

        first = handle.execute()
        assert handle.is_fresh()
        cached = handle.refresh()
        assert cached is first  # fresh: no re-execution

        ds.insert_rows([pair[0].record(0)])
        assert not handle.is_fresh()
        renewed = handle.refresh()
        assert handle.is_fresh() and renewed is not first
        assert renewed.source.left is ds.relation  # latest snapshot

    def test_builder_prepare_terminal(self, pair):
        eng = Engine()
        eng.register("L", pair[0])
        eng.register("R", pair[1])
        handle = eng.query("L", "R").k(5).prepare()
        assert handle.spec.k == 5
        assert handle.execute().pair_set() == eng.query("L", "R").k(5).run().pair_set()

    def test_anonymous_relations_are_always_fresh_after_execute(self, pair):
        handle = Engine().prepare(*pair, spec=QuerySpec.for_ksjq(k=5))
        handle.execute()
        assert handle.is_fresh()  # immutable inputs cannot go stale

    def test_repr_states_lifecycle(self, pair):
        eng = Engine()
        eng.register("L", pair[0])
        eng.register("R", pair[1])
        handle = eng.prepare("L", "R", QuerySpec.for_ksjq(k=5))
        assert "unexecuted" in repr(handle)
        handle.execute()
        assert "fresh" in repr(handle)


# ----------------------------------------------------------------------
# Facade interop
# ----------------------------------------------------------------------
class TestFacadeInterop:
    def test_ksjq_facade_accepts_names_via_engine(self, pair):
        eng = Engine()
        eng.register("L", pair[0])
        eng.register("R", pair[1])
        res = repro.ksjq("L", "R", k=5, engine=eng)
        assert res.pair_set() == eng.query(*pair).k(5).run().pair_set()

    def test_dataset_handle_usable_as_input(self, pair):
        eng = Engine()
        ds_l = eng.register("L", pair[0])
        ds_r = eng.register("R", pair[1])
        res = eng.query(ds_l, ds_r).k(5).run()
        assert res.pair_set() == Engine().query(*pair).k(5).run().pair_set()
        assert eng.cache_info()["misses"] == 1
        # handles key like their names: a name query hits the same plan
        eng.query("L", "R").k(6).run()
        assert eng.cache_info()["hits"] == 1
