"""Unit tests for repro.relational.csvio."""

import pytest

from repro.errors import SchemaError
from repro.relational import Relation, RelationSchema, read_csv, write_csv


@pytest.fixture
def schema():
    return RelationSchema.build(join=["city"], skyline=["cost"], payload=["fno"])


@pytest.fixture
def relation(schema):
    return Relation(
        schema,
        {"city": ["C", "D"], "cost": [10.5, 20.0], "fno": [11, 12]},
    )


def test_roundtrip(tmp_path, schema, relation):
    path = tmp_path / "rel.csv"
    write_csv(relation, path)
    back = read_csv(schema, path)
    assert back.records() == relation.records()


def test_int_join_keys_roundtrip(tmp_path):
    schema = RelationSchema.build(join=["g"], skyline=["x"])
    rel = Relation(schema, {"g": [1, 2], "x": [0.5, 1.5]})
    path = tmp_path / "rel.csv"
    write_csv(rel, path)
    back = read_csv(schema, path)
    assert back.join_keys() == [(1,), (2,)]


def test_extra_columns_ignored(tmp_path, schema):
    path = tmp_path / "extra.csv"
    path.write_text("city,cost,fno,unused\nC,1.0,11,zzz\n")
    rel = read_csv(schema, path)
    assert len(rel) == 1
    assert "unused" not in rel.schema


def test_missing_column_rejected(tmp_path, schema):
    path = tmp_path / "bad.csv"
    path.write_text("city,cost\nC,1.0\n")
    with pytest.raises(SchemaError, match="missing columns"):
        read_csv(schema, path)


def test_empty_file_rejected(tmp_path, schema):
    path = tmp_path / "empty.csv"
    path.write_text("")
    with pytest.raises(SchemaError, match="empty"):
        read_csv(schema, path)


def test_short_row_rejected(tmp_path, schema):
    path = tmp_path / "short.csv"
    path.write_text("city,cost,fno\nC,1.0\n")
    with pytest.raises(SchemaError, match="expected 3 fields"):
        read_csv(schema, path)


def test_blank_lines_skipped(tmp_path, schema):
    path = tmp_path / "blank.csv"
    path.write_text("city,cost,fno\nC,1.0,11\n\nD,2.0,12\n")
    assert len(read_csv(schema, path)) == 2
