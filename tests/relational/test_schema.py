"""Unit tests for repro.relational.schema."""

import pytest

from repro.errors import SchemaError
from repro.relational import AttributeSpec, Preference, RelationSchema, Role


class TestAttributeSpec:
    def test_join_constructor(self):
        spec = AttributeSpec.join("city")
        assert spec.role is Role.JOIN
        assert spec.name == "city"

    def test_skyline_constructor_defaults_lower(self):
        spec = AttributeSpec.skyline("cost")
        assert spec.role is Role.SKYLINE
        assert spec.preference is Preference.LOWER
        assert not spec.aggregate

    def test_skyline_higher_preference(self):
        spec = AttributeSpec.skyline("rating", Preference.HIGHER)
        assert spec.preference is Preference.HIGHER

    def test_payload_constructor(self):
        assert AttributeSpec.payload("id").role is Role.PAYLOAD

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            AttributeSpec(name="")

    def test_non_string_name_rejected(self):
        with pytest.raises(SchemaError):
            AttributeSpec(name=3)

    def test_aggregate_requires_skyline_role(self):
        with pytest.raises(SchemaError):
            AttributeSpec(name="x", role=Role.JOIN, aggregate=True)

    def test_preference_signs(self):
        assert Preference.LOWER.sign == 1.0
        assert Preference.HIGHER.sign == -1.0


class TestRelationSchema:
    def test_build_roundtrip(self):
        schema = RelationSchema.build(
            join=["city"],
            skyline=["cost", "dur", "rtg"],
            aggregate=["cost"],
            payload=["fno"],
            higher_is_better=["rtg"],
        )
        assert schema.join_names == ("city",)
        assert schema.skyline_names == ("cost", "dur", "rtg")
        assert schema.aggregate_names == ("cost",)
        assert schema.local_names == ("dur", "rtg")
        assert schema.payload_names == ("fno",)
        assert schema.d == 3 and schema.a == 1 and schema.l == 2

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            RelationSchema.build(skyline=["x", "x"])

    def test_aggregate_must_be_skyline(self):
        with pytest.raises(SchemaError, match="aggregate"):
            RelationSchema.build(skyline=["x"], aggregate=["y"])

    def test_higher_is_better_must_be_skyline(self):
        with pytest.raises(SchemaError, match="higher_is_better"):
            RelationSchema.build(skyline=["x"], higher_is_better=["y"])

    def test_getitem_and_contains(self):
        schema = RelationSchema.build(skyline=["a", "b"])
        assert "a" in schema
        assert "z" not in schema
        assert schema["b"].name == "b"
        with pytest.raises(SchemaError, match="no attribute"):
            schema["z"]

    def test_preference_signs_order(self):
        schema = RelationSchema.build(
            skyline=["a", "b", "c"], higher_is_better=["b"]
        )
        assert schema.preference_signs() == [1.0, -1.0, 1.0]

    def test_compatible_aggregates_ok(self):
        s1 = RelationSchema.build(skyline=["x", "y"], aggregate=["x"])
        s2 = RelationSchema.build(skyline=["x", "z"], aggregate=["x"])
        s1.validate_compatible_aggregates(s2)  # no raise

    def test_compatible_aggregates_name_mismatch(self):
        s1 = RelationSchema.build(skyline=["x", "y"], aggregate=["x"])
        s2 = RelationSchema.build(skyline=["w", "z"], aggregate=["w"])
        with pytest.raises(SchemaError, match="match by name"):
            s1.validate_compatible_aggregates(s2)

    def test_compatible_aggregates_preference_mismatch(self):
        s1 = RelationSchema.build(skyline=["x"], aggregate=["x"])
        s2 = RelationSchema.build(
            skyline=["x"], aggregate=["x"], higher_is_better=["x"]
        )
        with pytest.raises(SchemaError, match="preference"):
            s1.validate_compatible_aggregates(s2)

    def test_describe_mentions_roles(self):
        schema = RelationSchema.build(join=["g"], skyline=["x"], payload=["p"])
        text = schema.describe()
        assert "join" in text and "skyline" in text and "payload" in text

    def test_non_attributespec_rejected(self):
        with pytest.raises(SchemaError, match="AttributeSpec"):
            RelationSchema(("not-a-spec",))

    def test_empty_schema(self):
        schema = RelationSchema()
        assert schema.d == 0 and schema.names == ()
