"""Unit tests for repro.relational.groups."""

import numpy as np
import pytest

from repro.relational import Relation, RelationSchema, ThetaGroupIndex, ThetaOp
from repro.relational.groups import GroupIndex


@pytest.fixture
def relation():
    schema = RelationSchema.build(join=["g"], skyline=["x"])
    return Relation(
        schema, {"g": ["a", "b", "a", "c", "b"], "x": [1.0, 2.0, 3.0, 4.0, 5.0]}
    )


class TestGroupIndex:
    def test_partition(self, relation):
        idx = GroupIndex(relation)
        assert len(idx) == 3
        assert idx.rows(("a",)) == [0, 2]
        assert idx.rows(("b",)) == [1, 4]
        assert idx.rows(("missing",)) == []

    def test_key_of_and_groupmates(self, relation):
        idx = GroupIndex(relation)
        assert idx.key_of(4) == ("b",)
        assert idx.groupmates(0) == [0, 2]

    def test_sizes(self, relation):
        idx = GroupIndex(relation)
        assert idx.sizes() == {("a",): 2, ("b",): 2, ("c",): 1}

    def test_items_cover_all_rows(self, relation):
        idx = GroupIndex(relation)
        rows = sorted(r for _, members in idx.items() for r in members)
        assert rows == list(range(len(relation)))


class TestThetaGroupIndex:
    @pytest.fixture
    def rel(self):
        schema = RelationSchema.build(skyline=["v"], payload=["arr"])
        return Relation(
            schema,
            {"v": [0.0] * 5, "arr": [10.0, 20.0, 30.0, 20.0, 5.0]},
        )

    def test_lt_left_side_superset(self, rel):
        # Condition left.arr < right.dep: smaller arr joins with more.
        idx = ThetaGroupIndex(rel, "arr", ThetaOp.LT, is_left=True)
        # Row 1 (arr=20): superset = rows with arr <= 20 (ties included).
        assert sorted(idx.superset_rows(1)) == [0, 1, 3, 4]
        assert sorted(idx.superset_rows(4)) == [4]
        assert sorted(idx.superset_rows(2)) == [0, 1, 2, 3, 4]

    def test_gt_right_side_superset(self, rel):
        # Condition left.x < right.dep seen from the right: larger dep joins more.
        idx = ThetaGroupIndex(rel, "arr", ThetaOp.LT, is_left=False)
        assert sorted(idx.superset_rows(1)) == [1, 2, 3]
        assert sorted(idx.superset_rows(2)) == [2]

    @pytest.mark.parametrize(
        "op,is_left,row,expected",
        [
            (ThetaOp.LE, True, 1, [0, 1, 3, 4]),
            (ThetaOp.GT, True, 1, [1, 2, 3]),
            (ThetaOp.GE, True, 1, [1, 2, 3]),
            (ThetaOp.LE, False, 1, [1, 2, 3]),
            (ThetaOp.GE, False, 1, [0, 1, 3, 4]),
        ],
    )
    def test_all_operators(self, rel, op, is_left, row, expected):
        idx = ThetaGroupIndex(rel, "arr", op, is_left=is_left)
        assert sorted(idx.superset_rows(row)) == expected

    def test_superset_rows_always_include_self(self, rel):
        for op in ThetaOp:
            for side in (True, False):
                idx = ThetaGroupIndex(rel, "arr", op, is_left=side)
                for row in range(len(rel)):
                    assert row in idx.superset_rows(row)

    def test_theta_op_evaluate(self):
        values = np.array([1.0, 2.0, 3.0])
        assert list(ThetaOp.LT.evaluate(values, 2.0)) == [True, False, False]
        assert list(ThetaOp.LE.evaluate(values, 2.0)) == [True, True, False]
        assert list(ThetaOp.GT.evaluate(values, 2.0)) == [False, False, True]
        assert list(ThetaOp.GE.evaluate(values, 2.0)) == [False, True, True]
