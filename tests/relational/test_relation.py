"""Unit tests for repro.relational.relation."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.relational import Relation, RelationSchema


@pytest.fixture
def schema():
    return RelationSchema.build(
        join=["grp"],
        skyline=["cost", "rating"],
        higher_is_better=["rating"],
        payload=["name"],
    )


@pytest.fixture
def relation(schema):
    return Relation(
        schema,
        {
            "grp": ["a", "a", "b"],
            "cost": [10.0, 20.0, 30.0],
            "rating": [3.0, 5.0, 4.0],
            "name": ["x", "y", "z"],
        },
        name="test",
    )


class TestConstruction:
    def test_len_and_d(self, relation):
        assert len(relation) == 3
        assert relation.d == 2

    def test_missing_column(self, schema):
        with pytest.raises(SchemaError, match="missing columns"):
            Relation(schema, {"grp": [], "cost": [], "rating": []})

    def test_extra_column(self, schema):
        with pytest.raises(SchemaError, match="not in schema"):
            Relation(
                schema,
                {"grp": [], "cost": [], "rating": [], "name": [], "zzz": []},
            )

    def test_ragged_columns(self, schema):
        with pytest.raises(SchemaError, match="ragged"):
            Relation(
                schema,
                {"grp": ["a"], "cost": [1.0, 2.0], "rating": [1.0], "name": ["x"]},
            )

    def test_non_numeric_skyline(self, schema):
        with pytest.raises(SchemaError, match="numeric"):
            Relation(
                schema,
                {"grp": ["a"], "cost": ["cheap"], "rating": [1.0], "name": ["x"]},
            )

    def test_nan_rejected(self, schema):
        with pytest.raises(SchemaError, match="finite"):
            Relation(
                schema,
                {"grp": ["a"], "cost": [float("nan")], "rating": [1.0], "name": ["x"]},
            )

    def test_from_records(self, schema):
        rel = Relation.from_records(
            schema,
            [
                {"grp": "a", "cost": 1, "rating": 2, "name": "n1"},
                {"grp": "b", "cost": 3, "rating": 4, "name": "n2"},
            ],
        )
        assert len(rel) == 2
        assert rel.record(1)["cost"] == 3.0

    def test_from_records_missing_key(self, schema):
        with pytest.raises(SchemaError, match="missing attribute"):
            Relation.from_records(schema, [{"grp": "a", "cost": 1, "rating": 2}])

    def test_from_arrays(self):
        rel = Relation.from_arrays(
            np.array([[1.0, 2.0], [3.0, 4.0]]),
            ["x", "y"],
            join_key=[0, 1],
            aggregate=["x"],
        )
        assert rel.schema.aggregate_names == ("x",)
        assert rel.join_key(1) == (1,)

    def test_from_arrays_shape_errors(self):
        with pytest.raises(SchemaError, match="2-D"):
            Relation.from_arrays(np.zeros(3), ["x"])
        with pytest.raises(SchemaError, match="names"):
            Relation.from_arrays(np.zeros((2, 2)), ["x"])
        with pytest.raises(SchemaError, match="join column"):
            Relation.from_arrays(np.zeros((2, 1)), ["x"], join_key=[1])

    def test_empty_relation(self, schema):
        rel = Relation(schema, {"grp": [], "cost": [], "rating": [], "name": []})
        assert len(rel) == 0
        assert rel.oriented().shape == (0, 2)


class TestAccessors:
    def test_oriented_negates_higher_preference(self, relation):
        oriented = relation.oriented()
        np.testing.assert_allclose(oriented[:, 0], [10, 20, 30])  # cost: lower
        np.testing.assert_allclose(oriented[:, 1], [-3, -5, -4])  # rating: higher

    def test_matrix_is_readonly(self, relation):
        with pytest.raises(ValueError):
            relation.matrix[0, 0] = 99.0
        with pytest.raises(ValueError):
            relation.oriented()[0, 0] = 99.0

    def test_column_by_role(self, relation):
        np.testing.assert_allclose(relation.column("cost"), [10, 20, 30])
        assert relation.column("grp") == ("a", "a", "b")
        assert relation.column("name") == ("x", "y", "z")

    def test_join_keys(self, relation):
        assert relation.join_keys() == [("a",), ("a",), ("b",)]

    def test_record_roundtrip(self, relation):
        rec = relation.record(0)
        assert rec == {"grp": "a", "cost": 10.0, "rating": 3.0, "name": "x"}
        assert relation.records()[2]["name"] == "z"

    def test_local_and_aggregate_indices(self):
        rel = Relation.from_arrays(
            np.zeros((1, 3)), ["a", "b", "c"], aggregate=["b"]
        )
        assert rel.local_column_indices() == [0, 2]
        assert rel.aggregate_column_indices() == [1]
        assert rel.oriented_local().shape == (1, 2)
        assert rel.oriented_aggregate().shape == (1, 1)


class TestOperations:
    def test_take(self, relation):
        sub = relation.take([2, 0])
        assert len(sub) == 2
        assert sub.record(0)["name"] == "z"

    def test_select(self, relation):
        sub = relation.select(lambda r: r["cost"] < 25)
        assert len(sub) == 2

    def test_sort_by(self, relation):
        asc = relation.sort_by("rating")
        assert [r["name"] for r in asc.records()] == ["x", "z", "y"]
        desc = relation.sort_by("rating", descending=True)
        assert [r["name"] for r in desc.records()] == ["y", "z", "x"]

    def test_head(self, relation):
        assert len(relation.head(2)) == 2
        assert len(relation.head(10)) == 3

    def test_repr_and_text(self, relation):
        assert "test" in repr(relation)
        text = relation.to_text(max_rows=2)
        assert "cost" in text and "more rows" in text
