"""Unit tests for repro.relational.join."""

import numpy as np
import pytest

from repro.errors import JoinError, SchemaError
from repro.relational import (
    JoinedView,
    Relation,
    RelationSchema,
    ThetaCondition,
    ThetaOp,
    cartesian_pairs,
    equality_pairs,
    pairs_product,
    theta_pairs,
)
from repro.relational.groups import GroupIndex
from repro.relational.join import make_layout


def _rel(groups, matrix, names, aggregate=(), higher=(), payload=None):
    columns = {n: np.asarray(matrix)[:, i] for i, n in enumerate(names)}
    columns["grp"] = list(groups)
    schema = RelationSchema.build(
        join=["grp"], skyline=list(names), aggregate=list(aggregate),
        higher_is_better=list(higher),
    )
    return Relation(schema, columns)


@pytest.fixture
def left():
    return _rel(["a", "a", "b"], [[1, 10], [2, 20], [3, 30]], ["x", "y"])


@pytest.fixture
def right():
    return _rel(["a", "b", "c"], [[5, 50], [6, 60], [7, 70]], ["p", "q"])


class TestPairEnumeration:
    def test_pairs_product(self):
        out = pairs_product([0, 1], [2, 3])
        assert out.tolist() == [[0, 2], [0, 3], [1, 2], [1, 3]]

    def test_pairs_product_empty(self):
        assert pairs_product([], [1]).shape == (0, 2)

    def test_equality_pairs(self, left, right):
        pairs = equality_pairs(GroupIndex(left), GroupIndex(right))
        assert sorted(map(tuple, pairs.tolist())) == [(0, 0), (1, 0), (2, 1)]

    def test_equality_pairs_no_overlap(self):
        l = _rel(["x"], [[1, 1]], ["a", "b"])
        r = _rel(["y"], [[1, 1]], ["a", "b"])
        assert equality_pairs(GroupIndex(l), GroupIndex(r)).shape == (0, 2)

    def test_cartesian_pairs(self):
        assert cartesian_pairs(2, 2).tolist() == [[0, 0], [0, 1], [1, 0], [1, 1]]

    @pytest.mark.parametrize(
        "op,expected",
        [
            (ThetaOp.LT, {(0, 1), (0, 2), (1, 2)}),
            (ThetaOp.LE, {(0, 0), (0, 1), (0, 2), (1, 1), (1, 2), (2, 2)}),
            (ThetaOp.GT, {(1, 0), (2, 0), (2, 1)}),
            (ThetaOp.GE, {(0, 0), (1, 0), (1, 1), (2, 0), (2, 1), (2, 2)}),
        ],
    )
    def test_theta_pairs_match_bruteforce(self, op, expected):
        lrel = _rel(["g"] * 3, [[1, 0], [2, 0], [3, 0]], ["t", "z"])
        rrel = _rel(["g"] * 3, [[1, 0], [2, 0], [3, 0]], ["t", "z"])
        cond = ThetaCondition("t", op, "t")
        pairs = theta_pairs(lrel, rrel, cond)
        assert set(map(tuple, pairs.tolist())) == expected


class TestLayout:
    def test_plain_layout(self, left, right):
        lay = make_layout(left.schema, right.schema)
        assert lay.names == ("r1.x", "r1.y", "r2.p", "r2.q")
        assert lay.width == 4 and lay.n_aggregate == 0

    def test_aggregate_layout(self):
        l = _rel(["a"], [[1, 2, 3]], ["c", "u", "v"], aggregate=["c"])
        r = _rel(["a"], [[4, 5, 6]], ["c", "w", "z"], aggregate=["c"])
        lay = make_layout(l.schema, r.schema)
        assert lay.names == ("r1.u", "r1.v", "r2.w", "r2.z", "c")
        assert lay.n_aggregate == 1 and lay.width == 5

    def test_incompatible_aggregates(self):
        l = _rel(["a"], [[1, 2]], ["c", "u"], aggregate=["c"])
        r = _rel(["a"], [[1, 2]], ["d", "u"], aggregate=["d"])
        with pytest.raises(SchemaError):
            make_layout(l.schema, r.schema)


class TestJoinedView:
    def test_equality_view(self, left, right):
        view = JoinedView.equality(left, right)
        assert len(view) == 3
        assert view.width == 4

    def test_oriented_concatenation(self, left, right):
        view = JoinedView.equality(left, right)
        oriented = view.oriented()
        # pair (0, 0): left row 0 = (1, 10), right row 0 = (5, 50)
        row = oriented[[tuple(p) for p in view.pairs.tolist()].index((0, 0))]
        np.testing.assert_allclose(row, [1, 10, 5, 50])

    def test_aggregate_values_and_orientation(self):
        # Higher-is-better aggregate: raw sum, then negated orientation.
        l = _rel(["a"], [[3, 1]], ["score", "u"], aggregate=["score"], higher=["score"])
        r = _rel(["a"], [[4, 2]], ["score", "w"], aggregate=["score"], higher=["score"])
        view = JoinedView.equality(l, r, aggregate="sum")
        oriented = view.oriented()
        # layout: r1.u, r2.w, score ; score oriented = -(3+4)
        np.testing.assert_allclose(oriented[0], [1, 2, -7])

    def test_aggregate_required(self):
        l = _rel(["a"], [[3, 1]], ["c", "u"], aggregate=["c"])
        r = _rel(["a"], [[4, 2]], ["c", "w"], aggregate=["c"])
        with pytest.raises(JoinError, match="aggregate"):
            JoinedView.equality(l, r)

    def test_cartesian_view(self, left, right):
        view = JoinedView.cartesian(left, right)
        assert len(view) == 9

    def test_theta_view(self):
        lrel = _rel(["g"] * 2, [[1, 0], [5, 0]], ["t", "z"])
        rrel = _rel(["g"] * 2, [[2, 0], [6, 0]], ["t", "z"])
        view = JoinedView.theta(lrel, rrel, ThetaCondition("t", ThetaOp.LT, "t"))
        assert set(map(tuple, view.pairs.tolist())) == {(0, 0), (0, 1), (1, 1)}

    def test_bad_pairs_shape(self, left, right):
        with pytest.raises(JoinError, match="m x 2"):
            JoinedView(left, right, np.zeros((2, 3), dtype=np.intp))

    def test_mismatched_join_attrs(self, left):
        other_schema = RelationSchema.build(join=["g1", "g2"], skyline=["p"])
        other = Relation(other_schema, {"g1": [], "g2": [], "p": []})
        with pytest.raises(JoinError, match="join attribute counts"):
            JoinedView.equality(left, other)

    def test_no_join_attrs_requires_cartesian(self):
        schema = RelationSchema.build(skyline=["p"])
        rel = Relation(schema, {"p": [1.0]})
        with pytest.raises(JoinError, match="cartesian"):
            JoinedView.equality(rel, rel)

    def test_to_relation_materialization(self, left, right):
        view = JoinedView.equality(left, right)
        rel = view.to_relation()
        assert len(rel) == 3
        assert set(rel.schema.skyline_names) == {"r1.x", "r1.y", "r2.p", "r2.q"}
        # provenance payloads point back at base rows
        rec = rel.records()[0]
        li, ri = rec["_left_row"], rec["_right_row"]
        assert rel.record(0)["r1.x"] == left.record(li)["x"]
        assert rel.record(0)["r2.p"] == right.record(ri)["p"]

    def test_to_relation_with_aggregate_and_preferences(self):
        l = _rel(["a"], [[3, 1]], ["score", "u"], aggregate=["score"], higher=["score"])
        r = _rel(["a"], [[4, 2]], ["score", "w"], aggregate=["score"], higher=["score"])
        rel = JoinedView.equality(l, r, aggregate="sum").to_relation()
        assert rel.record(0)["score"] == 7.0
        assert rel.schema["score"].preference.value == "higher"

    def test_oriented_for_pairs_subset(self, left, right):
        view = JoinedView.equality(left, right)
        sub = view.oriented_for_pairs(np.array([[2, 1]]))
        np.testing.assert_allclose(sub[0], [3, 30, 6, 60])

    def test_repr(self, left, right):
        assert "JoinedView" in repr(JoinedView.equality(left, right))
