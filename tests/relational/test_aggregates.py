"""Unit tests for repro.relational.aggregates."""

import numpy as np
import pytest

from repro.errors import AggregateError
from repro.relational import (
    MAX,
    MEAN,
    MIN,
    PRODUCT,
    SUM,
    AggregateFunction,
    get_aggregate,
    register_aggregate,
)


class TestBuiltins:
    def test_sum(self):
        np.testing.assert_allclose(SUM(np.array([1.0, 2.0]), np.array([3.0, 4.0])), [4, 6])

    def test_mean(self):
        np.testing.assert_allclose(MEAN(np.array([2.0]), np.array([4.0])), [3.0])

    def test_product(self):
        np.testing.assert_allclose(PRODUCT(np.array([2.0]), np.array([4.0])), [8.0])

    def test_max_min(self):
        np.testing.assert_allclose(MAX(np.array([1.0]), np.array([5.0])), [5.0])
        np.testing.assert_allclose(MIN(np.array([1.0]), np.array([5.0])), [1.0])

    def test_strict_monotonicity_flags(self):
        assert SUM.strictly_monotone and MEAN.strictly_monotone
        assert PRODUCT.strictly_monotone
        assert not MAX.strictly_monotone and not MIN.strictly_monotone

    def test_shape_mismatch(self):
        with pytest.raises(AggregateError, match="shape"):
            SUM(np.zeros(2), np.zeros(3))

    def test_matrix_inputs(self):
        out = SUM(np.ones((2, 2)), np.full((2, 2), 2.0))
        np.testing.assert_allclose(out, np.full((2, 2), 3.0))


class TestRegistry:
    def test_get_by_name(self):
        assert get_aggregate("sum") is SUM

    def test_get_passthrough(self):
        assert get_aggregate(SUM) is SUM

    def test_unknown_name(self):
        with pytest.raises(AggregateError, match="unknown aggregate"):
            get_aggregate("nope")

    def test_wrong_type(self):
        with pytest.raises(AggregateError, match="name or AggregateFunction"):
            get_aggregate(42)

    def test_register_custom(self):
        custom = AggregateFunction(
            "test_weighted", lambda x, y: 0.7 * x + 0.3 * y, strictly_monotone=True
        )
        register_aggregate(custom)
        try:
            assert get_aggregate("test_weighted") is custom
            with pytest.raises(AggregateError, match="already registered"):
                register_aggregate(custom)
            register_aggregate(custom, overwrite=True)  # no raise
        finally:
            # Clean the registry to keep tests independent.
            from repro.relational.aggregates import _REGISTRY

            _REGISTRY.pop("test_weighted", None)
