"""Setup shim for environments without PEP 660 editable-install support.

All project metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` (or ``python setup.py develop``) works with older
setuptools/pip stacks that lack the ``wheel`` package.
"""

from setuptools import setup

setup()
