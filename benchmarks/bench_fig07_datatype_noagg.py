"""Fig. 7: effect of the data distribution without aggregation (Sec. 7.2.4).

Same shape as Fig. 4: anti-correlated slowest, correlated fastest.
The paper leaves (d, k) implicit for this figure; we use d=5, k=8
(recorded in EXPERIMENTS.md).
"""

import pytest

from .conftest import bench_ksjq, dataset


@pytest.mark.parametrize("algo", ["G", "D", "N"])
@pytest.mark.parametrize("dist", ["independent", "correlated", "anticorrelated"])
@pytest.mark.benchmark(group="fig7")
def test_fig7_data_distribution(benchmark, algo, dist):
    left, right = dataset(d=5, a=0, distribution=dist)
    bench_ksjq(benchmark, algo, left, right, 8, None)
