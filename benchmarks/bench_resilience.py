"""Resilience costs: disarmed-checkpoint overhead and recovery latency.

Two numbers the resilience layer promises
([docs/resilience.md](../docs/resilience.md)):

* **Disarmed overhead <= 2 %.** The fault checkpoints compiled into
  the hot paths (``shard.candidates`` / ``shard.verify`` run once per
  shard bucket) must be free when no plan is armed. The disarmed
  ``checkpoint()`` call is a single module-global read; this module
  times it directly, projects it onto the clean parallel run's actual
  checkpoint count, and asserts the overhead stays under 2 %.
* **Recovery <= ~2x clean.** A transient shard fault (retried in
  place) and a hard worker crash (pool rebuild + re-execution of only
  the failed buckets) are timed against their clean counterparts. The
  assertion is lenient — ``max(2x clean, clean + 1s)`` — because at
  smoke scale pool setup dominates; the recorded ratio is the signal.

Every recovery cell also re-asserts byte identity against the serial
ground truth: a benchmark that got fast by dropping a shard would be
worse than useless.
"""

import pytest

from repro.core import JoinPlan, run_naive, run_parallel
from repro.core.parallel import ShardPlan
from repro.resilience import FaultPlan, FaultSpec, arming, checkpoint, resilience_stats

from .conftest import dataset, record_artifact

K = 11
CHECKPOINT_LOOPS = 100_000

_clean_elapsed: dict[str, float] = {}


def _plan_and_truth():
    left, right = dataset(paper_n=3300, d=7, a=2)
    plan = JoinPlan(left, right, aggregate="sum")
    return plan, run_naive(plan, K)


def _shards(workers: int, kind: str) -> ShardPlan:
    return ShardPlan(workers, 0, kind, "bench")


@pytest.mark.benchmark(group="resilience")
def test_clean_thread_baseline(benchmark):
    plan, want = _plan_and_truth()
    result = benchmark.pedantic(
        run_parallel,
        args=(plan, K),
        kwargs={"shards": _shards(4, "thread")},
        rounds=1,
        iterations=1,
        warmup_rounds=1,
    )
    assert result.pairs.tobytes() == want.pairs.tobytes()
    _clean_elapsed["thread"] = benchmark.stats.stats.total
    benchmark.extra_info["skyline"] = result.count
    record_artifact(benchmark, "clean-thread", benchmark.stats.stats.total)


@pytest.mark.benchmark(group="resilience")
def test_clean_process_baseline(benchmark):
    plan, want = _plan_and_truth()
    result = benchmark.pedantic(
        run_parallel,
        args=(plan, K),
        kwargs={"shards": _shards(2, "process")},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert result.pairs.tobytes() == want.pairs.tobytes()
    _clean_elapsed["process"] = benchmark.stats.stats.total
    benchmark.extra_info["skyline"] = result.count
    record_artifact(benchmark, "clean-process", benchmark.stats.stats.total)


@pytest.mark.benchmark(group="resilience")
def test_disarmed_checkpoint_overhead(benchmark):
    """Per-call cost of a disarmed checkpoint, projected onto the clean
    run: (per-call x checkpoints actually executed) / clean elapsed."""

    def spin():
        for _ in range(CHECKPOINT_LOOPS):
            checkpoint("shard.verify")

    benchmark.pedantic(spin, rounds=1, iterations=1, warmup_rounds=1)
    per_call = benchmark.stats.stats.total / CHECKPOINT_LOOPS
    benchmark.extra_info["per_call_ns"] = round(per_call * 1e9, 2)
    clean = _clean_elapsed.get("thread")
    if clean:
        # 4 thread shards x 2 checkpoint sites per bucket, rounded up
        # generously to 100 calls — still far below the 2 % budget.
        overhead_pct = (per_call * 100) / clean * 100.0
        benchmark.extra_info["overhead_pct_of_clean"] = round(overhead_pct, 4)
        assert overhead_pct <= 2.0
    record_artifact(benchmark, "disarmed-checkpoint", benchmark.stats.stats.total)


@pytest.mark.benchmark(group="resilience")
def test_transient_fault_recovery_latency(benchmark):
    """One transient I/O fault, retried in place on the thread rung."""
    plan, want = _plan_and_truth()

    def recover():
        resilience_stats().reset()
        faults = FaultPlan([FaultSpec("shard.verify", kind="io", times=1)])
        with arming(faults):
            return run_parallel(plan, K, shards=_shards(4, "thread"))

    result = benchmark.pedantic(recover, rounds=1, iterations=1, warmup_rounds=0)
    assert result.pairs.tobytes() == want.pairs.tobytes()
    assert resilience_stats().snapshot()["shard_retries"] >= 1
    elapsed = benchmark.stats.stats.total
    clean = _clean_elapsed.get("thread")
    if clean:
        benchmark.extra_info["ratio_vs_clean"] = round(elapsed / max(clean, 1e-9), 3)
        assert elapsed <= max(2.0 * clean, clean + 1.0)
    record_artifact(benchmark, "recovery-transient", elapsed)


@pytest.mark.benchmark(group="resilience")
def test_worker_crash_recovery_latency(benchmark):
    """A hard worker death (``os._exit`` in the pool): rebuild the pool,
    re-execute only the failed buckets, still byte-identical."""
    plan, want = _plan_and_truth()

    def recover():
        resilience_stats().reset()
        faults = FaultPlan([FaultSpec("shard.verify", kind="crash", times=1)])
        with arming(faults):
            return run_parallel(plan, K, shards=_shards(2, "process"))

    result = benchmark.pedantic(recover, rounds=1, iterations=1, warmup_rounds=0)
    assert result.pairs.tobytes() == want.pairs.tobytes()
    snap = resilience_stats().snapshot()
    assert snap["pool_rebuilds"] >= 1
    elapsed = benchmark.stats.stats.total
    clean = _clean_elapsed.get("process")
    if clean:
        benchmark.extra_info["ratio_vs_clean"] = round(elapsed / max(clean, 1e-9), 3)
        # Pool rebuild re-pays executor startup, which dominates at
        # smoke scale; the +2s floor keeps tiny runs honest but stable.
        assert elapsed <= max(2.0 * clean, clean + 2.0)
    record_artifact(benchmark, "recovery-crash", elapsed)
