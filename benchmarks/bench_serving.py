"""Serving-path benchmarks: catalog-registered datasets + batch front-end.

Not a paper figure — this measures the PR-3 serving layer itself:

* ``cold``: every query pays full plan preparation (cache disabled),
  the pre-catalog behaviour;
* ``warm``: the same query mix through one engine with plan caching —
  repeat queries over registered datasets skip join preparation;
* ``results``: plan + result caches — repeat queries are pure lookups;
* ``batch``: ``execute_many`` fan-out of the mix over a thread pool.

Skyline sizes are recorded in ``extra_info`` as a correctness record,
exactly like the figure benchmarks.
"""

import pytest

from repro.api import Engine, QuerySpec

from .conftest import dataset, record_artifact, scaled_n


def _query_mix():
    """A small dashboard-like mix: repeated ks over one dataset pair."""
    specs = [QuerySpec.for_ksjq(k=k) for k in (8, 9, 10)]
    return [spec for _ in range(4) for spec in specs]  # 12 queries, 3 distinct


def _register(engine):
    left, right = dataset(paper_n=min(scaled_n(), 400) * 20, a=0)
    engine.register("left", left)
    engine.register("right", right)
    return left, right


def _run_serial(engine, left, right, named):
    results = []
    for spec in _query_mix():
        if named:
            results.append(engine.execute("left", "right", spec))
        else:
            results.append(engine.execute(left, right, spec))
    return results


@pytest.mark.parametrize("mode", ["cold", "warm", "results"])
def test_serving_query_mix(benchmark, mode):
    kwargs = {"cold": dict(max_plans=0), "warm": dict(), "results": dict(max_results=64)}
    engine = Engine(**kwargs[mode])
    left, right = _register(engine)

    results = benchmark.pedantic(
        _run_serial, args=(engine, left, right, mode != "cold"),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    benchmark.extra_info["skyline"] = [r.count for r in results[:3]]
    benchmark.extra_info["cache_info"] = {
        k: v for k, v in engine.cache_info().items() if k != "results"
    }
    record_artifact(benchmark, f"serving-{mode}", sum(r.elapsed for r in results))


@pytest.mark.parametrize("workers", [1, 8])
def test_serving_execute_many(benchmark, workers):
    engine = Engine(max_results=64)
    _register(engine)
    requests = [("left", "right", spec) for spec in _query_mix()]

    results = benchmark.pedantic(
        engine.execute_many, args=(requests,), kwargs=dict(max_workers=workers),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    benchmark.extra_info["skyline"] = [r.count for r in results[:3]]
    record_artifact(benchmark, f"batch-{workers}w", sum(r.elapsed for r in results))


# ----------------------------------------------------------------------
# PR-8 async front-end: open-loop latency SLO + progressive streaming
# ----------------------------------------------------------------------
# These cells benchmark the HTTP serving subsystem itself, over a real
# socket. They use a *fixed* dataset size (not REPRO_BENCH_SCALE): the
# saturation dynamics below only mean something when one query's
# service time is a known multiple of the deadline budget, so scaling
# n with the benchmark scale would change what is being measured.

import asyncio
import http.client
import json
import threading
import time

from repro.datagen import generate_relation_pair
from repro.serving.server import KSJQServer, ServingConfig

#: Open-loop arrival schedule: 24 requests at 50/s against a server
#: whose deadline-bounded throughput is ~10/s — far above capacity, so
#: a correct server must shed, not queue unboundedly.
OPEN_LOOP_REQUESTS = 24
OPEN_LOOP_INTERVAL_S = 0.02
OPEN_LOOP_DEADLINE_MS = 300.0
#: SLO slack on top of the deadline budget: checkpoint overshoot (the
#: scan chunks are tens of ms at this size) + HTTP + thread scheduling.
SLO_SLACK_S = 0.6


class _RunningServer:
    """A KSJQServer on a private event-loop thread (benchmark harness)."""

    def __init__(self, engine, config):
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self.loop.run_forever, daemon=True)
        self._thread.start()
        self.server = KSJQServer(engine, config)
        asyncio.run_coroutine_threadsafe(self.server.start(), self.loop).result(10)
        self.port = self.server.port

    def close(self):
        asyncio.run_coroutine_threadsafe(self.server.stop(), self.loop).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(10)
        self.loop.close()

    def request(self, method, path, body=None, timeout=60):
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=timeout)
        conn.request(method, path, body=json.dumps(body).encode() if body else None)
        response = conn.getresponse()
        data = response.read()
        conn.close()
        return response.status, json.loads(data) if data else None


def _serving_pair_engine(n=200):
    """Fixed-size demo pair: naive k=12 runs ~1s, well past the budget."""
    left, right = generate_relation_pair(n=n, d=6, g=10, a=0, seed=42)
    engine = Engine()
    engine.register("left", left)
    engine.register("right", right)
    return engine


def _open_loop(server):
    """Fire the arrival schedule; returns (status, wall_seconds) per request."""
    results = []
    lock = threading.Lock()
    threads = []

    def fire():
        start = time.perf_counter()
        status, _ = server.request(
            "POST",
            "/query",
            {"datasets": ["left", "right"], "k": 12, "algorithm": "naive",
             "deadline_ms": OPEN_LOOP_DEADLINE_MS},
        )
        with lock:
            results.append((status, time.perf_counter() - start))

    for _ in range(OPEN_LOOP_REQUESTS):
        thread = threading.Thread(target=fire)
        thread.start()
        threads.append(thread)
        time.sleep(OPEN_LOOP_INTERVAL_S)
    for thread in threads:
        thread.join()
    return results


def test_serving_open_loop_slo(benchmark):
    """Load above capacity: shed with 429s (never unbounded queueing),
    and every admitted request meets deadline + slack."""
    server = _RunningServer(
        _serving_pair_engine(),
        ServingConfig(workers=2, max_queue=1, probe_costs=False),
    )
    try:
        results = benchmark.pedantic(
            _open_loop, args=(server,), rounds=1, iterations=1, warmup_rounds=0
        )
        _, metrics = server.request("GET", "/metrics")
    finally:
        server.close()

    admitted = sorted(wall for status, wall in results if status == 200)
    shed = sum(1 for status, _ in results if status == 429)
    assert len(admitted) + shed == len(results), "unexpected statuses in the mix"
    assert admitted, "at least the first arrivals must be admitted"
    assert shed > 0, "an overloaded bounded queue must shed"

    p50 = admitted[len(admitted) // 2]
    p99 = admitted[min(len(admitted) - 1, int(0.99 * len(admitted)))]
    budget = OPEN_LOOP_DEADLINE_MS / 1000.0
    assert p99 <= budget + SLO_SLACK_S, (
        f"admitted p99 {p99:.3f}s blows the {budget:.1f}s deadline SLO"
    )
    benchmark.extra_info["admitted"] = len(admitted)
    benchmark.extra_info["shed"] = shed
    benchmark.extra_info["p50_s"] = round(p50, 4)
    benchmark.extra_info["p99_s"] = round(p99, 4)
    benchmark.extra_info["server_metrics"] = metrics["routes"]["/query"]
    record_artifact(benchmark, "open-loop", sum(wall for _, wall in results))


def test_serving_progressive_first_result(benchmark):
    """Time-to-first-pair of the chunked progressive stream: the first
    skyline pair must reach the client before the full verify ends."""
    server = _RunningServer(_serving_pair_engine(), ServingConfig(workers=2))

    def stream_once():
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=60)
        start = time.perf_counter()
        conn.request(
            "POST",
            "/query",
            body=json.dumps(
                {"datasets": ["left", "right"], "k": 11, "progressive": True}
            ).encode(),
        )
        response = conn.getresponse()
        first = None
        count = 0
        while True:
            raw = response.readline()
            if not raw:
                break
            raw = raw.strip()
            if not raw:
                continue
            line = json.loads(raw)
            if "pair" in line:
                count += 1
                if first is None:
                    first = time.perf_counter() - start
            if line.get("done"):
                break
        total = time.perf_counter() - start
        conn.close()
        return first, total, count

    try:
        first, total, count = benchmark.pedantic(
            stream_once, rounds=1, iterations=1, warmup_rounds=0
        )
    finally:
        server.close()

    assert count > 0 and first is not None
    assert first < total, "first pair must arrive before the stream completes"
    benchmark.extra_info["time_to_first_s"] = round(first, 4)
    benchmark.extra_info["total_s"] = round(total, 4)
    benchmark.extra_info["pairs"] = count
    record_artifact(benchmark, "progressive", total)
