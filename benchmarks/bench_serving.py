"""Serving-path benchmarks: catalog-registered datasets + batch front-end.

Not a paper figure — this measures the PR-3 serving layer itself:

* ``cold``: every query pays full plan preparation (cache disabled),
  the pre-catalog behaviour;
* ``warm``: the same query mix through one engine with plan caching —
  repeat queries over registered datasets skip join preparation;
* ``results``: plan + result caches — repeat queries are pure lookups;
* ``batch``: ``execute_many`` fan-out of the mix over a thread pool.

Skyline sizes are recorded in ``extra_info`` as a correctness record,
exactly like the figure benchmarks.
"""

import pytest

from repro.api import Engine, QuerySpec

from .conftest import dataset, record_artifact, scaled_n


def _query_mix():
    """A small dashboard-like mix: repeated ks over one dataset pair."""
    specs = [QuerySpec.for_ksjq(k=k) for k in (8, 9, 10)]
    return [spec for _ in range(4) for spec in specs]  # 12 queries, 3 distinct


def _register(engine):
    left, right = dataset(paper_n=min(scaled_n(), 400) * 20, a=0)
    engine.register("left", left)
    engine.register("right", right)
    return left, right


def _run_serial(engine, left, right, named):
    results = []
    for spec in _query_mix():
        if named:
            results.append(engine.execute("left", "right", spec))
        else:
            results.append(engine.execute(left, right, spec))
    return results


@pytest.mark.parametrize("mode", ["cold", "warm", "results"])
def test_serving_query_mix(benchmark, mode):
    kwargs = {"cold": dict(max_plans=0), "warm": dict(), "results": dict(max_results=64)}
    engine = Engine(**kwargs[mode])
    left, right = _register(engine)

    results = benchmark.pedantic(
        _run_serial, args=(engine, left, right, mode != "cold"),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    benchmark.extra_info["skyline"] = [r.count for r in results[:3]]
    benchmark.extra_info["cache_info"] = {
        k: v for k, v in engine.cache_info().items() if k != "results"
    }
    record_artifact(benchmark, f"serving-{mode}", sum(r.elapsed for r in results))


@pytest.mark.parametrize("workers", [1, 8])
def test_serving_execute_many(benchmark, workers):
    engine = Engine(max_results=64)
    _register(engine)
    requests = [("left", "right", spec) for spec in _query_mix()]

    results = benchmark.pedantic(
        engine.execute_many, args=(requests,), kwargs=dict(max_workers=workers),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    benchmark.extra_info["skyline"] = [r.count for r in results[:3]]
    record_artifact(benchmark, f"batch-{workers}w", sum(r.elapsed for r in results))
