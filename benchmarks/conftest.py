"""Shared infrastructure for the per-figure benchmarks.

Every paper figure has a benchmark file here; each benchmark measures
one (sweep point, algorithm) cell with ``benchmark.pedantic`` (a single
timed round — the algorithms are deterministic and the paper plots
single-run component breakdowns, so statistical repetition adds little
besides wall-clock cost).

Sizes are paper units scaled by ``REPRO_BENCH_SCALE`` (default 0.05 →
n = 165, joined ≈ 2,722 at Table 7 defaults). Raise the scale to probe
closer to paper sizes; sweep points whose joined relation would exceed
``REPRO_BENCH_MAX_JOINED`` (default 60,000) are skipped so the naïve
baseline stays feasible.

Skyline sizes / chosen k are recorded in ``benchmark.extra_info`` so the
benchmark JSON doubles as a correctness record.
"""

from __future__ import annotations

import os
import warnings
from typing import Dict, Optional, Tuple

import pytest

from repro.api import Engine
from repro.datagen import generate_relation_pair, make_flight_relations
from repro.errors import SoundnessWarning

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))
MAX_JOINED = int(os.environ.get("REPRO_BENCH_MAX_JOINED", "60000"))

# Caching disabled: each benchmark cell must pay full join preparation,
# matching the paper's per-algorithm component breakdowns.
ENGINE = Engine(max_plans=0)

_ALGOS = {"G": "grouping", "D": "dominator", "N": "naive"}
_METHODS = {"B": "binary", "R": "range", "N": "naive"}

_pair_cache: Dict[tuple, tuple] = {}


def scaled_n(paper_n: int = 3300) -> int:
    """Paper base-relation size -> benchmark size."""
    return max(20, int(round(paper_n * BENCH_SCALE)))


def scaled_delta(paper_delta: int) -> int:
    """Paper delta (joined-size proportional) -> benchmark delta."""
    return max(1, int(round(paper_delta * BENCH_SCALE * BENCH_SCALE)))


def skip_if_oversized(n: int, g: int) -> None:
    if n * n // max(g, 1) > MAX_JOINED:
        pytest.skip(f"joined size {n * n // g} > REPRO_BENCH_MAX_JOINED={MAX_JOINED}")


def dataset(
    paper_n: int = 3300,
    d: int = 7,
    g: int = 10,
    a: int = 2,
    distribution: str = "independent",
    seed: int = 42,
):
    """Cached scaled relation pair for one sweep point."""
    n = scaled_n(paper_n)
    key = (n, d, g, a, distribution, seed)
    if key not in _pair_cache:
        _pair_cache[key] = generate_relation_pair(
            n=n, d=d, g=g, distribution=distribution, a=a, seed=seed
        )
    return _pair_cache[key]


def flights():
    key = ("flights",)
    if key not in _pair_cache:
        _pair_cache[key] = make_flight_relations()
    return _pair_cache[key]


def run_ksjq(letter: str, left, right, k: int, aggregate: Optional[str]):
    """One full algorithm execution, including plan construction."""
    return (
        ENGINE.query(left, right)
        .aggregate(aggregate)
        .algorithm(_ALGOS[letter])
        .mode("faithful")
        .run(k=k)
    )


def run_findk(letter: str, left, right, delta: int, aggregate: Optional[str] = None):
    return (
        ENGINE.query(left, right)
        .aggregate(aggregate)
        .method(_METHODS[letter])
        .find_k(delta=delta)
    )


def bench_ksjq(benchmark, letter, left, right, k, aggregate):
    """Benchmark one KSJQ cell and record the answer size."""
    result = benchmark.pedantic(
        run_ksjq, args=(letter, left, right, k, aggregate),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    benchmark.extra_info["skyline"] = result.count
    benchmark.extra_info["algorithm"] = _ALGOS[letter]
    benchmark.extra_info["timings"] = {
        key: round(val, 6) for key, val in result.timings.as_dict().items()
    }
    return result


def bench_findk(benchmark, letter, left, right, delta, aggregate=None):
    result = benchmark.pedantic(
        run_findk, args=(letter, left, right, delta, aggregate),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    benchmark.extra_info["k"] = result.k
    benchmark.extra_info["method"] = _METHODS[letter]
    benchmark.extra_info["full_evaluations"] = result.full_evaluations
    return result


@pytest.fixture(autouse=True)
def _silence_soundness_warnings():
    """Benchmarks run the faithful (paper) path on aggregate data."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", SoundnessWarning)
        yield
