"""Shared infrastructure for the per-figure benchmarks.

Every paper figure has a benchmark file here; each benchmark measures
one (sweep point, algorithm) cell with ``benchmark.pedantic`` (a single
timed round — the algorithms are deterministic and the paper plots
single-run component breakdowns, so statistical repetition adds little
besides wall-clock cost).

Sizes are paper units scaled by ``REPRO_BENCH_SCALE`` (default 0.05 →
n = 165, joined ≈ 2,722 at Table 7 defaults). Raise the scale to probe
closer to paper sizes; sweep points whose joined relation would exceed
``REPRO_BENCH_MAX_JOINED`` (default 60,000) are skipped so the naïve
baseline stays feasible.

Skyline sizes / chosen k are recorded in ``benchmark.extra_info`` so the
benchmark JSON doubles as a correctness record.

Setting ``REPRO_BENCH_ARTIFACTS=<dir>`` additionally writes one
``BENCH_<figure>.json`` per benchmark module at session end (figure id,
scale, elapsed seconds per algorithm cell, plus the machine-speed
calibration of :func:`check_regression.calibration_seconds`) — CI
uploads these as build artifacts and ``check_regression.py`` compares
them, calibration-adjusted, against the committed baselines.
"""

from __future__ import annotations

import json
import os
import warnings

import pytest

from repro.api import Engine
from repro.datagen import generate_relation_pair, make_flight_relations
from repro.errors import SoundnessWarning

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))
MAX_JOINED = int(os.environ.get("REPRO_BENCH_MAX_JOINED", "60000"))
ARTIFACT_DIR = os.environ.get("REPRO_BENCH_ARTIFACTS", "")

# Caching disabled: each benchmark cell must pay full join preparation,
# matching the paper's per-algorithm component breakdowns.
ENGINE = Engine(max_plans=0)

_ALGOS = {"G": "grouping", "D": "dominator", "N": "naive"}
_METHODS = {"B": "binary", "R": "range", "N": "naive"}

_pair_cache: dict[tuple, tuple] = {}
_artifact_records: dict[str, list[dict]] = {}


def _figure_id(fullname: str) -> str:
    """``benchmarks/bench_fig01_x.py::test_a[G-8]`` -> ``fig01_x``."""
    stem = os.path.splitext(os.path.basename(fullname.split("::", 1)[0]))[0]
    return stem[len("bench_"):] if stem.startswith("bench_") else stem


def record_artifact(benchmark, algorithm: str, elapsed: float) -> None:
    """Queue one benchmark cell for the session's BENCH_*.json artifact."""
    if not ARTIFACT_DIR:
        return
    _artifact_records.setdefault(_figure_id(benchmark.fullname), []).append(
        {
            "name": benchmark.name,
            "algorithm": algorithm,
            "elapsed": round(float(elapsed), 6),
            "extra_info": dict(benchmark.extra_info),
        }
    )


def pytest_sessionfinish(session, exitstatus):
    """Write one BENCH_<figure>.json per benchmark module that ran."""
    if not ARTIFACT_DIR or not _artifact_records:
        return
    from .check_regression import calibration_seconds

    calibration = calibration_seconds()
    os.makedirs(ARTIFACT_DIR, exist_ok=True)
    for figure, results in sorted(_artifact_records.items()):
        payload = {
            "figure": figure,
            "scale": BENCH_SCALE,
            "max_joined": MAX_JOINED,
            "calibration": round(calibration, 6),
            "results": results,
        }
        path = os.path.join(ARTIFACT_DIR, f"BENCH_{figure}.json")
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)


def scaled_n(paper_n: int = 3300) -> int:
    """Paper base-relation size -> benchmark size."""
    return max(20, int(round(paper_n * BENCH_SCALE)))


def scaled_delta(paper_delta: int) -> int:
    """Paper delta (joined-size proportional) -> benchmark delta."""
    return max(1, int(round(paper_delta * BENCH_SCALE * BENCH_SCALE)))


def skip_if_oversized(n: int, g: int) -> None:
    if n * n // max(g, 1) > MAX_JOINED:
        pytest.skip(f"joined size {n * n // g} > REPRO_BENCH_MAX_JOINED={MAX_JOINED}")


def dataset(
    paper_n: int = 3300,
    d: int = 7,
    g: int = 10,
    a: int = 2,
    distribution: str = "independent",
    seed: int = 42,
):
    """Cached scaled relation pair for one sweep point."""
    n = scaled_n(paper_n)
    key = (n, d, g, a, distribution, seed)
    if key not in _pair_cache:
        _pair_cache[key] = generate_relation_pair(
            n=n, d=d, g=g, distribution=distribution, a=a, seed=seed
        )
    return _pair_cache[key]


def flights():
    key = ("flights",)
    if key not in _pair_cache:
        _pair_cache[key] = make_flight_relations()
    return _pair_cache[key]


def run_ksjq(letter: str, left, right, k: int, aggregate: str | None):
    """One full algorithm execution, including plan construction."""
    return (
        ENGINE.query(left, right)
        .aggregate(aggregate)
        .algorithm(_ALGOS[letter])
        .mode("faithful")
        .run(k=k)
    )


def run_findk(letter: str, left, right, delta: int, aggregate: str | None = None):
    return (
        ENGINE.query(left, right)
        .aggregate(aggregate)
        .method(_METHODS[letter])
        .find_k(delta=delta)
    )


def bench_ksjq(benchmark, letter, left, right, k, aggregate):
    """Benchmark one KSJQ cell and record the answer size."""
    result = benchmark.pedantic(
        run_ksjq, args=(letter, left, right, k, aggregate),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    benchmark.extra_info["skyline"] = result.count
    benchmark.extra_info["algorithm"] = _ALGOS[letter]
    benchmark.extra_info["timings"] = {
        key: round(val, 6) for key, val in result.timings.as_dict().items()
    }
    record_artifact(benchmark, _ALGOS[letter], result.timings.total)
    return result


def bench_findk(benchmark, letter, left, right, delta, aggregate=None):
    result = benchmark.pedantic(
        run_findk, args=(letter, left, right, delta, aggregate),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    benchmark.extra_info["k"] = result.k
    benchmark.extra_info["method"] = _METHODS[letter]
    benchmark.extra_info["full_evaluations"] = result.full_evaluations
    record_artifact(benchmark, _METHODS[letter], result.timings.total)
    return result


def make_cascade_legs(n_per_leg: int, m: int = 3, a: int = 1, seed: int = 7):
    """A chain of ``m`` flight-leg relations joined on ``dst``/``src``."""
    import numpy as np

    from repro.relational import Relation, RelationSchema

    key = ("cascade", n_per_leg, m, a, seed)
    if key not in _pair_cache:
        rng = np.random.default_rng(seed)
        names = ["cost", "dur", "rtg"]
        schema = RelationSchema.build(
            skyline=names,
            aggregate=names[:a],
            higher_is_better=["rtg"],
            payload=["src", "dst"],
        )
        cities = [["A"], ["P", "Q"], ["R", "S"], ["T", "U"], ["B"]]
        legs = []
        for i in range(m):
            ins, outs = cities[i], cities[i + 1]
            quality = rng.beta(2, 2, n_per_leg)
            legs.append(
                Relation(
                    schema,
                    {
                        "cost": np.round(60 + 250 * quality + rng.normal(0, 20, n_per_leg)),
                        "dur": np.round(1 + 3 * rng.uniform(size=n_per_leg), 1),
                        "rtg": np.round(1 + 9 * np.clip(quality + rng.normal(0, 0.2, n_per_leg), 0, 1)),
                        "src": [ins[j % len(ins)] for j in range(n_per_leg)],
                        "dst": [outs[j % len(outs)] for j in range(n_per_leg)],
                    },
                    name=f"leg{i + 1}",
                )
            )
        _pair_cache[key] = tuple(legs)
    return _pair_cache[key]


def bench_cascade(benchmark, algorithm: str, legs, k: int, aggregate: str | None):
    """Benchmark one m-way cascade cell through the engine."""

    def run():
        query = ENGINE.query(*legs).aggregate(aggregate).algorithm(algorithm)
        for _ in range(len(legs) - 1):
            query = query.hop("dst", "src")
        return query.run(k=k)

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["skyline"] = result.count
    benchmark.extra_info["total_chains"] = result.total_chains
    benchmark.extra_info["pruned_rows"] = result.pruned_rows
    benchmark.extra_info["algorithm"] = algorithm
    record_artifact(benchmark, algorithm, result.timings.total)
    return result


@pytest.fixture(autouse=True)
def _silence_soundness_warnings():
    """Benchmarks run the faithful (paper) path on aggregate data."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", SoundnessWarning)
        yield
