"""Fig. 9: find-k scalability (Sec. 7.3.3-7.3.4).

Fig. 9a sweeps the number of join groups (paper: no appreciable
effect); Fig. 9b sweeps n at delta=1000 paper units (for very small n
the threshold is unreachable and k=max returns quickly).
"""

import pytest

from .conftest import bench_findk, dataset, scaled_delta, scaled_n, skip_if_oversized


@pytest.mark.parametrize("method", ["B", "R", "N"])
@pytest.mark.parametrize("g", [1, 2, 5, 10, 25, 50, 100])
@pytest.mark.benchmark(group="fig9a")
def test_fig9a_effect_of_join_groups(benchmark, method, g):
    skip_if_oversized(scaled_n(), g)
    left, right = dataset(d=5, a=0, g=g)
    bench_findk(benchmark, method, left, right, scaled_delta(10_000))


@pytest.mark.parametrize("method", ["B", "R", "N"])
@pytest.mark.parametrize("paper_n", [100, 330, 1000, 3300, 10_000, 33_000])
@pytest.mark.benchmark(group="fig9b")
def test_fig9b_effect_of_dataset_size(benchmark, method, paper_n):
    skip_if_oversized(scaled_n(paper_n), 10)
    left, right = dataset(paper_n=paper_n, d=5, a=0)
    bench_findk(benchmark, method, left, right, scaled_delta(1000))
