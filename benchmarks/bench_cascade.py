"""m-way cascade KSJQ: pruned (Theorem-4 m-way analogue) vs naive.

Not a paper figure — the paper only notes that "the case for more than
two base relations can be handled by cascading the joins" (Sec. 2.3) —
but the engine's cascade path deserves the same per-cell record as the
two-way algorithms: three flight legs chained on ``dst``/``src``, k
swept over the upper half of its valid range, both algorithms through
``Engine.query(...)``.
"""

import pytest

from .conftest import bench_cascade, make_cascade_legs, scaled_n


@pytest.mark.parametrize("algorithm", ["pruned", "naive"])
@pytest.mark.parametrize("k", [6, 7])
@pytest.mark.benchmark(group="cascade-3way")
def test_cascade_three_way(benchmark, algorithm, k):
    legs = make_cascade_legs(n_per_leg=max(20, scaled_n(1000)), m=3, a=1)
    bench_cascade(benchmark, algorithm, legs, k, "sum")


@pytest.mark.parametrize("algorithm", ["pruned", "naive"])
@pytest.mark.benchmark(group="cascade-4way")
def test_cascade_four_way(benchmark, algorithm):
    legs = make_cascade_legs(n_per_leg=max(12, scaled_n(400)), m=4, a=1)
    # joined d = 2 locals x 4 legs + 1 aggregate = 9.
    bench_cascade(benchmark, algorithm, legs, 8, "sum")
