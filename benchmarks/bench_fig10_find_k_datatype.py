"""Fig. 10: find-k versus the data distribution (Sec. 7.3.5).

Correlated fastest, anti-correlated slowest, as in Figs. 4/7.
"""

import pytest

from .conftest import bench_findk, dataset, scaled_delta


@pytest.mark.parametrize("method", ["B", "R", "N"])
@pytest.mark.parametrize("dist", ["independent", "correlated", "anticorrelated"])
@pytest.mark.benchmark(group="fig10")
def test_fig10_data_distribution(benchmark, method, dist):
    left, right = dataset(d=5, a=0, distribution=dist)
    bench_findk(benchmark, method, left, right, scaled_delta(10_000))
