"""Cold index build vs warm repeated queries through the catalog cache.

Sweeps the Fig. 3b base-relation-size ladder (d=7, a=2, g=10, k=11,
aggregate sum, exact mode) with ``algorithm="indexed"``:

* ``cold`` — a fresh engine answers one indexed query from scratch:
  both per-side :class:`~repro.core.DominanceIndex` builds, the join,
  cell pruning, candidate generation and verification;
* ``warm`` — the same engine answers the same query repeatedly: the
  catalog serves the version-keyed indexes, the cached plan serves the
  joined view and the memoized cell partition, so each repeat is
  (memoized candidates ->) verification-only.

The acceptance bar is a recorded ``speedup_vs_cold`` >= 2x per warm
query at the largest ladder point — the warm path is the serving
scenario the index exists for (many queries between mutations).
"""

import pytest

from repro.api import Engine, QuerySpec

from .conftest import dataset, record_artifact, scaled_n, skip_if_oversized

PAPER_NS = [3300, 10_000, 15_200]
N_REPEATS = 5

SPEC = QuerySpec.for_ksjq(k=11, aggregate="sum", mode="exact", algorithm="indexed")

_cold_elapsed = {}
_cold_counts = {}


def _registered_engine(paper_n):
    left, right = dataset(paper_n=paper_n, d=7, a=2)
    engine = Engine()
    engine.register("left", left)
    engine.register("right", right)
    return engine


@pytest.mark.parametrize("paper_n", PAPER_NS)
@pytest.mark.benchmark(group="index")
def test_cold_build_and_query(benchmark, paper_n):
    skip_if_oversized(scaled_n(paper_n), 10)

    def setup():
        return (_registered_engine(paper_n),), {}

    def run(engine):
        return engine.execute("left", "right", SPEC).count

    final = benchmark.pedantic(run, setup=setup, rounds=1, iterations=1, warmup_rounds=0)
    elapsed = benchmark.stats.stats.total
    _cold_elapsed[paper_n] = elapsed
    _cold_counts[paper_n] = final
    benchmark.extra_info["skyline"] = final
    benchmark.extra_info["index_builds"] = 2
    record_artifact(benchmark, "cold", elapsed)


@pytest.mark.parametrize("paper_n", PAPER_NS)
@pytest.mark.benchmark(group="index")
def test_warm_repeated_query(benchmark, paper_n):
    skip_if_oversized(scaled_n(paper_n), 10)
    engine = _registered_engine(paper_n)
    engine.execute("left", "right", SPEC)  # builds + memoizes, untimed

    def run():
        count = 0
        for _ in range(N_REPEATS):
            count = engine.execute("left", "right", SPEC).count
        return count

    final = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    per_query = benchmark.stats.stats.total / N_REPEATS
    info = engine.cache_info()
    benchmark.extra_info["skyline"] = final
    benchmark.extra_info["repeats"] = N_REPEATS
    benchmark.extra_info["index_hits"] = info["index_hits"]
    assert info["index_builds"] == 2, "warm repeats must not rebuild"
    cold = _cold_elapsed.get(paper_n)
    if cold:
        speedup = round(cold / max(per_query, 1e-9), 3)
        benchmark.extra_info["speedup_vs_cold"] = speedup
        # Acceptance bar: at the largest ladder point a warm query runs
        # at least 2x faster than the cold build-and-query.
        if paper_n == PAPER_NS[-1]:
            assert speedup >= 2.0, (
                f"warm indexed query only {speedup}x faster than cold "
                f"at paper_n={paper_n}"
            )
    if paper_n in _cold_counts:
        assert final == _cold_counts[paper_n], (
            f"warm skyline {final} != cold skyline {_cold_counts[paper_n]}"
        )
    record_artifact(benchmark, "warm", per_query * N_REPEATS)
