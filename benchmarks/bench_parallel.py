"""Sharded parallel execution on the Fig. 3b scalability workload.

Sweeps the fig03 base-relation-size ladder (d=7, a=2, g=10, k=11,
aggregate sum — joined size grows as n²/g) over worker counts
``{1, 2, 4}`` of the parallel path, next to two serial references:

* ``serial`` — the exact serial baseline (the naïve algorithm, ground
  truth). The parallel path computes the identical exact answer, so
  this is the apples-to-apples denominator of the recorded
  ``speedup_vs_serial``: the acceptance bar is >= 1.5x at the largest
  n with 4 workers. Even on a single-core runner the vectorized block
  kernels carry the bar; on multi-core runners the shard fan-out adds
  real concurrency on top.
* ``faithful`` — the engine's faithful-mode auto choice (context only:
  it is cheaper *because* it skips the "yes"-cell verification and may
  return a superset of the true skyline, so it is not an equivalent
  baseline).

Each parallel cell records its worker count and the answer size; the
answer must match the serial-exact cell's size in every column — the
byte-identical equivalence suite lives in
``tests/property/test_property_parallel.py``, this records the same
invariant into the benchmark JSON.
"""

import pytest

from .conftest import ENGINE, dataset, record_artifact, scaled_n, skip_if_oversized

#: Fig. 3b ladder, extended by one point so the largest joined size
#: crosses the process-pool shard threshold at the default scale.
PAPER_NS = [3300, 10_000, 15_200]

_serial_elapsed = {}


def _run(left, right, algorithm: str, workers="auto", mode: str = "exact"):
    query = (
        ENGINE.query(left, right)
        .aggregate("sum")
        .algorithm(algorithm)
        .mode(mode)
        .parallelism(workers)
    )
    return query.run(k=11)


@pytest.mark.parametrize("paper_n", PAPER_NS)
@pytest.mark.benchmark(group="parallel")
def test_serial_exact_baseline(benchmark, paper_n):
    skip_if_oversized(scaled_n(paper_n), 10)
    left, right = dataset(paper_n=paper_n, d=7, a=2)
    result = benchmark.pedantic(
        _run, args=(left, right, "naive"), rounds=1, iterations=1, warmup_rounds=0
    )
    _serial_elapsed[paper_n] = result.timings.total
    benchmark.extra_info["skyline"] = result.count
    benchmark.extra_info["algorithm"] = "naive"
    record_artifact(benchmark, "serial", result.timings.total)


@pytest.mark.parametrize("paper_n", PAPER_NS)
@pytest.mark.benchmark(group="parallel")
def test_faithful_auto_reference(benchmark, paper_n):
    skip_if_oversized(scaled_n(paper_n), 10)
    left, right = dataset(paper_n=paper_n, d=7, a=2)
    result = benchmark.pedantic(
        _run,
        args=(left, right, "auto"),
        kwargs={"workers": 1, "mode": "faithful"},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    benchmark.extra_info["skyline"] = result.count
    benchmark.extra_info["algorithm"] = result.algorithm
    record_artifact(benchmark, "faithful", result.timings.total)


@pytest.mark.parametrize("workers", [1, 2, 4])
@pytest.mark.parametrize("paper_n", PAPER_NS)
@pytest.mark.benchmark(group="parallel")
def test_parallel_workers(benchmark, paper_n, workers):
    skip_if_oversized(scaled_n(paper_n), 10)
    left, right = dataset(paper_n=paper_n, d=7, a=2)
    result = benchmark.pedantic(
        _run,
        args=(left, right, "parallel"),
        kwargs={"workers": workers},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    benchmark.extra_info["skyline"] = result.count
    benchmark.extra_info["algorithm"] = "parallel"
    benchmark.extra_info["workers"] = workers
    serial = _serial_elapsed.get(paper_n)
    if serial:
        benchmark.extra_info["speedup_vs_serial"] = round(
            serial / max(result.timings.total, 1e-9), 3
        )
    record_artifact(benchmark, f"parallel-w{workers}", result.timings.total)
