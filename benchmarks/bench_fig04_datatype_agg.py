"""Fig. 4: effect of the data distribution with aggregation (Sec. 7.1.4).

Correlated data is dominated often (tiny skylines, fastest);
anti-correlated data resists domination (largest skylines, slowest);
independent sits between.
"""

import pytest

from .conftest import bench_ksjq, dataset


@pytest.mark.parametrize("algo", ["G", "D", "N"])
@pytest.mark.parametrize("dist", ["independent", "correlated", "anticorrelated"])
@pytest.mark.benchmark(group="fig4")
def test_fig4_data_distribution(benchmark, algo, dist):
    left, right = dataset(d=7, a=2, distribution=dist)
    bench_ksjq(benchmark, algo, left, right, 11, "sum")
