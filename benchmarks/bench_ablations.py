"""Ablation benchmarks for design choices not plotted in the paper.

These quantify the internal decisions DESIGN.md calls out:

* inner k-dominant engine: Two-Scan (TSA) vs quadratic naive inside
  Algorithm 1 — the paper says "any standard method [4]"; TSA is why
  the Python naive baseline is usable at all;
* TSA presorting: candidates discovered early keep the window small;
* faithful vs exact mode: what the soundness repair costs;
* plan reuse: JoinPlan memoizes group indexes and the joined view.
"""

import pytest

from repro.core import JoinPlan, run_grouping, run_naive
from repro.skyline import k_dominant_skyline_naive, k_dominant_skyline_tsa

from .conftest import dataset


@pytest.mark.parametrize("engine", ["tsa", "osa", "naive"])
@pytest.mark.benchmark(group="ablation-inner-engine")
def test_inner_skyline_engine(benchmark, engine):
    from repro.skyline import k_dominant_skyline_osa

    left, right = dataset(d=5, a=0)
    plan = JoinPlan(left, right)
    matrix = plan.view().oriented()
    fn = {
        "tsa": k_dominant_skyline_tsa,
        "osa": k_dominant_skyline_osa,
        "naive": k_dominant_skyline_naive,
    }[engine]
    result = benchmark.pedantic(fn, args=(matrix, 8), rounds=1, iterations=1)
    benchmark.extra_info["skyline"] = len(result)


@pytest.mark.parametrize("presort", [True, False])
@pytest.mark.benchmark(group="ablation-tsa-presort")
def test_tsa_presort(benchmark, presort):
    left, right = dataset(d=5, a=0)
    matrix = JoinPlan(left, right).view().oriented()
    result = benchmark.pedantic(
        k_dominant_skyline_tsa, args=(matrix, 8), kwargs={"presort": presort},
        rounds=1, iterations=1,
    )
    benchmark.extra_info["skyline"] = len(result)


@pytest.mark.parametrize("mode", ["faithful", "exact"])
@pytest.mark.benchmark(group="ablation-mode")
def test_faithful_vs_exact(benchmark, mode):
    left, right = dataset(d=6, a=1)
    result = benchmark.pedantic(
        lambda: run_grouping(JoinPlan(left, right, aggregate="sum"), 9, mode=mode),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["skyline"] = result.count
    benchmark.extra_info["mode"] = mode


@pytest.mark.parametrize("consumption", ["first-result", "full-run"])
@pytest.mark.benchmark(group="ablation-progressive")
def test_progressive_time_to_first_result(benchmark, consumption):
    """Sec. 6.1 motivation: progressive generation delivers the first
    skyline tuple long before the batch algorithm finishes."""
    import itertools

    from repro.core import ksjq_progressive

    left, right = dataset(d=5, a=0)

    def first():
        plan = JoinPlan(left, right)
        return list(itertools.islice(ksjq_progressive(plan, 9), 1))

    def full():
        plan = JoinPlan(left, right)
        return run_grouping(plan, 9).count

    benchmark.pedantic(
        first if consumption == "first-result" else full, rounds=1, iterations=1
    )
    benchmark.extra_info["consumption"] = consumption


@pytest.mark.parametrize("algorithm", ["pruned", "naive"])
@pytest.mark.benchmark(group="ablation-cascade")
def test_cascade_pruning(benchmark, algorithm):
    """m-way NN pruning (Sec. 2.3 cascade) vs materialize-everything."""
    from repro.core import cascade_ksjq

    left, right = dataset(d=5, a=0)
    result = benchmark.pedantic(
        cascade_ksjq, args=([left, right], 8),
        kwargs={"algorithm": algorithm},
        rounds=1, iterations=1,
    )
    benchmark.extra_info["skyline"] = result.count
    benchmark.extra_info["pruned_rows"] = result.pruned_rows


@pytest.mark.parametrize("reuse", ["fresh-plan", "reused-plan"])
@pytest.mark.benchmark(group="ablation-plan-reuse")
def test_plan_reuse(benchmark, reuse):
    left, right = dataset(d=5, a=0)
    shared = JoinPlan(left, right)
    shared.view()  # warm the memoized join

    def fresh():
        return run_naive(JoinPlan(left, right), 8)

    def reused():
        return run_naive(shared, 8)

    result = benchmark.pedantic(
        fresh if reuse == "fresh-plan" else reused, rounds=1, iterations=1
    )
    benchmark.extra_info["skyline"] = result.count
