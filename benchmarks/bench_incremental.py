"""Delta maintenance vs recompute-on-mutation on a serving workload.

Sweeps the Fig. 3b base-relation-size ladder (d=7, a=2, g=10, k=11,
aggregate sum, exact mode) under a fixed mutation workload: ten
alternating 2-row deletes and inserts against the left relation. Two
strategies answer the query after every mutation:

* ``recompute`` — the invalidation-based serving stack: every mutation
  drops the cached plan/result and the next read pays a full
  from-scratch execution (the pre-incremental engine behaviour);
* ``maintained`` — one :meth:`Engine.maintain` handle absorbing each
  mutation delta through the incremental insert/delete paths of
  :mod:`repro.core.incremental`.

Both cells time only the mutation loop (the initial answer is computed
in setup); the answers are byte-identical at every step — the property
suite proves it, this records the final skyline size of both cells into
the benchmark JSON as a cross-check. The acceptance bar is a recorded
``speedup_vs_recompute`` >= 5x at the largest ladder point.
"""

import pytest

from repro.api import Engine, QuerySpec

from .conftest import dataset, record_artifact, scaled_n, skip_if_oversized

PAPER_NS = [3300, 10_000, 15_200]
N_MUTATIONS = 10
BATCH = 2

SPEC = QuerySpec.for_ksjq(k=11, aggregate="sum", mode="exact")

_recompute_elapsed = {}
_final_counts = {}


def _workload(left):
    """The deterministic mutation schedule: alternating deletes of the
    oldest rows and re-inserts of recycled records (size stays ~n)."""
    records = left.records()
    schedule = []
    for step in range(N_MUTATIONS):
        if step % 2 == 0:
            schedule.append(("delete", list(range(BATCH))))
        else:
            picks = [(step * 7 + j) % len(records) for j in range(BATCH)]
            schedule.append(("insert", [dict(records[i]) for i in picks]))
    return schedule


def _apply(dataset_handle, action):
    kind, payload = action
    if kind == "delete":
        dataset_handle.delete_rows(payload)
    else:
        dataset_handle.insert_rows(payload)


def _setup(paper_n):
    left, right = dataset(paper_n=paper_n, d=7, a=2)
    engine = Engine()
    engine.register("left", left)
    engine.register("right", right)
    return engine, _workload(left)


@pytest.mark.parametrize("paper_n", PAPER_NS)
@pytest.mark.benchmark(group="incremental")
def test_recompute_on_mutation(benchmark, paper_n):
    skip_if_oversized(scaled_n(paper_n), 10)
    engine, schedule = _setup(paper_n)
    engine.execute("left", "right", SPEC)  # initial answer, untimed

    def run():
        count = 0
        for action in schedule:
            _apply(engine.catalog["left"], action)
            count = engine.execute("left", "right", SPEC).count
        return count

    final = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    elapsed = benchmark.stats.stats.total
    _recompute_elapsed[paper_n] = elapsed
    _final_counts[paper_n] = final
    benchmark.extra_info["skyline"] = final
    benchmark.extra_info["mutations"] = N_MUTATIONS
    record_artifact(benchmark, "recompute", elapsed)


@pytest.mark.parametrize("paper_n", PAPER_NS)
@pytest.mark.benchmark(group="incremental")
def test_maintained(benchmark, paper_n):
    skip_if_oversized(scaled_n(paper_n), 10)
    engine, schedule = _setup(paper_n)
    live = engine.maintain("left", "right", SPEC)  # initial answer, untimed

    def run():
        count = 0
        for action in schedule:
            _apply(engine.catalog["left"], action)
            count = live.count
        return count

    final = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    elapsed = benchmark.stats.stats.total
    stats = live.stats()
    benchmark.extra_info["skyline"] = final
    benchmark.extra_info["mutations"] = N_MUTATIONS
    benchmark.extra_info["fallback_recomputes"] = stats["fallback_recomputes"]
    recompute = _recompute_elapsed.get(paper_n)
    if recompute:
        benchmark.extra_info["speedup_vs_recompute"] = round(
            recompute / max(elapsed, 1e-9), 3
        )
    # Same workload, same spec: the maintained answer must end where the
    # recompute strategy ends (byte-level equality is the property
    # suite's job; the artifact records the size-level cross-check).
    if paper_n in _final_counts:
        assert final == _final_counts[paper_n], (
            f"maintained final skyline {final} != recompute "
            f"{_final_counts[paper_n]}"
        )
    record_artifact(benchmark, "maintained", elapsed)
