"""Fig. 5: effect of k and d without aggregation (Sec. 7.2.1).

Fig. 5a sweeps k ∈ {6..9} at d=5, a=0. Fig. 5b fixes k and varies d:
(4,7), (5,7), (6,7), (6,11), (7,11), (10,11). Paper shape: time rises
sharply with k; at fixed k, growing d lowers k' and the time drops.
"""

import pytest

from .conftest import bench_ksjq, dataset


@pytest.mark.parametrize("algo", ["G", "D", "N"])
@pytest.mark.parametrize("k", [6, 7, 8, 9])
@pytest.mark.benchmark(group="fig5a")
def test_fig5a_effect_of_k_d5(benchmark, algo, k):
    left, right = dataset(d=5, a=0)
    bench_ksjq(benchmark, algo, left, right, k, None)


@pytest.mark.parametrize("algo", ["G", "D", "N"])
@pytest.mark.parametrize(
    "d,k", [(4, 7), (5, 7), (6, 7), (6, 11), (7, 11), (10, 11)],
    ids=lambda v: str(v),
)
@pytest.mark.benchmark(group="fig5b")
def test_fig5b_effect_of_d_at_fixed_k(benchmark, algo, d, k):
    left, right = dataset(d=d, a=0)
    bench_ksjq(benchmark, algo, left, right, k, None)
