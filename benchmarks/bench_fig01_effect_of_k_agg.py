"""Fig. 1: effect of k with aggregation (Sec. 7.1.1).

Fig. 1a sweeps k ∈ {8..11} at d=7, a=2; Fig. 1b sweeps k ∈ {7..10} at
d=6, a=1; G/D/N at Table 7 defaults otherwise. Paper shape: running
time rises sharply with k; grouping fastest, dominator-based pays its
dominator-generation overhead, naïve slowest.
"""

import pytest

from .conftest import bench_ksjq, dataset


@pytest.mark.parametrize("algo", ["G", "D", "N"])
@pytest.mark.parametrize("k", [8, 9, 10, 11])
@pytest.mark.benchmark(group="fig1a")
def test_fig1a_effect_of_k_d7_a2(benchmark, algo, k):
    left, right = dataset(d=7, a=2)
    bench_ksjq(benchmark, algo, left, right, k, "sum")


@pytest.mark.parametrize("algo", ["G", "D", "N"])
@pytest.mark.parametrize("k", [7, 8, 9, 10])
@pytest.mark.benchmark(group="fig1b")
def test_fig1b_effect_of_k_d6_a1(benchmark, algo, k):
    left, right = dataset(d=6, a=1)
    bench_ksjq(benchmark, algo, left, right, k, "sum")
