"""Fig. 2: effect of dimensionality with aggregation (Sec. 7.1.1).

Fig. 2a sweeps the number of aggregate attributes a ∈ {0..3} at d=7,
k=11 (a=0 means no aggregation). Fig. 2b is the paper's medley of
(d, k, a) combinations. Paper shape: time rises with a and k, but
*falls* with d at fixed k, because larger d lowers the categorization
thresholds k' and cheapens grouping and joining.
"""

import pytest

from .conftest import bench_ksjq, dataset


@pytest.mark.parametrize("algo", ["G", "D", "N"])
@pytest.mark.parametrize("a", [0, 1, 2, 3])
@pytest.mark.benchmark(group="fig2a")
def test_fig2a_effect_of_a(benchmark, algo, a):
    left, right = dataset(d=7, a=a)
    bench_ksjq(benchmark, algo, left, right, 11, "sum" if a else None)


@pytest.mark.parametrize("algo", ["G", "D", "N"])
@pytest.mark.parametrize(
    "d,k,a",
    [(5, 7, 1), (5, 7, 2), (6, 7, 1), (6, 7, 2), (6, 8, 2)],
    ids=lambda v: str(v),
)
@pytest.mark.benchmark(group="fig2b")
def test_fig2b_medley(benchmark, algo, d, k, a):
    left, right = dataset(d=d, a=a)
    bench_ksjq(benchmark, algo, left, right, k, "sum")
