"""Fig. 6: scalability without aggregation (Sec. 7.2.2-7.2.3).

Fig. 6a sweeps g at d=4, k=7 (the paper states these values for this
experiment); Fig. 6b sweeps n at d=5 (the paper leaves k implicit; we
use k=8, the mid-range — recorded in EXPERIMENTS.md).
"""

import pytest

from .conftest import bench_ksjq, dataset, scaled_n, skip_if_oversized


@pytest.mark.parametrize("algo", ["G", "D", "N"])
@pytest.mark.parametrize("g", [1, 2, 5, 10, 25, 50, 100])
@pytest.mark.benchmark(group="fig6a")
def test_fig6a_effect_of_join_groups(benchmark, algo, g):
    skip_if_oversized(scaled_n(), g)
    left, right = dataset(d=4, a=0, g=g)
    bench_ksjq(benchmark, algo, left, right, 7, None)


@pytest.mark.parametrize("algo", ["G", "D", "N"])
@pytest.mark.parametrize("paper_n", [100, 330, 1000, 3300, 10_000, 33_000])
@pytest.mark.benchmark(group="fig6b")
def test_fig6b_effect_of_dataset_size(benchmark, algo, paper_n):
    skip_if_oversized(scaled_n(paper_n), 10)
    left, right = dataset(paper_n=paper_n, d=5, a=0)
    bench_ksjq(benchmark, algo, left, right, 8, None)
