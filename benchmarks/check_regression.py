#!/usr/bin/env python
"""Bench-regression guard: compare BENCH_*.json artifacts to baselines.

The benchmark conftest writes one ``BENCH_<figure>.json`` per benchmark
module when ``REPRO_BENCH_ARTIFACTS`` is set; CI uploads them as build
artifacts. This script compares a fresh artifact directory against the
committed baselines in ``benchmarks/baselines/`` and fails (exit 1)
when any figure's total elapsed time exceeds ``threshold`` times its
baseline — catching order-of-magnitude regressions while tolerating
runner-to-runner noise.

Baselines are committed from a developer machine but compared on
arbitrary CI runners, so raw wall-clock would measure hardware, not
code. Every baseline therefore records a **calibration**: the elapsed
seconds of :func:`calibration_seconds`, a fixed numpy+python workload
shaped like the KSJQ hot paths. Before comparing, each baseline total
is scaled by ``local_calibration / baseline_calibration``, normalizing
"how long should this figure take on *this* machine".

Per-figure *totals* are compared (not individual cells): totals
aggregate enough work to be stable across runners, and a real
regression in any hot path moves the total of its figure.

Usage::

    python benchmarks/check_regression.py <artifact_dir> \
        [--baseline-dir benchmarks/baselines] [--threshold 2.0]

Figures present in the artifacts but without a committed baseline are
reported and skipped (new benchmarks don't fail the guard; commit a
baseline to arm it). A baseline with no matching artifact fails: the
benchmark silently not running is itself a regression.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path


def calibration_seconds(repeats: int = 3) -> float:
    """Machine-speed probe: best-of-N elapsed for a fixed workload.

    Mixes vectorized numpy work and a pure-python loop in roughly the
    proportions of the KSJQ algorithms (dominance matrix arithmetic +
    per-tuple bookkeeping), so the ratio between two machines'
    calibrations predicts the ratio of their benchmark times.
    """
    import numpy as np

    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        rng = np.random.default_rng(0)
        matrix = rng.standard_normal((200, 200))
        for _ in range(15):
            matrix = np.tanh(matrix @ matrix.T / 200.0)
            (matrix[:, None, :50] <= matrix[None, :, :50]).sum()
        acc = 0
        for i in range(120_000):
            acc += i % 7
        assert acc > 0
        best = min(best, time.perf_counter() - start)
    return best


def figure_totals(path: Path) -> tuple[float, float | None]:
    """``(summed elapsed seconds, recorded calibration)`` of one BENCH_*.json."""
    payload = json.loads(path.read_text())
    total = sum(float(cell["elapsed"]) for cell in payload.get("results", []))
    calibration = payload.get("calibration")
    return total, float(calibration) if calibration else None


def load_dir(directory: Path) -> dict[str, Path]:
    return {p.stem[len("BENCH_"):]: p for p in sorted(directory.glob("BENCH_*.json"))}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("artifact_dir", type=Path,
                        help="directory holding freshly produced BENCH_*.json files")
    parser.add_argument("--baseline-dir", type=Path,
                        default=Path(__file__).parent / "baselines")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="fail when elapsed > threshold * baseline (default 2.0)")
    parser.add_argument("--min-baseline", type=float, default=0.01,
                        help="skip figures whose baseline total is below this many "
                             "seconds (too noisy to compare; default 0.01)")
    args = parser.parse_args(argv)

    baselines = load_dir(args.baseline_dir)
    artifacts = load_dir(args.artifact_dir)
    if not baselines:
        print(f"error: no BENCH_*.json baselines in {args.baseline_dir}")
        return 1

    local_calibration = calibration_seconds()
    print(f"local calibration: {local_calibration:.4f}s")

    failures = []
    for figure, baseline_path in baselines.items():
        baseline, base_calibration = figure_totals(baseline_path)
        artifact_path = artifacts.get(figure)
        if artifact_path is None:
            failures.append(f"{figure}: baseline exists but no artifact was produced")
            continue
        elapsed, _ = figure_totals(artifact_path)
        if base_calibration:
            speed = local_calibration / base_calibration
            baseline *= speed  # what the baseline machine's run costs *here*
        else:
            speed = None
        if baseline < args.min_baseline:
            print(f"~ {figure}: baseline {baseline:.4f}s below --min-baseline, skipped")
            continue
        ratio = elapsed / baseline
        note = f", machine-speed x{speed:.2f}" if speed is not None else ", uncalibrated"
        failed = ratio > args.threshold
        print(f"{'!' if failed else ' '} {figure}: {elapsed:.4f}s vs adjusted "
              f"baseline {baseline:.4f}s ({ratio:.2f}x, limit "
              f"{args.threshold:.2f}x{note})")
        if failed:
            failures.append(
                f"{figure}: {elapsed:.4f}s is {ratio:.2f}x the adjusted baseline "
                f"{baseline:.4f}s (limit {args.threshold:.2f}x)"
            )

    for figure in sorted(set(artifacts) - set(baselines)):
        print(f"~ {figure}: no baseline committed, skipped "
              f"(add benchmarks/baselines/BENCH_{figure}.json to arm the guard)")

    if failures:
        print("\nbench-regression guard FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nbench-regression guard passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
