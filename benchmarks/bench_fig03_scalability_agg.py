"""Fig. 3: scalability with aggregation (Sec. 7.1.2-7.1.3).

Fig. 3a sweeps the number of join groups g (g=1 is the cartesian
special case: no SN tuples at all); Fig. 3b sweeps the base-relation
size n (joined size grows as n²/g). Paper shape: g shows two opposing
effects with a peak at medium values; n grows drastically while the
optimized algorithms scale sublinearly in the joined size.
"""

import pytest

from .conftest import bench_ksjq, dataset, scaled_n, skip_if_oversized


@pytest.mark.parametrize("algo", ["G", "D", "N"])
@pytest.mark.parametrize("g", [1, 2, 5, 10, 25, 50, 100])
@pytest.mark.benchmark(group="fig3a")
def test_fig3a_effect_of_join_groups(benchmark, algo, g):
    skip_if_oversized(scaled_n(), g)
    left, right = dataset(d=7, a=2, g=g)
    bench_ksjq(benchmark, algo, left, right, 11, "sum")


@pytest.mark.parametrize("algo", ["G", "D", "N"])
@pytest.mark.parametrize("paper_n", [100, 330, 1000, 3300, 10_000, 33_000])
@pytest.mark.benchmark(group="fig3b")
def test_fig3b_effect_of_dataset_size(benchmark, algo, paper_n):
    skip_if_oversized(scaled_n(paper_n), 10)
    left, right = dataset(paper_n=paper_n, d=7, a=2)
    bench_ksjq(benchmark, algo, left, right, 11, "sum")
