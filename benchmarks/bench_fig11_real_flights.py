"""Fig. 11: the real-data experiment (Sec. 7.4).

The paper crawled 192 Delhi->hub and 155 hub->Mumbai flights over 13
intermediate cities (5 attributes each, cost and flying time
aggregated) and ran k ∈ {6, 7, 8}. Our simulated network has the same
shape (see repro.datagen.flights); this benchmark is unscaled — the
dataset is already small. Paper shape: milliseconds overall, G best,
then D, then N.
"""

import pytest

from .conftest import bench_ksjq, flights


@pytest.mark.parametrize("algo", ["G", "D", "N"])
@pytest.mark.parametrize("k", [6, 7, 8])
@pytest.mark.benchmark(group="fig11")
def test_fig11_real_flight_data(benchmark, algo, k):
    outbound, inbound = flights()
    bench_ksjq(benchmark, algo, outbound, inbound, k, "sum")
