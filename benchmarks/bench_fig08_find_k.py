"""Fig. 8: find-k versus delta and dimensionality (Sec. 7.3.1-7.3.2).

Fig. 8a sweeps the threshold delta at d=5 (paper deltas are relative to
a ~1.09M joined relation; ours scale with the benchmark joined size).
Fig. 8b sweeps d at fixed delta. Paper shape: binary search (B) always
fastest; range-based (R) fast when the bounds short-circuit (very small
or very large delta); naive (N) slowest, growing with delta.
"""

import pytest

from .conftest import bench_findk, dataset, scaled_delta


@pytest.mark.parametrize("method", ["B", "R", "N"])
@pytest.mark.parametrize("paper_delta", [10, 100, 1000, 10_000, 100_000])
@pytest.mark.benchmark(group="fig8a")
def test_fig8a_effect_of_delta(benchmark, method, paper_delta):
    left, right = dataset(d=5, a=0)
    bench_findk(benchmark, method, left, right, scaled_delta(paper_delta))


@pytest.mark.parametrize("method", ["B", "R", "N"])
@pytest.mark.parametrize("d", [3, 4, 5, 7, 10])
@pytest.mark.benchmark(group="fig8b")
def test_fig8b_effect_of_d(benchmark, method, d):
    left, right = dataset(d=d, a=0)
    bench_findk(benchmark, method, left, right, scaled_delta(10_000))
