"""CI smoke test for the serving subsystem, outside pytest.

Boots ``python -m repro.serving`` as a real subprocess, waits for its
"serving on host:port" banner, then exercises the wire protocol with
nothing but the stdlib HTTP client:

1. ``GET /healthz`` answers ok,
2. a progressive ``POST /query`` streams chunked ndjson and the first
   skyline pair reaches the client *before* the stream completes —
   by the client's clock and by the server's per-line timestamps,
3. the streamed pair set matches a plain (non-progressive) query.

Exits non-zero with a diagnostic on any violation.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import time
from typing import Any, Optional

BOOT_TIMEOUT_S = 60.0
QUERY = {"datasets": ["left", "right"], "k": 11, "algorithm": "grouping"}


def boot_server() -> "tuple[subprocess.Popen[str], str, int]":
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    env["PYTHONUNBUFFERED"] = "1"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serving", "--n", "200"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    assert proc.stdout is not None
    started = time.monotonic()
    while True:
        if time.monotonic() - started > BOOT_TIMEOUT_S:
            proc.kill()
            raise SystemExit("server never printed its banner")
        line = proc.stdout.readline()
        if not line:
            proc.wait()
            raise SystemExit(f"server exited early with code {proc.returncode}")
        if line.startswith("serving on "):
            address = line[len("serving on "):].strip()
            if address.startswith("http://"):
                address = address[len("http://"):]
            host, _, port = address.rpartition(":")
            return proc, host, int(port)


def request_json(
    host: str, port: int, method: str, path: str, body: Optional[dict] = None
) -> "tuple[int, Any]":
    conn = http.client.HTTPConnection(host, port, timeout=60)
    conn.request(method, path, body=json.dumps(body).encode() if body else None)
    response = conn.getresponse()
    payload = json.loads(response.read())
    conn.close()
    return response.status, payload


def stream_progressive(host: str, port: int) -> None:
    conn = http.client.HTTPConnection(host, port, timeout=60)
    conn.request(
        "POST", "/query", body=json.dumps({**QUERY, "progressive": True}).encode()
    )
    response = conn.getresponse()
    headers = dict(response.getheaders())
    assert headers.get("Transfer-Encoding") == "chunked", headers
    assert headers.get("Content-Type") == "application/x-ndjson", headers

    lines: "list[dict]" = []
    received_at: "list[float]" = []
    while True:
        raw = response.readline()
        if not raw:
            break
        raw = raw.strip()
        if not raw:
            continue
        lines.append(json.loads(raw))
        received_at.append(time.monotonic())
        if lines[-1].get("done"):
            break
    conn.close()

    done = lines[-1]
    assert done.get("done") is True, f"stream ended without a done line: {done}"
    assert done["partial"] is False, done
    pairs = [tuple(line["pair"]) for line in lines[:-1]]
    assert pairs, "the progressive stream yielded no pairs"
    assert done["count"] == len(pairs)

    # The point of the exercise: the first result preceded completion.
    assert received_at[0] < received_at[-1], "first pair did not precede done"
    assert lines[0]["emitted_at"] < done["emitted_at"]
    first_lead_ms = (received_at[-1] - received_at[0]) * 1000.0

    status, full = request_json(host, port, "POST", "/query", QUERY)
    assert status == 200, (status, full)
    assert {tuple(p) for p in full["pairs"]} == set(pairs), "stream != exact answer"
    print(
        f"progressive ok: {len(pairs)} pairs, first arrived "
        f"{first_lead_ms:.1f} ms before completion"
    )


def main() -> int:
    proc, host, port = boot_server()
    try:
        status, health = request_json(host, port, "GET", "/healthz")
        assert status == 200 and health["status"] == "ok", (status, health)
        print(f"healthz ok on {host}:{port}")
        stream_progressive(host, port)

        status, metrics = request_json(host, port, "GET", "/metrics")
        assert status == 200 and metrics["routes"]["/query"]["requests"] >= 2
        print("metrics ok:", json.dumps(metrics["routes"]["/query"]["latency"]))
    finally:
        proc.send_signal(signal.SIGINT)
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()
    print("serving smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
