"""Typing-completeness gate mirroring the mypy strict profile.

mypy itself runs in CI (see the ``analysis`` job and the
``[tool.mypy]`` profile in ``pyproject.toml``); this module enforces
the *completeness* half of that contract with the standard library
only, so ``python -m tools.check`` catches unannotated code even on
machines without mypy installed:

T1 — every function and method in the strictly-typed packages
(``api``, ``core``, ``relational``, ``skyline``, ``datagen``,
``serving``, plus the top-level modules) carries a return annotation
and an annotation on
every parameter (``self``/``cls`` excepted). Nested defs count too —
mypy strict checks them — but lambdas are exempt (they cannot be
annotated).

T2 — the ``py.typed`` marker (PEP 561) is present next to the package
``__init__``, so installed wheels advertise the annotations to
downstream type checkers. The packaging test asserts it actually ships.
"""

from __future__ import annotations

import ast
from pathlib import Path

from . import Diagnostic

__all__ = [
    "STRICT_PACKAGES",
    "in_strict_scope",
    "check_annotations",
    "check_py_typed",
]

#: Sub-packages of ``repro`` held to the strict profile. ``experiments``
#: is the figure-reproduction harness — typed, but not yet strictly
#: (matching the mypy per-module override in pyproject.toml).
STRICT_PACKAGES = (
    "api",
    "core",
    "relational",
    "skyline",
    "datagen",
    "serving",
    "resilience",
)


def in_strict_scope(path: Path) -> bool:
    """Is ``path`` part of the strictly-typed surface?"""
    parts = path.parts
    if "repro" not in parts:
        return False
    below = parts[parts.index("repro") + 1 :]
    if len(below) == 1:  # repro/__init__.py, repro/errors.py
        return True
    return below[0] in STRICT_PACKAGES


def check_annotations(path: Path) -> list[Diagnostic]:
    """T1 diagnostics: unannotated parameters / missing returns."""
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except (OSError, SyntaxError):
        return []  # invariants.check_file already reported R0
    diagnostics: list[Diagnostic] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        missing = _missing_parameter_annotations(node)
        for arg in missing:
            diagnostics.append(
                Diagnostic(
                    path,
                    node.lineno,
                    "T1",
                    f"strict-typing: parameter {arg!r} of {node.name!r} has "
                    "no annotation",
                )
            )
        if node.returns is None:
            diagnostics.append(
                Diagnostic(
                    path,
                    node.lineno,
                    "T1",
                    f"strict-typing: {node.name!r} has no return annotation",
                )
            )
    return diagnostics


def _missing_parameter_annotations(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[str]:
    args = node.args
    ordered = [*args.posonlyargs, *args.args]
    missing = []
    for index, arg in enumerate(ordered):
        if index == 0 and arg.arg in ("self", "cls"):
            continue
        if arg.annotation is None:
            missing.append(arg.arg)
    for arg in [*args.kwonlyargs, args.vararg, args.kwarg]:
        if arg is not None and arg.annotation is None:
            missing.append(arg.arg)
    return missing


def check_py_typed(root: Path) -> list[Diagnostic]:
    """T2 diagnostic: the PEP 561 marker must sit next to ``__init__``."""
    package_init = root / "__init__.py" if root.is_dir() else None
    if package_init is None or not package_init.exists() or root.name != "repro":
        return []
    marker = root / "py.typed"
    if marker.exists():
        return []
    return [
        Diagnostic(
            package_init,
            1,
            "T2",
            "strict-typing: missing py.typed marker (PEP 561); installed "
            "wheels would not advertise the annotations",
        )
    ]
