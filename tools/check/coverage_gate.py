"""Coverage floor gate over a Cobertura ``coverage.xml`` (stdlib only).

Run by the CI test job after ``pytest --cov=repro --cov-report=xml``::

    python tools/check/coverage_gate.py coverage.xml

Two floors are enforced:

* **Overall line coverage** >= ``OVERALL_FLOOR``. Calibrated from a
  measured baseline (offline settrace estimate ~95% at the time the
  gate was introduced) minus headroom for platform variance — ratchet
  it upward as the suite grows, never downward to absorb a regression.
* **Per-file floors** in ``FILE_FLOORS``: the dominance-index layer is
  the correctness-critical pruning code, so it is held near-complete
  regardless of where the overall average sits.

Exit status is non-zero on any violation; the per-file table is always
printed so the CI log doubles as the coverage artifact summary.
"""

from __future__ import annotations

import sys
import xml.etree.ElementTree as ET

OVERALL_FLOOR = 0.90
FILE_FLOORS = {
    "repro/core/index.py": 0.95,
}


def file_rates(root: ET.Element) -> dict[str, tuple[int, int]]:
    """``{source-relative filename: (covered, valid)}`` line counts."""
    rates: dict[str, tuple[int, int]] = {}
    for cls in root.iter("class"):
        filename = cls.get("filename", "")
        lines = cls.find("lines")
        if lines is None:
            continue
        valid = covered = 0
        for line in lines.iter("line"):
            valid += 1
            if int(line.get("hits", "0")) > 0:
                covered += 1
        old_covered, old_valid = rates.get(filename, (0, 0))
        rates[filename] = (old_covered + covered, old_valid + valid)
    return rates


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(f"usage: {argv[0]} coverage.xml", file=sys.stderr)
        return 2
    root = ET.parse(argv[1]).getroot()
    rates = file_rates(root)
    total_covered = sum(covered for covered, _ in rates.values())
    total_valid = sum(valid for _, valid in rates.values())
    overall = total_covered / total_valid if total_valid else 0.0

    failures = []
    for filename, floor in sorted(FILE_FLOORS.items()):
        match = next(
            (rates[name] for name in rates if name.endswith(filename) or name == filename),
            None,
        )
        if match is None:
            failures.append(f"{filename}: not present in {argv[1]}")
            continue
        covered, valid = match
        rate = covered / valid if valid else 0.0
        status = "ok" if rate >= floor else "FAIL"
        print(f"{filename}: {rate:.1%} (floor {floor:.0%}) [{status}]")
        if rate < floor:
            failures.append(f"{filename}: {rate:.1%} < floor {floor:.0%}")

    status = "ok" if overall >= OVERALL_FLOOR else "FAIL"
    print(f"overall: {overall:.1%} (floor {OVERALL_FLOOR:.0%}) [{status}]")
    if overall < OVERALL_FLOOR:
        failures.append(f"overall: {overall:.1%} < floor {OVERALL_FLOOR:.0%}")

    if failures:
        print("coverage gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
