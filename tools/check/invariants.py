"""AST linter for the reproduction's machine-checkable invariants.

Six rules, each tied to a correctness argument of the engine (the
prose versions live in ``docs/static-analysis.md``):

R1 — **no-unverified-merge.** k-dominance is non-transitive (paper
Sec. 2.2): a tuple eliminated inside one shard may still k-dominate a
candidate that survived another shard. Any function that merges
per-shard candidate sets (reaches a candidate-generation kernel *and*
concatenates results) must therefore also reach a cross-shard
verification kernel (``k_dominated_any`` / ``is_k_dominated`` or a
``verify``-named helper) — transitively, through the module-local call
graph, including callables passed as arguments.

R2 — **lock-discipline.** Classes document their lock-guarded fields
in the class docstring::

    # guarded-by: _lock: _datasets, _subscribers
    # guarded-by-writes: _memo_lock: _view, _stats

``guarded-by`` fields may only be touched (read, written, deleted, or
mutated through a subscript) inside a ``with self.<lock>:`` block;
``guarded-by-writes`` relaxes reads for the double-checked memoization
pattern (unlocked fast-path read, locked re-check + write) but still
requires every write under the lock. ``__init__`` is exempt (the
object is not shared while it constructs itself), and nested function
bodies do not inherit an enclosing ``with`` (they may run later, on
another thread).

R3 — **fingerprint-completeness.** For every dataclass that defines a
``fingerprint()`` method, each dataclass field must be read inside the
method body. A field missing from the digest makes two semantically
different values collide — silently poisoning every cache keyed on the
fingerprint.

R4 — **fork-safety.** ``ProcessPoolExecutor`` may only be constructed
inside the parallel execution layer (a module named ``parallel.py``),
and only under its main-thread check: forking while sibling threads
run (``execute_many`` batch lanes) risks child processes inheriting
locks held mid-operation.

R5 — **async-executor-discipline.** In the serving package (any file
under a ``serving`` directory), ``async def`` bodies must never call a
blocking engine entry point (``execute``, ``stream``, ``explain``,
...) directly, nor acquire a lock (``with <lock>:`` /
``.acquire()``): either would stall the event loop for the duration
of a query, which is exactly the head-of-line blocking the serving
layer exists to avoid. Engine work must be handed to
``loop.run_in_executor`` as a *reference* to a sync wrapper — passing
``self._run_sync`` is fine (an attribute load, not a call); calling
it is not. Nested sync ``def`` bodies are exempt: they are the
wrappers the executor runs on a worker thread.

R6 — **no-swallowed-recovery.** A ``try`` whose body reaches a shard
merge (``concatenate`` / ``hstack`` / ``vstack``) or an index
load/build site must not swallow the failure: every ``except`` handler
must re-raise, re-verify (reach a verification kernel or a
``verify``-named helper), or route through the resilience layer
(quarantine / retry / degrade / fallback — any reference whose name
carries one of those markers, e.g. ``_quarantine_indexes`` or
``resilience_stats``). A bare ``except: pass`` around either site is
exactly the bug the fault-injection suite exists to catch — a dropped
shard or a half-built index silently *changing the answer* instead of
surfacing as a typed :class:`~repro.errors.ResilienceError`.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator
from dataclasses import dataclass
from pathlib import Path

from . import Diagnostic

__all__ = ["check_file", "RULES"]

RULES = ("R1", "R2", "R3", "R4", "R5", "R6")

# --- R1 configuration -------------------------------------------------
#: Kernels producing *unverified* local candidate supersets.
CANDIDATE_GENERATORS = frozenset({"k_dominant_candidates_block"})
#: Kernels performing (or helpers wrapping) full-matrix verification.
VERIFIERS = frozenset({"k_dominated_any", "is_k_dominated"})
#: Calls that combine per-shard results into one candidate set.
MERGE_CALLS = frozenset({"concatenate", "hstack", "vstack"})

# --- R5 configuration -------------------------------------------------
#: Attribute calls that block for the duration of a query: the engine's
#: entry points, plus ``Future.result`` (the classic accidental
#: event-loop staller).
BLOCKING_ENGINE_CALLS = frozenset(
    {
        "execute",
        "execute_many",
        "explain",
        "maintain",
        "prepare",
        "query",
        "result",
        "stream",
        "stream_window",
    }
)

# --- R6 configuration -------------------------------------------------
#: Index load/build entry points: a failure here must quarantine and
#: fall back to the exact non-indexed plan, never be swallowed.
INDEX_LOAD_CALLS = frozenset(
    {
        "DominanceIndex",
        "_cell_partition",
        "_side_index",
        "cell_partition",
        "dominance_index",
        "peek_dominance_index",
        "run_cascade_indexed",
        "run_indexed",
        "side_index",
        "with_inserted_rows",
    }
)
#: Name markers of the sanctioned recovery routes: a handler touching a
#: name carrying one of these is routing the failure, not eating it.
RECOVERY_ROUTE_MARKERS = (
    "resilience",
    "quarantine",
    "retry",
    "degrad",
    "fallback",
)


def check_file(path: Path) -> list[Diagnostic]:
    """All R1-R4 diagnostics for one Python source file."""
    try:
        source = path.read_text()
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError) as exc:
        return [Diagnostic(path, getattr(exc, "lineno", 1) or 1, "R0", f"unparseable: {exc}")]
    diagnostics: list[Diagnostic] = []
    diagnostics.extend(_check_unverified_merge(path, tree))
    diagnostics.extend(_check_lock_discipline(path, tree))
    diagnostics.extend(_check_fingerprint_completeness(path, tree))
    diagnostics.extend(_check_fork_safety(path, tree))
    diagnostics.extend(_check_async_executor_discipline(path, tree))
    diagnostics.extend(_check_swallowed_recovery(path, tree))
    return diagnostics


# ----------------------------------------------------------------------
# R1: no-unverified-merge
# ----------------------------------------------------------------------
def _function_defs(tree: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _referenced_names(fn: ast.AST) -> set[str]:
    """Every plain name and attribute tail referenced inside ``fn``.

    Attribute tails cover ``np.concatenate`` and method references;
    plain names cover direct calls and callables passed as arguments
    (``_map_tasks(_shard_candidates, ...)``).
    """
    names: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return names


def _check_unverified_merge(path: Path, tree: ast.Module) -> list[Diagnostic]:
    functions = {fn.name: fn for fn in _function_defs(tree)}
    references = {name: _referenced_names(fn) for name, fn in functions.items()}

    def reachable(name: str) -> set[str]:
        seen: set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            for ref in references.get(current, ()):  # module-local closure
                if ref not in seen:
                    frontier.append(ref)
        return seen

    diagnostics = []
    for name, fn in functions.items():
        if name in CANDIDATE_GENERATORS:
            continue  # the kernel itself, not a merge site
        closure = reachable(name)
        generates = bool(closure & CANDIDATE_GENERATORS)
        merges = bool(references[name] & MERGE_CALLS)
        verifies = bool(closure & VERIFIERS) or any(
            "verify" in ref for ref in closure
        )
        if generates and merges and not verifies:
            diagnostics.append(
                Diagnostic(
                    path,
                    fn.lineno,
                    "R1",
                    f"no-unverified-merge: {name!r} merges per-shard skyline "
                    "candidates but never reaches a cross-shard verification "
                    "kernel (k_dominated_any / is_k_dominated); k-dominance "
                    "is non-transitive, so merged candidates must be "
                    "re-checked against all rows",
                )
            )
    return diagnostics


# ----------------------------------------------------------------------
# R2: lock-discipline
# ----------------------------------------------------------------------
_GUARDED_RE = re.compile(
    r"^\s*#\s*guarded-by(?P<writes>-writes)?:\s*(?P<lock>\w+)\s*:\s*(?P<fields>.+?)\s*$"
)


@dataclass(frozen=True)
class GuardSpec:
    """One field's declared lock and discipline."""

    lock: str
    writes_only: bool


def _parse_guards(docstring: str | None) -> dict[str, GuardSpec]:
    guards: dict[str, GuardSpec] = {}
    for line in (docstring or "").splitlines():
        match = _GUARDED_RE.match(line)
        if not match:
            continue
        spec = GuardSpec(match.group("lock"), bool(match.group("writes")))
        for field in match.group("fields").split(","):
            field = field.strip()
            if field:
                guards[field] = spec
    return guards


def _self_attr(node: ast.AST) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _LockWalker(ast.NodeVisitor):
    """Walk one method tracking the set of ``with self.<lock>`` scopes."""

    def __init__(self, path: Path, guards: dict[str, GuardSpec]) -> None:
        self.path = path
        self.guards = guards
        self.held: list[str] = []
        self.diagnostics: list[Diagnostic] = []
        self._depth = 0

    # Nested defs may execute later on another thread: they do not
    # inherit the enclosing ``with`` scopes.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_nested(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_nested(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_nested(node)

    def _visit_nested(self, node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda) -> None:
        held, self.held = self.held, []
        self._depth += 1
        try:
            self.generic_visit(node)
        finally:
            self._depth -= 1
            self.held = held

    def visit_With(self, node: ast.With) -> None:
        acquired = []
        for item in node.items:
            attr = _self_attr(item.context_expr)
            if attr is not None:
                acquired.append(attr)
                self.held.append(attr)
        for item in node.items:
            self.visit(item.context_expr)
        for stmt in node.body:
            self.visit(stmt)
        for attr in acquired:
            self.held.remove(attr)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = _self_attr(node)
        if attr in self.guards:
            spec = self.guards[attr]
            is_write = isinstance(node.ctx, (ast.Store, ast.Del))
            if spec.lock not in self.held and (is_write or not spec.writes_only):
                access = "write of" if is_write else "read of"
                self.diagnostics.append(
                    Diagnostic(
                        self.path,
                        node.lineno,
                        "R2",
                        f"lock-discipline: {access} lock-guarded field "
                        f"self.{attr} outside `with self.{spec.lock}` "
                        "(declared by the class's # guarded-by: docstring)",
                    )
                )
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        # `self._memo[key] = v` / `del self._memo[key]` mutate the
        # guarded container: treat the underlying attribute load as a
        # write for guarded-by-writes fields.
        attr = _self_attr(node.value)
        if (
            attr in self.guards
            and isinstance(node.ctx, (ast.Store, ast.Del))
            and self.guards[attr].writes_only
            and self.guards[attr].lock not in self.held
        ):
            self.diagnostics.append(
                Diagnostic(
                    self.path,
                    node.lineno,
                    "R2",
                    f"lock-discipline: mutation of lock-guarded container "
                    f"self.{attr} outside `with self.{self.guards[attr].lock}`",
                )
            )
        self.generic_visit(node)


def _check_lock_discipline(path: Path, tree: ast.Module) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        guards = _parse_guards(ast.get_docstring(node, clean=False))
        if not guards:
            continue
        for item in node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name == "__init__":
                continue  # construction precedes sharing
            walker = _LockWalker(path, guards)
            for stmt in item.body:
                walker.visit(stmt)
            diagnostics.extend(walker.diagnostics)
    return diagnostics


# ----------------------------------------------------------------------
# R3: fingerprint-completeness
# ----------------------------------------------------------------------
def _is_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = target.attr if isinstance(target, ast.Attribute) else getattr(target, "id", None)
        if name == "dataclass":
            return True
    return False


def _dataclass_fields(node: ast.ClassDef) -> list[str]:
    fields = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            annotation = ast.unparse(stmt.annotation)
            if "ClassVar" in annotation or "InitVar" in annotation:
                continue
            fields.append(stmt.target.id)
    return fields


def _check_fingerprint_completeness(path: Path, tree: ast.Module) -> list[Diagnostic]:
    diagnostics = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef) or not _is_dataclass(node):
            continue
        fingerprint = next(
            (
                item
                for item in node.body
                if isinstance(item, ast.FunctionDef) and item.name == "fingerprint"
            ),
            None,
        )
        if fingerprint is None:
            continue
        read = {
            attr
            for sub in ast.walk(fingerprint)
            if (attr := _self_attr(sub)) is not None
        }
        for field in _dataclass_fields(node):
            if field not in read:
                diagnostics.append(
                    Diagnostic(
                        path,
                        fingerprint.lineno,
                        "R3",
                        f"fingerprint-completeness: field {field!r} of dataclass "
                        f"{node.name!r} never feeds fingerprint(); two specs "
                        "differing only in that field would collide in every "
                        "fingerprint-keyed cache",
                    )
                )
    return diagnostics


# ----------------------------------------------------------------------
# R4: fork-safety
# ----------------------------------------------------------------------
def _mentions_main_thread(node: ast.AST) -> bool:
    return any(
        (isinstance(sub, ast.Attribute) and sub.attr == "main_thread")
        or (isinstance(sub, ast.Name) and sub.id == "main_thread")
        for sub in ast.walk(node)
    )


def _check_fork_safety(path: Path, tree: ast.Module) -> list[Diagnostic]:
    diagnostics = []
    for call in ast.walk(tree):
        if not isinstance(call, ast.Call):
            continue
        func = call.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", None)
        if name != "ProcessPoolExecutor":
            continue
        if path.name != "parallel.py":
            diagnostics.append(
                Diagnostic(
                    path,
                    call.lineno,
                    "R4",
                    "fork-safety: ProcessPoolExecutor constructed outside the "
                    "parallel execution layer (core/parallel.py); all process "
                    "fan-out must go through its guarded _map_tasks path",
                )
            )
        elif not _guarded_by_main_thread_check(tree, call):
            diagnostics.append(
                Diagnostic(
                    path,
                    call.lineno,
                    "R4",
                    "fork-safety: ProcessPoolExecutor construction is not "
                    "inside a main-thread check (threading.current_thread() "
                    "is threading.main_thread()); forking with sibling "
                    "threads running risks inheriting held locks",
                )
            )
    return diagnostics


def _check_async_executor_discipline(path: Path, tree: ast.Module) -> list[Diagnostic]:
    """R5: no blocking engine call or lock acquisition in serving async code."""
    if "serving" not in path.parts:
        return []
    diagnostics: list[Diagnostic] = []
    for fn in _function_defs(tree):
        if not isinstance(fn, ast.AsyncFunctionDef):
            continue
        for node in _async_body_nodes(fn):
            if isinstance(node, ast.Call):
                func = node.func
                name = func.attr if isinstance(func, ast.Attribute) else None
                if name in BLOCKING_ENGINE_CALLS:
                    diagnostics.append(
                        Diagnostic(
                            path,
                            node.lineno,
                            "R5",
                            f"async-executor-discipline: blocking call "
                            f".{name}(...) directly inside `async def "
                            f"{fn.name}`; engine work stalls the event loop — "
                            "hand a sync wrapper to loop.run_in_executor "
                            "instead (passing the method is fine; calling it "
                            "is not)",
                        )
                    )
                elif name == "acquire":
                    diagnostics.append(
                        Diagnostic(
                            path,
                            node.lineno,
                            "R5",
                            f"async-executor-discipline: lock .acquire() inside "
                            f"`async def {fn.name}` blocks the event loop; "
                            "serving-layer async code must stay lock-free "
                            "(the admission controller is event-loop-confined "
                            "for exactly this reason)",
                        )
                    )
            elif isinstance(node, ast.With):
                for item in node.items:
                    if _mentions_lock(item.context_expr):
                        diagnostics.append(
                            Diagnostic(
                                path,
                                node.lineno,
                                "R5",
                                f"async-executor-discipline: `with <lock>` "
                                f"inside `async def {fn.name}` blocks the "
                                "event loop; serving-layer async code must "
                                "stay lock-free",
                            )
                        )
                        break
    return diagnostics


def _async_body_nodes(fn: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Walk an async def's body without descending into nested defs.

    Nested sync ``def``\\ s are the executor wrappers (they run on a
    worker thread); nested ``async def``\\ s are visited on their own by
    the outer loop.
    """
    stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _mentions_lock(expr: ast.AST) -> bool:
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Name) and "lock" in sub.id.lower():
            return True
        if isinstance(sub, ast.Attribute) and "lock" in sub.attr.lower():
            return True
    return False


# ----------------------------------------------------------------------
# R6: no-swallowed-recovery
# ----------------------------------------------------------------------
def _names_in(nodes: Iterator[ast.AST] | list[ast.stmt]) -> set[str]:
    """Plain names + attribute tails referenced anywhere under ``nodes``."""
    names: set[str] = set()
    for node in nodes:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name):
                names.add(sub.id)
            elif isinstance(sub, ast.Attribute):
                names.add(sub.attr)
    return names


def _handler_recovers(handler: ast.ExceptHandler) -> bool:
    """Does one ``except`` handler re-raise, re-verify, or route the
    failure through the resilience layer?"""
    if any(isinstance(sub, ast.Raise) for sub in ast.walk(handler)):
        return True
    names = _names_in(handler.body)
    if names & VERIFIERS or any("verify" in name for name in names):
        return True
    return any(
        marker in name.lower()
        for name in names
        for marker in RECOVERY_ROUTE_MARKERS
    )


def _check_swallowed_recovery(path: Path, tree: ast.Module) -> list[Diagnostic]:
    """R6: merge/index-load failures must be re-raised, re-verified, or
    routed through resilience — never silently swallowed."""
    diagnostics: list[Diagnostic] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Try) or not node.handlers:
            continue
        body_names = _names_in(node.body)
        merges = bool(body_names & MERGE_CALLS)
        loads_index = bool(body_names & INDEX_LOAD_CALLS)
        if not merges and not loads_index:
            continue
        site = "shard-merge" if merges else "index-load"
        for handler in node.handlers:
            if _handler_recovers(handler):
                continue
            caught = (
                ast.unparse(handler.type) if handler.type is not None else "BaseException"
            )
            diagnostics.append(
                Diagnostic(
                    path,
                    handler.lineno,
                    "R6",
                    f"no-swallowed-recovery: `except {caught}` around a "
                    f"{site} site neither re-raises, re-verifies, nor "
                    "routes through the resilience layer "
                    "(quarantine/retry/degrade/fallback); swallowing here "
                    "can silently change the answer — surface a typed "
                    "ResilienceError or re-verify the merged candidates",
                )
            )
    return diagnostics


def _guarded_by_main_thread_check(tree: ast.Module, call: ast.Call) -> bool:
    """Is ``call`` lexically inside an ``if`` testing the main thread?

    The test may reference ``threading.main_thread()`` directly or a
    local name assigned from an expression that does.
    """
    for fn in _function_defs(tree):
        guard_names = {
            target.id
            for stmt in ast.walk(fn)
            if isinstance(stmt, ast.Assign) and _mentions_main_thread(stmt.value)
            for target in stmt.targets
            if isinstance(target, ast.Name)
        }

        def guards(test: ast.AST) -> bool:
            return _mentions_main_thread(test) or any(
                isinstance(sub, ast.Name) and sub.id in guard_names
                for sub in ast.walk(test)
            )

        stack: list[tuple[ast.AST, bool]] = [(fn, False)]
        while stack:
            node, guarded = stack.pop()
            if node is call:
                return guarded
            for child in ast.iter_child_nodes(node):
                child_guarded = guarded
                if isinstance(node, ast.If) and child in node.body and guards(node.test):
                    child_guarded = True
                stack.append((child, child_guarded))
    return False
