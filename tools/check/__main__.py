"""``python -m tools.check`` — run the invariant linter + typing gate."""

import sys

from . import main

if __name__ == "__main__":
    sys.exit(main())
