"""Repo-specific correctness gate: ``python -m tools.check``.

The test suite can only spot-check the invariants the engine's
exactness rests on; this package makes them machine-checked on every
commit. Two layers:

* :mod:`tools.check.invariants` — an AST linter with six rules tied
  to the reproduction's correctness arguments (see
  ``docs/static-analysis.md``):

  - **R1 no-unverified-merge** — k-dominance is non-transitive
    (paper Sec. 2.2), so any function that merges per-shard skyline
    candidates must reach a cross-shard verification kernel.
  - **R2 lock-discipline** — fields documented as lock-guarded by the
    ``# guarded-by:`` docstring convention must only be touched inside
    a ``with self.<lock>`` block.
  - **R3 fingerprint-completeness** — every field of a fingerprinted
    dataclass (``QuerySpec``) must feed ``fingerprint()``; a field
    missing from the digest silently poisons result caches.
  - **R4 fork-safety** — ``ProcessPoolExecutor`` may only be
    constructed in the parallel execution layer, behind its
    main-thread check (forking with sibling threads running risks
    inheriting locks held mid-operation).
  - **R5 async-executor-discipline** — serving-package ``async def``
    bodies must not call blocking engine entry points or acquire
    locks directly; engine work goes through ``loop.run_in_executor``
    so the event loop never stalls behind one query.
  - **R6 no-swallowed-recovery** — an ``except`` around a shard merge
    or an index load must re-raise, re-verify, or route through the
    resilience layer (quarantine/retry/degrade/fallback); swallowing
    such failures can silently change the answer.

* :mod:`tools.check.typing_gate` — a typing-completeness gate
  (**T1**: every function in the strictly-typed packages is fully
  annotated; **T2**: the ``py.typed`` marker ships with the package)
  that mirrors the mypy strict profile configured in
  ``pyproject.toml``, so the discipline is enforced even where mypy
  is not installed.

Exit status is non-zero iff any diagnostic is emitted.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from pathlib import Path

__all__ = ["Diagnostic", "run_checks", "main", "REPO_ROOT", "SRC_ROOT"]

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding, renderable as ``file:line: RULE message``."""

    path: Path
    line: int
    rule: str
    message: str

    def render(self, root: Path | None = None) -> str:
        path = self.path
        if root is not None:
            try:
                path = path.relative_to(root)
            except ValueError:
                pass
        return f"{path}:{self.line}: {self.rule} {self.message}"


def iter_python_files(root: Path) -> Iterable[Path]:
    """Python files under ``root`` (or ``root`` itself), sorted."""
    if root.is_file():
        return [root]
    return sorted(p for p in root.rglob("*.py") if "__pycache__" not in p.parts)


def run_checks(
    paths: Sequence[Path] | None = None,
    rules: Sequence[str] | None = None,
) -> list[Diagnostic]:
    """Run every enabled rule over ``paths`` (default: ``src/repro``).

    ``rules`` filters by rule id (``R1`` ... ``R6``, ``T1``, ``T2``);
    ``None`` enables all of them. Diagnostics come back sorted by file
    and line so output (and the fixture tests) are deterministic.
    """
    from . import invariants, typing_gate

    roots = [Path(p) for p in paths] if paths else [SRC_ROOT]
    enabled = {r.upper() for r in rules} if rules else None

    def on(rule: str) -> bool:
        return enabled is None or rule in enabled

    diagnostics: list[Diagnostic] = []
    for root in roots:
        files = list(iter_python_files(root))
        for path in files:
            diagnostics.extend(
                d for d in invariants.check_file(path) if on(d.rule)
            )
            if typing_gate.in_strict_scope(path) and on("T1"):
                diagnostics.extend(typing_gate.check_annotations(path))
        if on("T2"):
            diagnostics.extend(typing_gate.check_py_typed(root))
    return sorted(diagnostics, key=lambda d: (str(d.path), d.line, d.rule))


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m tools.check",
        description="repro-specific invariant linter + typing gate",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to check (default: src/repro)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="ID",
        help="only run the given rule id (repeatable): R1-R6, T1, T2",
    )
    args = parser.parse_args(argv)
    diagnostics = run_checks(args.paths or None, args.rules)
    for diag in diagnostics:
        print(diag.render(REPO_ROOT))
    if diagnostics:
        print(f"tools.check: {len(diagnostics)} problem(s) found", file=sys.stderr)
        return 1
    print("tools.check: OK")
    return 0
