"""Skyline engine: dominance primitives and skyline algorithms.

:mod:`repro.skyline.dominance` defines classic and k-dominance over
oriented matrices; :mod:`repro.skyline.classic` implements BNL and SFS
full skylines; :mod:`repro.skyline.kdominant` implements the naïve and
Two-Scan k-dominant skyline algorithms of Chan et al. that the KSJQ
algorithms use as their inner engine.
"""

from .classic import skyline, skyline_bnl, skyline_sfs
from .dominance import (
    boe_counts,
    dominates,
    dominator_rows,
    is_k_dominated,
    k_dominated_any,
    k_dominates,
    k_dominator_mask,
    strict_any,
)
from .kdominant import (
    k_dominant_candidates_block,
    k_dominant_skyline,
    k_dominant_skyline_block,
    k_dominant_skyline_naive,
    k_dominant_skyline_osa,
    k_dominant_skyline_tsa,
)

__all__ = [
    "boe_counts",
    "dominates",
    "dominator_rows",
    "is_k_dominated",
    "k_dominant_candidates_block",
    "k_dominant_skyline",
    "k_dominant_skyline_block",
    "k_dominant_skyline_naive",
    "k_dominant_skyline_osa",
    "k_dominant_skyline_tsa",
    "k_dominated_any",
    "k_dominates",
    "k_dominator_mask",
    "skyline",
    "skyline_bnl",
    "skyline_sfs",
    "strict_any",
]
