"""Dominance and k-dominance primitives (paper Sec. 2.1-2.2).

All functions operate in *oriented* (minimize) space: lower values are
preferred in every column. Relations provide such matrices via
:meth:`repro.relational.Relation.oriented`.

Definitions implemented here:

* ``u`` **dominates** ``v`` iff ``u <= v`` component-wise and ``u < v``
  in at least one component.
* ``u`` **k-dominates** ``v`` iff ``#{i : u_i <= v_i} >= k`` and
  ``#{i : u_i < v_i} >= 1``. For ``k = d`` this reduces to classic
  dominance. Note the equivalence with Chan et al.'s phrasing ("better
  or equal in some k attributes and strictly better in one *of those
  k*"): any strictly-better attribute is also better-or-equal, so it can
  always be chosen into the k-subset.

k-dominance is *not* transitive and can be cyclic for ``k <= d/2``
(Sec. 2.2), which is why the two-scan algorithm needs its verification
pass and why candidate checks must always run against full candidate
dominator sets, never just against surviving skyline members.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from .._typing import BoolVector, FloatMatrix, FloatVector, IntVector

__all__ = [
    "dominates",
    "k_dominates",
    "boe_counts",
    "strict_any",
    "k_dominator_mask",
    "is_k_dominated",
    "k_dominated_any",
    "cells_k_dominated",
    "dominator_rows",
]

#: Element budget of one broadcast temporary in :func:`k_dominated_any`
#: (vectors x rows x attributes). 2^22 bools is a ~4 MiB comparison
#: block — big enough to amortize numpy dispatch, small enough to stay
#: cache- and fork-friendly when several workers run concurrently.
_BLOCK_ELEMENT_BUDGET = 1 << 22


def dominates(u: FloatVector, v: FloatVector) -> bool:
    """Classic (full) dominance of oriented vectors: ``u ≻ v``."""
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    return bool(np.all(u <= v) and np.any(u < v))


def k_dominates(u: FloatVector, v: FloatVector, k: int) -> bool:
    """k-dominance of oriented vectors: ``u ≻_k v``."""
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    return bool(np.count_nonzero(u <= v) >= k and np.any(u < v))


def boe_counts(matrix: FloatMatrix, v: FloatVector) -> IntVector:
    """Per-row better-or-equal counts of ``matrix`` rows versus ``v``.

    ``result[i] = #{j : matrix[i, j] <= v[j]}``.
    """
    return np.count_nonzero(matrix <= v, axis=1)


def strict_any(matrix: FloatMatrix, v: FloatVector) -> BoolVector:
    """Per-row flag: does row ``i`` beat ``v`` strictly somewhere?"""
    return (matrix < v).any(axis=1)


def k_dominator_mask(
    matrix: FloatMatrix,
    v: FloatVector,
    k: int,
    exclude: int | None = None,
) -> BoolVector:
    """Boolean mask of rows of ``matrix`` that k-dominate ``v``.

    ``exclude`` removes one row index (typically ``v``'s own position)
    from consideration; a tuple can never k-dominate itself anyway
    (no strict attribute), so this is an optimization plus guard against
    accidental duplicates of ``v`` — duplicates legitimately do *not*
    dominate each other.
    """
    mask = (boe_counts(matrix, v) >= k) & strict_any(matrix, v)
    if exclude is not None:
        mask[exclude] = False
    return mask


def is_k_dominated(
    matrix: FloatMatrix,
    v: FloatVector,
    k: int,
    exclude: int | None = None,
) -> bool:
    """Is ``v`` k-dominated by any row of ``matrix``?

    Evaluated in blocks with early exit so large matrices do not pay the
    full comparison cost when a dominator appears early.
    """
    n = matrix.shape[0]
    if n == 0:
        return False
    block = 4096
    for start in range(0, n, block):
        sub = matrix[start : start + block]
        mask = (boe_counts(sub, v) >= k) & strict_any(sub, v)
        if exclude is not None and start <= exclude < start + sub.shape[0]:
            mask[exclude - start] = False
        if mask.any():
            return True
    return False


def k_dominated_any(
    matrix: FloatMatrix,
    vectors: FloatMatrix,
    k: int,
) -> BoolVector:
    """Per-vector flag: is each of ``vectors`` k-dominated by any row of
    ``matrix``?

    The many-versus-matrix counterpart of :func:`is_k_dominated`: the
    comparison runs as blocked 3-D broadcasts (vector block x row block
    x attributes) instead of one Python-level loop per vector, and
    vectors leave the working set as soon as a dominator is found.
    Rows of ``matrix`` are visited in order, so presorting it with
    :func:`repro.core.verify.sort_rows_for_early_exit` puts strong rows
    first and most vectors are decided within the first blocks.

    A vector that is itself a row of ``matrix`` needs no exclusion
    index: a tuple is never strictly better than itself, and duplicated
    attribute vectors legitimately do not dominate each other.

    Parameters
    ----------
    matrix:
        (n x d) oriented candidate-dominator matrix.
    vectors:
        (m x d) oriented vectors to test.
    k:
        Dominance threshold.

    Returns
    -------
    numpy.ndarray
        Boolean array of length ``m``; ``True`` marks dominated vectors.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    vectors = np.asarray(vectors, dtype=np.float64)
    m, n = vectors.shape[0], matrix.shape[0]
    out = np.zeros(m, dtype=bool)
    if m == 0 or n == 0:
        return out
    d = matrix.shape[1]
    # Chunk the vector axis so that even at the 64-row block floor the
    # broadcast temporaries stay within the element budget; within each
    # chunk the row-block size then adapts upward as vectors are decided.
    vec_chunk = max(1, _BLOCK_ELEMENT_BUDGET // (64 * d))
    for chunk_start in range(0, m, vec_chunk):
        undecided = np.arange(
            chunk_start, min(chunk_start + vec_chunk, m), dtype=np.intp
        )
        start = 0
        while start < n and undecided.size:
            block = max(64, _BLOCK_ELEMENT_BUDGET // max(1, undecided.size * d))
            rows = matrix[start : start + block]
            vecs = vectors[undecided]
            le = rows[None, :, :] <= vecs[:, None, :]
            lt = rows[None, :, :] < vecs[:, None, :]
            dominated = (
                (le.sum(axis=2) >= k) & lt.any(axis=2)
            ).any(axis=1)
            out[undecided[dominated]] = True
            undecided = undecided[~dominated]
            start += rows.shape[0]
    return out


def cells_k_dominated(
    matrix: FloatMatrix,
    cell_lower_bounds: FloatMatrix,
    k: int,
) -> BoolVector:
    """Per-cell flag: is the cell provably non-winning at ``k``?

    The cell-bound pruning kernel of :mod:`repro.core.index`. Cell ``C``
    is flagged iff some **actual row** ``w`` of ``matrix`` satisfies
    ``#{j : w_j <= lb_C[j]} >= k`` and ``exists j : w_j < lb_C[j]``,
    where ``lb_C`` is the componentwise minimum over ``C``'s actual
    rows. Every tuple ``t`` of a flagged cell is then *directly*
    k-dominated by ``w``: on the ``>= k`` better-or-equal coordinates
    ``w_j <= lb_C[j] <= t_j``, and on the strict one
    ``w_j < lb_C[j] <= t_j``. No transitivity is assumed — the witness
    is one real tuple, one hop — which is what makes this sound even
    though k-dominance is cyclic for small ``k``. A row of ``C`` can
    never be its own witness: it sits at or above ``lb_C`` everywhere,
    so the strict condition fails.

    Computationally this is exactly :func:`k_dominated_any` with the
    cell lower bounds in the role of the test vectors; pass ``matrix``
    pre-sorted by :func:`repro.core.verify.sort_rows_for_early_exit` so
    most cells are decided within the first blocks.

    Parameters
    ----------
    matrix:
        (n x d) oriented matrix of all actual rows (candidate
        witnesses) — the *full* data, never a pruned subset.
    cell_lower_bounds:
        (c x d) componentwise minima of each cell's actual rows.
    k:
        Dominance threshold.
    """
    return k_dominated_any(matrix, cell_lower_bounds, k)


def dominator_rows(
    matrix: FloatMatrix,
    v: FloatVector,
    k: int,
    exclude: int | None = None,
) -> IntVector:
    """Row indices of all k-dominators of ``v`` within ``matrix``."""
    return np.flatnonzero(k_dominator_mask(matrix, v, k, exclude=exclude))
