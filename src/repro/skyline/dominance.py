"""Dominance and k-dominance primitives (paper Sec. 2.1-2.2).

All functions operate in *oriented* (minimize) space: lower values are
preferred in every column. Relations provide such matrices via
:meth:`repro.relational.Relation.oriented`.

Definitions implemented here:

* ``u`` **dominates** ``v`` iff ``u <= v`` component-wise and ``u < v``
  in at least one component.
* ``u`` **k-dominates** ``v`` iff ``#{i : u_i <= v_i} >= k`` and
  ``#{i : u_i < v_i} >= 1``. For ``k = d`` this reduces to classic
  dominance. Note the equivalence with Chan et al.'s phrasing ("better
  or equal in some k attributes and strictly better in one *of those
  k*"): any strictly-better attribute is also better-or-equal, so it can
  always be chosen into the k-subset.

k-dominance is *not* transitive and can be cyclic for ``k <= d/2``
(Sec. 2.2), which is why the two-scan algorithm needs its verification
pass and why candidate checks must always run against full candidate
dominator sets, never just against surviving skyline members.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "dominates",
    "k_dominates",
    "boe_counts",
    "strict_any",
    "k_dominator_mask",
    "is_k_dominated",
    "dominator_rows",
]


def dominates(u: np.ndarray, v: np.ndarray) -> bool:
    """Classic (full) dominance of oriented vectors: ``u ≻ v``."""
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    return bool(np.all(u <= v) and np.any(u < v))


def k_dominates(u: np.ndarray, v: np.ndarray, k: int) -> bool:
    """k-dominance of oriented vectors: ``u ≻_k v``."""
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    return bool(np.count_nonzero(u <= v) >= k and np.any(u < v))


def boe_counts(matrix: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Per-row better-or-equal counts of ``matrix`` rows versus ``v``.

    ``result[i] = #{j : matrix[i, j] <= v[j]}``.
    """
    return np.count_nonzero(matrix <= v, axis=1)


def strict_any(matrix: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Per-row flag: does row ``i`` beat ``v`` strictly somewhere?"""
    return (matrix < v).any(axis=1)


def k_dominator_mask(
    matrix: np.ndarray,
    v: np.ndarray,
    k: int,
    exclude: Optional[int] = None,
) -> np.ndarray:
    """Boolean mask of rows of ``matrix`` that k-dominate ``v``.

    ``exclude`` removes one row index (typically ``v``'s own position)
    from consideration; a tuple can never k-dominate itself anyway
    (no strict attribute), so this is an optimization plus guard against
    accidental duplicates of ``v`` — duplicates legitimately do *not*
    dominate each other.
    """
    mask = (boe_counts(matrix, v) >= k) & strict_any(matrix, v)
    if exclude is not None:
        mask[exclude] = False
    return mask


def is_k_dominated(
    matrix: np.ndarray,
    v: np.ndarray,
    k: int,
    exclude: Optional[int] = None,
) -> bool:
    """Is ``v`` k-dominated by any row of ``matrix``?

    Evaluated in blocks with early exit so large matrices do not pay the
    full comparison cost when a dominator appears early.
    """
    n = matrix.shape[0]
    if n == 0:
        return False
    block = 4096
    for start in range(0, n, block):
        sub = matrix[start : start + block]
        mask = (boe_counts(sub, v) >= k) & strict_any(sub, v)
        if exclude is not None and start <= exclude < start + sub.shape[0]:
            mask[exclude - start] = False
        if mask.any():
            return True
    return False


def dominator_rows(
    matrix: np.ndarray,
    v: np.ndarray,
    k: int,
    exclude: Optional[int] = None,
) -> np.ndarray:
    """Row indices of all k-dominators of ``v`` within ``matrix``."""
    return np.flatnonzero(k_dominator_mask(matrix, v, k, exclude=exclude))
