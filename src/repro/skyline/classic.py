"""Classic (full-dominance) skyline algorithms.

Two standard non-indexed algorithms from the literature the paper builds
on:

* **BNL** (block-nested-loops, Börzsönyi et al. [3]): maintain a window
  of incomparable tuples; each incoming tuple evicts dominated window
  members or is itself discarded.
* **SFS** (sort-filter-skyline, Chomicki et al. [5]): presort by a
  monotone score (sum of oriented attributes); then a tuple can only be
  dominated by tuples already in the window, so no evictions happen and
  every window insertion is final.

Both return row indices into the input matrix, in ascending order.
For full dominance the skyline is unique, so the algorithms agree
(property-tested).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from .dominance import dominates

if TYPE_CHECKING:
    from .._typing import FloatMatrix

__all__ = ["skyline_bnl", "skyline_sfs", "skyline"]


def skyline_bnl(matrix: FloatMatrix) -> list[int]:
    """Block-nested-loops skyline over an oriented matrix."""
    matrix = np.asarray(matrix, dtype=np.float64)
    window: list[int] = []
    for i in range(matrix.shape[0]):
        row = matrix[i]
        dominated = False
        survivors: list[int] = []
        for j in window:
            if dominates(matrix[j], row):
                dominated = True
                survivors = window  # no evictions needed; row dies
                break
            if not dominates(row, matrix[j]):
                survivors.append(j)
        if not dominated:
            window = survivors + [i]
    return sorted(window)


def skyline_sfs(matrix: FloatMatrix) -> list[int]:
    """Sort-filter-skyline over an oriented matrix.

    Presorting by the attribute sum guarantees that no later tuple can
    dominate an earlier one (a dominator has strictly smaller sum),
    hence a single filtering pass suffices.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    n = matrix.shape[0]
    if n == 0:
        return []
    order = np.argsort(matrix.sum(axis=1), kind="stable")
    window: list[int] = []
    for idx in order:
        row = matrix[idx]
        if not any(dominates(matrix[j], row) for j in window):
            window.append(int(idx))
    return sorted(window)


def skyline(matrix: FloatMatrix, method: str = "sfs") -> list[int]:
    """Compute the classic skyline; ``method`` is ``"sfs"`` or ``"bnl"``."""
    if method == "sfs":
        return skyline_sfs(matrix)
    if method == "bnl":
        return skyline_bnl(matrix)
    raise ValueError(f"unknown skyline method {method!r} (use 'sfs' or 'bnl')")
