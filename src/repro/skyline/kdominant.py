"""k-dominant skyline computation (Chan et al. [4], paper Sec. 2.2).

The k-dominant skyline contains the tuples not k-dominated by any other
tuple. Because k-dominance is non-transitive (and cyclic for small k),
a point eliminated from a candidate window is still allowed to eliminate
candidates — which is exactly what the Two-Scan Algorithm exploits.

Implemented methods:

* ``naive`` — O(n^2) pairwise check, vectorized one-row-vs-matrix.
  This is the reference implementation everything is tested against.
* ``tsa`` — Two-Scan Algorithm. Scan 1 builds a candidate set: each
  point is checked against current candidates, evicting candidates it
  k-dominates and joining the set when no candidate k-dominates it.
  Rejections are sound (the rejecting candidate is a real tuple) but the
  surviving candidates may still be k-dominated by earlier-eliminated
  points, so scan 2 re-verifies every candidate against the full data.
  Points are presorted by attribute sum, which makes strong tuples act
  as candidates early and keeps the candidate set small.
* ``osa`` — One-Scan Algorithm. Alongside the k-dominant candidates it
  maintains the *classic* skyline of everything seen, which is a
  sufficient witness set: if q k-dominates t and q0 classically
  dominates q, then q0 also k-dominates t (component-wise, q0's
  better-or-equal set contains q's). Hence checking a new point against
  the maintained classic skyline decides k-domination by *all* seen
  points, and no second scan is needed — at the memory cost of keeping
  the (possibly large) classic skyline, exactly the trade-off reported
  by Chan et al.

All return sorted row indices of the k-dominant skyline members.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..errors import ParameterError
from .dominance import is_k_dominated, k_dominated_any

if TYPE_CHECKING:
    from .._typing import FloatMatrix, IntVector

__all__ = [
    "k_dominant_skyline_naive",
    "k_dominant_skyline_tsa",
    "k_dominant_candidates_block",
    "k_dominant_skyline_block",
    "k_dominant_skyline",
]


def _validate(matrix: FloatMatrix, k: int) -> FloatMatrix:
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ParameterError(f"matrix must be 2-D, got {matrix.ndim}-D")
    d = matrix.shape[1]
    if not 1 <= k <= d:
        raise ParameterError(f"k must be in [1, {d}], got {k}")
    return matrix


def k_dominant_skyline_naive(matrix: FloatMatrix, k: int) -> list[int]:
    """Reference O(n^2) k-dominant skyline."""
    matrix = _validate(matrix, k)
    out: list[int] = []
    for i in range(matrix.shape[0]):
        if not is_k_dominated(matrix, matrix[i], k, exclude=i):
            out.append(i)
    return out


def k_dominant_skyline_tsa(
    matrix: FloatMatrix, k: int, presort: bool = True
) -> list[int]:
    """Two-Scan Algorithm for the k-dominant skyline."""
    matrix = _validate(matrix, k)
    n = matrix.shape[0]
    if n == 0:
        return []

    if presort:
        order = np.argsort(matrix.sum(axis=1), kind="stable")
    else:
        order = np.arange(n)

    # Scan 1: candidate generation with mutual elimination.
    candidates: list[int] = []
    for idx in order:
        row = matrix[idx]
        if candidates:
            cand_matrix = matrix[candidates]
            # Candidates k-dominated by the incoming point are evicted
            # even if the point itself ends up rejected (non-transitivity).
            boe = np.count_nonzero(cand_matrix <= row, axis=1)
            strict = (cand_matrix < row).any(axis=1)
            dominated_by_cand = bool(((boe >= k) & strict).any())
            boe_rev = np.count_nonzero(row <= cand_matrix, axis=1)
            strict_rev = (row < cand_matrix).any(axis=1)
            keep = ~((boe_rev >= k) & strict_rev)
            if not keep.all():
                candidates = [c for c, kp in zip(candidates, keep) if kp]
            if dominated_by_cand:
                continue
        candidates.append(int(idx))

    # Scan 2: verify candidates against the complete dataset.
    out = [
        c
        for c in candidates
        if not is_k_dominated(matrix, matrix[c], k, exclude=c)
    ]
    return sorted(out)


def k_dominant_candidates_block(
    matrix: FloatMatrix,
    k: int,
    block: int = 512,
    order: IntVector | None = None,
) -> IntVector:
    """Scan-1 candidate generation, vectorized over row *blocks*.

    The block-kernel variant of the TSA first scan: rows are visited in
    attribute-sum order in blocks of ``block``, each block is tested
    against the accumulated candidate set in one broadcast
    (:func:`~repro.skyline.dominance.k_dominated_any`), survivors join
    the set, and candidates k-dominated by a block's survivors are
    evicted to keep the working set small.

    Rejections are sound (the rejecting candidate is a real tuple), but
    rows *within* one block are never compared against each other, so
    the returned set is a **superset** of the k-dominant skyline — the
    cheap-to-produce candidate list that a second scan against the full
    data must close, exactly as in the classic TSA (and, sharded, in
    :mod:`repro.core.parallel`).

    ``order`` optionally supplies a precomputed attribute-sum visit
    order, so callers that also presort for the second scan pay one
    argsort in total. Returns sorted row indices of the candidate
    superset.
    """
    matrix = _validate(matrix, k)
    n = matrix.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.intp)
    if order is None:
        order = np.argsort(matrix.sum(axis=1), kind="stable")
    cand_idx = np.empty(0, dtype=np.intp)
    for start in range(0, n, block):
        rows_idx = order[start : start + block]
        rows = matrix[rows_idx]
        if cand_idx.size:
            rejected = k_dominated_any(matrix[cand_idx], rows, k)
            rows_idx = rows_idx[~rejected]
            rows = rows[~rejected]
        if rows_idx.size and cand_idx.size:
            evicted = k_dominated_any(rows, matrix[cand_idx], k)
            cand_idx = cand_idx[~evicted]
        cand_idx = np.concatenate([cand_idx, rows_idx])
    cand_idx.sort()
    return cand_idx


def k_dominant_skyline_block(matrix: FloatMatrix, k: int, block: int = 512) -> list[int]:
    """Two-scan k-dominant skyline over vectorized block kernels.

    Answer-equivalent to :func:`k_dominant_skyline_tsa` (both are
    exact), but both scans run as matrix-block broadcasts instead of
    per-row Python loops: scan 1 is
    :func:`k_dominant_candidates_block`, scan 2 re-verifies every
    candidate against the complete dataset with
    :func:`~repro.skyline.dominance.k_dominated_any`.
    """
    matrix = _validate(matrix, k)
    # One argsort serves both scans: the visit order of scan 1 and the
    # strong-rows-first layout that gives scan 2 its early exits.
    order = np.argsort(matrix.sum(axis=1), kind="stable")
    candidates = k_dominant_candidates_block(matrix, k, block=block, order=order)
    if candidates.size == 0:
        return []
    dominated = k_dominated_any(matrix[order], matrix[candidates], k)
    return [int(c) for c in candidates[~dominated]]


def k_dominant_skyline_osa(matrix: FloatMatrix, k: int) -> list[int]:
    """One-Scan Algorithm for the k-dominant skyline."""
    matrix = _validate(matrix, k)
    n = matrix.shape[0]
    if n == 0:
        return []

    candidates: list[int] = []  # k-dominant skyline of seen points
    witnesses: list[int] = []  # classic skyline of seen points
    for idx in range(n):
        row = matrix[idx]

        # Evict candidates the newcomer k-dominates (it may do so even
        # if it is itself k-dominated — non-transitivity).
        if candidates:
            cand = matrix[candidates]
            boe_rev = np.count_nonzero(row <= cand, axis=1)
            strict_rev = (row < cand).any(axis=1)
            keep = ~((boe_rev >= k) & strict_rev)
            if not keep.all():
                candidates = [c for c, kp in zip(candidates, keep) if kp]

        # The classic skyline of the seen prefix decides k-domination by
        # ANY seen point (classic dominators inherit k-dominance).
        dominated_k = False
        if witnesses:
            wit = matrix[witnesses]
            boe = np.count_nonzero(wit <= row, axis=1)
            strict = (wit < row).any(axis=1)
            dominated_k = bool(((boe >= k) & strict).any())
        if not dominated_k:
            candidates.append(idx)

        # Maintain the classic-skyline witness set (BNL step).
        if witnesses:
            wit = matrix[witnesses]
            dominated_full = bool(
                ((np.count_nonzero(wit <= row, axis=1) == matrix.shape[1])
                 & (wit < row).any(axis=1)).any()
            )
            if not dominated_full:
                boe_rev = np.count_nonzero(row <= wit, axis=1)
                strict_rev = (row < wit).any(axis=1)
                keep = ~((boe_rev == matrix.shape[1]) & strict_rev)
                witnesses = [w for w, kp in zip(witnesses, keep) if kp]
                witnesses.append(idx)
        else:
            witnesses.append(idx)
    return sorted(candidates)


def k_dominant_skyline(matrix: FloatMatrix, k: int, method: str = "tsa") -> list[int]:
    """Compute the k-dominant skyline; ``method`` in {"tsa", "osa", "block",
    "naive"}."""
    if method == "tsa":
        return k_dominant_skyline_tsa(matrix, k)
    if method == "osa":
        return k_dominant_skyline_osa(matrix, k)
    if method == "block":
        return k_dominant_skyline_block(matrix, k)
    if method == "naive":
        return k_dominant_skyline_naive(matrix, k)
    raise ParameterError(
        f"unknown k-dominant method {method!r} (use 'tsa', 'osa', 'block' or 'naive')"
    )
