"""Fluent query construction over an :class:`~repro.api.engine.Engine`.

A builder accumulates the join-graph configuration and query
parameters, then freezes them into a :class:`~repro.api.spec.QuerySpec`
on any of its terminal calls::

    engine.query(r1, r2).aggregate("sum").k(7).run()
    engine.query(r1, r2).join("theta", conds).k(5).stream()
    engine.query(r1, r2).find_k(delta=100, objective="at_most")
    engine.query(r1, r2).k(7).explain().summary()

    # m-way cascades (paper Sec. 2.3): one hop per adjacent pair.
    engine.query(r1, r2, r3).hop("dest", "source").hop("dest", "source").k(7).run()
    engine.query(r1, r2, r3).hop("dest", "source").theta(layover).k(7).run()

Builders are cheap, single-use-or-reuse objects: every terminal call
re-derives the spec, so one configured builder can run, stream, and
explain the same query.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING, Union

from ..core.incremental import DEFAULT_FALLBACK_RATIO
from ..core.result import FindKResult, KSJQResult
from ..errors import JoinError, ParameterError
from ..relational.dataset import Dataset
from ..relational.join import HopSpec
from ..relational.relation import Relation
from .spec import QuerySpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .._typing import AggregateLike, ThetaLike
    from ..core.incremental import MaintainedResult
    from .engine import Engine, ExplainReport
    from .handle import QueryHandle

QueryInput = Union[Relation, Dataset, str]

__all__ = ["QueryBuilder"]


class QueryBuilder:
    """Chainable description of one query over a fixed input chain.

    Inputs may be :class:`Relation` objects, :class:`Dataset` handles,
    or the names of datasets registered in the engine's catalog; names
    resolve to their *latest* snapshot at each terminal call.
    """

    def __init__(self, engine: "Engine", *relations: QueryInput) -> None:
        if len(relations) < 2:
            raise ParameterError(
                f"query() needs at least two relations, got {len(relations)}"
            )
        self._engine = engine
        self._relations: tuple[QueryInput, ...] = tuple(relations)
        self._join = "equality"
        self._theta: ThetaLike | None = None
        self._hops: list[HopSpec] = []
        self._aggregate: AggregateLike | None = None
        self._k: int | None = None
        self._delta: int | None = None
        self._algorithm = "auto"
        self._mode = "faithful"
        self._method = "binary"
        self._objective = "at_least"
        self._parallelism: int | str = "auto"
        self._use_index: bool | str = "auto"

    # ------------------------------------------------------------------
    # Configuration (each returns self)
    # ------------------------------------------------------------------
    def join(self, kind: str, theta: ThetaLike | None = None) -> "QueryBuilder":
        """Two-way join kind: ``"equality"`` (default), ``"cartesian"``,
        or ``"theta"`` with one condition or a conjunction list. For
        chains of three or more relations use :meth:`hop` /
        :meth:`theta` per adjacent pair instead."""
        self._join = kind
        self._theta = theta
        return self

    def hop(
        self,
        left_column: str | None = None,
        right_column: str | None = None,
    ) -> "QueryBuilder":
        """Append one equality hop of the join graph.

        ``hop("dest", "source")`` joins the current chain end's ``dest``
        column to the next relation's ``source`` column; a ``None``
        column falls back to that side's composite join key, so a bare
        ``hop()`` is the two-way default equality join.
        """
        self._hops.append(HopSpec.on_columns(left_column, right_column))
        return self

    def theta(self, conditions: ThetaLike) -> "QueryBuilder":
        """Theta condition(s) for the next hop of the join graph.

        On a two-relation query with no explicit hops this is shorthand
        for ``join("theta", conditions)`` (keeping the full two-way
        algorithm family available); otherwise it appends a theta hop,
        so ``query(r1, r2, r3).hop("dst", "src").theta(cond)`` chains an
        equality hop and a theta hop.
        """
        if len(self._relations) == 2 and not self._hops:
            return self.join("theta", conditions)
        self._hops.append(HopSpec.on_theta(conditions))
        return self

    def aggregate(self, aggregate: AggregateLike) -> "QueryBuilder":
        """Aggregate function (registry name or object) for schemas
        with aggregate attributes."""
        self._aggregate = aggregate
        return self

    def k(self, k: int) -> "QueryBuilder":
        """Fix the dominance threshold (Problems 1-2)."""
        self._k = k
        return self

    def delta(self, delta: int) -> "QueryBuilder":
        """Target skyline cardinality (Problems 3-4)."""
        self._delta = delta
        return self

    def algorithm(self, algorithm: str) -> "QueryBuilder":
        """Force an algorithm; default ``"auto"`` picks by cost."""
        self._algorithm = algorithm
        return self

    def mode(self, mode: str) -> "QueryBuilder":
        """``"faithful"`` (paper) or ``"exact"`` (errata-closing)."""
        self._mode = mode
        return self

    def parallelism(self, parallelism: int | str) -> "QueryBuilder":
        """Sharded parallel execution: ``"auto"`` (default) or workers.

        ``"auto"`` lets the engine's cost model decide serial-vs-parallel
        from the plan's cardinality statistics; an integer demands that
        many shard workers for the parallel path (``1`` forces serial).
        See :mod:`repro.core.parallel` and the engine's ``explain()``
        report for the decision actually taken.
        """
        self._parallelism = parallelism
        return self

    def use_index(self, use_index: bool | str = True) -> "QueryBuilder":
        """Dominance-index policy: ``"auto"`` (default), ``True``, ``False``.

        ``"auto"`` lets the cost model weigh the cell-pruned indexed
        path against the others (warm indexes tip the scale);
        ``True`` forces it under ``algorithm="auto"``; ``False``
        guarantees no index is built or consulted for this query. See
        :mod:`repro.core.index` and ``explain()``'s ``index:`` line.
        """
        self._use_index = use_index
        return self

    def method(self, method: str) -> "QueryBuilder":
        """find-k search method: ``"binary"``, ``"range"`` or ``"naive"``."""
        self._method = method
        return self

    def objective(self, objective: str) -> "QueryBuilder":
        """find-k objective: ``"at_least"`` (default) or ``"at_most"``."""
        self._objective = objective
        return self

    # ------------------------------------------------------------------
    # Spec derivation
    # ------------------------------------------------------------------
    def _is_cascade(self) -> bool:
        if len(self._relations) > 2:
            return True
        if not self._hops:
            return False
        # A single two-way hop reduces to the richer two-way spec when it
        # matches a classic join kind; named-column equality does not.
        if len(self._hops) == 1:
            hop = self._hops[0]
            return hop.kind == "equality" and (
                hop.left_column is not None or hop.right_column is not None
            )
        return True

    def _hop_tuple(self) -> tuple[HopSpec, ...]:
        m = len(self._relations)
        if self._hops and len(self._hops) != m - 1:
            raise JoinError(
                f"need {m - 1} hops for {m} relations, got {len(self._hops)}"
            )
        return tuple(self._hops)

    def spec(self) -> QuerySpec:
        """Freeze the current configuration into a validated spec.

        A set ``k`` selects the ksjq problem; otherwise a set ``delta``
        selects find_k. Chains of three or more relations (or two-way
        named-column hops) produce a cascade spec.
        """
        cascade = self._is_cascade()
        if (cascade or self._hops) and self._join != "equality":
            raise ParameterError(
                f"join({self._join!r}) applies to two-way queries; describe an "
                "m-way chain with one hop()/theta() per adjacent pair"
            )
        join, theta = self._join, self._theta
        if not cascade and len(self._hops) == 1:
            hop = self._hops[0]
            if hop.kind == "theta":
                join, theta = "theta", hop.theta
            elif hop.kind == "cartesian":
                join, theta = "cartesian", None
            else:
                join, theta = "equality", None
        if self._k is not None:
            if cascade:
                return QuerySpec.for_cascade(
                    k=self._k,
                    hops=self._hop_tuple(),
                    algorithm=self._algorithm,
                    aggregate=self._aggregate,
                    mode=self._mode,
                    parallelism=self._parallelism,
                    use_index=self._use_index,
                )
            return QuerySpec.for_ksjq(
                k=self._k,
                algorithm=self._algorithm,
                mode=self._mode,
                join=join,
                aggregate=self._aggregate,
                theta=theta,
                parallelism=self._parallelism,
                use_index=self._use_index,
            )
        if self._delta is not None:
            if cascade:
                raise ParameterError(
                    "find_k is only defined over two-way joins (the paper's "
                    "cardinality bounds are pairwise); run ksjq at fixed k "
                    "over a cascade instead"
                )
            return QuerySpec.for_find_k(
                delta=self._delta,
                method=self._method,
                objective=self._objective,
                mode=self._mode,
                join=join,
                aggregate=self._aggregate,
                theta=theta,
                parallelism=self._parallelism,
                use_index=self._use_index,
            )
        raise ParameterError("set .k(...) or .delta(...) before executing a query")

    # ------------------------------------------------------------------
    # Terminals
    # ------------------------------------------------------------------
    def run(self, k: int | None = None) -> KSJQResult:
        """Execute the skyline join (Problems 1-2, or an m-way cascade)."""
        if k is not None:
            self._k = k
        if self._k is None:
            raise ParameterError("run() needs k; call .k(...) or run(k=...)")
        return self._engine.execute(*self._relations, spec=self.spec())

    def find_k(
        self,
        delta: int | None = None,
        method: str | None = None,
        objective: str | None = None,
    ) -> FindKResult:
        """Tune k from a cardinality target (Problems 3-4)."""
        if delta is not None:
            self._delta = delta
        if method is not None:
            self._method = method
        if objective is not None:
            self._objective = objective
        if self._delta is None:
            raise ParameterError("find_k() needs delta; call .delta(...) or find_k(delta=...)")
        k_backup, self._k = self._k, None  # delta terminal overrides a set k
        try:
            return self._engine.execute(*self._relations, spec=self.spec())
        finally:
            self._k = k_backup

    def stream(self, k: int | None = None) -> Iterator[tuple[int, ...]]:
        """Progressive skyline tuples (guaranteed "yes" tuples first)."""
        if k is not None:
            self._k = k
        if self._k is None:
            raise ParameterError("stream() needs k; call .k(...) or stream(k=...)")
        return self._engine.stream(*self._relations, spec=self.spec())

    def explain(self) -> "ExplainReport":
        """Algorithm choice + cost estimates, without executing."""
        return self._engine.explain(*self._relations, spec=self.spec())

    def prepare(self) -> "QueryHandle":
        """Freeze into a version-aware :class:`QueryHandle`.

        The handle re-executes against the latest dataset versions and
        reports whether its cached result is still fresh — the serving
        counterpart of the one-shot :meth:`run`.
        """
        return self._engine.prepare(*self._relations, spec=self.spec())

    def maintain(
        self, fallback_ratio: float = DEFAULT_FALLBACK_RATIO
    ) -> "MaintainedResult":
        """Freeze into a live, delta-maintained
        :class:`~repro.core.incremental.MaintainedResult`.

        Every input must be a registered dataset name or handle; the
        result stays current under dataset mutations (incrementally
        when the delta is small, by full recompute otherwise) instead
        of being invalidated — the streaming counterpart of
        :meth:`prepare`.
        """
        return self._engine.maintain(
            *self._relations, spec=self.spec(), fallback_ratio=fallback_ratio
        )

    def to_records(self, k: int | None = None) -> list[dict]:
        """Convenience: run and materialize the answer as dicts."""
        return self.run(k=k).to_records()

    def __repr__(self) -> str:
        names = " x ".join(
            repr(rel if isinstance(rel, str) else getattr(rel, "name", "?"))
            for rel in self._relations
        )
        try:
            described = self.spec().describe()
        except (ParameterError, JoinError):
            described = f"{self._join} join (no k/delta yet)"
        return f"<QueryBuilder {names}: {described}>"
