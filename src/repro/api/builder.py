"""Fluent query construction over an :class:`~repro.api.engine.Engine`.

A builder accumulates the join configuration and query parameters,
then freezes them into a :class:`~repro.api.spec.QuerySpec` on any of
its terminal calls::

    engine.query(r1, r2).aggregate("sum").k(7).run()
    engine.query(r1, r2).join("theta", conds).k(5).stream()
    engine.query(r1, r2).find_k(delta=100, objective="at_most")
    engine.query(r1, r2).k(7).explain().summary()

Builders are cheap, single-use-or-reuse objects: every terminal call
re-derives the spec, so one configured builder can run, stream, and
explain the same query.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple, TYPE_CHECKING

from ..core.result import FindKResult, KSJQResult
from ..errors import ParameterError
from ..relational.relation import Relation
from .spec import QuerySpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import Engine, ExplainReport

__all__ = ["QueryBuilder"]


class QueryBuilder:
    """Chainable description of one query over a fixed relation pair."""

    def __init__(self, engine: "Engine", left: Relation, right: Relation) -> None:
        self._engine = engine
        self._left = left
        self._right = right
        self._join = "equality"
        self._theta = None
        self._aggregate = None
        self._k: Optional[int] = None
        self._delta: Optional[int] = None
        self._algorithm = "auto"
        self._mode = "faithful"
        self._method = "binary"
        self._objective = "at_least"

    # ------------------------------------------------------------------
    # Configuration (each returns self)
    # ------------------------------------------------------------------
    def join(self, kind: str, theta=None) -> "QueryBuilder":
        """Join kind: ``"equality"`` (default), ``"cartesian"``, or
        ``"theta"`` with one condition or a conjunction list."""
        self._join = kind
        self._theta = theta
        return self

    def aggregate(self, aggregate) -> "QueryBuilder":
        """Aggregate function (registry name or object) for schemas
        with aggregate attributes."""
        self._aggregate = aggregate
        return self

    def k(self, k: int) -> "QueryBuilder":
        """Fix the dominance threshold (Problems 1-2)."""
        self._k = k
        return self

    def delta(self, delta: int) -> "QueryBuilder":
        """Target skyline cardinality (Problems 3-4)."""
        self._delta = delta
        return self

    def algorithm(self, algorithm: str) -> "QueryBuilder":
        """Force an algorithm; default ``"auto"`` picks by cost."""
        self._algorithm = algorithm
        return self

    def mode(self, mode: str) -> "QueryBuilder":
        """``"faithful"`` (paper) or ``"exact"`` (errata-closing)."""
        self._mode = mode
        return self

    def method(self, method: str) -> "QueryBuilder":
        """find-k search method: ``"binary"``, ``"range"`` or ``"naive"``."""
        self._method = method
        return self

    def objective(self, objective: str) -> "QueryBuilder":
        """find-k objective: ``"at_least"`` (default) or ``"at_most"``."""
        self._objective = objective
        return self

    # ------------------------------------------------------------------
    # Spec derivation
    # ------------------------------------------------------------------
    def spec(self) -> QuerySpec:
        """Freeze the current configuration into a validated spec.

        A set ``k`` selects the ksjq problem; otherwise a set ``delta``
        selects find_k.
        """
        if self._k is not None:
            return QuerySpec.for_ksjq(
                k=self._k,
                algorithm=self._algorithm,
                mode=self._mode,
                join=self._join,
                aggregate=self._aggregate,
                theta=self._theta,
            )
        if self._delta is not None:
            return QuerySpec.for_find_k(
                delta=self._delta,
                method=self._method,
                objective=self._objective,
                mode=self._mode,
                join=self._join,
                aggregate=self._aggregate,
                theta=self._theta,
            )
        raise ParameterError("set .k(...) or .delta(...) before executing a query")

    # ------------------------------------------------------------------
    # Terminals
    # ------------------------------------------------------------------
    def run(self, k: Optional[int] = None) -> KSJQResult:
        """Execute the skyline join (Problems 1-2)."""
        if k is not None:
            self._k = k
        if self._k is None:
            raise ParameterError("run() needs k; call .k(...) or run(k=...)")
        return self._engine.execute(self._left, self._right, self.spec())

    def find_k(
        self,
        delta: Optional[int] = None,
        method: Optional[str] = None,
        objective: Optional[str] = None,
    ) -> FindKResult:
        """Tune k from a cardinality target (Problems 3-4)."""
        if delta is not None:
            self._delta = delta
        if method is not None:
            self._method = method
        if objective is not None:
            self._objective = objective
        if self._delta is None:
            raise ParameterError("find_k() needs delta; call .delta(...) or find_k(delta=...)")
        k_backup, self._k = self._k, None  # delta terminal overrides a set k
        try:
            return self._engine.execute(self._left, self._right, self.spec())
        finally:
            self._k = k_backup

    def stream(self, k: Optional[int] = None) -> Iterator[Tuple[int, int]]:
        """Progressive skyline pairs (guaranteed "yes" tuples first)."""
        if k is not None:
            self._k = k
        if self._k is None:
            raise ParameterError("stream() needs k; call .k(...) or stream(k=...)")
        return self._engine.stream(self._left, self._right, self.spec())

    def explain(self) -> "ExplainReport":
        """Algorithm choice + cost estimates, without executing."""
        return self._engine.explain(self._left, self._right, self.spec())

    def to_records(self, k: Optional[int] = None) -> List[dict]:
        """Convenience: run and materialize the answer as dicts."""
        return self.run(k=k).to_records()

    def __repr__(self) -> str:
        try:
            described = self.spec().describe()
        except ParameterError:
            described = f"{self._join} join (no k/delta yet)"
        return (
            f"<QueryBuilder {self._left.name!r} x {self._right.name!r}: {described}>"
        )
