"""The catalog: a registry of named, versioned datasets.

A :class:`Catalog` maps names to :class:`~repro.relational.dataset.Dataset`
handles so queries can reference their inputs by name
(``engine.query("hotels", "flights")``) instead of hand-binding
anonymous :class:`~repro.relational.relation.Relation` objects on every
call. Names are the serving-layer contract: plan, stats and result
caches key on ``(name, version)`` tokens, and every dataset mutation is
forwarded to catalog subscribers (engines), which invalidate exactly
the cache entries built over the old version.

Re-registering a name with content-identical data is a no-op (same
fingerprint → version kept → caches stay warm), so idempotent setup
code and figure reruns do not thrash caches; re-registering with *new*
content replaces the snapshot through the existing :class:`Dataset`
handle, bumping its version like any other mutation.

The catalog is also where per-dataset **dominance indexes**
(:class:`repro.core.index.DominanceIndex`) persist across queries: one
entry per dataset uid, built lazily at first indexed query, keyed by
the exact relation snapshot (and its uid-carrying version token) it was
built over. The ``MutationDelta`` feed maintains them — an append whose
delta chains directly onto the indexed version re-digitizes just the
new tail via ``with_inserted_rows``; any other mutation (deletes,
replaces, or a missed intermediate version) invalidates the entry and
the next indexed query rebuilds. Lookups hit only on snapshot
*identity*, so a stale entry can never serve a newer (or older)
snapshot than the plan being executed.

All operations are thread-safe.
"""

from __future__ import annotations

import inspect
import threading
import weakref
from typing import TYPE_CHECKING

from ..core.index import DominanceIndex, IndexStats
from ..errors import CatalogError
from ..relational.dataset import Dataset, MutationDelta
from ..resilience import resilience_stats
from ..relational.relation import Relation

if TYPE_CHECKING:
    from collections.abc import Callable, Iterator

__all__ = ["Catalog"]


class _IndexEntry:
    """One cached index: the exact snapshot it covers, pinned by identity."""

    __slots__ = ("relation", "version", "index")

    def __init__(self, relation: Relation, version: int, index: DominanceIndex) -> None:
        self.relation = relation
        self.version = version
        self.index = index


class Catalog:
    """Thread-safe name -> :class:`Dataset` registry with mutation fan-out.

    Lock order: ``Catalog._lock`` may be held while taking
    ``Dataset._lock`` (e.g. :meth:`versions`), never the reverse —
    datasets notify listeners only after releasing their own lock.

    # guarded-by: _lock: _datasets, _subscribers, _delta_subscribers, _indexes, _index_stats
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._datasets: dict[str, Dataset] = {}
        # Dominance indexes by dataset *uid* (not name): a drop +
        # re-register mints a new uid, so a successor dataset can never
        # inherit its predecessor's index.
        self._indexes: dict[int, _IndexEntry] = {}
        self._index_stats = IndexStats()
        # Bound-method subscribers (engine invalidation hooks) are held
        # weakly: a shared catalog must not keep every engine that ever
        # subscribed — and its caches — alive forever.
        self._subscribers: list[Callable[[], Callable[[Dataset], None] | None]] = []
        self._delta_subscribers: list[
            Callable[[], Callable[[Dataset, MutationDelta], None] | None]
        ] = []

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, name: str, data: Relation | Dataset) -> Dataset:
        """Register (or refresh) a named dataset; returns its handle.

        ``data`` may be a :class:`Relation` or an existing
        :class:`Dataset` (whose name must match ``name``). Registering
        an already-registered name with content-identical data returns
        the existing handle unchanged; different content replaces the
        snapshot via :meth:`Dataset.replace`, bumping the version and
        triggering invalidation in subscribed engines.
        """
        if isinstance(data, Dataset):
            if data.name != name:
                raise CatalogError(
                    f"cannot register dataset named {data.name!r} under {name!r}; "
                    "names are the cache-key identity and must match"
                )
            relation = data.relation
        elif isinstance(data, Relation):
            relation = data
        else:
            raise CatalogError(
                f"register({name!r}) needs a Relation or Dataset, "
                f"got {type(data).__name__}"
            )

        with self._lock:
            existing = self._datasets.get(name)
            if existing is not None:
                if existing.relation.fingerprint() == relation.fingerprint():
                    return existing  # identical content: keep version, keep caches
                existing.replace(relation)  # bumps version -> notifies subscribers
                return existing
            dataset = data if isinstance(data, Dataset) else Dataset(name, relation)
            dataset.subscribe(self._fan_out)
            dataset.subscribe_deltas(self._fan_out_delta)
            self._datasets[name] = dataset
            return dataset

    def drop(self, name: str) -> None:
        """Remove a dataset from the catalog (existing snapshots stay valid)."""
        with self._lock:
            dataset = self._datasets.get(name)
            if dataset is None:
                raise CatalogError(f"no dataset named {name!r} to drop")
            del self._datasets[name]
            self._indexes.pop(dataset.uid, None)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, name: str) -> Dataset:
        """The dataset registered under ``name`` (raises :class:`CatalogError`)."""
        with self._lock:
            dataset = self._datasets.get(name)
        if dataset is None:
            known = ", ".join(repr(n) for n in sorted(self.names())) or "none"
            raise CatalogError(
                f"no dataset named {name!r} in the catalog (registered: {known}); "
                "call engine.register(name, relation) first"
            )
        return dataset

    def peek(self, name: str) -> Dataset | None:
        """Like :meth:`get` but returns ``None`` for unknown names."""
        with self._lock:
            return self._datasets.get(name)

    def __getitem__(self, name: str) -> Dataset:
        return self.get(name)

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._datasets

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        with self._lock:
            return len(self._datasets)

    def names(self) -> list[str]:
        """Registered dataset names, sorted."""
        with self._lock:
            return sorted(self._datasets)

    def versions(self) -> dict[str, int]:
        """Current ``name -> version`` map across the catalog."""
        with self._lock:
            return {name: ds.version for name, ds in self._datasets.items()}

    # ------------------------------------------------------------------
    # Dominance indexes (repro.core.index)
    # ------------------------------------------------------------------
    def dominance_index(self, dataset: Dataset, relation: Relation) -> DominanceIndex:
        """The persisted index over ``relation``, building (and caching)
        it on a miss.

        ``relation`` is the snapshot the caller's plan was built over.
        The cache hits only when the stored entry covers *that exact
        object* — version numbers alone would be ambiguous across a
        drop + re-register, and any mismatch means the plan predates or
        postdates the cached index. If ``relation`` is no longer the
        dataset's current snapshot (the query raced a mutation), a
        one-off index is built and **not** cached, so the cache never
        holds an index the next query cannot use.
        """
        with self._lock:
            entry = self._indexes.get(dataset.uid)
            if entry is not None and entry.relation is relation:
                self._index_stats.hits += 1
                return entry.index
        current, version = dataset.snapshot()
        if current is not relation:
            with self._lock:
                self._index_stats.builds += 1
            return DominanceIndex.build(relation)
        index = DominanceIndex.build(
            relation, token=("ds", dataset.name, dataset.uid, version)
        )
        with self._lock:
            self._index_stats.builds += 1
            self._indexes[dataset.uid] = _IndexEntry(relation, version, index)
        return index

    def peek_dominance_index(
        self, dataset: Dataset, relation: Relation
    ) -> DominanceIndex | None:
        """The cached index over exactly ``relation``, or ``None`` —
        never builds, never counts a hit (used by ``explain`` and the
        cost model to probe warm/cold state without side effects)."""
        with self._lock:
            entry = self._indexes.get(dataset.uid)
        if entry is not None and entry.relation is relation:
            return entry.index
        return None

    def record_index_build(self, built: bool) -> None:
        """Count a plan-local (non-persisted) index build or re-use, so
        ``cache_info`` reflects every index the engine touched."""
        with self._lock:
            if built:
                self._index_stats.builds += 1
            else:
                self._index_stats.hits += 1

    def index_info(self) -> dict[str, int]:
        """Snapshot of the index life-cycle counters."""
        with self._lock:
            return self._index_stats.as_dict()

    def quarantine_index(self, dataset: Dataset) -> None:
        """Drop the persisted index entry for ``dataset`` after a
        failure (resilience quarantine: the engine's indexed dispatch
        calls this when an index load, build, or indexed run raised —
        the next indexed query rebuilds from a fresh snapshot instead
        of hitting the same poisoned entry forever). Counted as an
        invalidation in the life-cycle counters."""
        with self._lock:
            if self._indexes.pop(dataset.uid, None) is not None:
                self._index_stats.invalidations += 1

    def _maintain_index(self, dataset: Dataset, delta: MutationDelta) -> None:
        """Delta-feed maintenance: appends re-digitize the tail, all
        other mutations invalidate (the next indexed query rebuilds).

        The entry is popped first so a concurrent indexed query can at
        worst build a fresh one-off index over whichever snapshot it
        holds — it can never observe the pre-mutation entry as current.
        An insert delta is applied only when it chains directly onto the
        indexed version *and* the dataset still sits at the delta's
        version (no missed intermediate mutations, no races).
        """
        with self._lock:
            entry = self._indexes.pop(dataset.uid, None)
        if entry is None:
            return
        if delta.kind == "insert" and entry.version == delta.version - 1:
            current, version = dataset.snapshot()
            if version == delta.version and len(current) == delta.new_size:
                try:
                    index = entry.index.with_inserted_rows(
                        current, token=("ds", dataset.name, dataset.uid, version)
                    )
                except Exception:  # noqa: BLE001 - degradation boundary
                    # Failed maintenance quarantines the (already
                    # popped) entry: count it and let the next indexed
                    # query rebuild from scratch. Never re-install a
                    # possibly half-maintained index.
                    resilience_stats().record("index_quarantines")
                    with self._lock:
                        self._index_stats.invalidations += 1
                    return
                with self._lock:
                    self._indexes[dataset.uid] = _IndexEntry(current, version, index)
                    self._index_stats.maintained += 1
                return
        with self._lock:
            self._index_stats.invalidations += 1

    # ------------------------------------------------------------------
    # Mutation fan-out
    # ------------------------------------------------------------------
    def subscribe(self, callback: Callable[[Dataset], None]) -> None:
        """Register an invalidation hook called after any dataset mutation.

        Bound methods (the normal case: an engine's invalidation hook)
        are referenced weakly, so subscribing never extends the
        subscriber's lifetime; plain functions are held strongly.
        """
        ref: Callable[[], Callable[[Dataset], None] | None]
        if inspect.ismethod(callback):
            ref = weakref.WeakMethod(callback)
        else:
            ref = lambda: callback  # noqa: E731 - uniform deref shape
        with self._lock:
            if any(existing() == callback for existing in self._subscribers):
                return
            self._subscribers.append(ref)

    def _fan_out(self, dataset: Dataset) -> None:
        with self._lock:
            callbacks = [ref() for ref in self._subscribers]
            if any(cb is None for cb in callbacks):  # prune dead subscribers
                self._subscribers = [
                    ref for ref, cb in zip(self._subscribers, callbacks) if cb is not None
                ]
        for callback in callbacks:
            if callback is not None:
                callback(dataset)

    def subscribe_deltas(
        self, callback: Callable[[Dataset, MutationDelta], None]
    ) -> None:
        """Register a structured-delta hook called after any dataset mutation.

        The delta counterpart of :meth:`subscribe` (same weak-reference
        semantics for bound methods). Delta hooks run *after* the plain
        version-bump hooks of the same mutation, so by the time a
        consumer (an engine routing deltas to maintained results) sees
        the delta, stale cache entries are already gone.
        """
        ref: Callable[[], Callable[[Dataset, MutationDelta], None] | None]
        if inspect.ismethod(callback):
            ref = weakref.WeakMethod(callback)
        else:
            ref = lambda: callback  # noqa: E731 - uniform deref shape
        with self._lock:
            if any(existing() == callback for existing in self._delta_subscribers):
                return
            self._delta_subscribers.append(ref)

    def _fan_out_delta(self, dataset: Dataset, delta: MutationDelta) -> None:
        # Maintain (or invalidate) the dominance index before delta
        # subscribers run: a maintained-result recompute triggered by
        # this delta then sees a fresh index, never a stale one.
        self._maintain_index(dataset, delta)
        with self._lock:
            callbacks = [ref() for ref in self._delta_subscribers]
            if any(cb is None for cb in callbacks):  # prune dead subscribers
                self._delta_subscribers = [
                    ref
                    for ref, cb in zip(self._delta_subscribers, callbacks)
                    if cb is not None
                ]
        for callback in callbacks:
            if callback is not None:
                callback(dataset, delta)

    def __repr__(self) -> str:
        versions = self.versions()
        inner = ", ".join(f"{n}@v{v}" for n, v in sorted(versions.items()))
        return f"<Catalog {len(versions)} datasets: {inner}>"
