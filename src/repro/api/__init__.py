"""repro.api — the database-style engine boundary over the KSJQ core.

This package turns the paper's four query problems into a prepare-once
/ execute-many system:

* :class:`QuerySpec` — a frozen, hashable value object describing one
  query (join kind, aggregate, theta, k or delta, algorithm, mode,
  objective);
* :class:`Engine` — holds an LRU cache of join plans keyed by relation
  content fingerprints, resolves ``algorithm="auto"`` with a cost model
  over plan cardinality statistics, and attaches spec/plan provenance
  to every result;
* :class:`QueryBuilder` — the fluent front end:
  ``engine.query(r1, r2).aggregate("sum").k(7).run()``;
* :class:`ExplainReport` — what would run and why, without running it.

The legacy ``repro.ksjq`` / ``repro.find_k`` functions remain supported
as thin wrappers over a module-default engine.
"""

from .builder import QueryBuilder
from .engine import (
    Engine,
    ExplainReport,
    PlanCacheStats,
    choose_algorithm,
    choose_cascade_algorithm,
)
from .spec import QuerySpec

__all__ = [
    "Engine",
    "ExplainReport",
    "PlanCacheStats",
    "QueryBuilder",
    "QuerySpec",
    "choose_algorithm",
    "choose_cascade_algorithm",
]
