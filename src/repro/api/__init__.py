"""repro.api — the database-style engine boundary over the KSJQ core.

This package turns the paper's four query problems into a prepare-once
/ execute-many system:

* :class:`QuerySpec` — a frozen, hashable value object describing one
  query (join kind, aggregate, theta, k or delta, algorithm, mode,
  objective);
* :class:`Engine` — holds an LRU cache of join plans keyed by relation
  content fingerprints, resolves ``algorithm="auto"`` with a cost model
  over plan cardinality statistics (including the serial-vs-parallel
  decision of :mod:`repro.core.parallel` when ``parallelism`` allows
  workers), and attaches spec/plan provenance to every result;
* :class:`QueryBuilder` — the fluent front end:
  ``engine.query(r1, r2).aggregate("sum").k(7).run()``;
* :class:`ExplainReport` — what would run and why, without running it;
* :class:`Catalog` — the registry of named, versioned
  :class:`~repro.relational.dataset.Dataset` handles behind
  ``engine.register`` / query-by-name, with mutation fan-out driving
  exact cache invalidation;
* :class:`QueryHandle` — a prepared, version-aware query from
  ``engine.prepare(...)`` that re-executes cheaply against the latest
  dataset versions and reports freshness;
* :class:`MaintainedResult` — a live answer from
  ``engine.maintain(...)`` that consumes dataset mutation *deltas*
  instead of being invalidated (see :mod:`repro.api.stream`), with
  ``engine.stream_window(...)`` layering sliding-window continuous
  queries on top.

The legacy ``repro.ksjq`` / ``repro.find_k`` functions remain supported
as thin wrappers over a module-default engine.
"""

from ..core.incremental import MaintainedResult
from .builder import QueryBuilder
from .catalog import Catalog
from .engine import (
    CacheStats,
    Engine,
    ExplainReport,
    MaintenanceStats,
    PlanCacheStats,
    choose_algorithm,
    choose_cascade_algorithm,
)
from .handle import QueryHandle
from .spec import QuerySpec

__all__ = [
    "CacheStats",
    "Catalog",
    "Engine",
    "ExplainReport",
    "MaintainedResult",
    "MaintenanceStats",
    "PlanCacheStats",
    "QueryBuilder",
    "QueryHandle",
    "QuerySpec",
    "choose_algorithm",
    "choose_cascade_algorithm",
]
