"""The query engine: cached join plans + cost-based algorithm choice.

The paper's query problems all run over *prepared* join structures
(joined views, group indexes, categorizations, chain sets). The seed
library rebuilt those on every call; :class:`Engine` instead keeps an
LRU cache of :class:`~repro.core.plan.JoinPlan` /
:class:`~repro.core.plan.CascadePlan` objects keyed by the relations'
content fingerprints plus the join-graph configuration, so a ``ksjq``
followed by a ``find_k`` over the same relations — or the same
dashboard query issued a thousand times — pays join preparation once.

One engine surface serves every join shape the paper describes: the
two-way equality/cartesian/theta joins *and* the m-way cascades of
Sec. 2.3 (``engine.query(r1, r2, r3).hop("dest", "source")...``).

``algorithm="auto"`` is resolved here by :func:`choose_algorithm` (two
way) or :func:`choose_cascade_algorithm` (m-way), cost models over the
plans' exact cardinality statistics instead of the seed's hard-wired
defaults.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional, Sequence, Tuple, Union

from ..core.cartesian import run_cartesian
from ..core.cascade import (
    CascadeResult,
    cascade_progressive,
    run_cascade_naive,
    run_cascade_pruned,
)
from ..core.dominator import run_dominator
from ..core.find_k import find_k_at_least_delta, find_k_at_most_delta
from ..core.grouping import run_grouping
from ..core.naive import run_naive
from ..core.plan import CascadePlan, CascadeStats, JoinPlan, PlanStats
from ..core.progressive import ksjq_progressive
from ..core.result import FindKResult, KSJQResult, QueryResult
from ..errors import AlgorithmError, ParameterError
from ..relational.aggregates import AggregateFunction, get_aggregate
from ..relational.relation import Relation
from .spec import QuerySpec

__all__ = [
    "Engine",
    "ExplainReport",
    "PlanCacheStats",
    "choose_algorithm",
    "choose_cascade_algorithm",
]


# ----------------------------------------------------------------------
# Cost-based algorithm choice
# ----------------------------------------------------------------------
def choose_algorithm(
    plan: JoinPlan, mode: str = "faithful"
) -> Tuple[str, Dict[str, float], str]:
    """Pick the cheapest applicable algorithm for a two-way plan.

    Returns ``(algorithm, costs, reason)`` where ``costs`` maps every
    candidate algorithm to its estimated cost in abstract dominance-
    comparison units, derived from :meth:`JoinPlan.stats`:

    * ``naive`` — every joined tuple against the full joined view:
      ``J^2`` for join size ``J``;
    * ``grouping`` — categorization (sum of squared group sizes, both
      sides) plus sub-quadratic verification, modeled as ``C + J*sqrt(J)``;
    * ``dominator`` — categorization plus a second group-local pass to
      generate dominators, with verification against per-cell dominators
      only: ``2C + J * mean_cell``;
    * ``cartesian`` — fate-table only, no verification: ``C + J``
      (cartesian join kind only, where it is always chosen).

    Feasibility trumps cost: a non-strictly-monotone aggregate forces
    ``naive`` (the pruning proofs need strict monotonicity), and in
    faithful mode with ``a >= 2`` the always-exact ``naive`` is excluded
    so auto stays within the paper-faithful answer family.
    """
    stats = plan.stats()
    J = float(stats.join_size)
    C = float(stats.categorization_cost)

    if plan.aggregate is not None and not plan.aggregate.strictly_monotone:
        return (
            "naive",
            {"naive": J * J},
            f"aggregate {plan.aggregate.name!r} is not strictly monotone; "
            "only the naive algorithm is exact",
        )

    if plan.kind == "cartesian":
        costs = {"cartesian": C + J, "naive": J * J}
        return (
            "cartesian",
            costs,
            "cartesian join: the fate table decides every pair with no "
            "verification",
        )

    costs: Dict[str, float] = {
        "grouping": C + J * math.sqrt(J),
        "dominator": 2.0 * C + J * stats.mean_cell_size,
    }
    a = plan.left.schema.a
    if mode == "exact" or a < 2:
        costs["naive"] = J * J
    chosen = min(costs, key=lambda name: (costs[name], name))
    reason = (
        f"cheapest estimated cost over join size {stats.join_size} "
        f"({stats.shared_group_count} shared groups, categorization cost "
        f"{stats.categorization_cost})"
    )
    if "naive" not in costs:
        reason += "; naive excluded: faithful mode with a >= 2 aggregates"
    return chosen, costs, reason


def choose_cascade_algorithm(
    plan: CascadePlan, mode: str = "faithful"
) -> Tuple[str, Dict[str, float], str]:
    """Pick the cheapest applicable algorithm for an m-way cascade plan.

    The m-way analogue of :func:`choose_algorithm` over
    :meth:`CascadePlan.stats` (exact chain count ``S``, Theorem-4
    grouping cost ``C``):

    * ``naive`` — every chain against the full chain set: ``S^2``;
    * ``pruned`` — per-relation Theorem-4 pruning plus sub-quadratic
      verification of the surviving candidates: ``C + S*sqrt(S)``.

    A non-strictly-monotone aggregate forces ``naive`` (the m-way
    substitution proof needs strict monotonicity). Both algorithms are
    exact, so ``mode`` never constrains the choice.
    """
    stats = plan.stats()
    S = float(stats.join_size)
    C = float(stats.categorization_cost)

    if plan.aggregate is not None and not plan.aggregate.strictly_monotone:
        return (
            "naive",
            {"naive": S * S},
            f"aggregate {plan.aggregate.name!r} is not strictly monotone; "
            "only the naive cascade is exact",
        )
    costs = {"naive": S * S, "pruned": C + S * math.sqrt(S)}
    chosen = min(costs, key=lambda name: (costs[name], name))
    reason = (
        f"cheapest estimated cost over {stats.join_size} chains across "
        f"{stats.n_relations} relations (Theorem-4 grouping cost "
        f"{stats.categorization_cost})"
    )
    return chosen, costs, reason


@dataclass(frozen=True)
class ExplainReport:
    """What the engine would do for a spec, without doing it.

    Attributes
    ----------
    spec:
        The explained :class:`QuerySpec`.
    algorithm:
        The algorithm (or find-k method) that would run.
    reason:
        Human-readable justification of the choice.
    costs:
        Candidate -> estimated cost (dominance-comparison units for
        ksjq; expected full-evaluation probes for find_k).
    stats:
        Cardinality statistics of the (cached or newly built) plan —
        a :class:`~repro.core.plan.PlanStats` for two-way joins, a
        :class:`~repro.core.plan.CascadeStats` for cascades.
    cache_hit:
        Whether the plan came from the engine's cache.
    """

    spec: QuerySpec
    algorithm: str
    reason: str
    costs: Dict[str, float] = field(default_factory=dict)
    stats: Optional[Union[PlanStats, CascadeStats]] = None
    cache_hit: bool = False

    def _plan_line(self) -> str:
        line = f"plan: {'cache hit' if self.cache_hit else 'prepared'}"
        if isinstance(self.stats, CascadeStats):
            sizes = " x ".join(str(n) for n in self.stats.base_sizes)
            return line + (
                f", {self.stats.join_size} chains "
                f"({sizes} base tuples over {self.stats.n_relations} relations)"
            )
        if self.stats is not None:
            return line + (
                f", join size {self.stats.join_size} "
                f"({self.stats.n_left} x {self.stats.n_right} base tuples, "
                f"{self.stats.shared_group_count} shared groups)"
            )
        return line

    def summary(self) -> str:
        lines = [
            f"query: {self.spec.describe()}",
            self._plan_line(),
            f"chosen: {self.algorithm} — {self.reason}",
        ]
        if self.costs:
            ranked = sorted(self.costs.items(), key=lambda kv: kv[1])
            lines.append(
                "estimated costs: "
                + ", ".join(f"{name}={cost:,.0f}" for name, cost in ranked)
            )
        return "\n".join(lines)


@dataclass
class PlanCacheStats:
    """Counters of the engine's plan cache activity."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "requests": self.requests,
        }


class Engine:
    """Prepare-once / execute-many entry point for every KSJQ problem.

    Parameters
    ----------
    max_plans:
        Capacity of the LRU plan cache. ``0`` disables caching (every
        query prepares a fresh plan — useful for benchmarking the full
        pipeline).

    Usage::

        engine = repro.Engine()
        result = engine.query(r1, r2).aggregate("sum").k(7).run()
        tuned = engine.query(r1, r2).aggregate("sum").find_k(delta=100)
        print(engine.query(r1, r2).aggregate("sum").k(7).explain().summary())

        # m-way cascade (Sec. 2.3): three legs chained on named columns.
        chain = engine.query(leg1, leg2, leg3).hop("dst", "src").hop("dst", "src")
        result = chain.aggregate("sum").k(7).run()
    """

    def __init__(self, max_plans: int = 32) -> None:
        if max_plans < 0:
            raise AlgorithmError(f"max_plans must be >= 0, got {max_plans}")
        self.max_plans = max_plans
        self._plans: "OrderedDict[Tuple, object]" = OrderedDict()
        self.cache_stats = PlanCacheStats()

    # ------------------------------------------------------------------
    # Plan cache
    # ------------------------------------------------------------------
    @staticmethod
    def _agg_key(aggregate):
        # Custom AggregateFunction objects key by value (frozen
        # dataclass) — collapsing them to their name would let a custom
        # function collide with the registry entry of the same name.
        if aggregate is None or isinstance(aggregate, AggregateFunction):
            return aggregate
        return get_aggregate(aggregate).name

    def _cached(self, key: Tuple, factory: Callable[[], object]):
        """LRU lookup-or-build shared by two-way and cascade plans."""
        cached = self._plans.get(key)
        if cached is not None:
            self.cache_stats.hits += 1
            self._plans.move_to_end(key)
            return cached
        self.cache_stats.misses += 1
        plan = factory()
        if self.max_plans > 0:
            self._plans[key] = plan
            while len(self._plans) > self.max_plans:
                self._plans.popitem(last=False)
                self.cache_stats.evictions += 1
        return plan

    def plan(
        self,
        left: Relation,
        right: Relation,
        join: str = "equality",
        aggregate=None,
        theta=None,
    ) -> JoinPlan:
        """A (cached) :class:`JoinPlan` for one relation pair + join config.

        Plans are keyed by the relations' content fingerprints, so two
        equal-content relation objects share a cache entry, and any
        memoized structure computed by one query (the joined view, the
        group indexes) is reused by the next.
        """
        if theta is not None and not isinstance(theta, tuple):
            from ..relational.join import normalize_theta

            theta = normalize_theta(theta)
        key = (
            left.fingerprint(),
            right.fingerprint(),
            join,
            self._agg_key(aggregate),
            theta or (),
        )
        return self._cached(
            key,
            lambda: JoinPlan(
                left,
                right,
                kind=join,
                aggregate=aggregate,
                theta=theta if theta else None,
            ),
        )

    def cascade_plan(
        self,
        relations: Sequence[Relation],
        hops=None,
        aggregate=None,
    ) -> CascadePlan:
        """A (cached) :class:`CascadePlan` for one relation chain + hops.

        Keyed like :meth:`plan`: content fingerprints of every relation
        in order, plus the normalized hop tuple and aggregate, so the
        memoized chain set / pruning of one cascade query is reused by
        the next.
        """
        from ..core.cascade import normalize_hops

        relations = tuple(relations)
        if len(relations) < 2:
            # CascadePlan raises the canonical error; don't cache it.
            return CascadePlan(relations, hops=hops, aggregate=aggregate)
        hop_specs = normalize_hops(len(relations), hops if hops else None)
        key = (
            tuple(rel.fingerprint() for rel in relations),
            "cascade",
            self._agg_key(aggregate),
            hop_specs,
        )
        return self._cached(
            key,
            lambda: CascadePlan(relations, hops=hop_specs, aggregate=aggregate),
        )

    def cache_info(self) -> Dict[str, int]:
        """Cache counters plus current size/capacity."""
        info = self.cache_stats.as_dict()
        info["size"] = len(self._plans)
        info["capacity"] = self.max_plans
        return info

    def clear_cache(self) -> None:
        """Drop every cached plan (counters are kept)."""
        self._plans.clear()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def query(self, *relations: Relation) -> "QueryBuilder":
        """Start a fluent query over a chain of two or more relations."""
        from .builder import QueryBuilder

        return QueryBuilder(self, *relations)

    @staticmethod
    def _split_args(args, spec):
        """Unpack ``(r1, ..., rn, spec)`` positional calling conventions."""
        if spec is None:
            if not args or not isinstance(args[-1], QuerySpec):
                raise ParameterError(
                    "pass a QuerySpec as the last positional argument or as spec=..."
                )
            return tuple(args[:-1]), args[-1]
        return tuple(args), spec

    def _bind(self, relations: Tuple[Relation, ...], spec: QuerySpec):
        """Resolve the (cached) plan a spec runs against."""
        if spec.join == "cascade":
            return self.cascade_plan(
                relations, hops=spec.hops, aggregate=spec.aggregate
            )
        if len(relations) != 2:
            raise ParameterError(
                f"a {spec.join!r} join spec takes exactly two relations, got "
                f"{len(relations)}; use QuerySpec.for_cascade (join='cascade') "
                "for m-way chains"
            )
        return self.plan(relations[0], relations[1], *_plan_args(spec))

    def execute(self, *args, spec: Optional[QuerySpec] = None, plan=None) -> QueryResult:
        """Run a spec over relations, reusing a cached plan when one matches.

        Call as ``execute(r1, r2, spec)`` (two-way) or
        ``execute(r1, ..., rn, spec)`` / ``execute(*relations, spec=spec)``
        (cascade). ``plan`` overrides the cache (used by the legacy
        facade's ``plan=`` argument); the result carries the spec and
        plan as provenance.
        """
        relations, spec = self._split_args(args, spec)
        if plan is None:
            plan = self._bind(relations, spec)
        if isinstance(plan, CascadePlan):
            result: QueryResult = self._run_cascade(plan, spec)
        elif spec.problem == "ksjq":
            result = self._run_ksjq(plan, spec)
        else:
            result = self._run_find_k(plan, spec)
        return result.with_provenance(spec, plan)

    def _run_ksjq(self, plan: JoinPlan, spec: QuerySpec) -> KSJQResult:
        algorithm = spec.algorithm
        if algorithm == "auto":
            algorithm, _, _ = choose_algorithm(plan, spec.mode)
        if algorithm == "naive":
            return run_naive(plan, spec.k)
        if algorithm == "grouping":
            return run_grouping(plan, spec.k, mode=spec.mode)
        if algorithm == "dominator":
            return run_dominator(plan, spec.k, mode=spec.mode)
        return run_cartesian(plan, spec.k, mode=spec.mode)

    def _run_cascade(self, plan: CascadePlan, spec: QuerySpec) -> CascadeResult:
        if spec.problem != "ksjq":
            raise ParameterError(
                "find_k is only defined over two-way joins; run ksjq at "
                "fixed k over a cascade instead"
            )
        algorithm = spec.algorithm
        if algorithm == "auto":
            algorithm, _, _ = choose_cascade_algorithm(plan, spec.mode)
        if algorithm == "naive":
            return run_cascade_naive(plan, spec.k)
        return run_cascade_pruned(plan, spec.k)

    def _run_find_k(self, plan: JoinPlan, spec: QuerySpec) -> FindKResult:
        if spec.objective == "at_least":
            return find_k_at_least_delta(
                plan, spec.delta, method=spec.method, mode=spec.mode
            )
        return find_k_at_most_delta(
            plan, spec.delta, method=spec.method, mode=spec.mode
        )

    def stream(
        self, *args, spec: Optional[QuerySpec] = None, plan=None
    ) -> Iterator[Tuple[int, ...]]:
        """Progressive results: yield skyline tuples as they are decided.

        Two-way specs wrap :func:`~repro.core.progressive.ksjq_progressive`
        (grouping order: guaranteed "yes" pairs first; faithful mode
        only) and yield ``(left_row, right_row)`` pairs. Cascade specs
        wrap :func:`~repro.core.cascade.cascade_progressive` and yield
        m-tuples of row indexes, each emitted as soon as its
        verification against the chain set decides it.
        """
        relations, spec = self._split_args(args, spec)
        if spec.problem != "ksjq":
            raise AlgorithmError("only ksjq queries stream progressively")
        if plan is None:
            plan = self._bind(relations, spec)
        if isinstance(plan, CascadePlan):
            algorithm = spec.algorithm
            if algorithm == "auto":
                algorithm, _, _ = choose_cascade_algorithm(plan, spec.mode)
            return cascade_progressive(plan, spec.k, algorithm=algorithm)
        if spec.mode != "faithful":
            raise AlgorithmError(
                "progressive streaming emits Theorem-1/3 'yes' tuples unverified; "
                "it is only defined for mode='faithful'"
            )
        return ksjq_progressive(plan, spec.k)

    # ------------------------------------------------------------------
    # Explanation
    # ------------------------------------------------------------------
    def explain(
        self, *args, spec: Optional[QuerySpec] = None, plan=None
    ) -> ExplainReport:
        """Report the algorithm choice and cost estimates for a spec."""
        relations, spec = self._split_args(args, spec)
        cache_hit = False
        if plan is None:
            hits_before = self.cache_stats.hits
            plan = self._bind(relations, spec)
            cache_hit = self.cache_stats.hits > hits_before
        stats = plan.stats()
        if isinstance(plan, CascadePlan):
            if spec.algorithm == "auto":
                algorithm, costs, reason = choose_cascade_algorithm(plan, spec.mode)
            else:
                algorithm = spec.algorithm
                _, costs, _ = choose_cascade_algorithm(plan, spec.mode)
                reason = "explicitly requested"
            return ExplainReport(
                spec=spec,
                algorithm=algorithm,
                reason=reason,
                costs=costs,
                stats=stats,
                cache_hit=cache_hit,
            )
        if spec.problem == "ksjq":
            if spec.algorithm == "auto":
                algorithm, costs, reason = choose_algorithm(plan, spec.mode)
            else:
                algorithm = spec.algorithm
                _, costs, _ = choose_algorithm(plan, spec.mode)
                reason = "explicitly requested"
            return ExplainReport(
                spec=spec,
                algorithm=algorithm,
                reason=reason,
                costs=costs,
                stats=stats,
                cache_hit=cache_hit,
            )
        # find_k: cost = expected number of probe points per method.
        d1, d2 = plan.left.schema.d, plan.right.schema.d
        a = plan.left.schema.a
        k_min = max(d1, d2) + 1
        k_max = (d1 - a) + (d2 - a) + a
        span = max(1, k_max - k_min + 1)
        costs = {
            "naive": float(span),
            "range": float(span),
            "binary": float(math.ceil(math.log2(span)) + 1),
        }
        reason = (
            f"{spec.method} search over k in [{k_min}, {k_max}]"
            + (
                "; range/binary short-circuit full evaluations via "
                "categorization bounds"
                if spec.method != "naive"
                else "; every probe is a full evaluation"
            )
        )
        return ExplainReport(
            spec=spec,
            algorithm=spec.method,
            reason=reason,
            costs=costs,
            stats=stats,
            cache_hit=cache_hit,
        )

    def __repr__(self) -> str:
        info = self.cache_info()
        return (
            f"<Engine plans={info['size']}/{info['capacity']} "
            f"hits={info['hits']} misses={info['misses']}>"
        )


def _plan_args(spec: QuerySpec) -> Tuple[str, Optional[str], Tuple]:
    """(join, aggregate, theta) positional args for :meth:`Engine.plan`."""
    return spec.join, spec.aggregate, spec.theta
