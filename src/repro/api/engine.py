"""The query engine: cached join plans + cost-based algorithm choice.

The paper's query problems all run over *prepared* join structures
(joined views, group indexes, categorizations, chain sets). The seed
library rebuilt those on every call; :class:`Engine` instead keeps an
LRU cache of :class:`~repro.core.plan.JoinPlan` /
:class:`~repro.core.plan.CascadePlan` objects keyed by the relations'
content fingerprints plus the join-graph configuration, so a ``ksjq``
followed by a ``find_k`` over the same relations — or the same
dashboard query issued a thousand times — pays join preparation once.

One engine surface serves every join shape the paper describes: the
two-way equality/cartesian/theta joins *and* the m-way cascades of
Sec. 2.3 (``engine.query(r1, r2, r3).hop("dest", "source")...``).

``algorithm="auto"`` is resolved here by :func:`choose_algorithm` (two
way) or :func:`choose_cascade_algorithm` (m-way), cost models over the
plans' exact cardinality statistics instead of the seed's hard-wired
defaults. The same cost model decides **serial versus sharded
parallel** execution: when the spec's ``parallelism`` admits workers
(``"auto"`` on a multi-core machine, or an explicit worker count), the
sharded two-phase path of :mod:`repro.core.parallel` competes on cost
with the serial algorithms, and ``explain()`` reports the
:class:`~repro.core.parallel.ShardPlan` that would run.

The engine is also the serving front-end over a
:class:`~repro.api.catalog.Catalog` of named, versioned datasets:

* ``engine.register(name, relation)`` names an input; string names are
  accepted anywhere a :class:`Relation` is
  (``engine.query("hotels", "flights")``);
* plan and result caches are keyed by ``(name, version)`` tokens for
  registered datasets (content fingerprints for anonymous relations),
  so a dataset mutation invalidates exactly the entries built over the
  old snapshot — ``cache_info()`` reports hits/misses/evictions/
  invalidations for both caches;
* ``engine.execute_many(requests, max_workers=N)`` fans a batch out
  over a thread pool; all engine entry points are safe for concurrent
  callers;
* ``engine.prepare(...)`` returns a
  :class:`~repro.api.handle.QueryHandle` that re-executes cheaply
  against the latest dataset versions and reports freshness.
"""

from __future__ import annotations

import math
import threading
import weakref
from collections import OrderedDict
from collections.abc import Callable, Iterator, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, cast

from ..core.cartesian import run_cartesian
from ..core.cascade import (
    CascadeResult,
    cascade_progressive,
    run_cascade_naive,
    run_cascade_pruned,
)
from ..core.dominator import run_dominator
from ..core.find_k import find_k_at_least_delta, find_k_at_most_delta
from ..core.grouping import run_grouping
from ..core.incremental import DEFAULT_FALLBACK_RATIO
from ..core.index import run_cascade_indexed, run_indexed
from ..core.naive import run_naive
from ..core.parallel import (
    WORKER_SPAWN_COST,
    ShardPlan,
    batch_workers,
    plan_shards,
    run_cascade_parallel,
    run_parallel,
)
from ..core.plan import CascadePlan, CascadeStats, JoinPlan, PlanStats
from ..core.progressive import ksjq_progressive
from ..core.result import FindKResult, KSJQResult, QueryResult
from ..errors import AlgorithmError, DeadlineExceeded, ParameterError
from ..relational.aggregates import AggregateFunction, get_aggregate
from ..relational.dataset import Dataset
from ..relational.relation import Relation
from ..resilience import armed_plan, resilience_stats
from ..serving.deadline import Deadline
from .catalog import Catalog
from .spec import QuerySpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .._typing import AggregateLike, HopsLike, ThetaLike
    from ..core.incremental import MaintainedResult
    from ..core.index import DominanceIndex
    from ..relational.dataset import MutationDelta
    from ..relational.join import ThetaCondition
    from ..serving.metrics import ServingMetrics
    from .builder import QueryBuilder, QueryInput
    from .handle import QueryHandle

__all__ = [
    "Engine",
    "ExplainReport",
    "CacheStats",
    "MaintenanceStats",
    "PlanCacheStats",
    "choose_algorithm",
    "choose_cascade_algorithm",
]


# ----------------------------------------------------------------------
# Cost-based algorithm choice
# ----------------------------------------------------------------------
def _parallel_cost(join_size: float, workers: int) -> float:
    """Estimated cost of the sharded path at a given worker count.

    Per-shard candidate generation is ``(J/W)^2`` comparisons on each of
    ``W`` concurrent workers plus a sub-quadratic cross-shard merge, so
    the wall-clock estimate is ``J^2/W^2 + J*sqrt(J)/W``, charged a
    spawn overhead per worker.
    """
    J, W = join_size, float(workers)
    return WORKER_SPAWN_COST * W + (J * J) / (W * W) + J * math.sqrt(J) / W


def choose_algorithm(
    plan: JoinPlan,
    mode: str = "faithful",
    workers: int = 1,
    index_state: str | None = None,
    index_span: float | None = None,
) -> tuple[str, dict[str, float], str]:
    """Pick the cheapest applicable algorithm for a two-way plan.

    Returns ``(algorithm, costs, reason)`` where ``costs`` maps every
    candidate algorithm to its estimated cost in abstract dominance-
    comparison units, derived from :meth:`JoinPlan.stats`:

    * ``naive`` — every joined tuple against the full joined view:
      ``J^2`` for join size ``J``;
    * ``grouping`` — categorization (sum of squared group sizes, both
      sides) plus sub-quadratic verification, modeled as ``C + J*sqrt(J)``;
    * ``dominator`` — categorization plus a second group-local pass to
      generate dominators, with verification against per-cell dominators
      only: ``2C + J * mean_cell``;
    * ``cartesian`` — fate-table only, no verification: ``C + J``
      (cartesian join kind only, where it is always chosen);
    * ``parallel`` — the sharded two-phase path (candidate generation
      per shard + cross-shard verification), considered only when
      ``workers > 1``: ``spawn*W + J^2/W^2 + J*sqrt(J)/W``;
    * ``indexed`` — the cell-pruned exact path, considered only when
      the caller reports an index state (``index_state`` of ``"warm"``
      or ``"cold"``, with the indexes' mean cell span as the
      selectivity signal): :meth:`PlanStats.indexed_cost`. The engine
      passes ``"warm"`` for auto specs whose side indexes already
      exist and ``None`` otherwise (see ``_competing``), so a cold
      build never wins auto by surprise.

    Feasibility trumps cost: a non-strictly-monotone aggregate restricts
    the choice to the exact algorithms (``naive``, ``indexed``, and
    ``parallel`` when workers are available — all work on the
    materialized joined view and never rely on monotonicity), and in
    faithful mode with ``a >= 2`` the always-exact exact-family
    algorithms are excluded so auto stays within the paper-faithful
    answer family.
    """
    stats = plan.stats()
    J = float(stats.join_size)
    C = float(stats.categorization_cost)

    if plan.aggregate is not None and not plan.aggregate.strictly_monotone:
        costs = {"naive": J * J}
        if workers > 1:
            costs["parallel"] = _parallel_cost(J, workers)
        if index_state is not None:
            costs["indexed"] = stats.indexed_cost(index_state, index_span)
        chosen = min(costs, key=lambda name: (costs[name], name))
        return (
            chosen,
            costs,
            f"aggregate {plan.aggregate.name!r} is not strictly monotone; "
            "only the exact joined-view algorithms apply",
        )

    if plan.kind == "cartesian":
        costs = {"cartesian": C + J, "naive": J * J}
        return (
            "cartesian",
            costs,
            "cartesian join: the fate table decides every pair with no "
            "verification",
        )

    costs: dict[str, float] = {
        "grouping": C + J * math.sqrt(J),
        "dominator": 2.0 * C + J * stats.mean_cell_size,
    }
    a = plan.left.schema.a
    exact_family_ok = mode == "exact" or a < 2
    if exact_family_ok:
        costs["naive"] = J * J
        if workers > 1:
            costs["parallel"] = _parallel_cost(J, workers)
        if index_state is not None:
            costs["indexed"] = stats.indexed_cost(index_state, index_span)
    chosen = min(costs, key=lambda name: (costs[name], name))
    reason = (
        f"cheapest estimated cost over join size {stats.join_size} "
        f"({stats.shared_group_count} shared groups, categorization cost "
        f"{stats.categorization_cost})"
    )
    if not exact_family_ok:
        reason += (
            "; exact family (naive/parallel/indexed) excluded: "
            "faithful mode with a >= 2 aggregates"
        )
    return chosen, costs, reason


def choose_cascade_algorithm(
    plan: CascadePlan,
    mode: str = "faithful",
    workers: int = 1,
    index_state: str | None = None,
    index_span: float | None = None,
) -> tuple[str, dict[str, float], str]:
    """Pick the cheapest applicable algorithm for an m-way cascade plan.

    The m-way analogue of :func:`choose_algorithm` over
    :meth:`CascadePlan.stats` (exact chain count ``S``, Theorem-4
    grouping cost ``C``):

    * ``naive`` — every chain against the full chain set: ``S^2``;
    * ``pruned`` — per-relation Theorem-4 pruning plus sub-quadratic
      verification of the surviving candidates: ``C + S*sqrt(S)``;
    * ``parallel`` — the sharded two-phase path over the chain set,
      considered only when ``workers > 1``;
    * ``indexed`` — end-point cell pruning over the chain set,
      considered only when the engine reports an index state:
      :meth:`CascadeStats.indexed_cost`.

    A non-strictly-monotone aggregate restricts the choice to the exact
    chain-set algorithms — ``naive``, and ``parallel`` when workers are
    available (the m-way substitution proof behind ``pruned`` needs
    strict monotonicity; the direct algorithms do not). All cascade
    algorithms are exact, so ``mode`` never constrains the choice.
    """
    stats = plan.stats()
    S = float(stats.join_size)
    C = float(stats.categorization_cost)

    if plan.aggregate is not None and not plan.aggregate.strictly_monotone:
        costs = {"naive": S * S}
        if workers > 1:
            costs["parallel"] = _parallel_cost(S, workers)
        if index_state is not None:
            costs["indexed"] = stats.indexed_cost(index_state, index_span)
        chosen = min(costs, key=lambda name: (costs[name], name))
        return (
            chosen,
            costs,
            f"aggregate {plan.aggregate.name!r} is not strictly monotone; "
            "only the exact chain-set cascades apply",
        )
    costs = {"naive": S * S, "pruned": C + S * math.sqrt(S)}
    if workers > 1:
        costs["parallel"] = _parallel_cost(S, workers)
    if index_state is not None:
        costs["indexed"] = stats.indexed_cost(index_state, index_span)
    chosen = min(costs, key=lambda name: (costs[name], name))
    reason = (
        f"cheapest estimated cost over {stats.join_size} chains across "
        f"{stats.n_relations} relations (Theorem-4 grouping cost "
        f"{stats.categorization_cost})"
    )
    return chosen, costs, reason


@dataclass(frozen=True)
class ExplainReport:
    """What the engine would do for a spec, without doing it.

    Attributes
    ----------
    spec:
        The explained :class:`QuerySpec`.
    algorithm:
        The algorithm (or find-k method) that would run.
    reason:
        Human-readable justification of the choice.
    costs:
        Candidate -> estimated cost (dominance-comparison units for
        ksjq; expected full-evaluation probes for find_k).
    stats:
        Cardinality statistics of the (cached or newly built) plan —
        a :class:`~repro.core.plan.PlanStats` for two-way joins, a
        :class:`~repro.core.plan.CascadeStats` for cascades.
    cache_hit:
        Whether the plan came from the engine's cache.
    shards:
        The :class:`~repro.core.parallel.ShardPlan` the execution layer
        would use (``None`` for find-k specs, whose probe evaluations
        run serially). Only consulted by the ``auto``/``parallel``/
        ``indexed`` algorithms; explicitly requested serial algorithms
        ignore it.
    index:
        State of the dominance-index layer for this query: ``None``
        for specs the layer never touches, otherwise a line like
        ``"warm (mean cell span 0.31); consumed by the indexed path"``
        or ``"disabled (use_index=False)"``.
    resilience:
        Fault-tolerance posture and recovery totals: whether a
        :class:`~repro.resilience.FaultPlan` is armed, plus the
        process-wide recovery counters (shard retries, pool rebuilds,
        executor degradations, index quarantines) accumulated so far.
    """

    spec: QuerySpec
    algorithm: str
    reason: str
    costs: dict[str, float] = field(default_factory=dict)
    stats: PlanStats | CascadeStats | None = None
    cache_hit: bool = False
    shards: ShardPlan | None = None
    index: str | None = None
    resilience: str | None = None

    def _plan_line(self) -> str:
        line = f"plan: {'cache hit' if self.cache_hit else 'prepared'}"
        if isinstance(self.stats, CascadeStats):
            sizes = " x ".join(str(n) for n in self.stats.base_sizes)
            return line + (
                f", {self.stats.join_size} chains "
                f"({sizes} base tuples over {self.stats.n_relations} relations)"
            )
        if self.stats is not None:
            return line + (
                f", join size {self.stats.join_size} "
                f"({self.stats.n_left} x {self.stats.n_right} base tuples, "
                f"{self.stats.shared_group_count} shared groups)"
            )
        return line

    def summary(self) -> str:
        """Multi-line human-readable rendering of the whole report."""
        lines = [
            f"query: {self.spec.describe()}",
            self._plan_line(),
            f"chosen: {self.algorithm} — {self.reason}",
        ]
        if self.costs:
            ranked = sorted(self.costs.items(), key=lambda kv: kv[1])
            lines.append(
                "estimated costs: "
                + ", ".join(f"{name}={cost:,.0f}" for name, cost in ranked)
            )
        if self.index is not None:
            lines.append(f"index: {self.index}")
        if self.shards is not None:
            if self.shards.is_parallel and self.algorithm not in (
                "parallel",
                "indexed",
            ):
                lines.append(
                    f"execution: serial — {self.algorithm} chosen over the "
                    f"parallel path ({self.shards.workers} workers were "
                    "available)"
                )
            else:
                lines.append(f"execution: {self.shards.describe()}")
        if self.resilience is not None:
            lines.append(f"resilience: {self.resilience}")
        return "\n".join(lines)


@dataclass
class CacheStats:
    """Counters of one engine cache (plan or result).

    ``invalidations`` counts entries dropped because a registered
    dataset they were built over mutated to a new version.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "requests": self.requests,
        }


#: Backwards-compatible alias (pre-1.2 name of :class:`CacheStats`).
PlanCacheStats = CacheStats


@dataclass
class MaintenanceStats:
    """Engine-wide counters of the delta-maintenance layer.

    ``maintained`` counts mutations absorbed incrementally by a
    :class:`~repro.core.incremental.MaintainedResult`;
    ``fallback_recomputes`` those answered by a full recompute (delta
    too large for the cost model, a ``replace``, a missed version, or a
    spec outside the delta-capable family); ``delta_rows`` the base
    rows inserted plus deleted across both; ``failed_deltas`` those
    whose application failed and only dirtied the handle (the
    recompute is deferred to the next read, so they count in none of
    the other three).
    """

    maintained: int = 0
    fallback_recomputes: int = 0
    delta_rows: int = 0
    failed_deltas: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "maintained": self.maintained,
            "fallback_recomputes": self.fallback_recomputes,
            "delta_rows": self.delta_rows,
            "failed_deltas": self.failed_deltas,
        }


class Engine:
    """Prepare-once / execute-many entry point for every KSJQ problem.

    Parameters
    ----------
    max_plans:
        Capacity of the LRU plan cache. ``0`` disables caching (every
        query prepares a fresh plan — useful for benchmarking the full
        pipeline).
    catalog:
        The :class:`Catalog` of named datasets this engine serves. A
        private catalog is created when omitted; pass a shared one to
        serve the same datasets from several engines (each subscribes
        for invalidation).
    max_results:
        Capacity of the opt-in LRU *result* cache. ``0`` (default)
        disables it; when enabled, ``execute`` answers repeat queries
        over unchanged inputs without touching the algorithms, and
        dataset mutations invalidate exactly the affected entries.

    Usage::

        engine = repro.Engine()
        result = engine.query(r1, r2).aggregate("sum").k(7).run()
        tuned = engine.query(r1, r2).aggregate("sum").find_k(delta=100)
        print(engine.query(r1, r2).aggregate("sum").k(7).explain().summary())

        # Sharded parallel execution (exact; byte-identical across
        # worker counts). "auto" lets the cost model decide.
        result = engine.query(r1, r2).aggregate("sum").parallelism(4).k(7).run()

        # m-way cascade (Sec. 2.3): three legs chained on named columns.
        chain = engine.query(leg1, leg2, leg3).hop("dst", "src").hop("dst", "src")
        result = chain.aggregate("sum").k(7).run()

        # Named, versioned datasets: register once, query by name.
        engine.register("hotels", hotels)
        engine.register("flights", flights)
        result = engine.query("hotels", "flights").k(5).run()
        engine.catalog["hotels"].insert_rows([...])   # invalidates caches

    All entry points are thread-safe; ``execute_many`` fans a request
    batch out over a thread pool.

    Concurrency contract (checked by the repo linter's R2 rule):

    # guarded-by: _lock: _plans, _results, cache_stats, result_stats, _maintained, maintenance_stats, _serving_metrics
    """

    def __init__(
        self,
        max_plans: int = 32,
        catalog: Catalog | None = None,
        max_results: int = 0,
    ) -> None:
        if max_plans < 0:
            raise AlgorithmError(f"max_plans must be >= 0, got {max_plans}")
        if max_results < 0:
            raise AlgorithmError(f"max_results must be >= 0, got {max_results}")
        self.max_plans = max_plans
        self.max_results = max_results
        self._catalog = catalog if catalog is not None else Catalog()
        self._catalog.subscribe(self._on_dataset_mutated)
        self._catalog.subscribe_deltas(self._on_dataset_delta)
        self._lock = threading.RLock()
        self._plans: OrderedDict[tuple[object, ...], object] = OrderedDict()
        self._results: OrderedDict[tuple[object, ...], QueryResult] = OrderedDict()
        self.cache_stats = CacheStats()
        self.result_stats = CacheStats()
        # Live maintained results, held weakly: an abandoned handle must
        # not be kept alive (and fed deltas) by the engine forever.
        self._maintained: list[weakref.ref[MaintainedResult]] = []
        self.maintenance_stats = MaintenanceStats()
        # Serving-layer metrics, held weakly for the same reason: a
        # stopped server must not be kept alive by its engine.
        self._serving_metrics: weakref.ref[ServingMetrics] | None = None

    # ------------------------------------------------------------------
    # Catalog: named, versioned inputs
    # ------------------------------------------------------------------
    @property
    def catalog(self) -> Catalog:
        """The catalog of named datasets this engine serves."""
        return self._catalog

    def register(self, name: str, data: Relation | Dataset) -> Dataset:
        """Register ``data`` under ``name`` so queries can use the name.

        Delegates to :meth:`Catalog.register`: re-registering identical
        content is a no-op (caches stay warm); new content bumps the
        dataset version and invalidates the affected cache entries.
        """
        return self._catalog.register(name, data)

    def _resolve(
        self, obj: Relation | Dataset | str
    ) -> tuple[Relation, tuple[object, ...]]:
        """One query input -> ``(relation snapshot, cache token)``.

        Registered datasets (by name or handle) resolve to cheap
        ``("ds", name, uid, version)`` tokens — no content hashing, a
        mutation changes the token, and the process-unique ``uid``
        keeps a dropped-and-re-registered name from colliding with its
        predecessor's cache entries. Anonymous relations keep the
        content-fingerprint keying, so equal-content relation objects
        still share cache entries. A :class:`Dataset` handle that is
        *not* this engine's registered dataset of that name falls back
        to content keying (its versions are not comparable to ours).
        """
        if isinstance(obj, str):
            dataset = self._catalog.get(obj)
            relation, version = dataset.snapshot()  # atomic pair
            return relation, ("ds", dataset.name, dataset.uid, version)
        if isinstance(obj, Dataset):
            relation, version = obj.snapshot()
            if self._catalog.peek(obj.name) is obj:
                return relation, ("ds", obj.name, obj.uid, version)
            return relation, ("rel", relation.fingerprint())
        if isinstance(obj, Relation):
            return obj, ("rel", obj.fingerprint())
        raise ParameterError(
            f"query inputs must be Relation, Dataset or registered name, "
            f"got {type(obj).__name__}"
        )

    def _resolve_all(
        self, inputs: Sequence[Relation | Dataset | str]
    ) -> tuple[tuple[Relation, ...], tuple[tuple[object, ...], ...]]:
        resolved = [self._resolve(obj) for obj in inputs]
        return (
            tuple(rel for rel, _ in resolved),
            tuple(tok for _, tok in resolved),
        )

    # ------------------------------------------------------------------
    # Dominance indexes (core.index), persisted via the catalog
    # ------------------------------------------------------------------
    def _dataset_for(self, obj: object) -> Dataset | None:
        """The registered dataset behind one query input, if any.

        Mirrors :meth:`_resolve`'s keying rules: a name resolves via
        the catalog; a :class:`Dataset` handle counts only when it *is*
        this engine's registered dataset of that name (a foreign
        handle's versions are not comparable to ours); anything else —
        an anonymous relation — has no catalog-persisted index.
        """
        if isinstance(obj, str):
            return self._catalog.peek(obj)
        if isinstance(obj, Dataset) and self._catalog.peek(obj.name) is obj:
            return obj
        return None

    @staticmethod
    def _side_relation(plan: JoinPlan | CascadePlan, side: str) -> Relation:
        """The base relation snapshot behind one index side of a plan."""
        if isinstance(plan, CascadePlan):
            return plan.relations[0] if side == "first" else plan.relations[-1]
        return plan.left if side == "left" else plan.right

    def _side_index(
        self,
        plan: JoinPlan | CascadePlan,
        inputs: tuple[QueryInput, ...],
        side: str,
    ) -> "DominanceIndex":
        """The :class:`~repro.core.index.DominanceIndex` for one side.

        Registered-dataset inputs use the catalog's version-keyed
        persistent cache (built on first use, maintained through the
        delta feed); anonymous inputs fall back to the plan-local memo
        — same lifetime as the plan's other derived structures — with
        the build/hit accounted in the catalog's counters either way.
        """
        pos = 0 if side in ("left", "first") else -1
        relation = self._side_relation(plan, side)
        if inputs:
            dataset = self._dataset_for(inputs[pos])
            if dataset is not None:
                return self._catalog.dominance_index(dataset, relation)
        index, built = plan.side_index(side)
        self._catalog.record_index_build(built)
        return index

    def _quarantine_indexes(
        self, plan: JoinPlan | CascadePlan, inputs: tuple[QueryInput, ...]
    ) -> None:
        """Drop the catalog's persisted side indexes after a failure.

        Called from the graceful-degradation handlers of the indexed
        dispatch: whatever broke (a corrupt index, a failed build), the
        quarantined entries are rebuilt from scratch on the next
        indexed query instead of poisoning every future one. Counted as
        ``index_quarantines`` in the resilience snapshot.
        """
        if inputs:
            for pos in (0, -1):
                dataset = self._dataset_for(inputs[pos])
                if dataset is not None:
                    self._catalog.quarantine_index(dataset)
        plan.drop_side_indexes()
        resilience_stats().record("index_quarantines")

    def _peek_index_state(
        self,
        plan: JoinPlan | CascadePlan,
        spec: QuerySpec,
        inputs: tuple[QueryInput, ...],
    ) -> tuple[str | None, float | None]:
        """Would the indexed path run warm or cold for this query?

        Returns ``(state, mean_span)`` without building anything:
        ``state`` is ``None`` when the indexed path is off the table
        (``use_index=False``, or a find-k spec — its probe evaluations
        run the faithful serial path), ``"warm"`` when both side
        indexes already exist (catalog entry or plan memo), ``"cold"``
        otherwise. ``mean_span`` averages the known indexes'
        ``mean_cell_span`` as the cost model's selectivity signal.
        """
        if spec.use_index is False or spec.problem != "ksjq":
            return None, None
        sides = (
            ("first", "last") if isinstance(plan, CascadePlan) else ("left", "right")
        )
        spans: list[float] = []
        state = "warm"
        for pos, side in zip((0, -1), sides):
            index = plan.peek_side_index(side)
            if index is None and inputs:
                dataset = self._dataset_for(inputs[pos])
                if dataset is not None:
                    index = self._catalog.peek_dominance_index(
                        dataset, self._side_relation(plan, side)
                    )
            if index is None:
                state = "cold"
            else:
                spans.append(index.mean_cell_span)
        span = sum(spans) / len(spans) if spans else None
        return state, span

    def _on_dataset_mutated(self, dataset: Dataset) -> None:
        """Catalog hook: drop exactly the cache entries keyed on an old
        version of the mutated dataset (current-version entries stay)."""
        uid, version = dataset.uid, dataset.version
        with self._lock:
            for key in [k for k in self._plans if _stale(k[1], uid, version)]:
                del self._plans[key]
                self.cache_stats.invalidations += 1
            for key in [k for k in self._results if _stale(k[1], uid, version)]:
                del self._results[key]
                self.result_stats.invalidations += 1

    # ------------------------------------------------------------------
    # Delta maintenance routing
    # ------------------------------------------------------------------
    def _on_dataset_delta(self, dataset: Dataset, delta: "MutationDelta") -> None:
        """Catalog delta hook: route a structured mutation delta to every
        live maintained result.

        Runs *after* :meth:`_on_dataset_mutated` for the same mutation
        (datasets notify version listeners before delta listeners), so
        any fallback recompute a handle issues already sees clean
        caches. The handle list is copied under the engine lock and
        dispatched outside it — handles take their own (leaf) locks, so
        the engine lock never nests inside one.
        """
        with self._lock:
            handles = [ref() for ref in self._maintained]
            if any(h is None for h in handles):  # prune dead handles
                self._maintained = [
                    ref for ref, h in zip(self._maintained, handles) if h is not None
                ]
        for handle in handles:
            if handle is not None:
                handle._on_delta(dataset, delta)

    def _register_maintained(self, handle: "MaintainedResult") -> None:
        with self._lock:
            self._maintained.append(weakref.ref(handle))

    def _unregister_maintained(self, handle: "MaintainedResult") -> None:
        with self._lock:
            self._maintained = [
                ref for ref in self._maintained if ref() not in (None, handle)
            ]

    def _record_maintenance(
        self, delta_rows: int, fallback: bool, failed: bool = False
    ) -> None:
        """Handle hook: account one processed mutation in the engine-wide
        maintenance counters (reported by :meth:`cache_info`). A failed
        application only dirtied the handle — no rows were maintained
        and no recompute ran — so it is tallied separately."""
        with self._lock:
            if failed:
                self.maintenance_stats.failed_deltas += 1
                return
            self.maintenance_stats.delta_rows += delta_rows
            if fallback:
                self.maintenance_stats.fallback_recomputes += 1
            else:
                self.maintenance_stats.maintained += 1

    def maintain(
        self,
        *args: QueryInput | QuerySpec,
        spec: QuerySpec | None = None,
        fallback_ratio: float = DEFAULT_FALLBACK_RATIO,
    ) -> "MaintainedResult":
        """A live, delta-maintained answer over registered datasets.

        Call as ``maintain("hotels", "flights", spec)`` (the
        :meth:`execute` conventions); every input must be a registered
        dataset name or handle — the returned
        :class:`~repro.core.incremental.MaintainedResult` subscribes to
        their mutation deltas and keeps its answer current under
        ``insert_rows`` / ``delete_rows`` / ``replace`` instead of being
        invalidated. Small deltas are absorbed incrementally; anything
        else (or a delta the cost model prices above ``fallback_ratio``
        times a recompute) falls back to a full recompute, which is
        always correct. Call ``close()`` (or use the handle as a
        context manager) to detach.
        """
        from .stream import create_maintained

        inputs, spec = self._split_args(args, spec)
        return create_maintained(self, inputs, spec, fallback_ratio)

    def stream_window(
        self,
        *args: QueryInput | QuerySpec,
        spec: QuerySpec | None = None,
        size: int,
        slide: int = 1,
        name: str | None = None,
        fallback_ratio: float = DEFAULT_FALLBACK_RATIO,
    ) -> Iterator[QueryResult]:
        """Sliding-window continuous query over a row stream.

        Exactly one input must be a plain :class:`Relation` — the
        stream source (it may appear on both sides for a self-join
        stream); other inputs resolve as usual. Yields one result per
        window position: the first covers rows ``[0, size)``, and each
        advance slides by ``slide`` rows — a batched delete+insert
        delta pair absorbed by an internal :meth:`maintain` handle::

            for result in engine.stream_window("hotels", feed, spec,
                                               size=256, slide=32):
                ...

        The window-backing dataset (registered under ``name``, default
        ``"<stream>_window"``) is dropped when the iterator finishes.
        """
        from .stream import window_stream

        inputs, spec = self._split_args(args, spec)
        return window_stream(
            self, inputs, spec, size, slide, name, fallback_ratio
        )

    # ------------------------------------------------------------------
    # Plan cache
    # ------------------------------------------------------------------
    @staticmethod
    def _agg_key(
        aggregate: AggregateLike | None,
    ) -> str | AggregateFunction | None:
        # Custom AggregateFunction objects key by value (frozen
        # dataclass) — collapsing them to their name would let a custom
        # function collide with the registry entry of the same name.
        if aggregate is None or isinstance(aggregate, AggregateFunction):
            return aggregate
        return get_aggregate(aggregate).name

    def _cached(
        self, key: tuple[object, ...], factory: Callable[[], object]
    ) -> tuple[object, bool]:
        """LRU lookup-or-build shared by two-way and cascade plans.

        Returns ``(plan, cache_hit)`` — the flag is decided under the
        same lock acquisition that serves the lookup, so concurrent
        callers each get the truth about their own request. The build
        runs outside the lock (it can be expensive); when two threads
        race to build one key, the first insert wins and the loser's
        plan is discarded — both count one miss.
        """
        with self._lock:
            cached = self._plans.get(key)
            if cached is not None:
                self.cache_stats.hits += 1
                self._plans.move_to_end(key)
                return cached, True
            self.cache_stats.misses += 1
        plan = factory()
        if self.max_plans <= 0:
            return plan, False
        with self._lock:
            existing = self._plans.get(key)
            if existing is not None:
                return existing, False
            self._plans[key] = plan
            while len(self._plans) > self.max_plans:
                self._plans.popitem(last=False)
                self.cache_stats.evictions += 1
        return plan, False

    def plan(
        self,
        left: Relation | Dataset | str,
        right: Relation | Dataset | str,
        join: str = "equality",
        aggregate: AggregateLike | None = None,
        theta: ThetaLike | None = None,
    ) -> JoinPlan:
        """A (cached) :class:`JoinPlan` for one input pair + join config.

        Inputs may be relations, datasets, or registered names. Plans
        over registered datasets are keyed by ``(name, version)``;
        anonymous relations key by content fingerprint, so two
        equal-content relation objects share a cache entry and any
        memoized structure computed by one query (the joined view, the
        group indexes) is reused by the next.
        """
        return self._plan_with_hit(left, right, join, aggregate, theta)[0]

    def _plan_with_hit(
        self,
        left: Relation | Dataset | str,
        right: Relation | Dataset | str,
        join: str = "equality",
        aggregate: AggregateLike | None = None,
        theta: ThetaLike | None = None,
    ) -> tuple[JoinPlan, bool]:
        if theta is not None and not isinstance(theta, tuple):
            from ..relational.join import normalize_theta

            theta = normalize_theta(theta)
        (left_rel, left_tok), (right_rel, right_tok) = (
            self._resolve(left),
            self._resolve(right),
        )
        key = (
            "2way",
            (left_tok, right_tok),
            join,
            self._agg_key(aggregate),
            theta or (),
        )
        plan, hit = self._cached(
            key,
            lambda: JoinPlan(
                left_rel,
                right_rel,
                kind=join,
                aggregate=aggregate,
                theta=theta if theta else None,
            ),
        )
        return cast("JoinPlan", plan), hit

    def cascade_plan(
        self,
        relations: Sequence[Relation | Dataset | str],
        hops: HopsLike = None,
        aggregate: AggregateLike | None = None,
    ) -> CascadePlan:
        """A (cached) :class:`CascadePlan` for one input chain + hops.

        Keyed like :meth:`plan`: version tokens (or content
        fingerprints) of every input in order, plus the normalized hop
        tuple and aggregate, so the memoized chain set / pruning of one
        cascade query is reused by the next.
        """
        return self._cascade_plan_with_hit(relations, hops, aggregate)[0]

    def _cascade_plan_with_hit(
        self,
        relations: Sequence[Relation | Dataset | str],
        hops: HopsLike = None,
        aggregate: AggregateLike | None = None,
    ) -> tuple[CascadePlan, bool]:
        from ..core.cascade import normalize_hops

        inputs = tuple(relations)
        if len(inputs) < 2:
            # CascadePlan raises the canonical error; don't cache it.
            rels = tuple(self._resolve(obj)[0] for obj in inputs)
            return CascadePlan(rels, hops=hops, aggregate=aggregate), False
        rels, tokens = self._resolve_all(inputs)
        hop_specs = normalize_hops(len(rels), hops if hops else None)
        key = ("cascade", tokens, self._agg_key(aggregate), hop_specs)
        plan, hit = self._cached(
            key,
            lambda: CascadePlan(rels, hops=hop_specs, aggregate=aggregate),
        )
        return cast("CascadePlan", plan), hit

    def cache_info(self) -> dict[str, object]:
        """Counters + size/capacity of the plan cache, the maintenance
        counters (``maintained`` / ``fallback_recomputes`` /
        ``delta_rows``), the dominance-index life cycle
        (``index_builds`` / ``index_hits`` / ``index_invalidations`` /
        ``index_maintained``), under the ``"results"`` key the result
        cache, and — when a serving front-end is attached — its
        per-route counters under the ``"serving"`` key."""
        with self._lock:
            info: dict[str, object] = self.cache_stats.as_dict()
            info["size"] = len(self._plans)
            info["capacity"] = self.max_plans
            info.update(self.maintenance_stats.as_dict())
            results = self.result_stats.as_dict()
            results["size"] = len(self._results)
            results["capacity"] = self.max_results
            info["results"] = results
            metrics = (
                self._serving_metrics() if self._serving_metrics is not None else None
            )
        # Outside the engine lock: the catalog notifies this engine
        # under its own lock, so taking the catalog lock while holding
        # ours would invert that order.
        info.update(self._catalog.index_info())
        # Recovery counters (shard_retries / pool_rebuilds /
        # degradations / index_quarantines / ...) are process-wide —
        # the shard executor has no engine reference — so every engine
        # reports the same snapshot.
        info["resilience"] = resilience_stats().snapshot()
        if metrics is not None:
            info["serving"] = metrics.snapshot()
        return info

    def attach_serving_metrics(self, metrics: "ServingMetrics") -> None:
        """Surface a serving front-end's metrics in :meth:`cache_info`.

        Called by :class:`repro.serving.server.KSJQServer` on startup.
        The reference is weak — dropping the server detaches it."""
        with self._lock:
            self._serving_metrics = weakref.ref(metrics)

    def clear_cache(self) -> None:
        """Drop every cached plan and result (counters are kept)."""
        with self._lock:
            self._plans.clear()
            self._results.clear()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def query(self, *relations: Relation | Dataset | str) -> "QueryBuilder":
        """Start a fluent query over a chain of two or more inputs
        (relations, datasets, or registered names)."""
        from .builder import QueryBuilder

        return QueryBuilder(self, *relations)

    @staticmethod
    def _split_args(
        args: tuple[object, ...], spec: QuerySpec | None
    ) -> tuple[tuple[QueryInput, ...], QuerySpec]:
        """Unpack ``(r1, ..., rn, spec)`` positional calling conventions."""
        if spec is None:
            if not args or not isinstance(args[-1], QuerySpec):
                raise ParameterError(
                    "pass a QuerySpec as the last positional argument or as spec=..."
                )
            return cast("tuple[QueryInput, ...]", tuple(args[:-1])), args[-1]
        return cast("tuple[QueryInput, ...]", tuple(args)), spec

    def _bind(
        self, inputs: tuple[QueryInput, ...], spec: QuerySpec
    ) -> JoinPlan | CascadePlan:
        """Resolve the (cached) plan a spec runs against; inputs may be
        relations, datasets, or registered names."""
        return self._bind_with_hit(inputs, spec)[0]

    def _bind_with_hit(
        self, inputs: tuple[QueryInput, ...], spec: QuerySpec
    ) -> tuple[JoinPlan | CascadePlan, bool]:
        if spec.join == "cascade":
            return self._cascade_plan_with_hit(
                inputs, hops=spec.hops, aggregate=spec.aggregate
            )
        if len(inputs) != 2:
            raise ParameterError(
                f"a {spec.join!r} join spec takes exactly two relations, got "
                f"{len(inputs)}; use QuerySpec.for_cascade (join='cascade') "
                "for m-way chains"
            )
        return self._plan_with_hit(inputs[0], inputs[1], *_plan_args(spec))

    def versions(self, *inputs: QueryInput) -> tuple[object, ...]:
        """Current cache tokens of a query's inputs (used for freshness
        checks by :class:`~repro.api.handle.QueryHandle`)."""
        return self._resolve_all(inputs)[1]

    def execute(
        self,
        *args: QueryInput | QuerySpec,
        spec: QuerySpec | None = None,
        plan: JoinPlan | CascadePlan | None = None,
        deadline: "Deadline | None" = None,
    ) -> QueryResult:
        """Run a spec over inputs, reusing cached plans/results that match.

        Call as ``execute(r1, r2, spec)`` (two-way) or
        ``execute(r1, ..., rn, spec)`` / ``execute(*relations, spec=spec)``
        (cascade); any input may be a registered dataset name. ``plan``
        overrides the caches (used by the legacy facade's ``plan=``
        argument); the result carries the spec and plan as provenance.

        With ``max_results > 0``, a repeat of an identical spec over
        inputs at unchanged versions returns the cached result object
        without running any algorithm.

        ``deadline`` bounds the run's wall clock: it is activated for
        the duration of the call, the algorithm hot loops check it at
        cooperative checkpoints, and on expiry the call raises
        :class:`~repro.errors.DeadlineExceeded` carrying the partial
        answer decided so far (a subset of this spec's full answer).
        An expired run caches nothing — a later identical call runs
        fresh and returns the exact full answer.
        """
        if deadline is not None:
            with deadline.activate():
                return self._execute(args, spec, plan)
        return self._execute(args, spec, plan)

    def _execute(
        self,
        args: tuple[QueryInput | QuerySpec, ...],
        spec: QuerySpec | None,
        plan: JoinPlan | CascadePlan | None,
    ) -> QueryResult:
        inputs, spec = self._split_args(args, spec)
        if plan is not None:
            # A caller-supplied plan may not match `inputs` (legacy
            # facade convention) — run with plan-local indexes only.
            return self._run(plan, spec).with_provenance(spec, plan)

        tokens: tuple[object, ...] | None = None
        if self.max_results > 0:
            tokens = self._resolve_all(inputs)[1]
            result_key = ("result", tokens, self._result_cache_spec(spec))
            with self._lock:
                hit = self._results.get(result_key)
                if hit is not None:
                    self.result_stats.hits += 1
                    self._results.move_to_end(result_key)
                    if hit.spec == spec:
                        return hit
                    # The key collapses parallelism for explicit
                    # algorithms (identical answers); provenance must
                    # still report the spec this caller asked for.
                    return hit.with_provenance(spec, hit.source)
                self.result_stats.misses += 1

        plan = self._bind(inputs, spec)
        result = self._run(plan, spec, inputs).with_provenance(spec, plan)

        if tokens is not None:
            result_key = ("result", tokens, self._result_cache_spec(spec))
            with self._lock:
                self._results[result_key] = result
                self._results.move_to_end(result_key)
                while len(self._results) > self.max_results:
                    self._results.popitem(last=False)
                    self.result_stats.evictions += 1
        return result

    @staticmethod
    def _result_cache_spec(spec: QuerySpec) -> QuerySpec:
        """The spec identity used by the *result* cache.

        ``parallelism`` never changes the answer of an explicitly
        chosen algorithm (the parallel path is shard-count invariant;
        serial algorithms and find-k ignore the knob entirely), so it
        is collapsed there — a w=2 result answers a w=4 repeat instead
        of fragmenting the bounded LRU. Under ``algorithm="auto"`` the
        worker budget can steer the *choice* between answer families
        (faithful grouping vs the exact parallel path), so auto specs
        keep their parallelism in the key.
        """
        if spec.problem == "ksjq" and spec.algorithm == "auto":
            return spec
        if spec.parallelism == "auto":
            return spec
        return spec.replace(parallelism="auto")

    def _run(
        self,
        plan: JoinPlan | CascadePlan,
        spec: QuerySpec,
        inputs: tuple[QueryInput, ...] = (),
    ) -> QueryResult:
        """Dispatch one bound (plan, spec) pair to its runner.

        ``inputs`` are the original query inputs when known — the
        indexed path uses them to look up catalog-persisted indexes
        for registered datasets. Callers without them (maintained
        results recomputing from a stored plan, ``plan=`` overrides)
        pass nothing and the indexed path falls back to plan-local
        indexes.
        """
        if isinstance(plan, CascadePlan):
            return self._run_cascade(plan, spec, inputs)
        if spec.problem == "ksjq":
            return self._run_ksjq(plan, spec, inputs)
        return self._run_find_k(plan, spec)

    def execute_many(
        self,
        requests: Sequence[object],
        max_workers: int | None = 4,
        return_exceptions: bool = False,
    ) -> list[QueryResult | Exception]:
        """Execute a batch of queries, fanning out over a thread pool.

        Each request is either a tuple/list of :meth:`execute` arguments
        — inputs followed by a :class:`QuerySpec`, e.g.
        ``("hotels", "flights", spec)`` — or a configured
        :class:`~repro.api.builder.QueryBuilder`. Results come back in
        request order and are identical to executing the batch serially
        (the caches and plans are shared safely across workers).

        ``max_workers <= 1`` runs the batch serially on the calling
        thread. With ``return_exceptions=True`` a failing request yields
        its exception object in the result list instead of aborting the
        batch.

        Per-query ``parallelism`` composes without oversubscription:
        queries executed inside the batch resolve their shard-worker
        count against their fair share of the CPUs
        (:func:`repro.core.parallel.batch_workers`), so N batch lanes of
        parallel queries never stack N full worker pools.
        """
        prepared = [self._coerce_request(req) for req in requests]
        if max_workers is None or max_workers <= 1 or len(prepared) <= 1:
            out: list[QueryResult | Exception] = []
            for inputs, spec in prepared:
                try:
                    out.append(self.execute(*inputs, spec=spec))
                except Exception as exc:  # noqa: BLE001 - batched fan-out
                    if not return_exceptions:
                        raise
                    out.append(exc)
            return out
        lanes = min(max_workers, len(prepared))

        def lane_execute(
            inputs: tuple[QueryInput, ...], spec: QuerySpec
        ) -> QueryResult:
            with batch_workers(lanes):
                return self.execute(*inputs, spec=spec)

        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            futures = [
                pool.submit(lane_execute, inputs, spec)
                for inputs, spec in prepared
            ]
            out = []  # type: list[QueryResult | Exception]
            for future in futures:
                try:
                    out.append(future.result())
                except Exception as exc:  # noqa: BLE001 - batched fan-out
                    if not return_exceptions:
                        raise
                    out.append(exc)
            return out

    def _coerce_request(
        self, request: object
    ) -> tuple[tuple[QueryInput, ...], QuerySpec]:
        """One ``execute_many`` request -> ``(inputs, spec)``."""
        from .builder import QueryBuilder

        if isinstance(request, QueryBuilder):
            return request._relations, request.spec()
        if isinstance(request, (tuple, list)):
            return self._split_args(tuple(request), None)
        raise ParameterError(
            "each request must be a (inputs..., QuerySpec) tuple or a "
            f"QueryBuilder, got {type(request).__name__}"
        )

    def prepare(
        self, *args: QueryInput | QuerySpec, spec: QuerySpec | None = None
    ) -> "QueryHandle":
        """A re-executable :class:`~repro.api.handle.QueryHandle`.

        Call as ``prepare(r1, r2, spec)`` / ``prepare("hotels",
        "flights", spec=spec)``. The handle re-executes cheaply against
        the *latest* dataset versions and reports whether its cached
        result is still fresh.
        """
        from .handle import QueryHandle

        inputs, spec = self._split_args(args, spec)
        return QueryHandle(self, inputs, spec)

    def _run_ksjq(
        self,
        plan: JoinPlan,
        spec: QuerySpec,
        inputs: tuple[QueryInput, ...] = (),
    ) -> KSJQResult:
        assert spec.k is not None  # validated by QuerySpec.__post_init__
        algorithm = spec.algorithm
        shards: ShardPlan | None = None
        if algorithm in ("auto", "parallel", "indexed"):
            stats = plan.stats()
            shards = plan_shards(
                stats.join_size, spec.parallelism, stats.joined_width
            )
        if algorithm == "auto":
            assert shards is not None
            if spec.use_index is True:
                algorithm = "indexed"
            else:
                index_state, index_span = self._peek_index_state(
                    plan, spec, inputs
                )
                algorithm, _, _ = choose_algorithm(
                    plan,
                    spec.mode,
                    workers=shards.workers,
                    index_state=_competing(index_state),
                    index_span=index_span,
                )
        if algorithm == "indexed":
            try:
                left_index = self._side_index(plan, inputs, "left")
                right_index = self._side_index(plan, inputs, "right")
                return run_indexed(
                    plan, spec.k, left_index, right_index, shards=shards
                )
            except (DeadlineExceeded, ParameterError):
                raise  # verified partials / caller errors pass through
            except Exception:  # noqa: BLE001 - degradation boundary
                # A corrupt or unloadable index must never fail (or
                # wrong-answer) the query: quarantine both sides and
                # fall back to the exact non-indexed plan.
                self._quarantine_indexes(plan, inputs)
                algorithm = (
                    "parallel"
                    if shards is not None and shards.is_parallel
                    else "naive"
                )
        if algorithm == "parallel":
            return run_parallel(plan, spec.k, shards=shards)
        if algorithm == "naive":
            return run_naive(plan, spec.k)
        if algorithm == "grouping":
            return run_grouping(plan, spec.k, mode=spec.mode)
        if algorithm == "dominator":
            return run_dominator(plan, spec.k, mode=spec.mode)
        return run_cartesian(plan, spec.k, mode=spec.mode)

    def _run_cascade(
        self,
        plan: CascadePlan,
        spec: QuerySpec,
        inputs: tuple[QueryInput, ...] = (),
    ) -> CascadeResult:
        if spec.problem != "ksjq":
            raise ParameterError(
                "find_k is only defined over two-way joins; run ksjq at "
                "fixed k over a cascade instead"
            )
        assert spec.k is not None  # validated by QuerySpec.__post_init__
        algorithm = spec.algorithm
        shards: ShardPlan | None = None
        if algorithm in ("auto", "parallel", "indexed"):
            stats = plan.stats()
            shards = plan_shards(
                stats.join_size, spec.parallelism, stats.joined_width
            )
        if algorithm == "auto":
            assert shards is not None
            if spec.use_index is True:
                algorithm = "indexed"
            else:
                index_state, index_span = self._peek_index_state(
                    plan, spec, inputs
                )
                algorithm, _, _ = choose_cascade_algorithm(
                    plan,
                    spec.mode,
                    workers=shards.workers,
                    index_state=_competing(index_state),
                    index_span=index_span,
                )
        if algorithm == "indexed":
            try:
                first_index = self._side_index(plan, inputs, "first")
                last_index = self._side_index(plan, inputs, "last")
                return run_cascade_indexed(
                    plan, spec.k, first_index, last_index, shards=shards
                )
            except (DeadlineExceeded, ParameterError):
                raise  # verified partials / caller errors pass through
            except Exception:  # noqa: BLE001 - degradation boundary
                # Same quarantine-and-degrade contract as _run_ksjq.
                self._quarantine_indexes(plan, inputs)
                algorithm = (
                    "parallel"
                    if shards is not None and shards.is_parallel
                    else "naive"
                )
        if algorithm == "parallel":
            return run_cascade_parallel(plan, spec.k, shards=shards)
        if algorithm == "naive":
            return run_cascade_naive(plan, spec.k)
        return run_cascade_pruned(plan, spec.k)

    def _run_find_k(self, plan: JoinPlan, spec: QuerySpec) -> FindKResult:
        assert spec.delta is not None  # validated by QuerySpec.__post_init__
        if spec.objective == "at_least":
            return find_k_at_least_delta(
                plan, spec.delta, method=spec.method, mode=spec.mode
            )
        return find_k_at_most_delta(
            plan, spec.delta, method=spec.method, mode=spec.mode
        )

    def stream(
        self,
        *args: QueryInput | QuerySpec,
        spec: QuerySpec | None = None,
        plan: JoinPlan | CascadePlan | None = None,
        deadline: "Deadline | None" = None,
    ) -> Iterator[tuple[int, ...]]:
        """Progressive results: yield skyline tuples as they are decided.

        Two-way specs wrap :func:`~repro.core.progressive.ksjq_progressive`
        (grouping order: guaranteed "yes" pairs first; faithful mode
        only) and yield ``(left_row, right_row)`` pairs. Cascade specs
        wrap :func:`~repro.core.cascade.cascade_progressive` and yield
        m-tuples of row indexes, each emitted as soon as its
        verification against the chain set decides it.

        ``deadline`` bounds the stream's *compute* time: it is
        activated around every resume of the underlying generator (the
        consumer may hold the iterator suspended indefinitely without
        burning budget bookkeeping on other threads), and an expiry
        raises :class:`~repro.errors.DeadlineExceeded` from ``next()``
        with the already-yielded tuples as the partial answer.
        """
        relations, spec = self._split_args(args, spec)
        if spec.problem != "ksjq":
            raise AlgorithmError("only ksjq queries stream progressively")
        if plan is None:
            plan = self._bind(relations, spec)
        if isinstance(plan, CascadePlan):
            algorithm = spec.algorithm
            if algorithm == "auto":
                algorithm, _, _ = choose_cascade_algorithm(plan, spec.mode)
            stream = cascade_progressive(plan, spec.k, algorithm=algorithm)
        else:
            if spec.mode != "faithful":
                raise AlgorithmError(
                    "progressive streaming emits Theorem-1/3 'yes' tuples "
                    "unverified; it is only defined for mode='faithful'"
                )
            stream = ksjq_progressive(plan, spec.k)
        if deadline is None:
            return stream
        return _deadline_scoped(stream, deadline)

    # ------------------------------------------------------------------
    # Explanation
    # ------------------------------------------------------------------
    def explain(
        self,
        *args: QueryInput | QuerySpec,
        spec: QuerySpec | None = None,
        plan: JoinPlan | CascadePlan | None = None,
    ) -> ExplainReport:
        """Report the algorithm choice and cost estimates for a spec."""
        relations, spec = self._split_args(args, spec)
        cache_hit = False
        inputs: tuple[QueryInput, ...] = relations
        if plan is None:
            plan, cache_hit = self._bind_with_hit(relations, spec)
        else:
            # Caller-supplied plan: `relations` may not describe it, so
            # probe plan-local indexes only (matches _run's behavior).
            inputs = ()
        stats = plan.stats()
        shards = (
            plan_shards(stats.join_size, spec.parallelism, stats.joined_width)
            if spec.problem == "ksjq"
            else None
        )
        workers = shards.workers if shards is not None else 1
        index_state, index_span = self._peek_index_state(plan, spec, inputs)

        def index_line(algorithm: str) -> str | None:
            if spec.problem != "ksjq":
                return (
                    "not applicable (find_k probe evaluations run the "
                    "serial faithful path)"
                )
            if spec.use_index is False:
                return "disabled (use_index=False)"
            assert index_state is not None  # ksjq and not disabled
            detail = index_state
            if index_span is not None:
                detail += f" (mean cell span {index_span:.2f})"
            if algorithm == "indexed":
                return f"{detail}; consumed by the indexed path"
            return f"{detail}; unused by {algorithm}"

        if isinstance(plan, CascadePlan):
            if spec.algorithm == "auto" and spec.use_index is True:
                algorithm = "indexed"
                _, costs, _ = choose_cascade_algorithm(
                    plan,
                    spec.mode,
                    workers=workers,
                    index_state=index_state,
                    index_span=index_span,
                )
                reason = "use_index=True forces the indexed path"
            elif spec.algorithm == "auto":
                algorithm, costs, reason = choose_cascade_algorithm(
                    plan,
                    spec.mode,
                    workers=workers,
                    index_state=_competing(index_state),
                    index_span=index_span,
                )
            else:
                algorithm = spec.algorithm
                _, costs, _ = choose_cascade_algorithm(
                    plan,
                    spec.mode,
                    workers=workers,
                    index_state=index_state,
                    index_span=index_span,
                )
                reason = "explicitly requested"
            if algorithm == "indexed" and shards is not None:
                shards = replace(shards, partition="cells")
            return ExplainReport(
                spec=spec,
                algorithm=algorithm,
                reason=reason,
                costs=costs,
                stats=stats,
                cache_hit=cache_hit,
                shards=shards,
                index=index_line(algorithm),
                resilience=_resilience_line(),
            )
        if spec.problem == "ksjq":
            if spec.algorithm == "auto" and spec.use_index is True:
                algorithm = "indexed"
                _, costs, _ = choose_algorithm(
                    plan,
                    spec.mode,
                    workers=workers,
                    index_state=index_state,
                    index_span=index_span,
                )
                reason = "use_index=True forces the indexed path"
            elif spec.algorithm == "auto":
                algorithm, costs, reason = choose_algorithm(
                    plan,
                    spec.mode,
                    workers=workers,
                    index_state=_competing(index_state),
                    index_span=index_span,
                )
            else:
                algorithm = spec.algorithm
                _, costs, _ = choose_algorithm(
                    plan,
                    spec.mode,
                    workers=workers,
                    index_state=index_state,
                    index_span=index_span,
                )
                reason = "explicitly requested"
            if algorithm == "indexed" and shards is not None:
                shards = replace(shards, partition="cells")
            return ExplainReport(
                spec=spec,
                algorithm=algorithm,
                reason=reason,
                costs=costs,
                stats=stats,
                cache_hit=cache_hit,
                shards=shards,
                index=index_line(algorithm),
                resilience=_resilience_line(),
            )
        # find_k: cost = expected number of probe points per method.
        d1, d2 = plan.left.schema.d, plan.right.schema.d
        a = plan.left.schema.a
        k_min = max(d1, d2) + 1
        k_max = (d1 - a) + (d2 - a) + a
        span = max(1, k_max - k_min + 1)
        costs = {
            "naive": float(span),
            "range": float(span),
            "binary": float(math.ceil(math.log2(span)) + 1),
        }
        reason = (
            f"{spec.method} search over k in [{k_min}, {k_max}]"
            + (
                "; range/binary short-circuit full evaluations via "
                "categorization bounds"
                if spec.method != "naive"
                else "; every probe is a full evaluation"
            )
        )
        return ExplainReport(
            spec=spec,
            algorithm=spec.method,
            reason=reason,
            costs=costs,
            stats=stats,
            cache_hit=cache_hit,
            index=index_line(spec.method),
            resilience=_resilience_line(),
        )

    def __repr__(self) -> str:
        info = self.cache_info()
        return (
            f"<Engine plans={info['size']}/{info['capacity']} "
            f"hits={info['hits']} misses={info['misses']}>"
        )


def _plan_args(
    spec: QuerySpec,
) -> tuple[str, AggregateLike | None, tuple[ThetaCondition, ...]]:
    """(join, aggregate, theta) positional args for :meth:`Engine.plan`."""
    return spec.join, spec.aggregate, spec.theta


def _resilience_line() -> str:
    """Posture + recovery totals for :attr:`ExplainReport.resilience`."""
    plan = armed_plan()
    posture = (
        f"fault plan armed (seed {plan.seed}, {len(plan.specs)} specs)"
        if plan is not None
        else "checkpoints disarmed"
    )
    snap = resilience_stats().snapshot()
    return (
        f"{posture}; recovery ladder process→thread→serial; so far: "
        f"{snap['shard_retries']} shard retries, "
        f"{snap['pool_rebuilds']} pool rebuilds, "
        f"{snap['degradations']} degradations, "
        f"{snap['index_quarantines']} index quarantines"
    )


def _competing(index_state: str | None) -> str | None:
    """The index state ``algorithm="auto"`` lets compete on cost.

    Only *warm* indexes enter the auto cost race: a cold build is a
    deliberate investment the caller opts into (``algorithm="indexed"``
    or ``use_index=True``) — letting it compete by default would flip
    the engine's established auto choices on every first query. Once
    any indexed query has built (and the catalog persisted) the side
    indexes, subsequent auto queries see ``"warm"`` and the cost model
    weighs the indexed path like any other.
    """
    return index_state if index_state == "warm" else None


def _stale(tokens: object, uid: int, version: int) -> bool:
    """Does a cache key's token tuple reference an old version of the
    dataset identified by ``uid``?"""
    if not isinstance(tokens, tuple):
        return False
    return any(
        isinstance(tok, tuple)
        and len(tok) == 4
        and tok[0] == "ds"
        and tok[2] == uid
        and tok[3] != version
        for tok in tokens
    )


def _deadline_scoped(
    stream: Iterator[tuple[int, ...]], deadline: Deadline
) -> Iterator[tuple[int, ...]]:
    """Activate ``deadline`` around every resume of ``stream``.

    The thread-local active deadline must only be installed while the
    generator is actually computing: a consumer may hold the iterator
    suspended across unrelated engine calls on the same thread, and
    those must not inherit this request's budget.
    """
    while True:
        with deadline.activate():
            try:
                item = next(stream)
            except StopIteration:
                return
        yield item
