"""The query engine: cached join plans + cost-based algorithm choice.

The paper's four problems all run over the *same* prepared join
structures (joined view, group indexes, categorizations). The seed
library rebuilt those on every call; :class:`Engine` instead keeps an
LRU cache of :class:`~repro.core.plan.JoinPlan` objects keyed by the
relations' content fingerprints plus the join configuration, so a
``ksjq`` followed by a ``find_k`` over the same relations — or the same
dashboard query issued a thousand times — pays join preparation once.

``algorithm="auto"`` is resolved here by :func:`choose_algorithm`, a
cost model over the plan's exact cardinality statistics (group sizes,
join size) instead of the seed's hard-wired "always grouping".
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from ..core.cartesian import run_cartesian
from ..core.dominator import run_dominator
from ..core.find_k import find_k_at_least_delta, find_k_at_most_delta
from ..core.grouping import run_grouping
from ..core.naive import run_naive
from ..core.plan import JoinPlan, PlanStats
from ..core.progressive import ksjq_progressive
from ..core.result import FindKResult, KSJQResult, QueryResult
from ..errors import AlgorithmError
from ..relational.aggregates import AggregateFunction, get_aggregate
from ..relational.relation import Relation
from .spec import QuerySpec

__all__ = ["Engine", "ExplainReport", "PlanCacheStats", "choose_algorithm"]


# ----------------------------------------------------------------------
# Cost-based algorithm choice
# ----------------------------------------------------------------------
def choose_algorithm(
    plan: JoinPlan, mode: str = "faithful"
) -> Tuple[str, Dict[str, float], str]:
    """Pick the cheapest applicable algorithm for a plan.

    Returns ``(algorithm, costs, reason)`` where ``costs`` maps every
    candidate algorithm to its estimated cost in abstract dominance-
    comparison units, derived from :meth:`JoinPlan.stats`:

    * ``naive`` — every joined tuple against the full joined view:
      ``J^2`` for join size ``J``;
    * ``grouping`` — categorization (sum of squared group sizes, both
      sides) plus sub-quadratic verification, modeled as ``C + J*sqrt(J)``;
    * ``dominator`` — categorization plus a second group-local pass to
      generate dominators, with verification against per-cell dominators
      only: ``2C + J * mean_cell``;
    * ``cartesian`` — fate-table only, no verification: ``C + J``
      (cartesian join kind only, where it is always chosen).

    Feasibility trumps cost: a non-strictly-monotone aggregate forces
    ``naive`` (the pruning proofs need strict monotonicity), and in
    faithful mode with ``a >= 2`` the always-exact ``naive`` is excluded
    so auto stays within the paper-faithful answer family.
    """
    stats = plan.stats()
    J = float(stats.join_size)
    C = float(stats.categorization_cost)

    if plan.aggregate is not None and not plan.aggregate.strictly_monotone:
        return (
            "naive",
            {"naive": J * J},
            f"aggregate {plan.aggregate.name!r} is not strictly monotone; "
            "only the naive algorithm is exact",
        )

    if plan.kind == "cartesian":
        costs = {"cartesian": C + J, "naive": J * J}
        return (
            "cartesian",
            costs,
            "cartesian join: the fate table decides every pair with no "
            "verification",
        )

    costs: Dict[str, float] = {
        "grouping": C + J * math.sqrt(J),
        "dominator": 2.0 * C + J * stats.mean_cell_size,
    }
    a = plan.left.schema.a
    if mode == "exact" or a < 2:
        costs["naive"] = J * J
    chosen = min(costs, key=lambda name: (costs[name], name))
    reason = (
        f"cheapest estimated cost over join size {stats.join_size} "
        f"({stats.shared_group_count} shared groups, categorization cost "
        f"{stats.categorization_cost})"
    )
    if "naive" not in costs:
        reason += "; naive excluded: faithful mode with a >= 2 aggregates"
    return chosen, costs, reason


@dataclass(frozen=True)
class ExplainReport:
    """What the engine would do for a spec, without doing it.

    Attributes
    ----------
    spec:
        The explained :class:`QuerySpec`.
    algorithm:
        The algorithm (or find-k method) that would run.
    reason:
        Human-readable justification of the choice.
    costs:
        Candidate -> estimated cost (dominance-comparison units for
        ksjq; expected full-evaluation probes for find_k).
    stats:
        Cardinality statistics of the (cached or newly built) plan.
    cache_hit:
        Whether the plan came from the engine's cache.
    """

    spec: QuerySpec
    algorithm: str
    reason: str
    costs: Dict[str, float] = field(default_factory=dict)
    stats: Optional[PlanStats] = None
    cache_hit: bool = False

    def summary(self) -> str:
        lines = [
            f"query: {self.spec.describe()}",
            f"plan: {'cache hit' if self.cache_hit else 'prepared'}"
            + (
                f", join size {self.stats.join_size} "
                f"({self.stats.n_left} x {self.stats.n_right} base tuples, "
                f"{self.stats.shared_group_count} shared groups)"
                if self.stats
                else ""
            ),
            f"chosen: {self.algorithm} — {self.reason}",
        ]
        if self.costs:
            ranked = sorted(self.costs.items(), key=lambda kv: kv[1])
            lines.append(
                "estimated costs: "
                + ", ".join(f"{name}={cost:,.0f}" for name, cost in ranked)
            )
        return "\n".join(lines)


@dataclass
class PlanCacheStats:
    """Counters of the engine's plan cache activity."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "requests": self.requests,
        }


class Engine:
    """Prepare-once / execute-many entry point for every KSJQ problem.

    Parameters
    ----------
    max_plans:
        Capacity of the LRU plan cache. ``0`` disables caching (every
        query prepares a fresh plan — useful for benchmarking the full
        pipeline).

    Usage::

        engine = repro.Engine()
        result = engine.query(r1, r2).aggregate("sum").k(7).run()
        tuned = engine.query(r1, r2).aggregate("sum").find_k(delta=100)
        print(engine.query(r1, r2).aggregate("sum").k(7).explain().summary())
    """

    def __init__(self, max_plans: int = 32) -> None:
        if max_plans < 0:
            raise AlgorithmError(f"max_plans must be >= 0, got {max_plans}")
        self.max_plans = max_plans
        self._plans: "OrderedDict[Tuple, JoinPlan]" = OrderedDict()
        self.cache_stats = PlanCacheStats()

    # ------------------------------------------------------------------
    # Plan cache
    # ------------------------------------------------------------------
    def _cache_key(
        self, left: Relation, right: Relation, join: str, aggregate, theta
    ) -> Tuple:
        # Custom AggregateFunction objects key by value (frozen
        # dataclass) — collapsing them to their name would let a custom
        # function collide with the registry entry of the same name.
        if aggregate is None or isinstance(aggregate, AggregateFunction):
            agg_key = aggregate
        else:
            agg_key = get_aggregate(aggregate).name
        if theta is not None and not isinstance(theta, tuple):
            from ..relational.join import normalize_theta

            theta = normalize_theta(theta)
        return (left.fingerprint(), right.fingerprint(), join, agg_key, theta or ())

    def plan(
        self,
        left: Relation,
        right: Relation,
        join: str = "equality",
        aggregate=None,
        theta=None,
    ) -> JoinPlan:
        """A (cached) :class:`JoinPlan` for one relation pair + join config.

        Plans are keyed by the relations' content fingerprints, so two
        equal-content relation objects share a cache entry, and any
        memoized structure computed by one query (the joined view, the
        group indexes) is reused by the next.
        """
        key = self._cache_key(left, right, join, aggregate, theta)
        cached = self._plans.get(key)
        if cached is not None:
            self.cache_stats.hits += 1
            self._plans.move_to_end(key)
            return cached
        self.cache_stats.misses += 1
        plan = JoinPlan(
            left,
            right,
            kind=join,
            aggregate=aggregate,
            theta=theta if theta else None,
        )
        if self.max_plans > 0:
            self._plans[key] = plan
            while len(self._plans) > self.max_plans:
                self._plans.popitem(last=False)
                self.cache_stats.evictions += 1
        return plan

    def cache_info(self) -> Dict[str, int]:
        """Cache counters plus current size/capacity."""
        info = self.cache_stats.as_dict()
        info["size"] = len(self._plans)
        info["capacity"] = self.max_plans
        return info

    def clear_cache(self) -> None:
        """Drop every cached plan (counters are kept)."""
        self._plans.clear()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def query(self, left: Relation, right: Relation) -> "QueryBuilder":
        """Start a fluent query over one relation pair."""
        from .builder import QueryBuilder

        return QueryBuilder(self, left, right)

    def execute(
        self,
        left: Relation,
        right: Relation,
        spec: QuerySpec,
        plan: Optional[JoinPlan] = None,
    ) -> QueryResult:
        """Run a spec, reusing a cached plan when one matches.

        ``plan`` overrides the cache (used by the legacy facade's
        ``plan=`` argument); the result carries the spec and plan as
        provenance.
        """
        if plan is None:
            plan = self.plan(left, right, *_plan_args(spec))
        if spec.problem == "ksjq":
            result = self._run_ksjq(plan, spec)
        else:
            result = self._run_find_k(plan, spec)
        return result.with_provenance(spec, plan)

    def _run_ksjq(self, plan: JoinPlan, spec: QuerySpec) -> KSJQResult:
        algorithm = spec.algorithm
        if algorithm == "auto":
            algorithm, _, _ = choose_algorithm(plan, spec.mode)
        if algorithm == "naive":
            return run_naive(plan, spec.k)
        if algorithm == "grouping":
            return run_grouping(plan, spec.k, mode=spec.mode)
        if algorithm == "dominator":
            return run_dominator(plan, spec.k, mode=spec.mode)
        return run_cartesian(plan, spec.k, mode=spec.mode)

    def _run_find_k(self, plan: JoinPlan, spec: QuerySpec) -> FindKResult:
        if spec.objective == "at_least":
            return find_k_at_least_delta(
                plan, spec.delta, method=spec.method, mode=spec.mode
            )
        return find_k_at_most_delta(
            plan, spec.delta, method=spec.method, mode=spec.mode
        )

    def stream(
        self,
        left: Relation,
        right: Relation,
        spec: QuerySpec,
        plan: Optional[JoinPlan] = None,
    ) -> Iterator[Tuple[int, int]]:
        """Progressive results: yield skyline pairs as they are decided.

        Wraps :func:`~repro.core.progressive.ksjq_progressive` (grouping
        order: guaranteed "yes" pairs first). Faithful mode only.
        """
        if spec.problem != "ksjq":
            raise AlgorithmError("only ksjq queries stream progressively")
        if spec.mode != "faithful":
            raise AlgorithmError(
                "progressive streaming emits Theorem-1/3 'yes' tuples unverified; "
                "it is only defined for mode='faithful'"
            )
        if plan is None:
            plan = self.plan(left, right, *_plan_args(spec))
        return ksjq_progressive(plan, spec.k)

    # ------------------------------------------------------------------
    # Explanation
    # ------------------------------------------------------------------
    def explain(
        self,
        left: Relation,
        right: Relation,
        spec: QuerySpec,
        plan: Optional[JoinPlan] = None,
    ) -> ExplainReport:
        """Report the algorithm choice and cost estimates for a spec."""
        cache_hit = False
        if plan is None:
            hits_before = self.cache_stats.hits
            plan = self.plan(left, right, *_plan_args(spec))
            cache_hit = self.cache_stats.hits > hits_before
        stats = plan.stats()
        if spec.problem == "ksjq":
            if spec.algorithm == "auto":
                algorithm, costs, reason = choose_algorithm(plan, spec.mode)
            else:
                algorithm = spec.algorithm
                _, costs, _ = choose_algorithm(plan, spec.mode)
                reason = "explicitly requested"
            return ExplainReport(
                spec=spec,
                algorithm=algorithm,
                reason=reason,
                costs=costs,
                stats=stats,
                cache_hit=cache_hit,
            )
        # find_k: cost = expected number of probe points per method.
        d1, d2 = plan.left.schema.d, plan.right.schema.d
        a = plan.left.schema.a
        k_min = max(d1, d2) + 1
        k_max = (d1 - a) + (d2 - a) + a
        span = max(1, k_max - k_min + 1)
        costs = {
            "naive": float(span),
            "range": float(span),
            "binary": float(math.ceil(math.log2(span)) + 1),
        }
        reason = (
            f"{spec.method} search over k in [{k_min}, {k_max}]"
            + (
                "; range/binary short-circuit full evaluations via "
                "categorization bounds"
                if spec.method != "naive"
                else "; every probe is a full evaluation"
            )
        )
        return ExplainReport(
            spec=spec,
            algorithm=spec.method,
            reason=reason,
            costs=costs,
            stats=stats,
            cache_hit=cache_hit,
        )

    def __repr__(self) -> str:
        info = self.cache_info()
        return (
            f"<Engine plans={info['size']}/{info['capacity']} "
            f"hits={info['hits']} misses={info['misses']}>"
        )


def _plan_args(spec: QuerySpec) -> Tuple[str, Optional[str], Tuple]:
    """(join, aggregate, theta) positional args for :meth:`Engine.plan`."""
    return spec.join, spec.aggregate, spec.theta
