"""Streaming front-end: maintained handles and sliding-window queries.

This module is the serving-layer face of the delta-maintenance
subsystem (:mod:`repro.core.incremental`). It turns engine inputs into
the registered :class:`~repro.relational.dataset.Dataset` handles a
:class:`~repro.core.incremental.MaintainedResult` needs — the delta
feed travels dataset -> catalog -> engine -> handle, so only
catalog-registered datasets can be maintained — and implements the
sliding-window iterator behind :meth:`repro.api.Engine.stream_window`,
where each window advance is a batched ``delete_rows`` + ``insert_rows``
delta pair on a window-backing dataset.

Use the engine entry points (:meth:`~repro.api.Engine.maintain`,
:meth:`~repro.api.Engine.stream_window`) or the builder terminal
(:meth:`~repro.api.builder.QueryBuilder.maintain`); the functions here
are their implementation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.incremental import MaintainedResult
from ..errors import CatalogError, ParameterError
from ..relational.dataset import Dataset
from ..relational.relation import Relation

if TYPE_CHECKING:
    from collections.abc import Iterator

    from ..core.result import QueryResult
    from .builder import QueryInput
    from .engine import Engine
    from .spec import QuerySpec

__all__ = ["create_maintained", "window_stream"]


def _require_dataset(engine: "Engine", obj: "QueryInput") -> Dataset:
    """One maintain() input -> the registered :class:`Dataset` feeding it.

    Maintained results receive mutation deltas through the catalog ->
    engine routing, so every input must be a dataset registered in
    *this* engine's catalog — a plain :class:`Relation` is immutable
    and has no mutation feed to subscribe to.
    """
    if isinstance(obj, str):
        return engine.catalog.get(obj)
    if isinstance(obj, Dataset):
        if engine.catalog.peek(obj.name) is obj:
            return obj
        raise ParameterError(
            f"dataset {obj.name!r} is not registered in this engine's "
            "catalog; engine.register() it first so mutation deltas reach "
            "the maintained result"
        )
    raise ParameterError(
        "maintain() inputs must be registered dataset names or Dataset "
        f"handles, got {type(obj).__name__}; call engine.register(name, "
        "relation) and pass the name"
    )


def create_maintained(
    engine: "Engine",
    inputs: tuple["QueryInput", ...],
    spec: "QuerySpec",
    fallback_ratio: float,
) -> MaintainedResult:
    """Build, register and resync a :class:`MaintainedResult`.

    The handle computes its initial answer, then registers with the
    engine's delta routing; a mutation landing between those two steps
    is caught by the final resync (it recomputes iff any input version
    moved past the snapshot the handle recorded).
    """
    datasets = tuple(_require_dataset(engine, obj) for obj in inputs)
    handle = MaintainedResult(engine, datasets, spec, fallback_ratio=fallback_ratio)
    engine._register_maintained(handle)
    handle._resync()
    return handle


def window_stream(
    engine: "Engine",
    inputs: tuple["QueryInput", ...],
    spec: "QuerySpec",
    size: int,
    slide: int,
    name: str | None,
    fallback_ratio: float,
) -> "Iterator[QueryResult]":
    """Sliding-window continuous query over a row stream.

    Exactly one query input must be a plain :class:`Relation` — the
    stream source, whose rows are consumed in order (the same object
    may appear on both sides for a self-join stream). The remaining
    inputs are registered datasets/names, resolved as usual. The first
    ``size`` rows form the initial window, backed by a dataset
    registered under ``name`` (default ``"<stream>_window"``) for the
    duration of the iteration; every advance deletes the ``slide``
    oldest rows and inserts the next ``slide`` — a batched
    delete+insert delta pair the maintained result absorbs — and the
    iterator yields one answer per window position. The window dataset
    is dropped from the catalog when the iterator finishes (or is
    closed), so a finished stream leaves no residue.

    Validation is eager (bad parameters raise here, not at first
    ``next()``); the catalog registration itself is lazy.
    """
    if size < 1:
        raise ParameterError(f"window size must be >= 1, got {size}")
    if not 1 <= slide <= size:
        raise ParameterError(
            f"slide must be in [1, size={size}], got {slide}: a larger "
            "slide would skip rows straight through the window"
        )
    positions = [i for i, obj in enumerate(inputs) if isinstance(obj, Relation)]
    if not positions:
        raise ParameterError(
            "stream_window() needs exactly one plain Relation input — the "
            "stream source; registered names/datasets are the static sides"
        )
    stream = inputs[positions[0]]
    assert isinstance(stream, Relation)
    if any(inputs[i] is not stream for i in positions[1:]):
        raise ParameterError(
            "stream_window() takes a single stream source; two different "
            "Relation inputs are ambiguous — register the static one"
        )
    if len(stream) < size:
        raise ParameterError(
            f"stream has {len(stream)} rows; the first window needs {size}"
        )
    window_name = name if name is not None else f"{stream.name or 'stream'}_window"
    if engine.catalog.peek(window_name) is not None:
        raise CatalogError(
            f"dataset name {window_name!r} is already registered; pass "
            "stream_window(..., name=...) to pick a free window name"
        )
    return _windows(
        engine, inputs, set(positions), stream, spec,
        size, slide, window_name, fallback_ratio,
    )


def _windows(
    engine: "Engine",
    inputs: tuple["QueryInput", ...],
    positions: set[int],
    stream: Relation,
    spec: "QuerySpec",
    size: int,
    slide: int,
    window_name: str,
    fallback_ratio: float,
) -> "Iterator[QueryResult]":
    records = stream.records()
    window = engine.register(
        window_name, stream.take(range(size), name=window_name)
    )
    try:
        resolved = tuple(
            window if i in positions else obj for i, obj in enumerate(inputs)
        )
        handle = create_maintained(engine, resolved, spec, fallback_ratio)
        try:
            yield handle.result()
            start = slide
            while start + size <= len(records):
                window.delete_rows(range(slide))
                window.insert_rows(records[start + size - slide : start + size])
                yield handle.result()
                start += slide
        finally:
            handle.close()
    finally:
        engine.catalog.drop(window_name)
