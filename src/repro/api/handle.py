"""Prepared query handles: re-executable queries over live datasets.

A :class:`QueryHandle` binds an :class:`~repro.api.engine.Engine`, a
tuple of query inputs (registered dataset names, :class:`Dataset`
handles, or raw relations) and a frozen
:class:`~repro.api.spec.QuerySpec`. Unlike a one-shot ``execute`` call
it is *version-aware*: every execution snapshots the inputs' cache
tokens, so the handle can report whether its cached result still
reflects the latest dataset versions (:meth:`is_fresh`) and re-execute
only when it does not (:meth:`refresh`).

Re-execution is cheap by construction: the engine's plan cache is keyed
by the same tokens, so a fresh-enough handle re-runs against a cached
plan, and with the engine's result cache enabled an unchanged handle
re-execution is a pure cache hit.

Typical serving loop::

    handle = engine.prepare("hotels", "flights", spec)
    handle.execute()                 # cold run
    ...
    result = handle.refresh()        # no-op while datasets are unchanged
    engine.catalog["hotels"].insert_rows([...])
    handle.is_fresh()                # False
    result = handle.refresh()        # re-executes against version n+1
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.result import QueryResult
from ..errors import ParameterError, ResilienceError
from .spec import QuerySpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..serving.deadline import Deadline
    from .builder import QueryInput
    from .engine import Engine, ExplainReport

__all__ = ["QueryHandle"]


class QueryHandle:
    """A prepared, version-aware query over an engine's datasets."""

    def __init__(
        self, engine: "Engine", inputs: tuple[QueryInput, ...], spec: QuerySpec
    ) -> None:
        if len(inputs) < 2:
            raise ParameterError(
                f"prepare() needs at least two query inputs, got {len(inputs)}"
            )
        self._engine = engine
        self._inputs: tuple[QueryInput, ...] = tuple(inputs)
        self.spec = spec
        self._result: QueryResult | None = None
        self._executed_versions: tuple[object, ...] | None = None

    # ------------------------------------------------------------------
    @property
    def engine(self) -> "Engine":
        """The engine this handle executes on."""
        return self._engine

    @property
    def last_result(self) -> QueryResult | None:
        """The most recent result, or ``None`` before the first execution.

        May be stale — check :meth:`is_fresh`, or call :meth:`refresh`
        for a result guaranteed to match the current versions.
        """
        return self._result

    def versions(self) -> tuple[object, ...]:
        """Current cache tokens of the handle's inputs.

        Registered datasets report ``("ds", name, version)``; anonymous
        relations report content fingerprints (which never change).
        """
        return self._engine.versions(*self._inputs)

    def is_fresh(self) -> bool:
        """Does the cached result still reflect the latest input versions?

        ``False`` before the first execution, and again whenever any
        registered input has mutated since the last execution.
        """
        if self._result is None or self._executed_versions is None:
            return False
        return self.versions() == self._executed_versions

    # ------------------------------------------------------------------
    def execute(self, deadline: "Deadline | None" = None) -> QueryResult:
        """Run the query against the *latest* dataset versions.

        Always executes (through the engine's plan/result caches, so a
        repeat over unchanged versions is cheap) and records the
        versions it ran against for later freshness checks.

        ``deadline`` is forwarded to :meth:`Engine.execute`; an expired
        run raises :class:`~repro.errors.DeadlineExceeded` and leaves
        the handle's cached result and versions untouched.
        """
        versions = self.versions()
        result = self._engine.execute(
            *self._inputs, spec=self.spec, deadline=deadline
        )
        self._result = result
        self._executed_versions = versions
        return result

    def refresh(self) -> QueryResult:
        """The current answer: the cached result when still fresh,
        otherwise a re-execution against the latest versions.

        Returns
        -------
        QueryResult
            A result guaranteed to reflect the inputs' current versions.
        """
        if self.is_fresh():
            assert self._result is not None
            return self._result
        return self.execute()

    def refresh_or_stale(self) -> tuple[QueryResult, bool]:
        """Refresh, degrading to the stale cached result when the
        engine's recovery ladder is exhausted.

        The graceful-degradation companion of :meth:`refresh` (see
        ``docs/resilience.md``): a transiently sick engine — every
        retry/rebuild/degrade rung failed with a typed
        :class:`~repro.errors.ResilienceError` — should not take down a
        caller that holds a previously *verified* (if stale) answer.

        Returns
        -------
        tuple[QueryResult, bool]
            ``(result, fresh)`` — ``fresh`` is ``False`` when the
            result predates the inputs' current versions. With no
            cached result to fall back on, the
            :class:`~repro.errors.ResilienceError` propagates.
        """
        if self.is_fresh():
            assert self._result is not None
            return self._result, True
        try:
            return self.execute(), True
        except ResilienceError:
            if self._result is None:
                raise
            return self._result, False

    def explain(self) -> "ExplainReport":
        """What executing this handle *now* would do, without doing it.

        Delegates to :meth:`Engine.explain` against the latest dataset
        versions, so the report reflects the plan-cache state and the
        serial-vs-parallel shard decision the next :meth:`execute` or
        :meth:`refresh` would actually take.

        Returns
        -------
        ExplainReport
            Algorithm choice, cost estimates, plan statistics, and the
            shard plan of the execution layer.
        """
        return self._engine.explain(*self._inputs, spec=self.spec)

    def __repr__(self) -> str:
        names = []
        for obj in self._inputs:
            names.append(obj if isinstance(obj, str) else getattr(obj, "name", "?"))
        state = "fresh" if self.is_fresh() else (
            "stale" if self._result is not None else "unexecuted"
        )
        return (
            f"<QueryHandle {' x '.join(map(repr, names))} "
            f"spec={self.spec.fingerprint()} {state}>"
        )
