"""Frozen query specifications.

A :class:`QuerySpec` is a hashable value object that fully describes
any of the paper's query problems over a prepared join graph:

* Problems 1-2 (``problem="ksjq"``): the k-dominant skyline join at a
  fixed ``k``, with or without aggregates, under a chosen algorithm
  and soundness mode;
* Problems 3-4 (``problem="find_k"``): tuning ``k`` from a desired
  cardinality ``delta``, with the search ``method`` and ``objective``
  selecting between "at least delta" and "at most delta";
* m-way cascades (``join="cascade"``, paper Sec. 2.3): an ordered
  chain of N relations whose per-hop join conditions (composite-key
  equality, named-column equality, theta conjunctions, cartesian) are
  carried as a tuple of :class:`~repro.relational.join.HopSpec` —
  today's two-way spec is the N=2 special case.

Specs validate eagerly on construction — *before* any join structure
is built — so malformed queries fail fast, and they hash/compare by
value so engines can key caches and logs on them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from ..core.cascade import CASCADE_ALGORITHMS
from ..errors import AggregateError, AlgorithmError, JoinError, ParameterError
from ..relational.aggregates import AggregateFunction, get_aggregate
from ..relational.join import HopSpec, ThetaCondition, normalize_theta

if TYPE_CHECKING:
    from .._typing import AggregateLike, HopsLike, ThetaLike

__all__ = [
    "QuerySpec",
    "ALGORITHMS",
    "CASCADE_ALGORITHMS",
    "JOIN_KINDS",
    "MODES",
    "FIND_K_METHODS",
    "OBJECTIVES",
]

ALGORITHMS = ("auto", "grouping", "dominator", "naive", "cartesian", "parallel", "indexed")
JOIN_KINDS = ("equality", "cartesian", "theta", "cascade")
MODES = ("faithful", "exact")
FIND_K_METHODS = ("binary", "range", "naive")
OBJECTIVES = ("at_least", "at_most")
PROBLEMS = ("ksjq", "find_k")


@dataclass(frozen=True)
class QuerySpec:
    """Immutable, hashable description of one KSJQ query.

    Use the :meth:`for_ksjq` / :meth:`for_find_k` constructors (or the
    fluent :class:`repro.api.QueryBuilder`) rather than filling fields
    by hand; they normalize aggregates and theta conditions so equal
    queries compare equal.
    """

    problem: str
    join: str = "equality"
    aggregate: AggregateLike | None = None  # registry name, or custom function
    theta: tuple[ThetaCondition, ...] = ()
    hops: tuple[HopSpec, ...] = ()
    k: int | None = None
    delta: int | None = None
    algorithm: str = "auto"
    method: str = "binary"
    objective: str = "at_least"
    mode: str = "faithful"
    parallelism: int | str = "auto"
    use_index: bool | str = "auto"

    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        if self.problem not in PROBLEMS:
            raise ParameterError(
                f"unknown problem {self.problem!r}; choose from {PROBLEMS}"
            )
        if self.join not in JOIN_KINDS:
            raise JoinError(f"unknown join kind {self.join!r}")
        if self.mode not in MODES:
            raise AlgorithmError(f"unknown mode {self.mode!r} (use 'faithful' or 'exact')")
        par = self.parallelism
        if par != "auto" and (
            isinstance(par, bool) or not isinstance(par, int) or par < 1
        ):
            raise ParameterError(
                f"parallelism must be 'auto' or a positive integer worker "
                f"count, got {par!r}"
            )
        # use_index is a tri-state knob; identity checks keep 1/0 (which
        # compare equal to True/False) from sneaking through as booleans.
        if not (
            self.use_index is True
            or self.use_index is False
            or self.use_index == "auto"
        ):
            raise ParameterError(
                f"use_index must be True, False or 'auto', got {self.use_index!r}"
            )

        # Normalize theta to a hashable tuple of conditions.
        theta = self.theta
        if theta is None:
            theta = ()
        elif not isinstance(theta, tuple) or not all(
            isinstance(c, ThetaCondition) for c in theta
        ):
            theta = normalize_theta(theta)
        object.__setattr__(self, "theta", theta)
        if self.join == "theta" and not theta:
            raise JoinError("join='theta' requires a ThetaCondition")
        if self.join != "theta" and theta:
            raise JoinError(f"theta condition given but join={self.join!r}")

        # Normalize hops to a hashable tuple of HopSpecs.
        hops = self.hops
        if hops is None:
            hops = ()
        elif not isinstance(hops, tuple) or not all(
            isinstance(h, HopSpec) for h in hops
        ):
            hops = tuple(HopSpec.coerce(h) for h in hops)
        object.__setattr__(self, "hops", hops)
        if self.join != "cascade" and hops:
            raise JoinError(
                f"hops given but join={self.join!r}; use QuerySpec.for_cascade "
                "(or join='cascade') for m-way join graphs"
            )

        # Normalize *registry* aggregate objects to their name, so
        # QuerySpec.for_ksjq(aggregate="sum") == ...(aggregate=SUM).
        # Custom (unregistered, or name-colliding) AggregateFunction
        # objects are kept as-is — they are frozen and hashable, and
        # collapsing them to a name would silently substitute the
        # registry function.
        if isinstance(self.aggregate, AggregateFunction):
            try:
                registered = get_aggregate(self.aggregate.name)
            except AggregateError:
                registered = None
            if registered is self.aggregate:
                object.__setattr__(self, "aggregate", self.aggregate.name)
        elif self.aggregate is not None and not isinstance(self.aggregate, str):
            raise ParameterError(
                f"aggregate must be a name or AggregateFunction, got {self.aggregate!r}"
            )

        if self.problem == "ksjq":
            self._validate_ksjq()
        else:
            self._validate_find_k()

    def _validate_ksjq(self) -> None:
        if self.join == "cascade":
            if self.algorithm not in CASCADE_ALGORITHMS:
                raise ParameterError(
                    f"unknown cascade algorithm {self.algorithm!r}; "
                    f"choose from {CASCADE_ALGORITHMS}"
                )
            if self.algorithm == "pruned" and self.aggregate is not None:
                resolved = (
                    self.aggregate
                    if isinstance(self.aggregate, AggregateFunction)
                    else get_aggregate(self.aggregate)
                )
                if not resolved.strictly_monotone:
                    raise ParameterError(
                        "pruned cascade requires a strictly monotone aggregate; "
                        "use naive"
                    )
        elif self.algorithm not in ALGORITHMS:
            raise AlgorithmError(
                f"unknown algorithm {self.algorithm!r}; choose from {ALGORITHMS}"
            )
        if self.algorithm == "cartesian" and self.join != "cartesian":
            raise JoinError(
                f"algorithm='cartesian' requires a cartesian join, got join={self.join!r}"
            )
        if self.algorithm == "indexed" and self.use_index is False:
            raise ParameterError(
                "algorithm='indexed' contradicts use_index=False; drop one"
            )
        if self.k is None:
            raise ParameterError("a ksjq spec requires k")
        if not isinstance(self.k, int) or isinstance(self.k, bool):
            raise ParameterError(f"k must be an integer, got {self.k!r}")
        if self.delta is not None:
            raise ParameterError("delta is a find_k parameter; a ksjq spec takes k")

    def _validate_find_k(self) -> None:
        if self.join == "cascade":
            raise ParameterError(
                "find_k is only defined over two-way joins (the paper's "
                "cardinality bounds are pairwise); run ksjq at fixed k over "
                "a cascade instead"
            )
        if self.method not in FIND_K_METHODS:
            raise ParameterError(
                f"unknown find-k method {self.method!r}; choose from {FIND_K_METHODS}"
            )
        if self.objective not in OBJECTIVES:
            raise AlgorithmError(
                f"unknown objective {self.objective!r} (use 'at_least' or 'at_most')"
            )
        if self.delta is None:
            raise ParameterError("a find_k spec requires delta")
        if not isinstance(self.delta, int) or isinstance(self.delta, bool):
            raise ParameterError(f"delta must be an integer, got {self.delta!r}")
        if self.delta < 1:
            raise ParameterError(f"delta must be positive, got {self.delta}")
        if self.k is not None:
            raise ParameterError("k is tuned by find_k; pass delta instead")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def for_ksjq(
        cls,
        k: int,
        algorithm: str = "auto",
        mode: str = "faithful",
        join: str = "equality",
        aggregate: AggregateLike | None = None,
        theta: ThetaLike | None = None,
        parallelism: int | str = "auto",
        use_index: bool | str = "auto",
    ) -> "QuerySpec":
        """Spec for Problems 1-2 (skyline join at a fixed k).

        ``parallelism`` selects the sharded execution layer
        (:mod:`repro.core.parallel`): ``"auto"`` lets the engine decide
        serial-vs-parallel by cost, an integer demands that many
        workers for the parallel path.

        ``use_index`` governs the dominance-index layer
        (:mod:`repro.core.index`): ``"auto"`` lets the cost model weigh
        the indexed path against the others, ``True`` makes
        ``algorithm="auto"`` take it, and ``False`` guarantees no index
        is consulted or built on behalf of this query.
        """
        return cls(
            problem="ksjq",
            join=join,
            aggregate=aggregate,
            theta=theta if theta is not None else (),
            k=k,
            algorithm=algorithm,
            mode=mode,
            parallelism=parallelism,
            use_index=use_index,
        )

    @classmethod
    def for_cascade(
        cls,
        k: int,
        hops: HopsLike = None,
        algorithm: str = "auto",
        aggregate: AggregateLike | None = None,
        mode: str = "faithful",
        parallelism: int | str = "auto",
        use_index: bool | str = "auto",
    ) -> "QuerySpec":
        """Spec for an m-way cascade KSJQ (paper Sec. 2.3).

        ``hops`` lists one join condition per adjacent relation pair
        (:class:`~repro.relational.join.HopSpec`, legacy
        :class:`~repro.core.cascade.Hop`, theta conditions, or ``None``
        entries for composite-key equality); an empty/omitted ``hops``
        means composite-key equality on every hop of however many
        relations the spec is executed against.
        """
        return cls(
            problem="ksjq",
            join="cascade",
            aggregate=aggregate,
            hops=tuple(hops) if hops is not None else (),
            k=k,
            algorithm=algorithm,
            mode=mode,
            parallelism=parallelism,
            use_index=use_index,
        )

    @classmethod
    def for_find_k(
        cls,
        delta: int,
        method: str = "binary",
        objective: str = "at_least",
        mode: str = "faithful",
        join: str = "equality",
        aggregate: AggregateLike | None = None,
        theta: ThetaLike | None = None,
        parallelism: int | str = "auto",
        use_index: bool | str = "auto",
    ) -> "QuerySpec":
        """Spec for Problems 3-4 (tune k from a cardinality target).

        ``parallelism`` is accepted for interface symmetry but the
        find-k searches run their probe evaluations serially (the
        paper's bound computations are sequential by nature); it is
        validated and carried, not acted on. ``use_index`` likewise:
        the find-k probes run the paper's bound computations and exact
        evaluations index-free, so the knob is carried for symmetry
        (and fingerprinted) but never triggers an index build.
        """
        return cls(
            problem="find_k",
            join=join,
            aggregate=aggregate,
            theta=theta if theta is not None else (),
            delta=delta,
            method=method,
            objective=objective,
            mode=mode,
            parallelism=parallelism,
            use_index=use_index,
        )

    # ------------------------------------------------------------------
    def replace(self, **changes: object) -> "QuerySpec":
        """A copy with fields replaced (re-validated)."""
        return replace(self, **changes)

    def fingerprint(self) -> str:
        """Stable short hex digest identifying this spec's semantics.

        Derived from every semantic field, with aggregates rendered by
        *name* (a custom :class:`AggregateFunction` would otherwise
        repr with a per-process memory address), so equal specs share a
        fingerprint across processes — suitable for logs, artifact
        names and cache observability. Engines key in-process caches on
        the spec object itself (exact hashing); the fingerprint is the
        durable, human-exchangeable identity.
        """
        import hashlib

        aggregate = (
            self.aggregate.name
            if isinstance(self.aggregate, AggregateFunction)
            else self.aggregate
        )
        payload = "|".join(
            str(part)
            for part in (
                self.problem,
                self.join,
                aggregate,
                [str(c) for c in self.theta],
                [h.describe() for h in self.hops],
                self.k,
                self.delta,
                self.algorithm,
                self.method,
                self.objective,
                self.mode,
                self.parallelism,
                self.use_index,
            )
        )
        return hashlib.sha1(payload.encode()).hexdigest()[:16]

    def plan_key(self) -> tuple[object, ...]:
        """The part of the spec that determines join preparation.

        Two specs with equal plan keys over the same relations can share
        one :class:`~repro.core.plan.JoinPlan` (or
        :class:`~repro.core.plan.CascadePlan`), regardless of k, delta,
        algorithm, method, objective or mode.
        """
        return (self.join, self.aggregate, self.theta, self.hops)

    def describe(self) -> str:
        """One-line human-readable rendering."""
        parts = [f"{self.problem} over {self.join} join"]
        if self.aggregate:
            parts.append(f"aggregate={self.aggregate}")
        if self.theta:
            parts.append("theta=" + " AND ".join(str(c) for c in self.theta))
        if self.hops:
            parts.append("hops=[" + "; ".join(h.describe() for h in self.hops) + "]")
        if self.problem == "ksjq":
            parts.append(f"k={self.k}")
            parts.append(f"algorithm={self.algorithm}")
        else:
            parts.append(f"delta={self.delta}")
            parts.append(f"method={self.method}")
            parts.append(f"objective={self.objective}")
        parts.append(f"mode={self.mode}")
        if self.parallelism != "auto":
            parts.append(f"parallelism={self.parallelism}")
        if self.use_index != "auto":
            parts.append(f"use_index={self.use_index}")
        return ", ".join(parts)
