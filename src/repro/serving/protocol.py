"""Minimal HTTP/1.1 framing over asyncio streams.

Just enough protocol for the serving front-end — stdlib only, by
design (the repo bakes in no web framework): request-line + header
parsing with size limits, ``Content-Length`` bodies, plain JSON
responses, and chunked ``Transfer-Encoding`` for the progressive
JSON-lines stream. Connections are one-shot (``Connection: close``),
which keeps the server loop trivial and is plenty for a benchmark /
demo front-end; a production deployment would sit this behind any
HTTP-speaking load balancer.

Everything here is either an ``async`` *read* off the stream or a
pure bytes builder — no engine calls, no locks — so the module is
trivially compliant with the R5 serving rule.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

from ..errors import ServingError

__all__ = [
    "HttpRequest",
    "ProtocolError",
    "chunk",
    "json_response",
    "last_chunk",
    "read_request",
    "stream_preamble",
]

#: Largest accepted request body, bytes.
MAX_BODY_BYTES = 1 << 20

#: Largest accepted header block (request line included), bytes.
MAX_HEADER_BYTES = 32 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class ProtocolError(ServingError):
    """The peer sent bytes this minimal HTTP parser rejects."""

    code = "protocol_error"

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class HttpRequest:
    """One parsed request: method, path, lower-cased headers, raw body."""

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict[str, object]:
        """The body parsed as a JSON object (fail-fast on anything else)."""
        if not self.body:
            raise ProtocolError("request body is empty; expected a JSON object")
        try:
            payload = json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ProtocolError(
                f"request body must be a JSON object, got {type(payload).__name__}"
            )
        return payload


async def read_request(reader: asyncio.StreamReader) -> HttpRequest | None:
    """Parse one request off the stream; ``None`` on a clean EOF.

    Raises :class:`ProtocolError` (mapped to a 4xx by the server) on
    malformed framing or oversized headers/bodies.
    """
    try:
        header_block = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-request") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError("header block too large", status=413) from exc
    if len(header_block) > MAX_HEADER_BYTES:
        raise ProtocolError("header block too large", status=413)

    lines = header_block.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(f"malformed request line {lines[0]!r}")
    method, path = parts[0].upper(), parts[1]

    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise ProtocolError("malformed Content-Length") from exc
        if length < 0 or length > MAX_BODY_BYTES:
            raise ProtocolError("request body too large", status=413)
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                raise ProtocolError("connection closed mid-body") from exc
    elif headers.get("transfer-encoding"):
        raise ProtocolError("chunked request bodies are not supported")
    return HttpRequest(method=method, path=path, headers=headers, body=body)


def _head(status: int, content_type: str, extra: dict[str, str] | None) -> str:
    head = f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
    head += f"Content-Type: {content_type}\r\n"
    for name, value in (extra or {}).items():
        head += f"{name}: {value}\r\n"
    return head


def json_response(
    status: int,
    payload: dict[str, object],
    headers: dict[str, str] | None = None,
) -> bytes:
    """A complete JSON response with ``Connection: close`` framing."""
    body = json.dumps(payload).encode("utf-8")
    head = _head(status, "application/json", headers)
    head += f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
    return head.encode("latin-1") + body


def stream_preamble(headers: dict[str, str] | None = None) -> bytes:
    """Response head opening a chunked JSON-lines stream."""
    head = _head(200, "application/x-ndjson", headers)
    head += "Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
    return head.encode("latin-1")


def chunk(payload: dict[str, object]) -> bytes:
    """One JSON line as one HTTP chunk (flushed individually, so the
    client sees each result the moment it is decided)."""
    line = json.dumps(payload).encode("utf-8") + b"\n"
    return f"{len(line):x}\r\n".encode("latin-1") + line + b"\r\n"


def last_chunk() -> bytes:
    """The zero-length terminal chunk."""
    return b"0\r\n\r\n"
