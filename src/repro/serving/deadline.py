"""Per-request deadlines with cooperative cancellation checkpoints.

A :class:`Deadline` gives one request a wall-clock budget. The
algorithm hot loops (``core/naive.py``, ``core/grouping.py``,
``core/cascade.py``, ``core/parallel.py`` and the progressive
generators) call :func:`active_deadline` once on entry and then
:meth:`Deadline.check` every :data:`DEFAULT_CHECK_INTERVAL` candidate
rows; an expired check raises
:class:`~repro.errors.DeadlineExceeded` carrying the progressive
partial answer decided so far.

Two properties make cancellation safe:

* **Checkpoints only read.** A check never mutates plan memos, engine
  caches or catalog state, so a query cancelled at *any* checkpoint
  leaves every shared structure exactly as a completed query would —
  re-issuing the query returns the exact full answer (property-tested
  in ``tests/property/test_property_serving.py``).
* **Partial answers are subsets.** The partial carried by the error
  contains only pairs that were fully verified before expiry (or
  Theorem-1/3 "yes" tuples of a faithful-mode query, which that spec's
  full answer also contains), so ``partial ⊆ full answer`` always
  holds.

Deadlines propagate through :meth:`Engine.execute(...,
deadline=) <repro.api.engine.Engine.execute>` — the engine activates
the deadline for the duration of the run via a **thread-local** (not a
``contextvars`` context: the serving layer runs engine calls through
``loop.run_in_executor``, which does not propagate context to the
worker thread; the executor job activates the deadline itself on the
thread that runs the algorithm).

The clock is injectable (``clock=``) so tests can drive expiry
deterministically — e.g. a counting clock that expires at exactly the
m-th checkpoint.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager

from ..errors import DeadlineExceeded, ParameterError

__all__ = [
    "DEFAULT_CHECK_INTERVAL",
    "Deadline",
    "active_deadline",
    "PartialProvider",
]

#: Candidate rows between two deadline checks in the algorithm hot
#: loops. Small enough that a 50 ms budget trips within a few
#: milliseconds of expiry on the per-row verification loops, large
#: enough that the clock reads stay invisible in the profiles.
DEFAULT_CHECK_INTERVAL = 64

#: Callable producing the partial answer at the moment of expiry; only
#: evaluated when a check actually trips, so providers may do O(answer)
#: work (concatenating verified survivors) without taxing the hot loop.
PartialProvider = Callable[[], tuple[tuple[int, ...], ...]]

_active = threading.local()


class Deadline:
    """A wall-clock budget for one request.

    Parameters
    ----------
    budget:
        Seconds this request may consume, measured from construction.
    clock:
        Monotonic time source (seconds). Injectable for deterministic
        tests; defaults to :func:`time.monotonic`.
    """

    __slots__ = ("budget", "_clock", "_start")

    def __init__(
        self, budget: float, clock: Callable[[], float] = time.monotonic
    ) -> None:
        if budget <= 0:
            raise ParameterError(f"deadline budget must be positive, got {budget!r}")
        self.budget = float(budget)
        self._clock = clock
        self._start = clock()

    @classmethod
    def after(
        cls, seconds: float, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        """A deadline expiring ``seconds`` from now."""
        return cls(seconds, clock=clock)

    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        """Seconds consumed so far."""
        return self._clock() - self._start

    def remaining(self) -> float:
        """Seconds left before expiry (negative once expired)."""
        return self.budget - self.elapsed()

    @property
    def expired(self) -> bool:
        """Has the budget been consumed?"""
        return self.remaining() <= 0

    def check(self, partial: PartialProvider | None = None) -> None:
        """Cooperative checkpoint: raise on expiry, no-op otherwise.

        ``partial`` supplies the progressive partial answer attached to
        the raised :class:`~repro.errors.DeadlineExceeded`; it is only
        evaluated when the deadline has actually expired.
        """
        elapsed = self.elapsed()
        if elapsed < self.budget:
            return
        pairs = partial() if partial is not None else ()
        raise DeadlineExceeded(
            f"deadline of {self.budget:.3f}s exceeded after {elapsed:.3f}s "
            f"({len(pairs)} partial result(s) decided)",
            partial_pairs=tuple(tuple(int(x) for x in p) for p in pairs),
            elapsed=elapsed,
            budget=self.budget,
        )

    @contextmanager
    def activate(self) -> Iterator["Deadline"]:
        """Install this deadline as the calling thread's active deadline.

        Nested activations restore the previous deadline on exit, so an
        engine call made *inside* a deadline-scoped region keeps the
        outer deadline after its own completes.
        """
        previous = getattr(_active, "deadline", None)
        _active.deadline = self
        try:
            yield self
        finally:
            _active.deadline = previous

    def __repr__(self) -> str:
        state = "expired" if self.expired else f"{self.remaining():.3f}s left"
        return f"<Deadline budget={self.budget:.3f}s {state}>"


def active_deadline() -> Deadline | None:
    """The calling thread's active deadline, or ``None``.

    Algorithm hot loops read this once on entry; a ``None`` keeps the
    loop checkpoint-free (zero overhead for library callers that never
    touch the serving layer).
    """
    return getattr(_active, "deadline", None)
