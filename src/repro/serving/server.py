"""The asyncio HTTP/JSON serving front-end.

:class:`KSJQServer` turns an :class:`~repro.api.engine.Engine` into a
long-lived service (stdlib only — ``asyncio.start_server`` plus the
minimal framing of :mod:`repro.serving.protocol`):

``POST /query``
    Run a KSJQ (two-way or cascade) over registered datasets. Body::

        {"datasets": ["left", "right"], "k": 8,
         "algorithm": "auto", "mode": "faithful", "aggregate": null,
         "parallelism": "auto", "deadline_ms": 50,
         "progressive": false}

    With ``"progressive": true`` the response is a chunked JSON-lines
    stream: one ``{"pair": [...], "emitted_at": ...}`` line per
    skyline tuple *as it is decided* — the first line arrives while
    verification of the rest is still running — closed by one
    ``{"done": true, ...}`` line.

``POST /find_k``
    The paper's inverse problem. Body: ``{"datasets": [...],
    "delta": 100, "method": "binary", "objective": "at_least", ...}``.

``GET /healthz``, ``GET /metrics``
    Liveness and the :class:`~repro.serving.metrics.ServingMetrics`
    snapshot.

Request validation reuses the fail-fast :class:`~repro.api.spec
.QuerySpec` constructors, so a bad ``k`` or unknown algorithm is a
structured 400 before any work runs. Typed serving errors map to
structured JSON bodies — never tracebacks: deadline expiry is a 200
with ``"partial": true`` and the verified partial answer; saturation
is a 429 with ``Retry-After``.

Resilience (see :mod:`repro.resilience` and ``docs/resilience.md``):
responses served below full fidelity — deadline partials and
resilience-exhaustion bodies — carry ``"degraded": true``; exhaustion
of the engine's recovery ladder is a typed 503 (never a 500), and a
:class:`~repro.resilience.CircuitBreaker` sheds doomed work with 503 +
``Retry-After`` after ``breaker_threshold`` consecutive engine
failures. ``ServingConfig.fault_plan`` arms deterministic fault
injection for chaos tests; :func:`repro.serving.client
.request_with_backoff` is the matching client-side retry helper.

Threading model (enforced by the repo linter's R5 rule): the event
loop never blocks — every engine call runs on a fixed
``ThreadPoolExecutor`` via ``loop.run_in_executor`` (so per-query
``parallelism=`` and the catalog/delta layers compose unchanged), cost
probes run on a separate single-thread executor, and the
:class:`~repro.serving.admission.AdmissionController` is event-loop-
confined (reserve on arrival, release when the ``await`` resumes) so
it needs no locks.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..api.spec import QuerySpec
from ..errors import (
    AdmissionRejected,
    CircuitOpen,
    DeadlineExceeded,
    ReproError,
    ResilienceError,
)
from ..resilience import CircuitBreaker, FaultPlan, arm, checkpoint
from .admission import AdmissionController, CostProbe
from .deadline import Deadline
from .metrics import ServingMetrics
from .protocol import (
    HttpRequest,
    ProtocolError,
    chunk,
    json_response,
    last_chunk,
    read_request,
    stream_preamble,
)

if TYPE_CHECKING:
    from ..api.engine import Engine
    from ..core.result import QueryResult

__all__ = ["KSJQServer", "ServingConfig"]


@dataclass(frozen=True)
class ServingConfig:
    """Tunables of one server instance.

    Attributes
    ----------
    host, port:
        Bind address; port ``0`` picks a free port (reported by
        :attr:`KSJQServer.port` after :meth:`KSJQServer.start`).
    workers:
        Executor threads running engine calls — the service capacity.
    max_queue:
        Admitted requests allowed to wait beyond ``workers``; arrivals
        past ``workers + max_queue`` are shed with 429.
    default_deadline_ms, max_deadline_ms:
        Deadline applied when a request names none (``None`` = no
        default), and the cap a request may ask for.
    soft_cost_limit:
        Optional cost-probe threshold for shedding expensive requests
        while congested (see :mod:`repro.serving.admission`).
    probe_costs:
        Run the pre-admission cost probe (also warms the plan cache).
    breaker_threshold, breaker_reset_s:
        Circuit-breaker tuning: consecutive engine failures that trip
        the breaker open, and how long it stays open before admitting
        one half-open probe (see
        :class:`~repro.resilience.CircuitBreaker`).
    fault_plan:
        Optional :class:`~repro.resilience.FaultPlan` armed when the
        server is constructed — chaos testing hook; ``None`` (the
        default) leaves fault checkpoints as disarmed no-ops.
    """

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    max_queue: int = 8
    default_deadline_ms: float | None = None
    max_deadline_ms: float = 30_000.0
    soft_cost_limit: float | None = None
    probe_costs: bool = True
    breaker_threshold: int = 8
    breaker_reset_s: float = 1.0
    fault_plan: FaultPlan | None = None


class _BreakerJudgement:
    """One breaker verdict per admitted request, guaranteed.

    Created right after a successful ``breaker.allow()`` (which may
    have granted the half-open probe slot). The first ``success()`` /
    ``failure()`` call wins; ``settle()`` runs in the request's
    ``finally`` and records a neutral outcome if no verdict was ever
    reached — a client-error 400, an admission 429, a disconnect
    mid-stream — releasing the probe slot instead of leaking it.
    """

    def __init__(self, breaker: CircuitBreaker) -> None:
        self._breaker = breaker
        self._settled = False

    def success(self) -> None:
        if not self._settled:
            self._settled = True
            self._breaker.record_success()

    def failure(self) -> None:
        if not self._settled:
            self._settled = True
            self._breaker.record_failure()

    def settle(self) -> None:
        if not self._settled:
            self._settled = True
            self._breaker.record_neutral()


def _error_code(exc: BaseException) -> str:
    code = getattr(exc, "code", None)
    if isinstance(code, str):
        return code
    name = type(exc).__name__
    out = [name[0].lower()]
    for ch in name[1:]:
        if ch.isupper():
            out.append("_")
        out.append(ch.lower())
    return "".join(out)


def _error_dict(exc: BaseException) -> dict[str, object]:
    """Structured error body for a library error (never a traceback)."""
    body: dict[str, object] = {
        "code": _error_code(exc),
        "message": str(exc),
        "partial": bool(getattr(exc, "partial", False)),
    }
    if isinstance(exc, AdmissionRejected):
        body["retry_after_ms"] = round(exc.retry_after * 1000.0, 3)
        body["queue_depth"] = exc.queue_depth
    if isinstance(exc, CircuitOpen):
        body["retry_after_ms"] = round(exc.retry_after * 1000.0, 3)
    return body


def _internal_error_dict() -> dict[str, object]:
    return {
        "code": "internal",
        "message": "internal server error",
        "partial": False,
    }


def _result_rows(result: "QueryResult") -> list[list[int]]:
    """Result tuples as JSON-ready row-index lists (pairs or chains)."""
    rows = getattr(result, "pairs", None)
    if rows is None:
        rows = getattr(result, "chains", None)
    if rows is None:
        return []
    return [[int(x) for x in row] for row in rows]


def _parse_common(
    payload: dict[str, object], config: ServingConfig
) -> tuple[tuple[str, ...], float | None]:
    """Validated ``(dataset names, deadline seconds)`` of a request."""
    datasets = payload.get("datasets")
    if (
        not isinstance(datasets, list)
        or len(datasets) < 2
        or not all(isinstance(name, str) for name in datasets)
    ):
        raise ProtocolError(
            '"datasets" must be a list of two or more registered dataset names'
        )
    deadline_ms = payload.get("deadline_ms", config.default_deadline_ms)
    deadline_s: float | None = None
    if deadline_ms is not None:
        if not isinstance(deadline_ms, (int, float)) or isinstance(deadline_ms, bool):
            raise ProtocolError('"deadline_ms" must be a positive number')
        if deadline_ms <= 0:
            raise ProtocolError('"deadline_ms" must be a positive number')
        deadline_s = min(float(deadline_ms), config.max_deadline_ms) / 1000.0
    return tuple(datasets), deadline_s


def _require_int(payload: dict[str, object], name: str) -> int:
    value = payload.get(name)
    if not isinstance(value, int) or isinstance(value, bool):
        raise ProtocolError(f'"{name}" must be an integer, got {value!r}')
    return value


def _parse_query(
    payload: dict[str, object], config: ServingConfig
) -> tuple[tuple[str, ...], QuerySpec, bool, float | None]:
    """``POST /query`` body -> (inputs, spec, progressive, deadline_s).

    Spec construction delegates to the fail-fast
    :meth:`QuerySpec.for_ksjq` / :meth:`QuerySpec.for_cascade`
    validators, so malformed parameters raise before any work runs.
    """
    inputs, deadline_s = _parse_common(payload, config)
    k = _require_int(payload, "k")
    algorithm = payload.get("algorithm", "auto")
    mode = payload.get("mode", "faithful")
    aggregate = payload.get("aggregate")
    parallelism = payload.get("parallelism", "auto")
    if len(inputs) > 2:
        spec = QuerySpec.for_cascade(
            k=k,
            algorithm=algorithm,
            aggregate=aggregate,
            mode=mode,
            parallelism=parallelism,
        )
    else:
        spec = QuerySpec.for_ksjq(
            k=k,
            algorithm=algorithm,
            mode=mode,
            aggregate=aggregate,
            parallelism=parallelism,
        )
    progressive = bool(payload.get("progressive", False))
    return inputs, spec, progressive, deadline_s


def _parse_find_k(
    payload: dict[str, object], config: ServingConfig
) -> tuple[tuple[str, ...], QuerySpec, float | None]:
    """``POST /find_k`` body -> (inputs, spec, deadline_s)."""
    inputs, deadline_s = _parse_common(payload, config)
    delta = _require_int(payload, "delta")
    spec = QuerySpec.for_find_k(
        delta=delta,
        method=payload.get("method", "binary"),
        objective=payload.get("objective", "at_least"),
        mode=payload.get("mode", "faithful"),
        aggregate=payload.get("aggregate"),
    )
    if len(inputs) != 2:
        raise ProtocolError("find_k is only defined over two-way joins")
    return inputs, spec, deadline_s


class KSJQServer:
    """An asyncio HTTP/JSON front-end over one engine."""

    def __init__(self, engine: "Engine", config: ServingConfig | None = None) -> None:
        self.engine = engine
        self.config = config if config is not None else ServingConfig()
        self.metrics = ServingMetrics()
        self.admission = AdmissionController(
            self.config.workers,
            self.config.max_queue,
            soft_cost_limit=self.config.soft_cost_limit,
        )
        self._probe = CostProbe(engine)
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_threshold,
            reset_timeout=self.config.breaker_reset_s,
        )
        if self.config.fault_plan is not None:
            arm(self.config.fault_plan)
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="ksjq-worker"
        )
        self._probe_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="ksjq-probe"
        )
        self._server: asyncio.AbstractServer | None = None
        engine.attach_serving_metrics(self.metrics)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections (returns immediately)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the picked one)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        return int(self._server.sockets[0].getsockname()[1])

    @property
    def address(self) -> str:
        """``http://host:port`` of the running server."""
        return f"http://{self.config.host}:{self.port}"

    async def serve_forever(self) -> None:
        """Serve until cancelled (the ``python -m repro.serving`` loop)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting connections and release the worker pools."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._executor.shutdown(wait=True)
        self._probe_executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await read_request(reader)
            except ProtocolError as exc:
                writer.write(json_response(exc.status, {"error": _error_dict(exc)}))
                await writer.drain()
                return
            if request is None:
                return
            try:
                response = await self._dispatch(request, writer)
            except Exception:  # noqa: BLE001 - boundary: never leak a traceback
                response = json_response(500, {"error": _internal_error_dict()})
            if response is not None:
                writer.write(response)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # peer went away mid-response; nothing to salvage
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> bytes | None:
        """Route one request; returns the response bytes, or ``None``
        when the route streamed its response itself."""
        if request.path == "/healthz":
            if request.method != "GET":
                return self._method_not_allowed()
            return json_response(
                200,
                {
                    "status": "ok",
                    "in_flight": self.admission.in_flight,
                    "capacity": self.admission.capacity,
                },
            )
        if request.path == "/metrics":
            if request.method != "GET":
                return self._method_not_allowed()
            return json_response(
                200,
                {
                    "routes": self.metrics.snapshot(),
                    "admission": {
                        "in_flight": self.admission.in_flight,
                        "queue_depth": self.admission.queue_depth,
                        "capacity": self.admission.capacity,
                        "shed_total": self.admission.shed_total,
                    },
                    "breaker": {
                        "state": self.breaker.state,
                        "retry_after": self.breaker.retry_after,
                    },
                },
            )
        if request.path == "/query":
            if request.method != "POST":
                return self._method_not_allowed()
            return await self._serve_query(request, writer)
        if request.path == "/find_k":
            if request.method != "POST":
                return self._method_not_allowed()
            return await self._serve_find_k(request)
        return json_response(
            404,
            {
                "error": {
                    "code": "not_found",
                    "message": f"no route {request.path!r}",
                    "partial": False,
                }
            },
        )

    @staticmethod
    def _method_not_allowed() -> bytes:
        return json_response(
            405,
            {
                "error": {
                    "code": "method_not_allowed",
                    "message": "use GET for /healthz and /metrics, POST elsewhere",
                    "partial": False,
                }
            },
        )

    # ------------------------------------------------------------------
    # /query and /find_k
    # ------------------------------------------------------------------
    async def _serve_query(
        self, request: HttpRequest, writer: asyncio.StreamWriter
    ) -> bytes | None:
        route = "/query"
        try:
            inputs, spec, progressive, deadline_s = _parse_query(
                request.json(), self.config
            )
        except ReproError as exc:
            self.metrics.observe(route, 0.0, error=True)
            return json_response(400, {"error": _error_dict(exc)})
        return await self._admit_and_run(
            route, writer, inputs, spec, deadline_s, progressive
        )

    async def _serve_find_k(self, request: HttpRequest) -> bytes | None:
        route = "/find_k"
        try:
            inputs, spec, deadline_s = _parse_find_k(request.json(), self.config)
        except ReproError as exc:
            self.metrics.observe(route, 0.0, error=True)
            return json_response(400, {"error": _error_dict(exc)})
        return await self._admit_and_run(
            route, None, inputs, spec, deadline_s, progressive=False
        )

    async def _admit_and_run(
        self,
        route: str,
        writer: asyncio.StreamWriter | None,
        inputs: tuple[str, ...],
        spec: QuerySpec,
        deadline_s: float | None,
        progressive: bool,
    ) -> bytes | None:
        loop = asyncio.get_running_loop()

        # The breaker check runs before the cost probe: when the engine
        # is sick, probing it is exactly the work the breaker exists to
        # shed. Open-state rejections are 503s (not 429s) so clients
        # can distinguish "server sick" from "server busy".
        if not self.breaker.allow():
            exc = CircuitOpen(
                "circuit breaker open after repeated engine failures",
                retry_after=max(self.breaker.retry_after, 0.05),
            )
            self.admission.record_shed()
            self.metrics.observe(route, 0.0, shed=True)
            return json_response(
                503,
                {"error": _error_dict(exc)},
                headers={"Retry-After": f"{exc.retry_after:.3f}"},
            )

        # From here on the request may hold the breaker's half-open
        # probe slot. Every exit path — cost-probe 400, admission 429,
        # client disconnect mid-stream, neutral client error — must
        # settle the judgement exactly once, else the slot leaks and
        # allow() sheds all traffic forever (half_open has no timeout).
        judgement = _BreakerJudgement(self.breaker)
        try:
            cost: float | None = None
            if self.config.probe_costs:
                try:
                    cost = await loop.run_in_executor(
                        self._probe_executor, self._estimate_cost_sync, inputs, spec
                    )
                except ReproError as exc:
                    # Unknown dataset names, invalid hop/aggregate
                    # configs and similar binding failures surface
                    # here, before any admission slot is consumed.
                    self.metrics.observe(route, 0.0, error=True)
                    return json_response(400, {"error": _error_dict(exc)})

            try:
                self.admission.reserve(cost)
            except AdmissionRejected as exc:
                self.metrics.observe(route, 0.0, shed=True)
                return json_response(
                    429,
                    {"error": _error_dict(exc)},
                    headers={"Retry-After": f"{exc.retry_after:.3f}"},
                )

            # The deadline starts *here*: an admitted request's budget
            # covers queue wait plus service, so the configured deadline
            # is an end-to-end latency bound, not just a compute bound.
            deadline = Deadline(deadline_s) if deadline_s is not None else None
            admitted_at = time.monotonic()
            service_seconds: float | None = None
            try:
                if progressive:
                    assert writer is not None  # /find_k never streams
                    await self._stream_query(
                        route, writer, inputs, spec, deadline, judgement
                    )
                    service_seconds = time.monotonic() - admitted_at
                    return None
                try:
                    started, outcome = await loop.run_in_executor(
                        self._executor, self._run_sync, inputs, spec, deadline
                    )
                except Exception:
                    # Untyped failures never escape _run_sync's
                    # ReproError net by design; if one does, it still
                    # counts against the breaker before the 500
                    # boundary renders it.
                    judgement.failure()
                    raise
                self._judge_breaker(outcome, judgement)
                service_seconds = time.monotonic() - started
                queue_wait = started - admitted_at
                return self._render_outcome(
                    route, outcome, service_seconds, queue_wait
                )
            finally:
                self.admission.release(service_seconds)
        finally:
            judgement.settle()

    def _judge_breaker(
        self, outcome: "QueryResult | ReproError", judgement: "_BreakerJudgement"
    ) -> None:
        """Feed one engine outcome to the circuit breaker.

        Only *server-side* failures count: resilience exhaustion trips
        the breaker, successful runs (including verified deadline
        partials) close it, and client errors — bad parameters, unknown
        datasets — say nothing about the engine's health, so they are
        left neutral (the judgement's settle() releases any probe slot).
        """
        if isinstance(outcome, ResilienceError):
            judgement.failure()
        elif isinstance(outcome, DeadlineExceeded) or not isinstance(
            outcome, ReproError
        ):
            judgement.success()

    def _estimate_cost_sync(
        self, inputs: tuple[str, ...], spec: QuerySpec
    ) -> float:
        # Runs on the dedicated probe thread (R5: engine calls never
        # run directly inside the event loop's async handlers).
        return self._probe.estimate(inputs, spec)

    def _run_sync(
        self,
        inputs: tuple[str, ...],
        spec: QuerySpec,
        deadline: Deadline | None,
    ) -> tuple[float, "QueryResult | ReproError"]:
        """One engine call on a worker thread.

        Returns ``(service start time, result-or-library-error)``; the
        error is a value, not a raise, so the event loop can render a
        structured body without re-entering exception machinery.
        """
        started = time.monotonic()
        try:
            checkpoint("serving.execute")
            result = self.engine.execute(*inputs, spec=spec, deadline=deadline)
        except ReproError as exc:
            return started, exc
        return started, result

    def _render_outcome(
        self,
        route: str,
        outcome: "QueryResult | ReproError",
        service_seconds: float,
        queue_wait: float,
    ) -> bytes:
        if isinstance(outcome, DeadlineExceeded):
            self.metrics.observe(
                route,
                service_seconds,
                queue_wait=queue_wait,
                deadline_hit=True,
                degraded=True,
            )
            return json_response(
                200,
                {
                    "pairs": [list(p) for p in outcome.partial_pairs],
                    "count": len(outcome.partial_pairs),
                    "partial": True,
                    "degraded": True,
                    "elapsed": outcome.elapsed,
                    "budget": outcome.budget,
                    "error": _error_dict(outcome),
                },
            )
        if isinstance(outcome, ResilienceError):
            # The recovery ladder (retry -> pool rebuild -> degrade to
            # threads/serial) ran dry: a typed 503, never a traceback
            # and never an unverified answer.
            self.metrics.observe(route, service_seconds, error=True, degraded=True)
            return json_response(
                503,
                {"degraded": True, "error": _error_dict(outcome)},
                headers={
                    "Retry-After": f"{max(self.breaker.retry_after, 0.05):.3f}"
                },
            )
        if isinstance(outcome, ReproError):
            self.metrics.observe(route, service_seconds, error=True)
            return json_response(400, {"error": _error_dict(outcome)})
        self.metrics.observe(route, service_seconds, queue_wait=queue_wait)
        body: dict[str, object] = {
            "count": outcome.count,
            "partial": False,
            "elapsed": outcome.elapsed,
        }
        algorithm = getattr(outcome, "algorithm", None)
        if algorithm is not None:
            body["algorithm"] = algorithm
        k = getattr(outcome, "k", None)
        if k is not None:
            body["k"] = int(k)
        if hasattr(outcome, "pairs") or hasattr(outcome, "chains"):
            body["pairs"] = _result_rows(outcome)
        if hasattr(outcome, "steps"):  # FindKResult: the probe trace
            body["method"] = outcome.method
            body["delta"] = outcome.delta
            body["steps"] = outcome.to_records()
            body["full_evaluations"] = outcome.full_evaluations
        return json_response(200, body)

    # ------------------------------------------------------------------
    # Progressive streaming
    # ------------------------------------------------------------------
    async def _stream_query(
        self,
        route: str,
        writer: asyncio.StreamWriter,
        inputs: tuple[str, ...],
        spec: QuerySpec,
        deadline: Deadline | None,
        judgement: "_BreakerJudgement",
    ) -> None:
        """Stream one progressive query as chunked JSON lines.

        A worker thread consumes the engine's progressive generator
        and forwards each decided tuple to the event loop through an
        ``asyncio.Queue`` (``call_soon_threadsafe`` — the queue is not
        thread-safe from the producer side). Each tuple is flushed as
        its own HTTP chunk, so the client observes the first skyline
        pair while verification of the rest is still running.
        """
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue[tuple[str, object]] = asyncio.Queue()
        started = time.monotonic()
        future = loop.run_in_executor(
            self._executor, self._consume_stream_sync, inputs, spec, deadline, loop, queue
        )
        writer.write(stream_preamble())
        await writer.drain()
        count = 0
        deadline_hit = False
        error = False
        while True:
            kind, value = await queue.get()
            if kind == "pair":
                count += 1
                writer.write(
                    chunk({"pair": list(value), "emitted_at": time.monotonic()})  # type: ignore[arg-type]
                )
                await writer.drain()
                continue
            final: dict[str, object] = {
                "done": True,
                "count": count,
                "partial": kind == "deadline",
                "degraded": kind != "done",
                "emitted_at": time.monotonic(),
            }
            if kind == "deadline":
                deadline_hit = True
                final["error"] = _error_dict(value)  # type: ignore[arg-type]
            elif kind == "error":
                error = True
                final["error"] = (
                    _error_dict(value)  # type: ignore[arg-type]
                    if isinstance(value, ReproError)
                    else _internal_error_dict()
                )
            if kind == "error":
                # Same policy as _judge_breaker: resilience exhaustion
                # and untyped failures count against the breaker;
                # client-side ReproErrors stay neutral (the caller's
                # settle() releases any probe slot).
                if isinstance(value, ResilienceError) or not isinstance(
                    value, ReproError
                ):
                    judgement.failure()
            else:
                judgement.success()
            writer.write(chunk(final))
            writer.write(last_chunk())
            await writer.drain()
            break
        await future
        self.metrics.observe(
            route,
            time.monotonic() - started,
            deadline_hit=deadline_hit,
            error=error,
            degraded=deadline_hit or error,
        )

    def _consume_stream_sync(
        self,
        inputs: tuple[str, ...],
        spec: QuerySpec,
        deadline: Deadline | None,
        loop: asyncio.AbstractEventLoop,
        queue: "asyncio.Queue[tuple[str, object]]",
    ) -> None:
        # Runs on a worker thread; every queue interaction hops back to
        # the event loop. Exceptions become terminal queue items — the
        # stream must always end with exactly one non-"pair" item.
        def put(item: tuple[str, object]) -> None:
            loop.call_soon_threadsafe(queue.put_nowait, item)

        try:
            stream = self.engine.stream(*inputs, spec=spec, deadline=deadline)
            for item in stream:
                put(("pair", item))
            put(("done", None))
        except DeadlineExceeded as exc:
            put(("deadline", exc))
        except BaseException as exc:  # noqa: BLE001 - boundary thread
            put(("error", exc))
