"""Client-side backoff: honoring ``Retry-After`` on 429/503 responses.

The serving layer sheds load two ways — admission rejection (429,
server *busy*) and an open circuit breaker (503, server *sick*) — and
both responses carry a ``Retry-After`` header sized from the server's
own state (queue drain estimate, breaker reset timeout). A
well-behaved client should wait *that long*, not a guessed constant:
:func:`request_with_backoff` is the loop the repo's own benchmark and
smoke clients use, kept transport-agnostic (the caller supplies the
``send`` callable) so it works over the test harness's raw-socket
client as well as any HTTP library.

Retries are bounded (``max_attempts``) and the per-attempt wait is
capped (``max_backoff``); when the server names no ``Retry-After`` the
helper falls back to deterministic exponential backoff from
:class:`repro.resilience.RetryPolicy` — the same jitter discipline the
execution layer uses, so chaos runs stay reproducible end to end.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Mapping
from typing import TypeVar

from ..resilience import RetryPolicy

__all__ = ["RETRYABLE_STATUSES", "parse_retry_after", "request_with_backoff"]

#: Statuses the serving layer uses for load shedding; anything else is
#: either success or a non-transient error and is returned immediately.
RETRYABLE_STATUSES: tuple[int, ...] = (429, 503)

#: Fallback backoff when a retryable response names no ``Retry-After``.
_FALLBACK_POLICY = RetryPolicy(
    max_attempts=16, base_delay=0.05, max_delay=2.0, jitter=0.25, seed=0
)

R = TypeVar("R")


def parse_retry_after(headers: Mapping[str, str]) -> float | None:
    """The ``Retry-After`` delay in seconds, or ``None`` when absent.

    Only the delta-seconds form (which this repo's server emits) is
    understood; HTTP-date values and garbage return ``None`` so the
    caller falls back to its own backoff schedule.
    """
    for name, value in headers.items():
        if name.lower() == "retry-after":
            try:
                delay = float(value)
            except (TypeError, ValueError):
                return None
            return max(0.0, delay)
    return None


def request_with_backoff(
    send: Callable[[], tuple[int, Mapping[str, str], R]],
    max_attempts: int = 4,
    max_backoff: float = 2.0,
    sleep: Callable[[float], None] = time.sleep,
) -> tuple[int, Mapping[str, str], R]:
    """Issue ``send()`` until it stops being shed, honoring the server's
    ``Retry-After`` hints.

    Parameters
    ----------
    send:
        Zero-argument callable performing one request; returns
        ``(status, headers, body)``. Transport errors propagate — this
        helper only handles *shed* responses, not broken sockets.
    max_attempts:
        Total attempts (first try included); must be >= 1. The last
        attempt's response is returned even when still shed, so callers
        always see a real server response.
    max_backoff:
        Cap (seconds) on any single wait, whatever the server asks for.
    sleep:
        Injectable for tests; defaults to :func:`time.sleep`.
    """
    if max_attempts < 1:
        raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
    attempt = 0
    while True:
        status, headers, body = send()
        attempt += 1
        if status not in RETRYABLE_STATUSES or attempt >= max_attempts:
            return status, headers, body
        delay = parse_retry_after(headers)
        if delay is None:
            delay = _FALLBACK_POLICY.delay(attempt)
        sleep(min(max_backoff, delay))
