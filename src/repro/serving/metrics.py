"""Serving metrics: per-route counters and latency histograms.

The serving layer records one observation per finished (or shed)
request: route, outcome, service latency, and time spent waiting for
an executor slot. :class:`ServingMetrics` aggregates them into
per-route counters plus two log-bucketed :class:`LatencyHistogram`
objects (service latency and queue wait), and renders everything as a
plain-JSON dict for ``GET /metrics`` and
``Engine.cache_info()["serving"]``.

Histograms are fixed-size (one ``int`` per bucket), so recording is
O(number of buckets) in the worst case and allocation-free — cheap
enough to sit on every request's completion path. Quantiles
(:meth:`LatencyHistogram.quantile`) interpolate linearly inside the
winning bucket, which is the usual monitoring-system trade-off:
exact counts, approximate (but bounded-error) percentiles.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = ["LatencyHistogram", "RouteCounters", "ServingMetrics"]

#: Upper bounds (seconds) of the histogram buckets: log-spaced from
#: 100 µs to ~104 s, doubling each step; the last bucket is open-ended.
_BUCKET_BOUNDS: tuple[float, ...] = tuple(1e-4 * 2**i for i in range(21))


class LatencyHistogram:
    """A log-bucketed latency histogram with interpolated quantiles."""

    __slots__ = ("counts", "total", "sum")

    def __init__(self) -> None:
        self.counts: list[int] = [0] * (len(_BUCKET_BOUNDS) + 1)
        self.total = 0
        self.sum = 0.0

    def record(self, seconds: float) -> None:
        """Add one observation (negative values clamp to zero)."""
        seconds = max(0.0, float(seconds))
        self.counts[bisect_left(_BUCKET_BOUNDS, seconds)] += 1
        self.total += 1
        self.sum += seconds

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (``0 < q <= 1``) in seconds.

        Walks the cumulative counts to the winning bucket and
        interpolates linearly between its bounds; ``0.0`` with no
        observations. The open-ended last bucket reports its lower
        bound (a floor, which is the conservative direction for SLOs).
        """
        if self.total == 0:
            return 0.0
        rank = q * self.total
        cumulative = 0
        for i, count in enumerate(self.counts):
            if count == 0:
                continue
            if cumulative + count >= rank:
                lower = _BUCKET_BOUNDS[i - 1] if i > 0 else 0.0
                if i >= len(_BUCKET_BOUNDS):
                    return lower
                upper = _BUCKET_BOUNDS[i]
                fraction = (rank - cumulative) / count
                return lower + (upper - lower) * fraction
            cumulative += count
        return _BUCKET_BOUNDS[-1]

    @property
    def mean(self) -> float:
        """Mean observation in seconds (0.0 with no observations)."""
        return self.sum / self.total if self.total else 0.0

    def as_dict(self) -> dict[str, float]:
        """Summary rendering: count, mean, p50, p99 (seconds)."""
        return {
            "count": float(self.total),
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
        }


class RouteCounters:
    """Counters + histograms for one route (not thread-safe on its own;
    :class:`ServingMetrics` serializes access)."""

    __slots__ = (
        "requests",
        "errors",
        "shed",
        "deadline_hits",
        "degraded",
        "latency",
        "queue_wait",
    )

    def __init__(self) -> None:
        self.requests = 0
        self.errors = 0
        self.shed = 0
        self.deadline_hits = 0
        self.degraded = 0
        self.latency = LatencyHistogram()
        self.queue_wait = LatencyHistogram()

    def as_dict(self) -> dict[str, object]:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "shed": self.shed,
            "deadline_hits": self.deadline_hits,
            "degraded": self.degraded,
            "latency": self.latency.as_dict(),
            "queue_wait": self.queue_wait.as_dict(),
        }


class ServingMetrics:
    """Thread-safe per-route serving metrics.

    Observations arrive from the event loop (sheds, parse errors) and
    from executor threads (in-flight completions), so updates hold a
    small internal lock; :meth:`snapshot` returns plain data and is
    safe to call from anywhere (``Engine.cache_info`` calls it outside
    the engine lock).

    # guarded-by: _lock: _routes
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._routes: dict[str, RouteCounters] = {}

    def observe(
        self,
        route: str,
        seconds: float,
        queue_wait: float = 0.0,
        error: bool = False,
        shed: bool = False,
        deadline_hit: bool = False,
        degraded: bool = False,
    ) -> None:
        """Record one finished (or shed) request on ``route``.

        ``seconds`` is service latency (queueing excluded); ``shed``
        requests never ran, so only their counters move. ``degraded``
        marks responses served below full fidelity — deadline partials
        and resilience-exhaustion bodies (see :mod:`repro.resilience`).
        """
        with self._lock:
            counters = self._routes.get(route)
            if counters is None:
                counters = self._routes[route] = RouteCounters()
            counters.requests += 1
            if error:
                counters.errors += 1
            if degraded:
                counters.degraded += 1
            if shed:
                counters.shed += 1
                return
            if deadline_hit:
                counters.deadline_hits += 1
            counters.latency.record(seconds)
            counters.queue_wait.record(queue_wait)

    def snapshot(self) -> dict[str, object]:
        """All routes' counters as plain JSON-serializable data."""
        with self._lock:
            return {route: c.as_dict() for route, c in self._routes.items()}
