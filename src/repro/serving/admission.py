"""Admission control: bounded queueing and load shedding.

The server runs engine calls on a fixed executor pool of
``max_workers`` threads. Without admission control, load above
capacity queues without bound — every request eventually "succeeds"
with unbounded latency, which for a deadline-driven service is the
worst possible behavior. :class:`AdmissionController` bounds the
queue instead: once ``max_workers + max_queue`` requests are in
flight, further arrivals are *shed* with a typed
:class:`~repro.errors.AdmissionRejected` (HTTP 429) carrying a
``Retry-After`` hint derived from the EWMA service time and the queue
depth ahead of the rejected request.

A congested (but not full) queue can additionally price out
*expensive* requests: :class:`CostProbe` estimates a request's cost
from the engine's cost model — :class:`~repro.core.plan.PlanStats`
cardinalities feeding :func:`~repro.api.engine.choose_algorithm`'s
dominance-comparison estimates — and requests whose estimate exceeds
``soft_cost_limit`` are shed while they would have to queue
(they still run when a worker is free immediately).

Concurrency: the controller is **event-loop-confined** — every method
is called on the event loop thread (reserve on arrival, release after
``await run_in_executor`` resumes), so it needs no locks. That is
exactly what the repo linter's R5 rule enforces for the serving
package: no lock acquisition inside ``async def``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import AdmissionRejected

if TYPE_CHECKING:
    from ..api.engine import Engine
    from ..api.spec import QuerySpec

__all__ = ["AdmissionController", "CostProbe"]

#: Smoothing factor of the EWMA service-time estimate.
_EWMA_ALPHA = 0.2

#: Initial service-time guess (seconds) before any request completes.
_INITIAL_SERVICE_ESTIMATE = 0.05

#: Floor of the Retry-After hint, seconds.
_MIN_RETRY_AFTER = 0.05


class AdmissionController:
    """Bounded-queue admission with cost-aware soft shedding.

    Parameters
    ----------
    max_workers:
        Executor threads actually running engine calls.
    max_queue:
        Requests allowed to wait beyond the running ones; arrivals
        past ``max_workers + max_queue`` are shed.
    soft_cost_limit:
        Optional cost threshold (dominance-comparison units, the
        :class:`CostProbe` scale): congested arrivals estimated above
        it are shed even while the queue has room. ``None`` disables
        the soft policy.
    """

    def __init__(
        self,
        max_workers: int,
        max_queue: int,
        soft_cost_limit: float | None = None,
    ) -> None:
        self.max_workers = max(1, int(max_workers))
        self.max_queue = max(0, int(max_queue))
        self.soft_cost_limit = soft_cost_limit
        self._in_flight = 0
        self._ewma_service = _INITIAL_SERVICE_ESTIMATE
        self.shed_total = 0

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Requests admitted and not yet released (running + queued)."""
        return self._in_flight

    @property
    def queue_depth(self) -> int:
        """Admitted requests beyond the worker count (i.e. waiting)."""
        return max(0, self._in_flight - self.max_workers)

    @property
    def capacity(self) -> int:
        """Hard in-flight bound (``max_workers + max_queue``)."""
        return self.max_workers + self.max_queue

    def retry_after(self) -> float:
        """Suggested client back-off: the estimated time for the
        current queue to drain one slot."""
        waves = (self.queue_depth // self.max_workers) + 1
        return max(_MIN_RETRY_AFTER, self._ewma_service * waves)

    # ------------------------------------------------------------------
    def reserve(self, cost: float | None = None) -> None:
        """Admit one request or raise :class:`AdmissionRejected`.

        ``cost`` (when known from the probe) enables the soft policy:
        a request that would have to queue is shed when its estimate
        exceeds ``soft_cost_limit``. Callers must pair every
        successful ``reserve`` with exactly one :meth:`release`.
        """
        depth = self._in_flight
        if depth >= self.capacity:
            self.shed_total += 1
            raise AdmissionRejected(
                f"server saturated: {depth} requests in flight "
                f"(capacity {self.capacity})",
                retry_after=self.retry_after(),
                queue_depth=depth,
            )
        if (
            cost is not None
            and self.soft_cost_limit is not None
            and depth >= self.max_workers
            and cost > self.soft_cost_limit
        ):
            self.shed_total += 1
            raise AdmissionRejected(
                f"queue congested ({depth} in flight) and estimated cost "
                f"{cost:.3g} exceeds the soft limit {self.soft_cost_limit:.3g}",
                retry_after=self.retry_after(),
                queue_depth=depth,
            )
        self._in_flight += 1

    def record_shed(self) -> None:
        """Count one request shed *outside* :meth:`reserve` — e.g. by
        the serving circuit breaker — so ``shed_total`` stays the single
        load-shedding total reported at ``/metrics``."""
        self.shed_total += 1

    def release(self, service_seconds: float | None = None) -> None:
        """Return one admitted request's slot; feed the EWMA when the
        request actually ran (``service_seconds`` is not ``None``)."""
        self._in_flight = max(0, self._in_flight - 1)
        if service_seconds is not None and service_seconds >= 0:
            self._ewma_service += _EWMA_ALPHA * (
                service_seconds - self._ewma_service
            )

    def __repr__(self) -> str:
        return (
            f"<AdmissionController in_flight={self._in_flight}/"
            f"{self.capacity} ewma={self._ewma_service * 1000:.1f}ms "
            f"shed={self.shed_total}>"
        )


class CostProbe:
    """Pre-admission cost estimate from the engine's cost model.

    Wraps :meth:`Engine.explain`: binding the plan is cheap (group
    index arithmetic over :class:`~repro.core.plan.PlanStats`
    cardinalities — the same statistics that feed
    ``delta_pairs_estimate`` on the maintenance path; no join is
    materialized), and the probe *warms the plan cache*, so an
    admitted request immediately reuses the bound plan. The server
    runs probes on a dedicated single-thread executor so a slow probe
    can never occupy a serving worker.
    """

    def __init__(self, engine: "Engine") -> None:
        self._engine = engine

    def estimate(self, inputs: tuple[object, ...], spec: "QuerySpec") -> float:
        """Estimated cost of running ``spec`` over ``inputs``, in the
        cost model's dominance-comparison units."""
        report = self._engine.explain(*inputs, spec=spec)
        if report.algorithm in report.costs:
            return float(report.costs[report.algorithm])
        if report.costs:
            return float(min(report.costs.values()))
        return 0.0
