"""``python -m repro.serving`` — run the demo server.

Registers a synthetic relation pair (``left`` / ``right``, the paper's
independent-distribution generator) on a fresh engine and serves it::

    $ python -m repro.serving --port 8075
    serving on http://127.0.0.1:8075

    $ curl -s http://127.0.0.1:8075/query \\
        -d '{"datasets": ["left", "right"], "k": 8, "deadline_ms": 500}'

See ``docs/serving.md`` for the full endpoint reference.
"""

from __future__ import annotations

import argparse
import asyncio
from collections.abc import Sequence

from ..api.engine import Engine
from ..datagen.synthetic import generate_relation_pair
from .server import KSJQServer, ServingConfig

__all__ = ["build_demo_engine", "main"]


def build_demo_engine(n: int = 400, d: int = 6, g: int = 10, seed: int = 42) -> Engine:
    """An engine with a synthetic ``left``/``right`` pair registered."""
    left, right = generate_relation_pair(n=n, d=d, g=g, a=0, seed=seed)
    engine = Engine()
    engine.register("left", left)
    engine.register("right", right)
    return engine


async def _amain(args: argparse.Namespace) -> None:
    engine = build_demo_engine(n=args.n, seed=args.seed)
    config = ServingConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_queue=args.max_queue,
        default_deadline_ms=args.default_deadline_ms,
    )
    server = KSJQServer(engine, config)
    await server.start()
    print(f"serving on {server.address}", flush=True)
    try:
        await server.serve_forever()
    finally:
        await server.stop()


def main(argv: Sequence[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving",
        description="Serve k-dominant skyline join queries over HTTP/JSON.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 picks a free port")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--max-queue", type=int, default=8)
    parser.add_argument(
        "--default-deadline-ms",
        type=float,
        default=None,
        help="deadline applied when a request names none",
    )
    parser.add_argument("--n", type=int, default=400, help="rows per demo relation")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)
    try:
        asyncio.run(_amain(args))
    except KeyboardInterrupt:
        pass


if __name__ == "__main__":
    main()
