"""repro.serving — the asyncio HTTP/JSON serving subsystem.

Turns an :class:`repro.api.Engine` into a long-lived service:

* :mod:`repro.serving.deadline` — per-request deadlines propagated to
  the algorithm layer via cooperative cancellation checkpoints
  (:class:`Deadline`, :func:`active_deadline`);
* :mod:`repro.serving.admission` — bounded-queue admission control and
  load shedding (:class:`AdmissionController`), with a cost probe over
  the engine's plan statistics;
* :mod:`repro.serving.client` — client-side retry/backoff honoring the
  server's ``Retry-After`` hints (:func:`request_with_backoff`);
* :mod:`repro.serving.metrics` — per-route counters and latency
  histograms (:class:`ServingMetrics`) surfaced at ``/metrics`` and in
  ``Engine.cache_info()``;
* :mod:`repro.serving.server` — the asyncio server itself
  (:class:`KSJQServer`): ``POST /query``, ``POST /find_k``,
  ``GET /healthz``, ``GET /metrics``, with progressive JSON-lines
  streaming over chunked responses.

Run the demo server with ``python -m repro.serving``.

Exports resolve lazily (PEP 562): the algorithm layer imports
:mod:`repro.serving.deadline` for its checkpoints, and an eager
``from .server import ...`` here would close an import cycle back
through :mod:`repro.api`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .admission import AdmissionController, CostProbe
    from .client import parse_retry_after, request_with_backoff
    from .deadline import DEFAULT_CHECK_INTERVAL, Deadline, active_deadline
    from .metrics import LatencyHistogram, ServingMetrics
    from .server import KSJQServer, ServingConfig

__all__ = [
    "AdmissionController",
    "CostProbe",
    "DEFAULT_CHECK_INTERVAL",
    "Deadline",
    "KSJQServer",
    "LatencyHistogram",
    "ServingConfig",
    "ServingMetrics",
    "active_deadline",
    "parse_retry_after",
    "request_with_backoff",
]

_LAZY = {
    "AdmissionController": "admission",
    "CostProbe": "admission",
    "DEFAULT_CHECK_INTERVAL": "deadline",
    "Deadline": "deadline",
    "active_deadline": "deadline",
    "LatencyHistogram": "metrics",
    "ServingMetrics": "metrics",
    "KSJQServer": "server",
    "ServingConfig": "server",
    "parse_retry_after": "client",
    "request_with_backoff": "client",
}


def __getattr__(name: str) -> object:
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value  # cache for the next lookup
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))
