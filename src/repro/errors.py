"""Exception and warning hierarchy for the ``repro`` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures without
masking programming errors (``TypeError`` etc. still propagate).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SchemaError",
    "JoinError",
    "ParameterError",
    "AggregateError",
    "AlgorithmError",
    "CatalogError",
    "ResilienceError",
    "ServingError",
    "DeadlineExceeded",
    "AdmissionRejected",
    "CircuitOpen",
    "ReproWarning",
    "SoundnessWarning",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SchemaError(ReproError):
    """Schema construction or validation failed.

    Raised for duplicate attribute names, unknown attributes, mismatched
    column lengths, non-numeric skyline attributes, and similar problems.
    """


class JoinError(ReproError):
    """A join could not be performed.

    Raised when join attributes are missing or incompatible between the
    two relations, or when a theta-join condition is malformed.
    """


class ParameterError(ReproError):
    """An algorithm parameter is out of its valid range.

    The KSJQ problem constrains ``max(d1, d2) < k <= d`` (Sec. 3 of the
    paper); violations raise this error unless validation is disabled.
    """


class AggregateError(ReproError):
    """An aggregate specification is invalid.

    Raised for unknown aggregate functions, mismatched aggregate pairs,
    or use of a non-strictly-monotone aggregate with an optimized
    algorithm whose pruning proof requires strict monotonicity.
    """


class AlgorithmError(ReproError):
    """An algorithm was invoked on inputs it does not support."""


class CatalogError(ReproError):
    """A catalog lookup or registration failed.

    Raised when a query names a dataset that was never registered, or
    when a registration conflicts with an existing entry.
    """


class ResilienceError(ReproError):
    """A fault-tolerance path exhausted its recovery options.

    The resilience layer (see :mod:`repro.resilience`) retries
    transient shard failures, rebuilds broken process pools, and
    degrades process → thread → serial before giving up. When every
    rung of that ladder fails — or a fault-injection checkpoint fires
    deliberately — the failure surfaces as this *typed* error rather
    than a silently wrong (unverified) answer. Carries a stable
    machine-readable ``code`` so the serving layer can render it as a
    structured 503 instead of a traceback.
    """

    #: Machine-readable error code rendered in JSON error bodies.
    code = "resilience_exhausted"


class ServingError(ReproError):
    """Base class for errors raised by the serving front-end.

    Serving errors carry a stable machine-readable ``code`` so the HTTP
    layer can render them as structured JSON error bodies instead of
    tracebacks.
    """

    #: Machine-readable error code rendered in JSON error bodies.
    code = "serving_error"


class DeadlineExceeded(ServingError):
    """A query's deadline expired at a cooperative checkpoint.

    Raised from the cancellation checkpoints inside the algorithm hot
    loops (see :mod:`repro.serving.deadline`). Carries the progressive
    *partial answer* decided before expiry: every pair (or chain) in
    ``partial_pairs`` was fully verified — or is a Theorem-1/3 "yes"
    tuple of a faithful-mode query — so the partial answer is always a
    subset of the full answer the same spec would return.

    Attributes
    ----------
    partial_pairs:
        Tuples of row indices decided before expiry (``(left, right)``
        pairs for two-way queries, m-tuples for cascades). Plain Python
        ints so the error is cheap to serialize.
    elapsed:
        Seconds consumed when the deadline tripped.
    budget:
        The deadline budget in seconds.
    """

    code = "deadline_exceeded"

    def __init__(
        self,
        message: str,
        partial_pairs: tuple[tuple[int, ...], ...] = (),
        elapsed: float = 0.0,
        budget: float = 0.0,
    ) -> None:
        super().__init__(message)
        self.partial_pairs = partial_pairs
        self.elapsed = elapsed
        self.budget = budget

    @property
    def partial(self) -> bool:
        """Does this error carry a (possibly empty) partial answer?"""
        return True


class AdmissionRejected(ServingError):
    """The serving layer shed this request instead of queueing it.

    Raised by :class:`repro.serving.admission.AdmissionController` when
    the worker pool is saturated and the bounded queue is full (or the
    request's cost probe prices it out of a congested queue). Rendered
    as HTTP 429 with a ``Retry-After`` hint.

    Attributes
    ----------
    retry_after:
        Suggested client back-off in seconds (EWMA service time times
        the queue depth ahead of the request).
    queue_depth:
        Requests queued or running when the rejection was decided.
    """

    code = "admission_rejected"

    def __init__(
        self, message: str, retry_after: float = 1.0, queue_depth: int = 0
    ) -> None:
        super().__init__(message)
        self.retry_after = retry_after
        self.queue_depth = queue_depth


class CircuitOpen(ServingError):
    """The serving circuit breaker is open: engine execution is being
    shed while the breaker waits out its reset timeout.

    Raised (and rendered as HTTP 503 with a ``Retry-After`` hint) when
    :class:`repro.resilience.CircuitBreaker` has seen
    ``failure_threshold`` consecutive engine failures and has not yet
    admitted a successful half-open probe.

    Attributes
    ----------
    retry_after:
        Seconds until the breaker next admits a probe request.
    """

    code = "circuit_open"

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class ReproWarning(UserWarning):
    """Base class for warnings emitted by the ``repro`` library."""


class SoundnessWarning(ReproWarning):
    """The requested configuration may return a superset of the answer.

    Emitted when the *faithful* grouping/dominator algorithms run with
    ``a >= 2`` aggregate attributes, where the paper's Theorem 3 does not
    hold (see DESIGN.md, "Soundness errata"). Use ``mode="exact"`` for a
    guaranteed-correct answer.
    """
