"""Exception and warning hierarchy for the ``repro`` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures without
masking programming errors (``TypeError`` etc. still propagate).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SchemaError",
    "JoinError",
    "ParameterError",
    "AggregateError",
    "AlgorithmError",
    "CatalogError",
    "ReproWarning",
    "SoundnessWarning",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SchemaError(ReproError):
    """Schema construction or validation failed.

    Raised for duplicate attribute names, unknown attributes, mismatched
    column lengths, non-numeric skyline attributes, and similar problems.
    """


class JoinError(ReproError):
    """A join could not be performed.

    Raised when join attributes are missing or incompatible between the
    two relations, or when a theta-join condition is malformed.
    """


class ParameterError(ReproError):
    """An algorithm parameter is out of its valid range.

    The KSJQ problem constrains ``max(d1, d2) < k <= d`` (Sec. 3 of the
    paper); violations raise this error unless validation is disabled.
    """


class AggregateError(ReproError):
    """An aggregate specification is invalid.

    Raised for unknown aggregate functions, mismatched aggregate pairs,
    or use of a non-strictly-monotone aggregate with an optimized
    algorithm whose pruning proof requires strict monotonicity.
    """


class AlgorithmError(ReproError):
    """An algorithm was invoked on inputs it does not support."""


class CatalogError(ReproError):
    """A catalog lookup or registration failed.

    Raised when a query names a dataset that was never registered, or
    when a registration conflicts with an existing entry.
    """


class ReproWarning(UserWarning):
    """Base class for warnings emitted by the ``repro`` library."""


class SoundnessWarning(ReproWarning):
    """The requested configuration may return a superset of the answer.

    Emitted when the *faithful* grouping/dominator algorithms run with
    ``a >= 2`` aggregate attributes, where the paper's Theorem 3 does not
    hold (see DESIGN.md, "Soundness errata"). Use ``mode="exact"`` for a
    guaranteed-correct answer.
    """
