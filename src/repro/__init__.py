"""repro — K-Dominant Skyline Join Queries (KSJQ).

A complete reproduction of Awasthi, Bhattacharya, Gupta & Singh,
"K-Dominant Skyline Join Queries: Extending the Join Paradigm to
K-Dominant Skylines" (ICDE 2017), as a reusable Python library:

* :mod:`repro.relational` — schemas, relations, joins and aggregation;
* :mod:`repro.skyline` — dominance primitives and skyline algorithms;
* :mod:`repro.core` — SS/SN/NN categorization, the naïve / grouping /
  dominator-based KSJQ algorithms, the cartesian and theta-join
  variants, and the find-k algorithms;
* :mod:`repro.api` — the query engine: cached join plans, cost-based
  algorithm choice, fluent query building, explain plans;
* :mod:`repro.serving` — the asyncio HTTP/JSON front-end: per-request
  deadlines with verified partial answers, bounded-queue admission
  control, progressive streaming (``python -m repro.serving``);
* :mod:`repro.resilience` — deterministic fault injection, bounded
  retry/backoff, the recovery ladder behind the parallel executors,
  and the serving circuit breaker (see ``docs/resilience.md``);
* :mod:`repro.datagen` — synthetic generators and the flight dataset;
* :mod:`repro.experiments` — the harness regenerating every figure of
  the paper's evaluation.

Quickstart — hold an :class:`Engine` and issue queries through it; join
preparation is cached across queries over the same relations::

    import repro

    r1 = repro.Relation.from_records(schema1, rows1)
    r2 = repro.Relation.from_records(schema2, rows2)

    engine = repro.Engine()
    result = engine.query(r1, r2).aggregate("sum").k(7).run()
    for record in result.to_records():          # r1.* / r2.* columns
        ...
    tuned = engine.query(r1, r2).aggregate("sum").find_k(delta=100)
    print(tuned.k)

    # What would run, and why (cost-based algorithm choice):
    print(engine.query(r1, r2).aggregate("sum").k(7).explain().summary())

    # Progressive results: guaranteed skyline pairs stream out first.
    for left_row, right_row in engine.query(r1, r2).aggregate("sum").k(7).stream():
        ...

    # m-way cascades (Sec. 2.3) run through the same engine: one hop
    # condition per adjacent pair, same caching/auto/explain/stream.
    chain = engine.query(leg1, leg2, leg3).hop("dst", "src").hop("dst", "src")
    chains = chain.aggregate("sum").k(7).run()

Serving workloads register named, versioned datasets in the engine's
catalog — caches are keyed by ``(name, version)`` and mutation
invalidates exactly the affected entries::

    engine.register("hotels", hotels)
    engine.register("flights", flights)
    result = engine.query("hotels", "flights").aggregate("sum").k(7).run()

    engine.catalog["hotels"].insert_rows(new_rows)   # bumps the version
    handle = engine.prepare("hotels", "flights", spec)
    handle.refresh()                                 # re-runs only when stale

    batch = engine.execute_many(requests, max_workers=8)

    # Or keep the answer *live*: maintained results absorb mutation
    # deltas incrementally instead of being invalidated.
    live = engine.maintain("hotels", "flights", spec)
    engine.catalog["hotels"].insert_rows(new_rows)   # answer updates in place
    live.result()

The original one-shot facade remains fully supported (it now runs on a
shared default engine, so it benefits from plan caching too)::

    result = repro.ksjq(r1, r2, k=7, aggregate="sum")
    tuned = repro.find_k(r1, r2, delta=100, aggregate="sum")
"""

from .api import (
    Catalog,
    Engine,
    ExplainReport,
    MaintainedResult,
    QueryBuilder,
    QueryHandle,
    QuerySpec,
)
from .core import (
    CascadeParams,
    CascadePlan,
    CascadeResult,
    CascadeStats,
    DominanceIndex,
    FATE_TABLE,
    Categorization,
    Category,
    Fate,
    FindKResult,
    Hop,
    JoinPlan,
    KSJQParams,
    KSJQResult,
    PlanStats,
    QueryResult,
    ShardPlan,
    TimingBreakdown,
    cascade_ksjq,
    cascade_progressive,
    categorize,
    default_engine,
    find_k,
    ksjq,
    ksjq_progressive,
    make_plan,
    run_cartesian,
    run_cascade_indexed,
    run_cascade_parallel,
    run_dominator,
    run_grouping,
    run_indexed,
    run_naive,
    run_parallel,
)
from .errors import (
    AdmissionRejected,
    AggregateError,
    AlgorithmError,
    CatalogError,
    CircuitOpen,
    DeadlineExceeded,
    JoinError,
    ParameterError,
    ReproError,
    ReproWarning,
    ResilienceError,
    SchemaError,
    ServingError,
    SoundnessWarning,
)
from .relational import (
    AttributeSpec,
    Dataset,
    HopSpec,
    JoinedView,
    Preference,
    Relation,
    RelationSchema,
    Role,
    ThetaCondition,
    ThetaOp,
)

__version__ = "1.6.0"

__all__ = [
    "AdmissionRejected",
    "AggregateError",
    "AlgorithmError",
    "AttributeSpec",
    "Catalog",
    "CatalogError",
    "Categorization",
    "Category",
    "CircuitOpen",
    "Dataset",
    "DeadlineExceeded",
    "DominanceIndex",
    "Engine",
    "ExplainReport",
    "FATE_TABLE",
    "Fate",
    "FindKResult",
    "HopSpec",
    "JoinError",
    "JoinPlan",
    "JoinedView",
    "KSJQParams",
    "KSJQResult",
    "MaintainedResult",
    "ParameterError",
    "PlanStats",
    "Preference",
    "QueryBuilder",
    "QueryHandle",
    "QueryResult",
    "QuerySpec",
    "Relation",
    "RelationSchema",
    "ReproError",
    "ReproWarning",
    "ResilienceError",
    "Role",
    "SchemaError",
    "ServingError",
    "ShardPlan",
    "SoundnessWarning",
    "ThetaCondition",
    "ThetaOp",
    "TimingBreakdown",
    "CascadeParams",
    "CascadePlan",
    "CascadeResult",
    "CascadeStats",
    "Hop",
    "cascade_ksjq",
    "cascade_progressive",
    "categorize",
    "default_engine",
    "find_k",
    "ksjq",
    "ksjq_progressive",
    "make_plan",
    "run_cartesian",
    "run_cascade_indexed",
    "run_cascade_parallel",
    "run_dominator",
    "run_grouping",
    "run_indexed",
    "run_naive",
    "run_parallel",
    "__version__",
]
