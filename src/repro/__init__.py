"""repro — K-Dominant Skyline Join Queries (KSJQ).

A complete reproduction of Awasthi, Bhattacharya, Gupta & Singh,
"K-Dominant Skyline Join Queries: Extending the Join Paradigm to
K-Dominant Skylines" (ICDE 2017), as a reusable Python library:

* :mod:`repro.relational` — schemas, relations, joins and aggregation;
* :mod:`repro.skyline` — dominance primitives and skyline algorithms;
* :mod:`repro.core` — SS/SN/NN categorization, the naïve / grouping /
  dominator-based KSJQ algorithms, the cartesian and theta-join
  variants, and the find-k algorithms;
* :mod:`repro.datagen` — synthetic generators and the flight dataset;
* :mod:`repro.experiments` — the harness regenerating every figure of
  the paper's evaluation.

Quickstart::

    import repro

    r1 = repro.Relation.from_records(schema1, rows1)
    r2 = repro.Relation.from_records(schema2, rows2)
    result = repro.ksjq(r1, r2, k=7, aggregate="sum")
    for left_row, right_row in result.pairs:
        ...
"""

from .core import (
    CascadeResult,
    FATE_TABLE,
    Categorization,
    Category,
    Fate,
    FindKResult,
    Hop,
    JoinPlan,
    KSJQParams,
    KSJQResult,
    TimingBreakdown,
    cascade_ksjq,
    categorize,
    find_k,
    ksjq,
    ksjq_progressive,
    make_plan,
    run_cartesian,
    run_dominator,
    run_grouping,
    run_naive,
)
from .errors import (
    AggregateError,
    AlgorithmError,
    JoinError,
    ParameterError,
    ReproError,
    ReproWarning,
    SchemaError,
    SoundnessWarning,
)
from .relational import (
    AttributeSpec,
    JoinedView,
    Preference,
    Relation,
    RelationSchema,
    Role,
    ThetaCondition,
    ThetaOp,
)

__version__ = "1.0.0"

__all__ = [
    "AggregateError",
    "AlgorithmError",
    "AttributeSpec",
    "Categorization",
    "Category",
    "FATE_TABLE",
    "Fate",
    "FindKResult",
    "JoinError",
    "JoinPlan",
    "JoinedView",
    "KSJQParams",
    "KSJQResult",
    "ParameterError",
    "Preference",
    "Relation",
    "RelationSchema",
    "ReproError",
    "ReproWarning",
    "Role",
    "SchemaError",
    "SoundnessWarning",
    "ThetaCondition",
    "ThetaOp",
    "TimingBreakdown",
    "CascadeResult",
    "Hop",
    "cascade_ksjq",
    "categorize",
    "find_k",
    "ksjq",
    "ksjq_progressive",
    "make_plan",
    "run_cartesian",
    "run_dominator",
    "run_grouping",
    "run_naive",
    "__version__",
]
