"""Rendering of experiment results: ASCII tables, CSV, shape summaries.

The tables mirror the paper's stacked-bar figures: one row per (sweep
point, algorithm letter), with the four timing components, the total,
and the result (skyline size or chosen k). ``render_shape_summary``
computes the headline comparison the paper reads off each figure —
speedup of the grouping algorithm over the naïve one (or binary over
naïve for find-k) per sweep point.
"""

from __future__ import annotations

from collections.abc import Sequence

import csv
from pathlib import Path

from .harness import RunRecord, SpecResult

__all__ = ["render_table", "render_shape_summary", "write_csv", "render_spec_result"]

_COLUMNS = (
    "point",
    "series",
    "grouping",
    "join",
    "dominator",
    "remaining",
    "total",
    "result",
)


def render_table(records: Sequence[RunRecord]) -> str:
    """Fixed-width table of run records."""
    rows = []
    for rec in records:
        flat = rec.row()
        rows.append(
            [
                str(flat["point"]),
                str(flat["series"]),
                f"{flat['grouping']:.4f}",
                f"{flat['join']:.4f}",
                f"{flat['dominator']:.4f}",
                f"{flat['remaining']:.4f}",
                f"{flat['total']:.4f}",
                str(flat["result"]),
            ]
        )
    widths = [
        max(len(col), *(len(r[i]) for r in rows)) if rows else len(col)
        for i, col in enumerate(_COLUMNS)
    ]
    header = "  ".join(col.ljust(w) for col, w in zip(_COLUMNS, widths))
    sep = "-" * len(header)
    lines = [header, sep]
    lines.extend("  ".join(v.ljust(w) for v, w in zip(row, widths)) for row in rows)
    return "\n".join(lines)


def render_shape_summary(result: SpecResult) -> str:
    """Per-point speedup of the best optimized series over the naïve one."""
    baseline_letter = "N"
    best_letter = "G" if result.spec.kind == "ksjq" else "B"
    by_point: dict[str, dict[str, RunRecord]] = {}
    for rec in result.records:
        by_point.setdefault(rec.point, {})[rec.series] = rec

    lines = []
    for point, series in by_point.items():
        if baseline_letter in series and best_letter in series:
            base = series[baseline_letter].timings.total
            best = series[best_letter].timings.total
            if best > 0:
                lines.append(
                    f"{point}: {best_letter} is {base / best:.2f}x faster than N "
                    f"(N={base:.4f}s, {best_letter}={best:.4f}s)"
                )
    if not lines:
        return "(no comparable series)"
    return "\n".join(lines)


def render_spec_result(result: SpecResult) -> str:
    """Full report for one figure: header, table, skips, shape summary."""
    spec = result.spec
    out = [
        f"== {spec.figure}: {spec.title} ==",
        f"scale factor {result.scale.factor} (paper sizes x{result.scale.factor}); "
        f"repeats={result.scale.repeats}",
    ]
    if spec.paper_shape:
        out.append(f"paper shape: {spec.paper_shape}")
    out.append("")
    out.append(render_table(result.records))
    if result.skipped:
        out.append("")
        out.append("skipped points:")
        out.extend(f"  {label}: {reason}" for label, reason in result.skipped)
    out.append("")
    out.append("speedups:")
    out.append(render_shape_summary(result))
    return "\n".join(out)


def write_csv(records: Sequence[RunRecord], path: str | Path) -> None:
    """Write run records as CSV (one row per record)."""
    path = Path(path)
    if not records:
        path.write_text("")
        return
    fieldnames = list(records[0].row().keys())
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for rec in records:
            writer.writerow(rec.row())
