"""Experiment configuration: the paper's Table 7 defaults and scaling.

The paper's default base-relation size (``n = 3300``, ``g = 10``)
produces a 1,089,000-tuple joined relation, which the Java
implementation handles in seconds but a pure-Python naïve baseline
cannot. All experiment specs therefore express sizes in *paper units*
and apply a scale factor (default 0.1 → joined size ≈ 10,890):

* ``n``-like quantities scale linearly;
* ``delta`` (a skyline-cardinality threshold) scales with the joined
  size, i.e. quadratically in the scale factor;
* sweep points whose joined size would exceed ``max_joined`` are
  dropped (reported by the harness), which keeps the naïve baseline
  feasible.

Override via the ``REPRO_SCALE`` and ``REPRO_MAX_JOINED`` environment
variables or by passing an explicit :class:`Scale` to the harness.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..errors import ParameterError

__all__ = ["PaperDefaults", "Scale", "scale_from_env"]


@dataclass(frozen=True)
class PaperDefaults:
    """Table 7: parameters and default values."""

    n: int = 3300
    d: int = 7
    k: int = 11
    a: int = 2
    g: int = 10
    distribution: str = "independent"
    delta: int = 10_000

    @property
    def joined_size(self) -> int:
        """Derived size of the joined relation (``n^2 / g``)."""
        return self.n * self.n // self.g


@dataclass(frozen=True)
class Scale:
    """Scaling policy mapping paper units to runnable sizes."""

    factor: float = 0.1
    max_joined: int = 200_000
    min_n: int = 20
    repeats: int = 1

    def __post_init__(self) -> None:
        if not 0 < self.factor <= 1.0:
            raise ParameterError(f"scale factor must be in (0, 1], got {self.factor}")
        if self.repeats < 1:
            raise ParameterError(f"repeats must be >= 1, got {self.repeats}")

    def n(self, paper_n: int) -> int:
        """Scale a base-relation size."""
        return max(self.min_n, int(round(paper_n * self.factor)))

    def delta(self, paper_delta: int) -> int:
        """Scale a skyline-cardinality threshold (joined-size proportional)."""
        return max(1, int(round(paper_delta * self.factor * self.factor)))

    def fits(self, n: int, g: int) -> bool:
        """Whether a scaled configuration's joined size is runnable."""
        return n * n // max(g, 1) <= self.max_joined


def scale_from_env() -> Scale:
    """Build a :class:`Scale` from ``REPRO_SCALE`` / ``REPRO_MAX_JOINED``."""
    factor = float(os.environ.get("REPRO_SCALE", "0.1"))
    max_joined = int(os.environ.get("REPRO_MAX_JOINED", "200000"))
    repeats = int(os.environ.get("REPRO_REPEATS", "1"))
    return Scale(factor=factor, max_joined=max_joined, repeats=repeats)
