"""Command-line interface for regenerating the paper's figures.

Usage::

    ksjq-experiments list
    ksjq-experiments run fig1a fig5a
    ksjq-experiments run all --scale 0.1 --csv results/

(or ``python -m repro.experiments ...``.)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .config import Scale
from .figures import FIGURES, figure_ids
from .harness import run_figure
from .report import render_spec_result, write_csv

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ksjq-experiments",
        description="Regenerate the evaluation figures of the KSJQ paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list all figure ids and titles")

    run = sub.add_parser("run", help="run one or more figures (or 'all')")
    run.add_argument("figures", nargs="+", help="figure ids, e.g. fig1a, or 'all'")
    run.add_argument(
        "--scale",
        type=float,
        default=None,
        help="scale factor on paper sizes (default: REPRO_SCALE or 0.1)",
    )
    run.add_argument(
        "--max-joined",
        type=int,
        default=200_000,
        help="skip sweep points whose joined size exceeds this",
    )
    run.add_argument(
        "--repeats", type=int, default=1, help="timing repetitions per run"
    )
    run.add_argument(
        "--csv",
        type=Path,
        default=None,
        help="directory to write one CSV per figure",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for fid in figure_ids():
            print(f"{fid:8s} {FIGURES[fid].title}")
        return 0

    wanted = figure_ids() if "all" in args.figures else list(args.figures)
    unknown = [f for f in wanted if f not in FIGURES]
    if unknown:
        print(f"unknown figures: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(figure_ids())}", file=sys.stderr)
        return 2

    scale = None
    if args.scale is not None:
        scale = Scale(
            factor=args.scale, max_joined=args.max_joined, repeats=args.repeats
        )
    if args.csv is not None:
        args.csv.mkdir(parents=True, exist_ok=True)

    for fid in wanted:
        result = run_figure(fid, scale)
        print(render_spec_result(result))
        print()
        if args.csv is not None:
            write_csv(result.records, args.csv / f"{fid}.csv")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
