"""Experiment registry: one spec per figure of the paper (Figs. 1-11).

Sizes are in paper units (Table 7 defaults: n=3300, d=7, k=11, a=2,
g=10, independent, delta=10000); the harness scales them. Where the
paper leaves a sub-experiment's parameters implicit, the choice made
here is recorded in EXPERIMENTS.md.
"""

from __future__ import annotations


from .spec import ExperimentSpec, SweepPoint

__all__ = ["FIGURES", "get_figure", "figure_ids"]


def _ksjq_point(label: str, **kw) -> SweepPoint:
    return SweepPoint(label=label, **kw)


def _build_registry() -> dict[str, ExperimentSpec]:
    figures: list[ExperimentSpec] = []

    # ---------------- Aggregate experiments (Sec. 7.1) ----------------
    figures.append(
        ExperimentSpec(
            figure="fig1a",
            title="Effect of k (aggregate; d=7, a=2)",
            kind="ksjq",
            points=tuple(
                _ksjq_point(f"k={k}", d=7, a=2, k=k) for k in (8, 9, 10, 11)
            ),
            paper_shape=(
                "time rises sharply with k; G fastest, D pays dominator "
                "generation, N slowest (1.5-2x G)"
            ),
        )
    )
    figures.append(
        ExperimentSpec(
            figure="fig1b",
            title="Effect of k (aggregate; d=6, a=1)",
            kind="ksjq",
            points=tuple(
                _ksjq_point(f"k={k}", d=6, a=1, k=k) for k in (7, 8, 9, 10)
            ),
            paper_shape="same trend as fig1a at lower dimensionality",
        )
    )
    figures.append(
        ExperimentSpec(
            figure="fig2a",
            title="Effect of number of aggregate attributes a (d=7, k=11)",
            kind="ksjq",
            points=tuple(
                _ksjq_point(f"a={a}", d=7, a=a, k=11) for a in (0, 1, 2, 3)
            ),
            paper_shape="running time increases with a; G < D < N throughout",
        )
    )
    figures.append(
        ExperimentSpec(
            figure="fig2b",
            title="Dimensionality medley (d, k, a)",
            kind="ksjq",
            points=tuple(
                _ksjq_point(f"d={d},k={k},a={a}", d=d, a=a, k=k)
                for (d, k, a) in ((5, 7, 1), (5, 7, 2), (6, 7, 1), (6, 7, 2), (6, 8, 2))
            ),
            paper_shape=(
                "time increases with k and a but *decreases* with d at fixed k "
                "(larger d lowers k', making grouping and joins cheaper)"
            ),
        )
    )
    figures.append(
        ExperimentSpec(
            figure="fig3a",
            title="Effect of number of join groups g (aggregate)",
            kind="ksjq",
            points=tuple(
                _ksjq_point(f"g={g}", d=7, a=2, k=11, g=g)
                for g in (1, 2, 5, 10, 25, 50, 100)
            ),
            paper_shape=(
                "two opposing effects: more groups -> smaller join but more "
                "SN tuples; times peak at medium g"
            ),
        )
    )
    figures.append(
        ExperimentSpec(
            figure="fig3b",
            title="Effect of dataset size n (aggregate)",
            kind="ksjq",
            points=tuple(
                _ksjq_point(f"n={n}", n=n, d=7, a=2, k=11)
                for n in (100, 330, 1000, 3300, 10_000, 33_000)
            ),
            paper_shape=(
                "time grows ~quadratically in n (joined size n^2/g); G and D "
                "scale sublinearly in the joined size"
            ),
        )
    )
    figures.append(
        ExperimentSpec(
            figure="fig4",
            title="Type of data distribution (aggregate)",
            kind="ksjq",
            points=tuple(
                _ksjq_point(dist, d=7, a=2, k=11, distribution=dist)
                for dist in ("independent", "correlated", "anticorrelated")
            ),
            paper_shape="correlated fastest, anti-correlated slowest",
        )
    )

    # ---------------- No-aggregation experiments (Sec. 7.2) -----------
    figures.append(
        ExperimentSpec(
            figure="fig5a",
            title="Effect of k (no aggregation; d=5)",
            kind="ksjq",
            points=tuple(
                _ksjq_point(f"k={k}", d=5, a=0, k=k) for k in (6, 7, 8, 9)
            ),
            paper_shape=(
                "time rises sharply with k; naive join time constant, so its "
                "join share dominates at low k"
            ),
        )
    )
    figures.append(
        ExperimentSpec(
            figure="fig5b",
            title="Effect of d at fixed k (no aggregation)",
            kind="ksjq",
            points=tuple(
                _ksjq_point(f"d={d},k={k}", d=d, a=0, k=k)
                for (d, k) in ((4, 7), (5, 7), (6, 7), (6, 11), (7, 11), (10, 11))
            ),
            paper_shape="at fixed k, larger d lowers k' and the total time drops",
        )
    )
    figures.append(
        ExperimentSpec(
            figure="fig6a",
            title="Effect of number of join groups g (no aggregation; d=4, k=7)",
            kind="ksjq",
            points=tuple(
                _ksjq_point(f"g={g}", d=4, a=0, k=7, g=g)
                for g in (1, 2, 5, 10, 25, 50, 100)
            ),
            paper_shape="same two opposing effects as fig3a",
        )
    )
    figures.append(
        ExperimentSpec(
            figure="fig6b",
            title="Effect of dataset size n (no aggregation; d=5, k=8)",
            kind="ksjq",
            points=tuple(
                _ksjq_point(f"n={n}", n=n, d=5, a=0, k=8)
                for n in (100, 330, 1000, 3300, 10_000, 33_000)
            ),
            paper_shape="drastic growth with n; sublinear in joined size for G/D",
        )
    )
    figures.append(
        ExperimentSpec(
            figure="fig7",
            title="Type of data distribution (no aggregation; d=5, k=8)",
            kind="ksjq",
            points=tuple(
                _ksjq_point(dist, d=5, a=0, k=8, distribution=dist)
                for dist in ("independent", "correlated", "anticorrelated")
            ),
            paper_shape="correlated fastest, anti-correlated slowest",
        )
    )

    # ---------------- Find-k experiments (Sec. 7.3) -------------------
    figures.append(
        ExperimentSpec(
            figure="fig8a",
            title="Find-k: effect of threshold delta (d=5, a=0)",
            kind="findk",
            series=("B", "R", "N"),
            points=tuple(
                SweepPoint(label=f"delta={delta}", d=5, a=0, delta=delta)
                for delta in (10, 100, 1000, 10_000, 100_000)
            ),
            paper_shape=(
                "N grows with delta; R fast for very large delta (bounds "
                "short-circuit); B always fastest"
            ),
        )
    )
    figures.append(
        ExperimentSpec(
            figure="fig8b",
            title="Find-k: effect of dimensionality d (delta=10000, a=0)",
            kind="findk",
            series=("B", "R", "N"),
            points=tuple(
                SweepPoint(label=f"d={d}", d=d, a=0, delta=10_000)
                for d in (3, 4, 5, 7, 10)
            ),
            paper_shape=(
                "low d terminates fast; larger d searches a wider range; "
                "B 1.2-1.5x faster than R, N slower by 2-2.5x"
            ),
        )
    )
    figures.append(
        ExperimentSpec(
            figure="fig9a",
            title="Find-k: effect of join groups g (d=5, delta=10000)",
            kind="findk",
            series=("B", "R", "N"),
            points=tuple(
                SweepPoint(label=f"g={g}", d=5, a=0, g=g, delta=10_000)
                for g in (1, 2, 5, 10, 25, 50, 100)
            ),
            paper_shape="no appreciable effect of g",
        )
    )
    figures.append(
        ExperimentSpec(
            figure="fig9b",
            title="Find-k: effect of dataset size n (d=5, delta=1000)",
            kind="findk",
            series=("B", "R", "N"),
            points=tuple(
                SweepPoint(label=f"n={n}", n=n, d=5, a=0, delta=1000)
                for n in (100, 330, 1000, 3300, 10_000, 33_000)
            ),
            paper_shape=(
                "small n: threshold unreachable, k=max returned fast; time "
                "grows with n; B most suitable throughout"
            ),
        )
    )
    figures.append(
        ExperimentSpec(
            figure="fig10",
            title="Find-k: type of data distribution (d=5, delta=10000)",
            kind="findk",
            series=("B", "R", "N"),
            points=tuple(
                SweepPoint(label=dist, d=5, a=0, delta=10_000, distribution=dist)
                for dist in ("independent", "correlated", "anticorrelated")
            ),
            paper_shape="correlated fastest, anti-correlated slowest",
        )
    )

    # ---------------- Real data (Sec. 7.4) ----------------------------
    figures.append(
        ExperimentSpec(
            figure="fig11",
            title="Real flight data (192 x 155, 13 hubs, a=2), k in {6,7,8}",
            kind="ksjq",
            points=tuple(
                SweepPoint(label=f"k={k}", dataset="flights", k=k, a=2, d=5)
                for k in (6, 7, 8)
            ),
            paper_shape=(
                "milliseconds overall; G best, then D, then N — same ordering "
                "as synthetic data"
            ),
        )
    )

    return {spec.figure: spec for spec in figures}


FIGURES: dict[str, ExperimentSpec] = _build_registry()


def get_figure(figure_id: str) -> ExperimentSpec:
    """Look up one figure spec by id (e.g. ``"fig3a"``)."""
    try:
        return FIGURES[figure_id]
    except KeyError:
        raise KeyError(
            f"unknown figure {figure_id!r}; known: {', '.join(sorted(FIGURES))}"
        ) from None


def figure_ids() -> list[str]:
    """All known figure ids, sorted."""
    return sorted(FIGURES)
