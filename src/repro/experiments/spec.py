"""Experiment specifications: declarative descriptions of each figure.

An :class:`ExperimentSpec` lists the sweep points of one paper figure;
each :class:`SweepPoint` fully determines a dataset and query in *paper
units* (the harness applies scaling). Two experiment kinds exist:

* ``"ksjq"`` — run the G/D/N KSJQ algorithms and record component
  timings plus the skyline size (Figs. 1-7, 11);
* ``"findk"`` — run the B/R/N find-k methods (Figs. 8-10).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SweepPoint", "ExperimentSpec", "KSJQ_ALGORITHMS", "FINDK_METHODS"]

#: Paper's algorithm letters -> library algorithm names.
KSJQ_ALGORITHMS: dict[str, str] = {
    "G": "grouping",
    "D": "dominator",
    "N": "naive",
}

#: Paper's find-k letters -> library method names.
FINDK_METHODS: dict[str, str] = {
    "B": "binary",
    "R": "range",
    "N": "naive",
}


@dataclass(frozen=True)
class SweepPoint:
    """One x-axis point of a figure, in paper units.

    ``label`` is the x-axis tick (e.g. ``"k=9"``); ``n``/``g``/``d``/
    ``a``/``distribution`` describe the generated dataset; ``k`` the
    query (KSJQ experiments) and ``delta`` the threshold (find-k
    experiments). ``dataset`` selects a named real dataset ("flights")
    instead of synthetic generation.
    """

    label: str
    n: int = 3300
    d: int = 7
    g: int = 10
    a: int = 0
    distribution: str = "independent"
    k: int | None = None
    delta: int | None = None
    seed: int = 42
    dataset: str | None = None

    @property
    def aggregate(self) -> str | None:
        """Aggregate function name implied by ``a`` (paper uses sum)."""
        return "sum" if self.a > 0 or self.dataset == "flights" else None


@dataclass(frozen=True)
class ExperimentSpec:
    """One figure of the paper's evaluation section."""

    figure: str
    title: str
    kind: str  # "ksjq" | "findk"
    points: tuple[SweepPoint, ...]
    series: tuple[str, ...] = ("G", "D", "N")
    paper_shape: str = ""  # expected qualitative outcome, for reports

    def __post_init__(self) -> None:
        if self.kind not in ("ksjq", "findk"):
            raise ValueError(f"unknown experiment kind {self.kind!r}")
        valid = KSJQ_ALGORITHMS if self.kind == "ksjq" else FINDK_METHODS
        unknown = set(self.series) - set(valid)
        if unknown:
            raise ValueError(f"unknown series letters {sorted(unknown)} for {self.kind}")
