"""Module entry point: ``python -m repro.experiments run fig1a``."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
