"""Experiment harness regenerating every figure of the paper's evaluation.

See :mod:`repro.experiments.figures` for the per-figure registry and
:mod:`repro.experiments.cli` for the command-line entry point
(``ksjq-experiments`` / ``python -m repro.experiments``).
"""

from .config import PaperDefaults, Scale, scale_from_env
from .figures import FIGURES, figure_ids, get_figure
from .harness import RunRecord, SpecResult, build_point_relations, run_figure, run_spec
from .report import render_shape_summary, render_spec_result, render_table, write_csv
from .spec import FINDK_METHODS, KSJQ_ALGORITHMS, ExperimentSpec, SweepPoint

__all__ = [
    "FIGURES",
    "FINDK_METHODS",
    "KSJQ_ALGORITHMS",
    "ExperimentSpec",
    "PaperDefaults",
    "RunRecord",
    "Scale",
    "SpecResult",
    "SweepPoint",
    "build_point_relations",
    "figure_ids",
    "get_figure",
    "render_shape_summary",
    "render_spec_result",
    "render_table",
    "run_figure",
    "run_spec",
    "scale_from_env",
    "write_csv",
]
