"""Experiment harness: run figure specs and collect timing records.

The harness turns an :class:`~repro.experiments.spec.ExperimentSpec`
into :class:`RunRecord` rows — one per (sweep point, series letter) —
by generating the dataset at the configured scale, executing the
algorithm through a shared :class:`~repro.api.Engine` and recording the
component timings the paper plots.

Caching design
--------------
All executions route through one module-shared engine
(:func:`harness_engine`); each sweep point's relations are registered
as named datasets, so figure *reruns* regenerate identical content, the
catalog keeps the dataset versions unchanged, and untimed bookkeeping
(the exact joined-size statistics) is answered from the plan cache.

*Measured* cells are different: every reported component breakdown must
include that algorithm's own join-preparation work (the paper's figures
compare exactly that), so each measured run executes against a fresh,
cold :class:`~repro.core.plan.JoinPlan` passed explicitly to
``engine.execute(..., plan=...)`` — which bypasses the plan cache by
contract. Reported timings are always the algorithm-internal
:class:`~repro.core.timing.TimingBreakdown`, never the wall-clock of an
engine call, so a cache hit can never masquerade as algorithm speed.

Faithful mode is used throughout, matching the paper;
:class:`~repro.errors.SoundnessWarning` is suppressed here because the
aggregate experiments intentionally exercise the paper-faithful path.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from ..api.engine import Engine
from ..api.spec import QuerySpec
from ..core.plan import JoinPlan
from ..core.timing import TimingBreakdown
from ..datagen.flights import make_flight_relations
from ..datagen.synthetic import generate_relation_pair
from ..errors import SoundnessWarning
from ..relational.relation import Relation
from .config import Scale, scale_from_env
from .figures import get_figure
from .spec import FINDK_METHODS, KSJQ_ALGORITHMS, ExperimentSpec, SweepPoint

__all__ = [
    "RunRecord",
    "SpecResult",
    "harness_engine",
    "run_figure",
    "run_spec",
    "build_point_relations",
]

_ENGINE: Engine | None = None


def harness_engine() -> Engine:
    """The shared engine every figure run executes through.

    Holds the catalog of per-sweep-point datasets and the plan cache
    answering untimed joined-size statistics; capacity is sized for the
    full figure set so a rerun of any figure stays warm.
    """
    global _ENGINE
    if _ENGINE is None:
        _ENGINE = Engine(max_plans=64)
    return _ENGINE


@dataclass(frozen=True)
class RunRecord:
    """One algorithm execution at one sweep point."""

    figure: str
    point: str
    series: str  # paper letter: G/D/N or B/R/N
    algorithm: str  # library name
    timings: TimingBreakdown
    result: int  # skyline size (ksjq) or chosen k (findk)
    n: int
    joined_size: int
    k: int | None = None
    delta: int | None = None

    def row(self) -> dict[str, object]:
        """Flat dict for CSV/report rendering."""
        out: dict[str, object] = {
            "figure": self.figure,
            "point": self.point,
            "series": self.series,
            "algorithm": self.algorithm,
            "n": self.n,
            "joined": self.joined_size,
        }
        out.update({key: round(val, 6) for key, val in self.timings.as_dict().items()})
        out["result"] = self.result
        return out


@dataclass
class SpecResult:
    """All records of one figure plus any skipped sweep points."""

    spec: ExperimentSpec
    scale: Scale
    records: list[RunRecord] = field(default_factory=list)
    skipped: list[tuple[str, str]] = field(default_factory=list)  # (point, reason)


def build_point_relations(
    point: SweepPoint, scale: Scale
) -> tuple[Relation, Relation, int]:
    """Generate the two base relations of one sweep point.

    Returns ``(left, right, scaled_n)``; the flights dataset ignores the
    scale factor (it is already small).
    """
    if point.dataset == "flights":
        left, right = make_flight_relations(seed=point.seed)
        return left, right, len(left)
    n = scale.n(point.n)
    left, right = generate_relation_pair(
        n=n,
        d=point.d,
        g=point.g,
        distribution=point.distribution,
        a=point.a,
        seed=point.seed,
    )
    return left, right, n


def _fresh_plan(left: Relation, right: Relation, point: SweepPoint) -> JoinPlan:
    """A cold plan for one measured cell (never the cached one — every
    algorithm must pay its own join preparation in the timings)."""
    return JoinPlan(left, right, kind="equality", aggregate=point.aggregate)


def _point_spec(spec: ExperimentSpec, point: SweepPoint, letter: str, delta: int):
    """The QuerySpec one (sweep point, series letter) cell executes."""
    if spec.kind == "ksjq":
        return QuerySpec.for_ksjq(
            k=point.k,
            algorithm=KSJQ_ALGORITHMS[letter],
            mode="faithful",
            aggregate=point.aggregate,
        )
    return QuerySpec.for_find_k(
        delta=delta, method=FINDK_METHODS[letter], aggregate=point.aggregate
    )


def _retain_only_figure(engine: Engine, figure: str) -> None:
    """Drop other figures' datasets from the harness catalog.

    Keeps memory bounded to one figure's sweep (a full-set run would
    otherwise pin every generated relation for the process lifetime)
    while preserving the warm-cache rerun of the *same* figure, which
    is the interactive loop that matters. Dropped datasets' plan-cache
    entries can never be hit again (tokens are uid-scoped) and roll out
    via LRU.
    """
    prefix = f"{figure}:"
    for name in engine.catalog.names():
        if not name.startswith(prefix):
            engine.catalog.drop(name)


def run_spec(spec: ExperimentSpec, scale: Scale | None = None) -> SpecResult:
    """Execute one figure spec; returns records plus skipped points."""
    scale = scale or scale_from_env()
    result = SpecResult(spec=spec, scale=scale)
    engine = harness_engine()
    _retain_only_figure(engine, spec.figure)

    for point in spec.points:
        scaled_n = scale.n(point.n) if point.dataset is None else point.n
        if point.dataset is None and not scale.fits(scaled_n, point.g):
            result.skipped.append(
                (point.label, f"joined size {scaled_n * scaled_n // point.g} exceeds "
                              f"max_joined={scale.max_joined}")
            )
            continue
        left, right, n = build_point_relations(point, scale)

        # Named datasets: a rerun regenerates identical content, so the
        # register is a version-preserving no-op and the cached plan
        # below answers the joined-size statistic without re-enumerating.
        prefix = f"{spec.figure}:{point.label}"
        engine.register(f"{prefix}:left", left)
        engine.register(f"{prefix}:right", right)
        joined = engine.plan(
            f"{prefix}:left", f"{prefix}:right", aggregate=point.aggregate
        ).stats().join_size

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", SoundnessWarning)
            for letter in spec.series:
                cell_spec = _point_spec(
                    spec, point, letter,
                    scale.delta(point.delta) if point.delta else 0,
                )
                timings = TimingBreakdown()
                value = 0
                for _ in range(scale.repeats):
                    res = engine.execute(
                        left, right, cell_spec,
                        plan=_fresh_plan(left, right, point),
                    )
                    timings = timings + res.timings
                    value = res.count if spec.kind == "ksjq" else res.k
                result.records.append(
                    RunRecord(
                        figure=spec.figure,
                        point=point.label,
                        series=letter,
                        algorithm=(
                            KSJQ_ALGORITHMS[letter]
                            if spec.kind == "ksjq"
                            else FINDK_METHODS[letter]
                        ),
                        timings=timings.scaled(1.0 / scale.repeats),
                        result=value,
                        n=n,
                        joined_size=joined,
                        k=point.k,
                        delta=scale.delta(point.delta) if point.delta else None,
                    )
                )
    return result


def run_figure(figure_id: str, scale: Scale | None = None) -> SpecResult:
    """Execute one figure by id (e.g. ``"fig1a"``)."""
    return run_spec(get_figure(figure_id), scale)
