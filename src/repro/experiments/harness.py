"""Experiment harness: run figure specs and collect timing records.

The harness turns an :class:`~repro.experiments.spec.ExperimentSpec`
into :class:`RunRecord` rows — one per (sweep point, series letter) —
by generating the dataset at the configured scale, building a fresh
:class:`~repro.core.plan.JoinPlan` per run (so no caching leaks across
algorithms), executing the algorithm and recording the component
timings the paper plots.

Faithful mode is used throughout, matching the paper;
:class:`~repro.errors.SoundnessWarning` is suppressed here because the
aggregate experiments intentionally exercise the paper-faithful path.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.find_k import find_k_at_least_delta
from ..core.plan import JoinPlan
from ..core.timing import TimingBreakdown
from ..datagen.flights import make_flight_relations
from ..datagen.synthetic import generate_relation_pair
from ..errors import SoundnessWarning
from ..relational.relation import Relation
from .config import Scale, scale_from_env
from .figures import get_figure
from .spec import FINDK_METHODS, KSJQ_ALGORITHMS, ExperimentSpec, SweepPoint

__all__ = ["RunRecord", "SpecResult", "run_figure", "run_spec", "build_point_relations"]


@dataclass(frozen=True)
class RunRecord:
    """One algorithm execution at one sweep point."""

    figure: str
    point: str
    series: str  # paper letter: G/D/N or B/R/N
    algorithm: str  # library name
    timings: TimingBreakdown
    result: int  # skyline size (ksjq) or chosen k (findk)
    n: int
    joined_size: int
    k: Optional[int] = None
    delta: Optional[int] = None

    def row(self) -> Dict[str, object]:
        """Flat dict for CSV/report rendering."""
        out: Dict[str, object] = {
            "figure": self.figure,
            "point": self.point,
            "series": self.series,
            "algorithm": self.algorithm,
            "n": self.n,
            "joined": self.joined_size,
        }
        out.update({key: round(val, 6) for key, val in self.timings.as_dict().items()})
        out["result"] = self.result
        return out


@dataclass
class SpecResult:
    """All records of one figure plus any skipped sweep points."""

    spec: ExperimentSpec
    scale: Scale
    records: List[RunRecord] = field(default_factory=list)
    skipped: List[Tuple[str, str]] = field(default_factory=list)  # (point, reason)


def build_point_relations(
    point: SweepPoint, scale: Scale
) -> Tuple[Relation, Relation, int]:
    """Generate the two base relations of one sweep point.

    Returns ``(left, right, scaled_n)``; the flights dataset ignores the
    scale factor (it is already small).
    """
    if point.dataset == "flights":
        left, right = make_flight_relations(seed=point.seed)
        return left, right, len(left)
    n = scale.n(point.n)
    left, right = generate_relation_pair(
        n=n,
        d=point.d,
        g=point.g,
        distribution=point.distribution,
        a=point.a,
        seed=point.seed,
    )
    return left, right, n


def _fresh_plan(left: Relation, right: Relation, point: SweepPoint) -> JoinPlan:
    return JoinPlan(left, right, kind="equality", aggregate=point.aggregate)


def _joined_size(plan: JoinPlan) -> int:
    return plan.compatible_pair_count(range(len(plan.left)), range(len(plan.right)))


def run_spec(spec: ExperimentSpec, scale: Optional[Scale] = None) -> SpecResult:
    """Execute one figure spec; returns records plus skipped points."""
    scale = scale or scale_from_env()
    result = SpecResult(spec=spec, scale=scale)
    from ..core.dominator import run_dominator
    from ..core.grouping import run_grouping
    from ..core.naive import run_naive

    runners = {"grouping": run_grouping, "dominator": run_dominator}

    for point in spec.points:
        scaled_n = scale.n(point.n) if point.dataset is None else point.n
        if point.dataset is None and not scale.fits(scaled_n, point.g):
            result.skipped.append(
                (point.label, f"joined size {scaled_n * scaled_n // point.g} exceeds "
                              f"max_joined={scale.max_joined}")
            )
            continue
        left, right, n = build_point_relations(point, scale)

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", SoundnessWarning)
            for letter in spec.series:
                timings = TimingBreakdown()
                value = 0
                joined = 0
                for _ in range(scale.repeats):
                    plan = _fresh_plan(left, right, point)
                    joined = _joined_size(plan)
                    if spec.kind == "ksjq":
                        algorithm = KSJQ_ALGORITHMS[letter]
                        if algorithm == "naive":
                            res = run_naive(plan, point.k)
                        else:
                            res = runners[algorithm](plan, point.k, mode="faithful")
                        timings = timings + res.timings
                        value = res.count
                    else:
                        method = FINDK_METHODS[letter]
                        res = find_k_at_least_delta(
                            plan, scale.delta(point.delta), method=method
                        )
                        timings = timings + res.timings
                        value = res.k
                result.records.append(
                    RunRecord(
                        figure=spec.figure,
                        point=point.label,
                        series=letter,
                        algorithm=(
                            KSJQ_ALGORITHMS[letter]
                            if spec.kind == "ksjq"
                            else FINDK_METHODS[letter]
                        ),
                        timings=timings.scaled(1.0 / scale.repeats),
                        result=value,
                        n=n,
                        joined_size=joined,
                        k=point.k,
                        delta=scale.delta(point.delta) if point.delta else None,
                    )
                )
    return result


def run_figure(figure_id: str, scale: Optional[Scale] = None) -> SpecResult:
    """Execute one figure by id (e.g. ``"fig1a"``)."""
    return run_spec(get_figure(figure_id), scale)
