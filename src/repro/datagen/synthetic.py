"""Synthetic dataset generators (paper Sec. 7, Table 7).

The paper generates data with the pgfoundry ``randdataset`` tool, which
implements the three classic skyline-benchmark distributions of
Börzsönyi et al.; the tool is gone, so we re-implement the same family:

* **independent** — attributes i.i.d. uniform on [0, 1];
* **correlated** — attributes concentrated around the main diagonal: a
  per-tuple level ``m ~ U(0,1)`` plus small uniform jitter per
  attribute. Tuples that are good in one attribute tend to be good in
  all, so skylines are tiny and domination is frequent;
* **anticorrelated** — attributes concentrated around the hyperplane of
  constant sum: uniform vectors rescaled to a common, narrowly
  distributed sum. Tuples good in one attribute tend to be bad in
  others, inflating the skyline — the hardest case, matching the
  paper's Figs. 4/7/10.

Join groups are assigned round-robin (``row % g``), giving the paper's
derived joined-relation size ``N = n^2 / g`` exactly when ``g | n``.
"""

from __future__ import annotations


from typing import TYPE_CHECKING

import numpy as np

from ..errors import ParameterError
from ..relational.relation import Relation

if TYPE_CHECKING:
    from .._typing import FloatMatrix

__all__ = [
    "DISTRIBUTIONS",
    "generate_matrix",
    "generate_relation",
    "generate_relation_pair",
]

DISTRIBUTIONS = ("independent", "correlated", "anticorrelated")

_CORRELATED_JITTER = 0.15
_ANTICORRELATED_SPREAD = 0.05


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def generate_matrix(
    n: int,
    d: int,
    distribution: str = "independent",
    seed: int | np.random.Generator | None = None,
) -> FloatMatrix:
    """Generate an (n x d) attribute matrix in [0, 1] per distribution."""
    if n < 0:
        raise ParameterError(f"n must be non-negative, got {n}")
    if d < 1:
        raise ParameterError(f"d must be positive, got {d}")
    if distribution not in DISTRIBUTIONS:
        raise ParameterError(
            f"unknown distribution {distribution!r}; choose from {DISTRIBUTIONS}"
        )
    rng = _rng(seed)
    if distribution == "independent":
        return rng.uniform(0.0, 1.0, size=(n, d))
    if distribution == "correlated":
        level = rng.uniform(0.0, 1.0, size=(n, 1))
        jitter = rng.uniform(-_CORRELATED_JITTER, _CORRELATED_JITTER, size=(n, d))
        return np.clip(level + jitter, 0.0, 1.0)
    # anticorrelated
    raw = rng.uniform(0.0, 1.0, size=(n, d))
    sums = raw.sum(axis=1, keepdims=True)
    sums[sums == 0.0] = 1.0
    target = rng.normal(0.5, _ANTICORRELATED_SPREAD, size=(n, 1)) * d
    return np.clip(raw * (target / sums), 0.0, 1.0)


def generate_relation(
    n: int,
    d: int,
    g: int = 1,
    distribution: str = "independent",
    a: int = 0,
    seed: int | np.random.Generator | None = None,
    name: str = "R",
) -> Relation:
    """Generate a base relation with ``d`` skyline attributes and ``g`` groups.

    The first ``a`` skyline attributes (``s1 .. sa``) are marked as
    aggregate inputs; groups are assigned round-robin so each of the
    ``g`` groups holds ``n/g`` tuples (paper Table 7's derived joined
    size ``n^2/g``).
    """
    if g < 1:
        raise ParameterError(f"g must be positive, got {g}")
    if not 0 <= a <= d:
        raise ParameterError(f"a={a} must be within [0, d={d}]")
    matrix = generate_matrix(n, d, distribution, seed)
    names = [f"s{i + 1}" for i in range(d)]
    groups = [int(i % g) for i in range(n)]
    return Relation.from_arrays(
        matrix,
        names,
        join_key=groups,
        join_name="grp",
        aggregate=names[:a],
        name=name,
    )


def generate_relation_pair(
    n: int,
    d: int,
    g: int = 1,
    distribution: str = "independent",
    a: int = 0,
    seed: int | None = None,
) -> tuple[Relation, Relation]:
    """Generate the two-relation input of one KSJQ experiment.

    Both relations share ``n, d, g, a`` and the distribution, as in all
    of the paper's synthetic experiments; they differ in random content.
    """
    rng = _rng(seed)
    left = generate_relation(n, d, g, distribution, a, rng, name="R1")
    right = generate_relation(n, d, g, distribution, a, rng, name="R2")
    return left, right
