"""The paper's worked example: flight Tables 1-6.

Table 1 lists nine flights out of city A and Table 2 eight flights into
city B; the join condition is destination = source. All four skyline
attributes (cost, dur, rtg, amn) are treated as lower-is-better
(paper footnote 2).

Known inconsistencies in the printed tables (see DESIGN.md "Soundness
errata" and ``tests/integration/test_paper_example.py``):

* Flight 28's ``amn`` is printed as 37 in Table 2 but 39 in the joined
  Tables 3 and 6. Only 39 makes the paper's own elimination of (18,28)
  by (19,25) arithmetically valid, so this module uses 39.
* Under the paper's Sec. 2.2 definition, flight 16 (452, 3.6, 20, 36)
  3-dominates flight 18 (451, 3.7, 20, 37) — better-or-equal in dur,
  rtg and amn, strictly better in dur and amn — so 18 is SN1, not the
  SS1 printed in Table 1. The final skyline sets (Tables 3/6) are
  unaffected and reproduce exactly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..relational.relation import Relation
from ..relational.schema import RelationSchema

if TYPE_CHECKING:
    from collections.abc import Sequence

    from .._typing import IntMatrix

__all__ = [
    "TABLE1_ROWS",
    "TABLE2_ROWS",
    "PAPER_TABLE1_CATEGORIES",
    "PAPER_TABLE2_CATEGORIES",
    "EXPECTED_TABLE1_CATEGORIES",
    "EXPECTED_TABLE2_CATEGORIES",
    "EXPECTED_SKYLINE_FNOS",
    "EXPECTED_AGGREGATE_SKYLINE_FNOS",
    "flight_example_relations",
    "flight_example_aggregate_relations",
    "fno_pairs",
]

# fno, city (destination for f1 / source for f2), cost, dur, rtg, amn
TABLE1_ROWS: tuple[tuple[int, str, float, float, float, float], ...] = (
    (11, "C", 448, 3.2, 40, 40),
    (12, "C", 468, 4.2, 50, 38),
    (13, "D", 456, 3.8, 60, 34),
    (14, "D", 460, 4.0, 70, 32),
    (15, "E", 450, 3.4, 30, 42),
    (16, "F", 452, 3.6, 20, 36),
    (17, "G", 472, 4.6, 80, 46),
    (18, "H", 451, 3.7, 20, 37),
    (19, "E", 451, 3.7, 40, 37),
)

TABLE2_ROWS: tuple[tuple[int, str, float, float, float, float], ...] = (
    (21, "D", 348, 2.2, 40, 36),
    (22, "D", 368, 3.2, 50, 34),
    (23, "C", 356, 2.8, 60, 30),
    (24, "C", 360, 3.0, 70, 28),
    (25, "E", 350, 2.4, 30, 38),
    (26, "F", 352, 2.6, 20, 32),
    (27, "G", 372, 3.6, 80, 42),
    # amn = 39, not the 37 printed in Table 2 (see module docstring).
    (28, "H", 350, 2.4, 35, 39),
)

#: Categorization as printed in the paper's Tables 1-2 (k' = 3).
PAPER_TABLE1_CATEGORIES: dict[int, str] = {
    11: "SS", 12: "NN", 13: "SN", 14: "NN", 15: "SN",
    16: "SS", 17: "SN", 18: "SS", 19: "NN",
}
PAPER_TABLE2_CATEGORIES: dict[int, str] = {
    21: "SS", 22: "NN", 23: "SN", 24: "NN",
    25: "SN", 26: "SS", 27: "SN", 28: "SN",
}

#: Categorization under the paper's own Sec. 2.2 definition (k' = 3);
#: differs from the printed table only at flight 18 (16 ≻_3 18).
EXPECTED_TABLE1_CATEGORIES: dict[int, str] = {
    **PAPER_TABLE1_CATEGORIES,
    18: "SN",
}
EXPECTED_TABLE2_CATEGORIES: dict[int, str] = dict(PAPER_TABLE2_CATEGORIES)

#: Final k=7 skyline of the joined relation, Table 3 "skyline = yes".
EXPECTED_SKYLINE_FNOS: frozenset[tuple[int, int]] = frozenset(
    {(11, 23), (13, 21), (15, 25), (16, 26)}
)

#: Final k=6 skyline with cost aggregated (a=1), Table 6 "skyline = yes".
EXPECTED_AGGREGATE_SKYLINE_FNOS: frozenset[tuple[int, int]] = frozenset(
    {(11, 23), (13, 21), (15, 25), (16, 26)}
)

_SKYLINE = ["cost", "dur", "rtg", "amn"]


def _build(
    rows: Sequence[tuple[int, str, float, float, float, float]],
    aggregate: Sequence[str],
    name: str,
) -> Relation:
    schema = RelationSchema.build(
        join=["city"],
        skyline=_SKYLINE,
        aggregate=aggregate,
        payload=["fno"],
    )
    columns = {
        "fno": [r[0] for r in rows],
        "city": [r[1] for r in rows],
        "cost": [r[2] for r in rows],
        "dur": [r[3] for r in rows],
        "rtg": [r[4] for r in rows],
        "amn": [r[5] for r in rows],
    }
    return Relation(schema, columns, name=name)


def flight_example_relations() -> tuple[Relation, Relation]:
    """Tables 1-2 with all four attributes local (Problem 1, k = 7)."""
    return _build(TABLE1_ROWS, [], "f1"), _build(TABLE2_ROWS, [], "f2")


def flight_example_aggregate_relations() -> tuple[Relation, Relation]:
    """Tables 1-2 with cost aggregated (Problem 2, a = 1, k = 6)."""
    return (
        _build(TABLE1_ROWS, ["cost"], "f1"),
        _build(TABLE2_ROWS, ["cost"], "f2"),
    )


def fno_pairs(
    left: Relation, right: Relation, row_pairs: IntMatrix
) -> frozenset[tuple[int, int]]:
    """Convert (left_row, right_row) index pairs into (fno, fno) pairs."""
    left_fnos = list(left.column("fno"))
    right_fnos = list(right.column("fno"))
    return frozenset(
        (int(left_fnos[int(i)]), int(right_fnos[int(j)])) for i, j in row_pairs
    )
