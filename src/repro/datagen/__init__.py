"""Dataset generators: synthetic distributions, flights, paper example."""

from .flights import HUB_CITIES, make_flight_relations
from .paper_example import (
    EXPECTED_AGGREGATE_SKYLINE_FNOS,
    EXPECTED_SKYLINE_FNOS,
    EXPECTED_TABLE1_CATEGORIES,
    EXPECTED_TABLE2_CATEGORIES,
    PAPER_TABLE1_CATEGORIES,
    PAPER_TABLE2_CATEGORIES,
    flight_example_aggregate_relations,
    flight_example_relations,
    fno_pairs,
)
from .synthetic import (
    DISTRIBUTIONS,
    generate_matrix,
    generate_relation,
    generate_relation_pair,
)

__all__ = [
    "DISTRIBUTIONS",
    "EXPECTED_AGGREGATE_SKYLINE_FNOS",
    "EXPECTED_SKYLINE_FNOS",
    "EXPECTED_TABLE1_CATEGORIES",
    "EXPECTED_TABLE2_CATEGORIES",
    "HUB_CITIES",
    "PAPER_TABLE1_CATEGORIES",
    "PAPER_TABLE2_CATEGORIES",
    "flight_example_aggregate_relations",
    "flight_example_relations",
    "fno_pairs",
    "generate_matrix",
    "generate_relation",
    "generate_relation_pair",
    "make_flight_relations",
]
