"""Simulated two-leg flight dataset (paper Sec. 7.4 substitute).

The paper crawled makemytrip.com for 192 New Delhi -> hub flights and
155 hub -> Mumbai flights over 13 intermediate cities, with five
attributes per flight — cost and flying time (aggregated on the join)
plus date-change fee, popularity and amenities (local) — yielding a
joined relation of 2,649 two-leg itineraries. The crawl is not
available, so this module synthesizes a network with the same shape:

* identical table sizes, hub count and attribute roles;
* realistic anti-correlation: popular, amenity-rich flights cost more
  (real marketplaces are anti-correlated, which is what makes skyline
  queries interesting on them — paper Sec. 1);
* a mildly skewed hub distribution so the joined size lands near the
  paper's 2,649 rather than the uniform 192*155/13 ≈ 2,289.

The default seed makes the dataset reproducible; Fig. 11's k ∈ {6,7,8}
experiments run against it unchanged.
"""

from __future__ import annotations


from typing import TYPE_CHECKING

import numpy as np

from ..errors import ParameterError
from ..relational.relation import Relation
from ..relational.schema import RelationSchema

if TYPE_CHECKING:
    from .._typing import ColumnData, FloatVector

__all__ = ["HUB_CITIES", "make_flight_relations"]

HUB_CITIES: tuple[str, ...] = (
    "Jaipur", "Lucknow", "Bhopal", "Indore", "Nagpur", "Ahmedabad",
    "Udaipur", "Raipur", "Varanasi", "Patna", "Goa", "Hyderabad", "Pune",
)

_SCHEMA = RelationSchema.build(
    join=["via"],
    skyline=["cost", "fly_time", "fee", "popularity", "amenities"],
    aggregate=["cost", "fly_time"],
    higher_is_better=["popularity", "amenities"],
    payload=["fno"],
)


def make_flight_relations(
    n_out: int = 192,
    n_in: int = 155,
    n_hubs: int = 13,
    seed: int | None = 7,
) -> tuple[Relation, Relation]:
    """Build (Delhi -> hub, hub -> Mumbai) relations.

    Returns two relations sharing the schema: join attribute ``via``
    (hub city), aggregates ``cost`` and ``fly_time`` (lower better),
    locals ``fee`` (lower better), ``popularity`` and ``amenities``
    (higher better), payload ``fno``.
    """
    if n_hubs < 1 or n_hubs > len(HUB_CITIES):
        raise ParameterError(f"n_hubs must be in [1, {len(HUB_CITIES)}], got {n_hubs}")
    rng = np.random.default_rng(seed)
    hubs = HUB_CITIES[:n_hubs]
    # Skewed hub popularity: big hubs host disproportionately many
    # flights, pushing the joined size above the uniform n_out*n_in/g.
    weights = rng.dirichlet(np.full(n_hubs, 4.0)) * 0.5 + (
        np.linspace(2.0, 0.5, n_hubs) / np.linspace(2.0, 0.5, n_hubs).sum()
    ) * 0.5

    out = _make_leg(rng, hubs, weights, n_out, fno_base=1000, base_cost=3500.0,
                    base_time=1.6)
    inbound = _make_leg(rng, hubs, weights, n_in, fno_base=2000, base_cost=3200.0,
                        base_time=1.4)
    out_rel = Relation(_SCHEMA, out, name="delhi_to_hub")
    in_rel = Relation(_SCHEMA, inbound, name="hub_to_mumbai")
    return out_rel, in_rel


def _make_leg(
    rng: np.random.Generator,
    hubs: tuple[str, ...],
    weights: FloatVector,
    n: int,
    fno_base: int,
    base_cost: float,
    base_time: float,
) -> dict[str, ColumnData]:
    """One leg's columns with anti-correlated quality/price structure."""
    via = rng.choice(len(hubs), size=n, p=weights)
    # Latent "quality" drives popularity and amenities up and (being a
    # marketplace) cost up with it; time varies by hub distance.
    quality = rng.beta(2.0, 2.0, size=n)
    hub_distance = rng.uniform(0.7, 1.4, size=len(hubs))[via]
    cost = base_cost * hub_distance * (0.75 + 0.6 * quality) + rng.normal(
        0.0, 150.0, size=n
    )
    fly_time = base_time * hub_distance + rng.uniform(-0.2, 0.3, size=n)
    fee = np.round(
        2500.0 - 1200.0 * quality + rng.uniform(0.0, 800.0, size=n), 0
    )
    popularity = np.round(100.0 * np.clip(quality + rng.normal(0, 0.12, n), 0, 1), 0)
    amenities = np.round(50.0 * np.clip(quality + rng.normal(0, 0.18, n), 0, 1), 0)
    return {
        "via": [hubs[i] for i in via],
        "cost": np.round(np.maximum(cost, 800.0), 0),
        "fly_time": np.round(np.maximum(fly_time, 0.6), 2),
        "fee": np.maximum(fee, 0.0),
        "popularity": popularity,
        "amenities": amenities,
        "fno": [fno_base + i for i in range(n)],
    }
