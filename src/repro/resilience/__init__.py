"""Fault injection and fault tolerance for the KSJQ stack.

Production-scale serving treats partial failure as the normal case;
this package makes the reproduction behave that way while preserving
its central guarantee — an answer is either *byte-identical to the
clean serial exact path* or a *typed*
:class:`~repro.errors.ResilienceError`, never silently wrong. The
paper's own two-phase candidate/verify structure is what makes that
cheap: a lost shard can be re-executed and its candidates re-verified
against the full joined matrix without touching the non-transitivity
argument (see ``docs/resilience.md``).

Pieces:

* :mod:`~repro.resilience.faults` — named checkpoints
  (``checkpoint("shard.verify")``) and the seeded, deterministic
  :class:`FaultPlan` that injects worker crashes, stragglers, index
  corruption and transient I/O errors at them. Zero overhead disarmed.
* :mod:`~repro.resilience.retry` — :class:`RetryPolicy` (exponential
  backoff, deterministic jitter) and :func:`retry_call`.
* :mod:`~repro.resilience.breaker` — the serving
  :class:`CircuitBreaker`.
* :mod:`~repro.resilience.stats` — process-wide recovery counters
  (``shard_retries``, ``pool_rebuilds``, ``degradations``,
  ``index_quarantines``, ...) surfaced by ``Engine.cache_info()``.
"""

from .breaker import CircuitBreaker
from .faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    arm,
    armed_plan,
    arming,
    checkpoint,
    disarm,
    mark_pool_worker,
)
from .retry import RetryPolicy, retry_call
from .stats import COUNTER_NAMES, ResilienceStats, resilience_stats

__all__ = [
    "CircuitBreaker",
    "COUNTER_NAMES",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "ResilienceStats",
    "RetryPolicy",
    "arm",
    "armed_plan",
    "arming",
    "checkpoint",
    "disarm",
    "mark_pool_worker",
    "resilience_stats",
    "retry_call",
]
