"""Bounded retry with exponential backoff and deterministic jitter.

Thundering-herd avoidance wants jitter; reproducible chaos tests want
determinism. :class:`RetryPolicy` squares the two by deriving its
jitter from a seeded per-attempt hash rather than a live RNG: two runs
with the same policy sleep the same schedule, while two policies with
different seeds (e.g. one per shard) de-synchronize.
"""

from __future__ import annotations

import time
import zlib
from collections.abc import Callable
from dataclasses import dataclass
from typing import TypeVar

from ..errors import ResilienceError

__all__ = ["RetryPolicy", "retry_call"]

T = TypeVar("T")

#: Failures worth retrying by default: injected or transient faults
#: (ResilienceError) and OS-level hiccups. Anything else is a bug and
#: must propagate.
DEFAULT_RETRYABLE: tuple[type[BaseException], ...] = (ResilienceError, OSError)


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule for bounded retries.

    Attributes
    ----------
    max_attempts:
        Total tries including the first (``3`` = one try + two retries).
    base_delay:
        Backoff before the first retry, seconds; doubles per attempt.
    max_delay:
        Backoff ceiling, seconds.
    jitter:
        Fraction of the backoff randomized away (``0.5`` → each sleep
        lands in ``[0.5·d, d]``). Deterministic given ``seed``.
    seed:
        Jitter seed; vary it per call site to de-synchronize retries.
    """

    max_attempts: int = 3
    base_delay: float = 0.005
    max_delay: float = 0.25
    jitter: float = 0.5
    seed: int = 0

    def delay(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (0-based), seconds."""
        backoff = min(self.max_delay, self.base_delay * (2.0 ** attempt))
        if self.jitter <= 0.0:
            return backoff
        token = f"retry:{self.seed}:{attempt}".encode()
        unit = zlib.crc32(token) / 0xFFFFFFFF  # deterministic in [0, 1]
        return backoff * (1.0 - self.jitter * unit)


def retry_call(
    fn: Callable[[], T],
    policy: RetryPolicy | None = None,
    retryable: tuple[type[BaseException], ...] = DEFAULT_RETRYABLE,
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Call ``fn`` under ``policy``, retrying ``retryable`` failures.

    The final failure propagates typed and unchanged — a caller that
    exhausts the policy sees the underlying
    :class:`~repro.errors.ResilienceError` (or ``OSError``), never a
    silently absorbed one.
    """
    active = policy if policy is not None else RetryPolicy()
    attempt = 0
    while True:
        try:
            return fn()
        except retryable:
            attempt += 1
            if attempt >= active.max_attempts:
                raise
            sleep(active.delay(attempt - 1))
