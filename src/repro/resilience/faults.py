"""Deterministic fault injection at named checkpoints.

The execution layers (:mod:`repro.core.parallel`, ``core/index``,
``core/incremental``, ``serving/server``) call
:func:`checkpoint` with a stable *site* name at the points where real
deployments fail: shard candidate generation (``"shard.candidates"``),
cross-shard verification (``"shard.verify"``), index builds and
incremental maintenance (``"index.build"`` / ``"index.maintain"``),
delta application (``"delta.apply"``) and serving execution
(``"serving.execute"``). When no plan is armed the call is a single
``None`` comparison — measurably zero overhead — so the checkpoints
stay compiled into production paths.

A :class:`FaultPlan` arms a seeded, deterministic schedule of
:class:`FaultSpec` entries against those sites:

``crash``
    Inside a process-pool worker, the worker dies hard
    (``os._exit``) — the parent observes a genuine
    ``BrokenProcessPool``, exactly like a SIGKILLed or OOM-killed
    worker. Workers are identified *explicitly*: the shard pools pass
    :func:`mark_pool_worker` as their executor initializer, so a
    process is only killed when it declared itself expendable.
    (``multiprocessing.parent_process()`` is not a safe signal — the
    engine or server itself may legitimately run inside a
    ``multiprocessing.Process``, e.g. under a prefork server or a
    forking test harness, and killing *that* would take the whole
    service down instead of degrading.) Everywhere else — threads,
    the main process, any unmarked child — the fault degrades to
    raising :class:`InjectedFault`, which the recovery ladder absorbs.
``slow``
    The checkpoint sleeps for ``delay`` seconds (a straggler shard).
``corrupt`` / ``io``
    The checkpoint raises :class:`InjectedFault` (a typed
    :class:`~repro.errors.ResilienceError`), modelling a corrupted
    index page or a transient I/O error respectively.

Hit counters live in :mod:`multiprocessing` shared memory created at
construction time, so fork-inherited pool workers consume the *same*
fault budget as the parent: a ``times=1`` crash fires exactly once
even across pool rebuilds — without shared counters every re-forked
worker would inherit a zero count and crash forever.

Determinism: which hit fires depends only on the per-site hit number
(and, for ``rate`` specs, on the plan ``seed``), never on wall-clock
time or process identity.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
from collections.abc import Iterable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any

from ..errors import ResilienceError
from .stats import resilience_stats

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "InjectedFault",
    "arm",
    "disarm",
    "armed_plan",
    "arming",
    "checkpoint",
    "mark_pool_worker",
]

#: Failure modes a :class:`FaultSpec` can inject.
FAULT_KINDS = ("crash", "slow", "corrupt", "io")

#: Exit status of a deliberately crashed pool worker (visible in the
#: parent's ``BrokenProcessPool`` message; any non-zero value works).
CRASH_EXIT_CODE = 13

#: Has *this* process declared itself an expendable pool worker?
#: Set by :func:`mark_pool_worker` (an executor initializer), never
#: inferred from process ancestry: being a multiprocessing child does
#: not make a process safe to ``os._exit`` — the engine or server may
#: itself run inside a ``multiprocessing.Process``.
_pool_worker = False


def mark_pool_worker() -> None:
    """Declare the current process an expendable pool worker.

    Pass as the ``initializer=`` of a ``ProcessPoolExecutor`` whose
    workers a ``crash`` fault may kill (``core/parallel`` does). Only
    marked processes die hard; everywhere else the fault degrades to
    :class:`InjectedFault` so the recovery ladder can absorb it.
    """
    global _pool_worker
    _pool_worker = True


def in_pool_worker() -> bool:
    """Is this process a marked pool worker? (test hook)"""
    return _pool_worker


class InjectedFault(ResilienceError):
    """A fault-injection checkpoint fired.

    Typed (via :class:`~repro.errors.ResilienceError`) so the chaos
    suite can distinguish a deliberately surfaced failure from a
    silently wrong answer, and picklable so process-pool workers can
    send it back to the parent.
    """

    def __init__(self, site: str, kind: str) -> None:
        super().__init__(f"injected {kind!r} fault at checkpoint {site!r}")
        self.site = site
        self.kind = kind

    def __reduce__(self) -> tuple[type, tuple[str, str]]:
        return (type(self), (self.site, self.kind))


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault at one checkpoint site.

    Attributes
    ----------
    site:
        Checkpoint name the fault is bound to (``"shard.verify"``...).
    kind:
        One of :data:`FAULT_KINDS`.
    times:
        How many hits fire after the ``after`` skip; ``None`` means
        every hit fires (a *persistent* fault the retry ladder cannot
        outlast). Ignored when ``rate`` is set.
    after:
        Hits of the site to let through cleanly before firing.
    delay:
        Sleep duration in seconds for ``slow`` faults.
    rate:
        Optional probability in ``[0, 1]``: each hit past ``after``
        fires with this probability, derived deterministically from the
        plan seed and the hit number.
    """

    site: str
    kind: str = "io"
    times: int | None = 1
    after: int = 0
    delay: float = 0.01
    rate: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.after < 0:
            raise ValueError("after must be >= 0")
        if self.times is not None and self.times < 0:
            raise ValueError("times must be >= 0 (or None for unbounded)")
        if self.rate is not None and not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be within [0, 1]")

    def fires(self, hit: int, seed: int) -> bool:
        """Should the ``hit``-th observation of the site (0-based) fire?

        Pure function of ``(spec, hit, seed)`` — never of time or
        process identity — so armed runs are reproducible.
        """
        if hit < self.after:
            return False
        if self.rate is not None:
            # Deterministic per-hit coin flip: blake2b of (site, seed,
            # hit) scaled into [0, 1). Unlike hash() it is stable
            # across processes and PYTHONHASHSEED values, and unlike a
            # CRC it decorrelates neighboring seeds and hit numbers.
            token = f"{self.site}:{seed}:{hit}".encode()
            digest = hashlib.blake2b(token, digest_size=8).digest()
            return int.from_bytes(digest, "big") / 2.0**64 < self.rate
        if self.times is None:
            return True
        return hit < self.after + self.times


class FaultPlan:
    """A seeded, deterministic schedule of faults across checkpoints.

    Hit counters are shared-memory values (fork-inherited by pool
    workers) synchronized by their own locks; the plan object itself
    holds no further mutable state, so one plan may be armed while
    queries run on many threads and processes at once.
    """

    def __init__(self, specs: Iterable[FaultSpec] = (), seed: int = 0) -> None:
        self.specs = tuple(specs)
        self.seed = int(seed)
        self._hits = tuple(
            multiprocessing.Value("l", 0) for _ in self.specs
        )
        by_site: dict[str, list[tuple[FaultSpec, Any]]] = {}
        for spec, counter in zip(self.specs, self._hits):
            by_site.setdefault(spec.site, []).append((spec, counter))
        self._by_site = {site: tuple(entries) for site, entries in by_site.items()}

    def hits(self, site: str) -> int:
        """Total observed hits of ``site``'s first spec (test hook)."""
        total = 0
        for _spec, counter in self._by_site.get(site, ()):
            with counter.get_lock():
                total = max(total, int(counter.value))
        return total

    def hit(self, site: str) -> None:
        """Record one observation of ``site`` and fire any due fault."""
        for spec, counter in self._by_site.get(site, ()):
            with counter.get_lock():
                hit = int(counter.value)
                counter.value = hit + 1
            if not spec.fires(hit, self.seed):
                continue
            resilience_stats().record("faults_injected")
            if spec.kind == "slow":
                time.sleep(spec.delay)
                continue
            if spec.kind == "crash" and _pool_worker:
                # A real worker death: the parent sees BrokenProcessPool,
                # exactly as if the OOM killer took the worker.
                os._exit(CRASH_EXIT_CODE)
            raise InjectedFault(site, spec.kind)

    def __repr__(self) -> str:
        sites = sorted({spec.site for spec in self.specs})
        return (
            f"<FaultPlan seed={self.seed} specs={len(self.specs)} "
            f"sites={sites}>"
        )


#: The armed plan. ``None`` (disarmed) keeps :func:`checkpoint` on its
#: single-comparison fast path.
_armed: FaultPlan | None = None


def arm(plan: FaultPlan) -> FaultPlan:
    """Arm ``plan`` process-wide; returns it for chaining."""
    global _armed
    _armed = plan
    return plan


def disarm() -> None:
    """Disarm fault injection (checkpoints return to zero overhead)."""
    global _armed
    _armed = None


def armed_plan() -> FaultPlan | None:
    """The currently armed plan, or ``None`` when disarmed."""
    return _armed


@contextmanager
def arming(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Arm ``plan`` for the duration of a ``with`` block (test helper)."""
    previous = _armed
    arm(plan)
    try:
        yield plan
    finally:
        if previous is None:
            disarm()
        else:
            arm(previous)


def checkpoint(site: str) -> None:
    """Observe the named checkpoint; inject a fault if one is due.

    Disarmed (the production state) this is one global load and a
    ``None`` comparison — cheap enough to sit inside per-shard worker
    functions without measurable overhead (see
    ``benchmarks/bench_resilience.py``).
    """
    plan = _armed
    if plan is None:
        return
    plan.hit(site)
