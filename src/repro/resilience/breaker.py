"""Circuit breaker for the serving layer's engine executions.

A server whose engine fails repeatedly (a poisoned dataset, a sick
host) should *shed fast* rather than queue doomed work behind its
admission controller. :class:`CircuitBreaker` implements the standard
three-state machine:

``closed``
    Normal operation. Consecutive failures are counted; reaching
    ``failure_threshold`` trips the breaker open.
``open``
    Every request is shed (HTTP 503 + ``Retry-After``) until
    ``reset_timeout`` has elapsed.
``half_open``
    Exactly one probe request is admitted; its success closes the
    breaker, its failure re-opens it for another full timeout, and an
    outcome that says nothing about engine health (a client error, a
    disconnect) releases the probe slot via :meth:`record_neutral` so
    the next arrival may probe — a leaked slot would shed traffic
    forever, since ``half_open`` has no timeout of its own.

The breaker is called from the serving event loop *and* judged by
results produced on executor threads, so it synchronizes with a lock —
which is why it lives here rather than in the serving package, whose
``async def`` bodies the R5 linter rule keeps lock-free.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable

from .stats import resilience_stats

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Consecutive-failure circuit breaker with a half-open probe.

    # guarded-by: _lock: _state, _failures, _opened_at, _probing
    """

    def __init__(
        self,
        failure_threshold: int = 8,
        reset_timeout: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.failure_threshold = max(1, int(failure_threshold))
        self.reset_timeout = float(reset_timeout)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half_open"``."""
        with self._lock:
            return self._state

    @property
    def retry_after(self) -> float:
        """Seconds until the breaker next admits a probe (0 when it
        already would)."""
        with self._lock:
            if self._state != "open":
                return 0.0
            remaining = self.reset_timeout - (self._clock() - self._opened_at)
            return max(0.0, remaining)

    def allow(self) -> bool:
        """May a request proceed right now?

        In the open state, the first caller after ``reset_timeout``
        wins the half-open probe slot; everyone else stays shed until
        the probe's outcome is recorded.
        """
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if self._clock() - self._opened_at < self.reset_timeout:
                    return False
                self._state = "half_open"
                self._probing = True
                return True
            # half_open: one probe outstanding at a time
            if self._probing:
                return False
            self._probing = True
            return True

    def record_success(self) -> None:
        """An admitted request succeeded; close the breaker.

        Only from ``closed`` (streak reset) or ``half_open`` (probe
        verdict): in the ``open`` state a success necessarily comes
        from a slow request admitted *before* the trip, says nothing
        about current engine health, and must not let queued traffic
        skip the reset timeout — it is treated as neutral.
        """
        with self._lock:
            if self._state == "open":
                return
            self._state = "closed"
            self._failures = 0
            self._probing = False

    def record_neutral(self) -> None:
        """An admitted request ended without an engine-health verdict
        (client error, disconnect, post-admission shed): release the
        half-open probe slot, change nothing else.

        Every ``allow()`` grant must eventually be answered by exactly
        one of success/failure/neutral — otherwise the probe slot
        leaks and ``allow()`` sheds all traffic forever.
        """
        with self._lock:
            if self._state == "half_open":
                self._probing = False

    def record_failure(self) -> None:
        """An admitted request failed; trip or re-open as appropriate."""
        opened = False
        with self._lock:
            if self._state == "half_open":
                self._state = "open"
                self._opened_at = self._clock()
                self._probing = False
                opened = True
            else:
                self._failures += 1
                if self._failures >= self.failure_threshold:
                    self._state = "open"
                    self._opened_at = self._clock()
                    opened = True
        if opened:
            resilience_stats().record("breaker_opens")

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"<CircuitBreaker {self._state} failures={self._failures}/"
                f"{self.failure_threshold}>"
            )
