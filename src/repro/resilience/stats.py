"""Process-wide resilience counters.

The recovery machinery spans layers that hold no reference to an
:class:`~repro.api.engine.Engine` (the shard executor in
:mod:`repro.core.parallel` in particular), so its bookkeeping lives in
one process-wide accumulator rather than per-engine state.
``Engine.cache_info()`` surfaces a snapshot under the ``"resilience"``
key, and ``Engine.explain`` folds the totals into its summary line.
"""

from __future__ import annotations

import threading

__all__ = ["COUNTER_NAMES", "ResilienceStats", "resilience_stats"]

#: Every counter the accumulator tracks, in reporting order.
COUNTER_NAMES = (
    "shard_retries",       # failed shard tasks re-executed
    "pool_rebuilds",       # broken process pools torn down and re-forked
    "degradations",        # executor ladder steps (process→thread→serial)
    "index_quarantines",   # indexes dropped after load/maintenance failures
    "delta_failures",      # delta applications that dirtied a live handle
    "breaker_opens",       # serving circuit-breaker trips
    "faults_injected",     # checkpoints that deliberately fired
)


class ResilienceStats:
    """Thread-safe counter accumulator.

    # guarded-by: _lock: _counts
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = dict.fromkeys(COUNTER_NAMES, 0)

    def record(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the named counter."""
        if name not in COUNTER_NAMES:
            raise KeyError(f"unknown resilience counter {name!r}")
        with self._lock:
            self._counts[name] += n

    def snapshot(self) -> dict[str, int]:
        """A point-in-time copy of every counter."""
        with self._lock:
            return dict(self._counts)

    def reset(self) -> None:
        """Zero every counter (test isolation hook)."""
        with self._lock:
            self._counts = dict.fromkeys(COUNTER_NAMES, 0)

    def __repr__(self) -> str:
        with self._lock:
            nonzero = {k: v for k, v in self._counts.items() if v}
        return f"<ResilienceStats {nonzero or 'clean'}>"


_STATS = ResilienceStats()


def resilience_stats() -> ResilienceStats:
    """The process-wide accumulator."""
    return _STATS
