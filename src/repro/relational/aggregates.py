"""Aggregate functions applied to paired attributes at join time.

Paper Sec. 2.3/5.6: ``a`` skyline attributes of each relation are marked
for aggregation; on a join, each pair is combined by a *monotonic*
aggregation operator ``⊕`` (the paper's experiments use ``sum``).

Monotonicity is required in *preference* order: if ``u1`` is preferred
over ``u2`` and ``v1`` over ``v2``, then ``u1 ⊕ v1`` must be preferred
over ``u2 ⊕ v2``. Because paired attributes must share a preference
direction (validated at join time), any function that is increasing in
each raw argument satisfies this for both "lower" and "higher"
preferences.

Strict monotonicity (strictly better input on one side with equal input
on the other gives a strictly better output) is additionally required by
the NN-pruning proof of the optimized algorithms (Theorem 4 analogue;
see DESIGN.md "Soundness errata"). ``sum`` is strictly monotone;
``max``/``min`` are not (``max(3, 5) == max(4, 5)``).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..errors import AggregateError

if TYPE_CHECKING:
    from .._typing import AggregateLike, FloatMatrix

__all__ = [
    "AggregateFunction",
    "SUM",
    "PRODUCT",
    "MEAN",
    "MAX",
    "MIN",
    "get_aggregate",
    "register_aggregate",
]


@dataclass(frozen=True)
class AggregateFunction:
    """A binary aggregation operator over raw attribute values.

    Parameters
    ----------
    name:
        Registry key (e.g. ``"sum"``).
    fn:
        Vectorized ``(left_values, right_values) -> combined_values`` in
        raw (un-oriented) space.
    strictly_monotone:
        ``True`` iff the function is strictly increasing in each
        argument over its intended domain. Optimized KSJQ algorithms
        require this; the naïve algorithm does not.
    domain_note:
        Human-readable restriction (e.g. product requires positives).
    """

    name: str
    fn: Callable[[FloatMatrix, FloatMatrix], FloatMatrix]
    strictly_monotone: bool
    domain_note: str = ""

    def __call__(self, left: FloatMatrix, right: FloatMatrix) -> FloatMatrix:
        left = np.asarray(left, dtype=np.float64)
        right = np.asarray(right, dtype=np.float64)
        if left.shape != right.shape:
            raise AggregateError(
                f"aggregate {self.name!r}: shape mismatch {left.shape} vs {right.shape}"
            )
        return self.fn(left, right)


SUM = AggregateFunction("sum", lambda x, y: x + y, strictly_monotone=True)
MEAN = AggregateFunction("mean", lambda x, y: (x + y) / 2.0, strictly_monotone=True)
PRODUCT = AggregateFunction(
    "product",
    lambda x, y: x * y,
    strictly_monotone=True,
    domain_note="strictly monotone only for positive values",
)
MAX = AggregateFunction("max", np.maximum, strictly_monotone=False)
MIN = AggregateFunction("min", np.minimum, strictly_monotone=False)

_REGISTRY: dict[str, AggregateFunction] = {
    f.name: f for f in (SUM, MEAN, PRODUCT, MAX, MIN)
}


def get_aggregate(name_or_fn: AggregateLike) -> AggregateFunction:
    """Resolve an aggregate by registry name or pass one through.

    Accepts an :class:`AggregateFunction` (returned unchanged) or a
    string key such as ``"sum"``.
    """
    if isinstance(name_or_fn, AggregateFunction):
        return name_or_fn
    if isinstance(name_or_fn, str):
        try:
            return _REGISTRY[name_or_fn]
        except KeyError:
            raise AggregateError(
                f"unknown aggregate {name_or_fn!r}; known: {sorted(_REGISTRY)}"
            ) from None
    raise AggregateError(
        f"aggregate must be a name or AggregateFunction, got {type(name_or_fn).__name__}"
    )


def register_aggregate(func: AggregateFunction, overwrite: bool = False) -> None:
    """Add a custom aggregate to the registry.

    Raises :class:`~repro.errors.AggregateError` if the name is taken and
    ``overwrite`` is false.
    """
    if func.name in _REGISTRY and not overwrite:
        raise AggregateError(f"aggregate {func.name!r} already registered")
    _REGISTRY[func.name] = func
