"""In-memory relation: the storage substrate for all KSJQ algorithms.

A :class:`Relation` stores the skyline attributes in a dense ``float64``
numpy matrix (one row per tuple) for vectorized dominance tests, join
attributes as python object columns (hashable keys), and payload columns
untouched. Rows are identified by their index; algorithms exchange row
indices, not tuple copies.

The *oriented matrix* (:meth:`Relation.oriented`) maps every skyline
attribute into minimize-space (higher-is-better columns are negated) so
all dominance code can assume "lower is preferred" (paper Sec. 2.1,
"without loss of generality").
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING

import numpy as np

from ..errors import SchemaError
from .schema import RelationSchema, Role

if TYPE_CHECKING:
    from collections.abc import Callable, Iterable, Mapping, Sequence

    from .._typing import ColumnData, FloatMatrix, JoinKey, Record

__all__ = ["Relation"]


class Relation:
    """An immutable in-memory relation conforming to a :class:`RelationSchema`.

    Parameters
    ----------
    schema:
        Column definitions (roles, preferences, aggregate marks).
    columns:
        Mapping from attribute name to a sequence of values, one entry
        per attribute in the schema. All columns must share one length.
    name:
        Optional display name used in reprs and error messages.
    """

    def __init__(
        self,
        schema: RelationSchema,
        columns: Mapping[str, ColumnData],
        name: str = "R",
    ) -> None:
        self.schema = schema
        self.name = name
        missing = set(schema.names) - set(columns)
        if missing:
            raise SchemaError(f"{name}: missing columns {sorted(missing)}")
        extra = set(columns) - set(schema.names)
        if extra:
            raise SchemaError(f"{name}: columns not in schema {sorted(extra)}")

        lengths = {len(columns[col]) for col in schema.names}
        if len(lengths) > 1:
            raise SchemaError(f"{name}: ragged columns, lengths {sorted(lengths)}")
        self._n = lengths.pop() if lengths else 0

        # Skyline attributes as a dense float matrix (n x d).
        sky_names = schema.skyline_names
        if sky_names:
            try:
                matrix = np.column_stack(
                    [np.asarray(columns[c], dtype=np.float64) for c in sky_names]
                )
            except (TypeError, ValueError) as exc:
                raise SchemaError(f"{name}: skyline attributes must be numeric: {exc}") from exc
            if not np.isfinite(matrix).all():
                raise SchemaError(f"{name}: skyline attributes must be finite (no NaN/inf)")
        else:
            matrix = np.empty((self._n, 0), dtype=np.float64)
        self._matrix = matrix
        self._matrix.setflags(write=False)

        # Join/payload columns stay as plain tuples of python objects.
        self._join_cols: dict[str, tuple[object, ...]] = {
            c: tuple(columns[c]) for c in schema.join_names
        }
        self._payload_cols: dict[str, tuple[object, ...]] = {
            c: tuple(columns[c]) for c in schema.payload_names
        }

        signs = np.asarray(schema.preference_signs(), dtype=np.float64)
        self._oriented = matrix * signs if sky_names else matrix
        self._oriented.setflags(write=False)
        self._fingerprint: str | None = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_records(
        cls,
        schema: RelationSchema,
        records: Iterable[Mapping[str, object]],
        name: str = "R",
    ) -> Relation:
        """Build a relation from an iterable of per-tuple dicts."""
        records = list(records)
        columns: dict[str, list[object]] = {col: [] for col in schema.names}
        for i, rec in enumerate(records):
            for col in schema.names:
                if col not in rec:
                    raise SchemaError(f"{name}: record {i} missing attribute {col!r}")
                columns[col].append(rec[col])
        return cls(schema, columns, name=name)

    @classmethod
    def from_arrays(
        cls,
        skyline: FloatMatrix,
        skyline_names: Sequence[str],
        join_key: Sequence[object] | None = None,
        join_name: str = "grp",
        aggregate: Sequence[str] = (),
        higher_is_better: Sequence[str] = (),
        name: str = "R",
    ) -> Relation:
        """Build a relation from a numpy skyline matrix plus a join column.

        This is the fast path used by the synthetic data generators.
        """
        skyline = np.asarray(skyline, dtype=np.float64)
        if skyline.ndim != 2:
            raise SchemaError(f"{name}: skyline matrix must be 2-D, got {skyline.ndim}-D")
        if skyline.shape[1] != len(skyline_names):
            raise SchemaError(
                f"{name}: {skyline.shape[1]} columns vs {len(skyline_names)} names"
            )
        join_cols = [join_name] if join_key is not None else []
        schema = RelationSchema.build(
            join=join_cols,
            skyline=list(skyline_names),
            aggregate=list(aggregate),
            higher_is_better=list(higher_is_better),
        )
        columns: dict[str, ColumnData] = {
            col: skyline[:, i] for i, col in enumerate(skyline_names)
        }
        if join_key is not None:
            if len(join_key) != skyline.shape[0]:
                raise SchemaError(f"{name}: join column length mismatch")
            columns[join_name] = list(join_key)
        return cls(schema, columns, name=name)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    @property
    def d(self) -> int:
        """Number of skyline attributes."""
        return self.schema.d

    @property
    def matrix(self) -> FloatMatrix:
        """Raw skyline attribute matrix (n x d), read-only."""
        return self._matrix

    def oriented(self) -> FloatMatrix:
        """Skyline matrix in minimize-space (read-only view).

        Column order matches ``schema.skyline_names``. Lower is always
        preferred in this matrix.
        """
        return self._oriented

    def oriented_local(self) -> FloatMatrix:
        """Minimize-space matrix restricted to local (non-aggregate) columns."""
        idx = self.local_column_indices()
        return self._oriented[:, idx]

    def oriented_aggregate(self) -> FloatMatrix:
        """Minimize-space matrix restricted to aggregate-input columns."""
        idx = self.aggregate_column_indices()
        return self._oriented[:, idx]

    def local_column_indices(self) -> list[int]:
        """Positions of local attributes within the skyline matrix."""
        names = self.schema.skyline_names
        local = set(self.schema.local_names)
        return [i for i, n in enumerate(names) if n in local]

    def aggregate_column_indices(self) -> list[int]:
        """Positions of aggregate inputs within the skyline matrix."""
        names = self.schema.skyline_names
        agg = set(self.schema.aggregate_names)
        return [i for i, n in enumerate(names) if n in agg]

    def column(self, name: str) -> ColumnData:
        """Return one column by name (any role)."""
        spec = self.schema[name]
        if spec.role is Role.SKYLINE:
            return self._matrix[:, list(self.schema.skyline_names).index(name)]
        if spec.role is Role.JOIN:
            return self._join_cols[name]
        return self._payload_cols[name]

    def fingerprint(self) -> str:
        """Stable content hash identifying this relation's data and schema.

        Relations are immutable, so the digest is computed once and
        memoized. Two relations with equal schemas and equal column
        contents share a fingerprint even when they are distinct
        objects, which is what plan caches key on.
        """
        if self._fingerprint is None:
            h = hashlib.sha1()
            for name in self.schema.names:
                spec = self.schema[name]
                h.update(
                    f"{name}|{spec.role.name}|{spec.preference.name}|"
                    f"{spec.aggregate}\n".encode()
                )
            h.update(np.ascontiguousarray(self._matrix).tobytes())
            for col_map in (self._join_cols, self._payload_cols):
                for name in sorted(col_map):
                    h.update(name.encode())
                    h.update(repr(col_map[name]).encode())
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    def join_key(self, row: int) -> JoinKey:
        """Composite equality-join key of one row."""
        return tuple(self._join_cols[c][row] for c in self.schema.join_names)

    def join_keys(self) -> list[JoinKey]:
        """Composite join keys for all rows, in row order."""
        cols = [self._join_cols[c] for c in self.schema.join_names]
        return [tuple(col[i] for col in cols) for i in range(self._n)]

    def record(self, row: int) -> Record:
        """One tuple as a plain dict (raw, un-oriented values)."""
        rec: Record = {}
        for name in self.schema.names:
            spec = self.schema[name]
            if spec.role is Role.SKYLINE:
                rec[name] = float(self._matrix[row, list(self.schema.skyline_names).index(name)])
            elif spec.role is Role.JOIN:
                rec[name] = self._join_cols[name][row]
            else:
                rec[name] = self._payload_cols[name][row]
        return rec

    def records(self) -> list[Record]:
        """All tuples as dicts, in row order."""
        return [self.record(i) for i in range(self._n)]

    # ------------------------------------------------------------------
    # Relational operations (return new Relations)
    # ------------------------------------------------------------------
    def take(self, rows: Sequence[int], name: str | None = None) -> Relation:
        """Row subset (like SELECT with an explicit row list)."""
        rows = list(rows)
        columns: dict[str, ColumnData] = {}
        for col_name in self.schema.names:
            col = self.column(col_name)
            if isinstance(col, np.ndarray):
                columns[col_name] = col[rows]
            else:
                columns[col_name] = [col[i] for i in rows]
        return Relation(self.schema, columns, name=name or self.name)

    def select(
        self, predicate: Callable[[Record], bool], name: str | None = None
    ) -> Relation:
        """Row filter by a ``record -> bool`` predicate."""
        rows = [i for i in range(self._n) if predicate(self.record(i))]
        return self.take(rows, name=name)

    def sort_by(self, key_column: str, descending: bool = False) -> Relation:
        """New relation sorted by one column (stable)."""
        col = self.column(key_column)
        order = sorted(range(self._n), key=lambda i: col[i], reverse=descending)
        return self.take(order)

    def head(self, n: int) -> Relation:
        """First ``n`` rows."""
        return self.take(range(min(n, self._n)))

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"<Relation {self.name!r}: {self._n} tuples, "
            f"d={self.d} (a={self.schema.a}), join={list(self.schema.join_names)}>"
        )

    def to_text(self, max_rows: int = 20) -> str:
        """Fixed-width textual rendering, for examples and debugging."""
        headers = list(self.schema.names)
        rows = []
        for i in range(min(self._n, max_rows)):
            rec = self.record(i)
            rows.append([_fmt(rec[h]) for h in headers])
        widths = [
            max(len(h), *(len(r[j]) for r in rows)) if rows else len(h)
            for j, h in enumerate(headers)
        ]
        out = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
        for r in rows:
            out.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
        if self._n > max_rows:
            out.append(f"... ({self._n - max_rows} more rows)")
        return "\n".join(out)


def _fmt(value: object) -> str:
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return str(value)
