"""Joins over base relations: equality, cartesian and theta variants.

The KSJQ algorithms never materialize the full join when they can avoid
it; what they share is (a) *pair enumeration* — which ``(left_row,
right_row)`` combinations are join-compatible — and (b) the *joined
layout* — how the skyline attributes of a joined tuple are laid out
(paper Eq. 3 for the plain case; Sec. 5.6 with aggregates).

:class:`JoinedView` bundles both, provides vectorized access to the
oriented (minimize-space) joined matrix, and can materialize a plain
:class:`~repro.relational.relation.Relation` for the naïve algorithm or
for end users.

Joined skyline column order (library-wide convention):
``R1 locals, R2 locals, aggregates`` — aggregates in the order they
appear in ``R1``'s schema.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..errors import JoinError
from .aggregates import AggregateFunction, get_aggregate
from .groups import GroupIndex, ThetaOp
from .relation import Relation
from .schema import RelationSchema

if TYPE_CHECKING:
    from collections.abc import Sequence

    from .._typing import (
        AggregateLike,
        BoolVector,
        FloatMatrix,
        FloatVector,
        HopLike,
        IntMatrix,
        ThetaLike,
    )

__all__ = [
    "HopSpec",
    "ThetaCondition",
    "JoinedLayout",
    "JoinedView",
    "equality_pairs",
    "cartesian_pairs",
    "theta_pairs",
    "theta_conjunction_mask",
    "theta_value_mask",
    "pairs_product",
]

HOP_KINDS = ("equality", "cartesian", "theta")


@dataclass(frozen=True)
class ThetaCondition:
    """A single non-equality join condition ``left.attr <op> right.attr``."""

    left_attr: str
    op: ThetaOp
    right_attr: str

    def __str__(self) -> str:
        return f"left.{self.left_attr} {self.op.value} right.{self.right_attr}"


@dataclass(frozen=True)
class HopSpec:
    """One hop of a join graph: how relation ``i`` connects to ``i + 1``.

    A chain of N relations is described by N - 1 hops; each hop carries
    its own join kind, mirroring the two-way ``JOIN_KINDS``:

    * ``"equality"`` (default) — equality of one named column per side
      (``HopSpec.on_columns("dest", "source")`` expresses
      ``left.dest == right.source``); a side whose column is ``None``
      contributes its schema's composite join key, so the bare
      ``HopSpec()`` is exactly the two-way default equality join;
    * ``"theta"`` — a conjunction of non-equality
      :class:`ThetaCondition` predicates (``HopSpec.on_theta(...)``);
    * ``"cartesian"`` — every pair joins (``HopSpec.cross()``).

    HopSpecs are frozen and hashable, so query specs built from them
    can key engine plan caches.
    """

    kind: str = "equality"
    left_column: str | None = None
    right_column: str | None = None
    theta: tuple[ThetaCondition, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in HOP_KINDS:
            raise JoinError(f"unknown hop kind {self.kind!r}; choose from {HOP_KINDS}")
        if self.kind == "theta":
            object.__setattr__(self, "theta", normalize_theta(self.theta))
        elif self.theta:
            raise JoinError(f"theta condition given but hop kind={self.kind!r}")
        if self.kind != "equality" and (self.left_column or self.right_column):
            raise JoinError(f"hop columns given but hop kind={self.kind!r}")

    # -- constructors ---------------------------------------------------
    @classmethod
    def key(cls) -> HopSpec:
        """Equality on both schemas' composite join keys (the default)."""
        return cls()

    @classmethod
    def on_columns(
        cls, left_column: str | None, right_column: str | None
    ) -> HopSpec:
        """Equality of one named column per side (``None`` = composite key)."""
        return cls(kind="equality", left_column=left_column, right_column=right_column)

    @classmethod
    def on_theta(cls, theta: ThetaLike) -> HopSpec:
        """Theta hop: one condition or a conjunction sequence."""
        return cls(kind="theta", theta=normalize_theta(theta))

    @classmethod
    def cross(cls) -> HopSpec:
        """Cartesian hop: every left row joins every right row."""
        return cls(kind="cartesian")

    @classmethod
    def coerce(cls, obj: HopLike) -> HopSpec:
        """Normalize a hop-like object to a :class:`HopSpec`.

        Accepts a ``HopSpec``, ``None`` (composite-key equality), a
        :class:`ThetaCondition` or sequence of them (conjunction), or
        any object with ``left_column`` / ``right_column`` attributes
        (e.g. the legacy :class:`repro.core.cascade.Hop`).
        """
        if isinstance(obj, cls):
            return obj
        if obj is None:
            return cls()
        if isinstance(obj, ThetaCondition):
            return cls.on_theta(obj)
        if hasattr(obj, "left_column") and hasattr(obj, "right_column"):
            return cls.on_columns(obj.left_column, obj.right_column)
        try:
            return cls.on_theta(normalize_theta(obj))
        except JoinError:
            raise JoinError(
                f"cannot interpret {obj!r} as a hop; pass a HopSpec, Hop, "
                "ThetaCondition, conjunction sequence, or None"
            ) from None

    def describe(self) -> str:
        """One-line human-readable rendering."""
        if self.kind == "cartesian":
            return "cartesian"
        if self.kind == "theta":
            return " AND ".join(str(c) for c in self.theta)
        left = self.left_column if self.left_column is not None else "<join key>"
        right = self.right_column if self.right_column is not None else "<join key>"
        return f"left.{left} == right.{right}"

    def __str__(self) -> str:
        return self.describe()


@dataclass(frozen=True)
class JoinedLayout:
    """Skyline column layout of a joined relation.

    Attributes
    ----------
    names:
        Joined skyline attribute names: ``r1.<local>``, ``r2.<local>``,
        then bare aggregate names.
    left_local_idx / right_local_idx:
        Column positions (within each base relation's skyline matrix) of
        the local attributes contributing to the joined tuple.
    left_agg_idx / right_agg_idx:
        Column positions of the aggregate inputs, paired positionally.
    """

    names: tuple[str, ...]
    left_local_idx: tuple[int, ...]
    right_local_idx: tuple[int, ...]
    left_agg_idx: tuple[int, ...]
    right_agg_idx: tuple[int, ...]

    @property
    def n_left_local(self) -> int:
        return len(self.left_local_idx)

    @property
    def n_right_local(self) -> int:
        return len(self.right_local_idx)

    @property
    def n_aggregate(self) -> int:
        return len(self.left_agg_idx)

    @property
    def width(self) -> int:
        """Total number of joined skyline attributes (``l1 + l2 + a``)."""
        return self.n_left_local + self.n_right_local + self.n_aggregate


def make_layout(left: RelationSchema, right: RelationSchema) -> JoinedLayout:
    """Derive the joined skyline layout for two base schemas."""
    left.validate_compatible_aggregates(right)
    left_sky = list(left.skyline_names)
    right_sky = list(right.skyline_names)
    agg_names = [n for n in left_sky if n in set(left.aggregate_names)]

    left_local = [n for n in left_sky if n not in set(agg_names)]
    right_local = [n for n in right_sky if n not in set(agg_names)]
    names = (
        [f"r1.{n}" for n in left_local]
        + [f"r2.{n}" for n in right_local]
        + list(agg_names)
    )
    return JoinedLayout(
        names=tuple(names),
        left_local_idx=tuple(left_sky.index(n) for n in left_local),
        right_local_idx=tuple(right_sky.index(n) for n in right_local),
        left_agg_idx=tuple(left_sky.index(n) for n in agg_names),
        right_agg_idx=tuple(right_sky.index(n) for n in agg_names),
    )


# ----------------------------------------------------------------------
# Pair enumeration
# ----------------------------------------------------------------------
def equality_pairs(g1: GroupIndex, g2: GroupIndex) -> IntMatrix:
    """All join-compatible ``(left_row, right_row)`` pairs (m x 2 array).

    Groups pair positionally on the composite join key (paper Sec. 5.1:
    ``h1_j = h2_j`` for all join attributes).
    """
    chunks: list[IntMatrix] = []
    for key, left_rows in g1.items():
        right_rows = g2.rows(key)
        if right_rows:
            chunks.append(pairs_product(left_rows, right_rows))
    if not chunks:
        return np.empty((0, 2), dtype=np.intp)
    return np.concatenate(chunks, axis=0)


def cartesian_pairs(n_left: int, n_right: int) -> IntMatrix:
    """All ``n_left * n_right`` pairs (paper Sec. 6.5 special case)."""
    return pairs_product(range(n_left), range(n_right))


def pairs_product(left_rows: Sequence[int], right_rows: Sequence[int]) -> IntMatrix:
    """Cross product of two row-index sets as an (m x 2) array."""
    left = np.asarray(list(left_rows), dtype=np.intp)
    right = np.asarray(list(right_rows), dtype=np.intp)
    if left.size == 0 or right.size == 0:
        return np.empty((0, 2), dtype=np.intp)
    grid_left = np.repeat(left, right.size)
    grid_right = np.tile(right, left.size)
    return np.column_stack([grid_left, grid_right])


def normalize_theta(theta: ThetaLike) -> tuple[ThetaCondition, ...]:
    """Normalize a condition or sequence of conditions to a tuple.

    A sequence is interpreted as a conjunction (all conditions must
    hold for a pair to join).
    """
    if isinstance(theta, ThetaCondition):
        return (theta,)
    try:
        conditions = tuple(theta)
    except TypeError:
        raise JoinError(
            f"theta must be a ThetaCondition or a sequence of them, got {theta!r}"
        ) from None
    if not conditions:
        raise JoinError("theta condition list must not be empty")
    for cond in conditions:
        if not isinstance(cond, ThetaCondition):
            raise JoinError(f"expected ThetaCondition, got {type(cond).__name__}")
    return conditions


def theta_value_mask(
    condition: ThetaCondition, left_value: float, right_values: FloatVector
) -> BoolVector:
    """Mask of ``right_values`` joining one left value under a condition."""
    if condition.op is ThetaOp.LT:
        return right_values > left_value
    if condition.op is ThetaOp.LE:
        return right_values >= left_value
    if condition.op is ThetaOp.GT:
        return right_values < left_value
    return right_values <= left_value


def theta_conjunction_mask(
    conditions: Sequence[ThetaCondition],
    left_values: Sequence[float],
    right_arrays: Sequence[FloatVector],
) -> BoolVector:
    """Mask of right rows joining one left row under every condition.

    ``left_values[i]`` / ``right_arrays[i]`` hold the value pair of
    ``conditions[i]`` (one scalar for the anchored left row, the
    candidate rows' column for the right side).
    """
    mask = np.ones(right_arrays[0].shape, dtype=bool)
    for condition, left_value, right_values in zip(
        conditions, left_values, right_arrays
    ):
        mask &= theta_value_mask(condition, left_value, right_values)
    return mask


def theta_pairs(left: Relation, right: Relation, theta: ThetaLike) -> IntMatrix:
    """Pairs satisfying one or more theta conditions (conjunction).

    The first condition is evaluated via sort + binary search; the
    remaining conditions filter the resulting pair array vectorized.
    """
    conditions = normalize_theta(theta)
    pairs = _single_theta_pairs(left, right, conditions[0])
    for condition in conditions[1:]:
        if pairs.shape[0] == 0:
            break
        lvals = np.asarray(left.column(condition.left_attr), dtype=np.float64)
        rvals = np.asarray(right.column(condition.right_attr), dtype=np.float64)
        mask = _pairwise_theta_mask(
            condition, lvals[pairs[:, 0]], rvals[pairs[:, 1]]
        )
        pairs = pairs[mask]
    return pairs


def _pairwise_theta_mask(
    condition: ThetaCondition, left_values: FloatVector, right_values: FloatVector
) -> BoolVector:
    if condition.op is ThetaOp.LT:
        return left_values < right_values
    if condition.op is ThetaOp.LE:
        return left_values <= right_values
    if condition.op is ThetaOp.GT:
        return left_values > right_values
    return left_values >= right_values


def _single_theta_pairs(
    left: Relation, right: Relation, condition: ThetaCondition
) -> IntMatrix:
    lvals = np.asarray(left.column(condition.left_attr), dtype=np.float64)
    rvals = np.asarray(right.column(condition.right_attr), dtype=np.float64)
    order = np.argsort(rvals, kind="stable")
    rsorted = rvals[order]
    chunks: list[IntMatrix] = []
    for i in range(len(left)):
        value = lvals[i]
        if condition.op is ThetaOp.LT:
            lo = int(np.searchsorted(rsorted, value, side="right"))
            matches = order[lo:]
        elif condition.op is ThetaOp.LE:
            lo = int(np.searchsorted(rsorted, value, side="left"))
            matches = order[lo:]
        elif condition.op is ThetaOp.GT:
            hi = int(np.searchsorted(rsorted, value, side="left"))
            matches = order[:hi]
        else:  # GE
            hi = int(np.searchsorted(rsorted, value, side="right"))
            matches = order[:hi]
        if matches.size:
            chunks.append(
                np.column_stack([np.full(matches.size, i, dtype=np.intp), matches])
            )
    if not chunks:
        return np.empty((0, 2), dtype=np.intp)
    return np.concatenate(chunks, axis=0)


# ----------------------------------------------------------------------
# Joined view
# ----------------------------------------------------------------------
class JoinedView:
    """A (possibly lazy) joined relation over two base relations.

    Parameters
    ----------
    left, right:
        Base relations.
    pairs:
        (m x 2) integer array of join-compatible row pairs.
    aggregate:
        Aggregate function (name or :class:`AggregateFunction`) applied
        to every aggregate-marked attribute pair; required iff the
        schemas declare aggregate attributes.
    """

    def __init__(
        self,
        left: Relation,
        right: Relation,
        pairs: IntMatrix,
        aggregate: AggregateLike | None = None,
    ) -> None:
        self.left = left
        self.right = right
        self.layout = make_layout(left.schema, right.schema)
        pairs = np.asarray(pairs, dtype=np.intp)
        if pairs.ndim != 2 or (pairs.size and pairs.shape[1] != 2):
            raise JoinError(f"pairs must be an (m x 2) array, got shape {pairs.shape}")
        self.pairs = pairs
        if self.layout.n_aggregate and aggregate is None:
            raise JoinError(
                "schemas declare aggregate attributes but no aggregate function given"
            )
        self.aggregate: AggregateFunction | None = (
            get_aggregate(aggregate) if aggregate is not None else None
        )
        self._oriented_cache: FloatMatrix | None = None

    # -- constructors ---------------------------------------------------
    @classmethod
    def equality(
        cls, left: Relation, right: Relation, aggregate: AggregateLike | None = None
    ) -> JoinedView:
        """Equality join on the schemas' join attributes."""
        if len(left.schema.join_names) != len(right.schema.join_names):
            raise JoinError(
                "join attribute counts differ: "
                f"{left.schema.join_names} vs {right.schema.join_names}"
            )
        if not left.schema.join_names:
            raise JoinError("no join attributes declared; use JoinedView.cartesian")
        pairs = equality_pairs(GroupIndex(left), GroupIndex(right))
        return cls(left, right, pairs, aggregate=aggregate)

    @classmethod
    def cartesian(
        cls, left: Relation, right: Relation, aggregate: AggregateLike | None = None
    ) -> JoinedView:
        """Cartesian product (all pairs)."""
        return cls(left, right, cartesian_pairs(len(left), len(right)), aggregate=aggregate)

    @classmethod
    def theta(
        cls,
        left: Relation,
        right: Relation,
        condition: ThetaCondition,
        aggregate: AggregateLike | None = None,
    ) -> JoinedView:
        """Theta join on a single non-equality condition (Sec. 6.6)."""
        return cls(left, right, theta_pairs(left, right, condition), aggregate=aggregate)

    # -- access ----------------------------------------------------------
    def __len__(self) -> int:
        return int(self.pairs.shape[0])

    @property
    def width(self) -> int:
        """Number of joined skyline attributes."""
        return self.layout.width

    def oriented(self) -> FloatMatrix:
        """Oriented (minimize-space) joined skyline matrix, cached."""
        if self._oriented_cache is None:
            self._oriented_cache = self.oriented_for_pairs(self.pairs)
        return self._oriented_cache

    def oriented_for_pairs(self, pairs: IntMatrix) -> FloatMatrix:
        """Oriented joined matrix for an arbitrary (m x 2) pair array.

        This is the workhorse used to evaluate candidate dominators that
        are *not* part of this view's own pair set (target-set joins).
        """
        pairs = np.asarray(pairs, dtype=np.intp).reshape(-1, 2)
        li, ri = pairs[:, 0], pairs[:, 1]
        lay = self.layout
        lmat = self.left.oriented()
        rmat = self.right.oriented()
        blocks = [
            lmat[li][:, lay.left_local_idx],
            rmat[ri][:, lay.right_local_idx],
        ]
        if lay.n_aggregate:
            assert self.aggregate is not None  # enforced in __init__
            # Aggregate in raw space, then orient the combined value: the
            # aggregate's monotonicity contract is stated on raw values.
            raw_l = self.left.matrix[li][:, lay.left_agg_idx]
            raw_r = self.right.matrix[ri][:, lay.right_agg_idx]
            combined = self.aggregate(raw_l, raw_r)
            signs = np.asarray(
                [
                    self.left.schema[name].preference.sign
                    for name in self._aggregate_names()
                ],
                dtype=np.float64,
            )
            blocks.append(combined * signs)
        return np.concatenate(blocks, axis=1) if blocks else np.empty((len(pairs), 0))

    def _aggregate_names(self) -> list[str]:
        sky = list(self.left.schema.skyline_names)
        return [sky[i] for i in self.layout.left_agg_idx]

    def to_relation(self, name: str = "joined") -> Relation:
        """Materialize as a plain Relation (raw values, payload row ids).

        The resulting relation has no join attributes (the join is done);
        payload columns ``_left_row``/``_right_row`` record provenance.
        """
        lay = self.layout
        li, ri = self.pairs[:, 0], self.pairs[:, 1]
        left_sky = list(self.left.schema.skyline_names)
        right_sky = list(self.right.schema.skyline_names)

        columns: dict[str, object] = {}
        sky_names: list[str] = []
        higher: list[str] = []
        for pos, idx in enumerate(lay.left_local_idx):
            attr = left_sky[idx]
            col_name = f"r1.{attr}"
            columns[col_name] = self.left.matrix[li, idx]
            sky_names.append(col_name)
            if self.left.schema[attr].preference.value == "higher":
                higher.append(col_name)
        for pos, idx in enumerate(lay.right_local_idx):
            attr = right_sky[idx]
            col_name = f"r2.{attr}"
            columns[col_name] = self.right.matrix[ri, idx]
            sky_names.append(col_name)
            if self.right.schema[attr].preference.value == "higher":
                higher.append(col_name)
        if lay.n_aggregate:
            assert self.aggregate is not None  # enforced in __init__
            raw_l = self.left.matrix[li][:, lay.left_agg_idx]
            raw_r = self.right.matrix[ri][:, lay.right_agg_idx]
            combined = self.aggregate(raw_l, raw_r)
            for pos, attr in enumerate(self._aggregate_names()):
                columns[attr] = combined[:, pos]
                sky_names.append(attr)
                if self.left.schema[attr].preference.value == "higher":
                    higher.append(attr)

        columns["_left_row"] = [int(x) for x in li]
        columns["_right_row"] = [int(x) for x in ri]
        schema = RelationSchema.build(
            skyline=sky_names,
            higher_is_better=higher,
            payload=["_left_row", "_right_row"],
        )
        return Relation(schema, columns, name=name)

    def __repr__(self) -> str:
        agg = self.aggregate.name if self.aggregate else None
        return (
            f"<JoinedView {self.left.name!r} x {self.right.name!r}: "
            f"{len(self)} pairs, width={self.width}, aggregate={agg}>"
        )
