"""Relation schemas: attribute roles, preference directions, validation.

A :class:`RelationSchema` describes the columns of a base relation in the
KSJQ setting (paper Sec. 3, Eq. 1-3). Every attribute plays one of three
roles:

* **join** attributes (``h`` in the paper) define the equality-join
  groups; they carry no preference.
* **skyline** attributes (``s``) carry a preference direction and take
  part in dominance comparisons. A skyline attribute may additionally be
  marked for **aggregation** (paper Sec. 5.6), in which case it is
  combined with the same-named attribute of the partner relation when
  the join is materialized.
* **payload** attributes are carried along untouched (ids, labels).

Preferences default to "lower is better" as in the paper; "higher is
better" attributes are supported by orientation (the engine internally
negates them so that all comparisons are uniform minimization).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import enum
from dataclasses import dataclass, field

from ..errors import SchemaError

__all__ = ["Preference", "Role", "AttributeSpec", "RelationSchema"]


class Preference(enum.Enum):
    """Direction of preference for a skyline attribute."""

    LOWER = "lower"
    HIGHER = "higher"

    @property
    def sign(self) -> float:
        """Multiplier mapping raw values into minimize-space."""
        return 1.0 if self is Preference.LOWER else -1.0


class Role(enum.Enum):
    """Role an attribute plays in a relation."""

    JOIN = "join"
    SKYLINE = "skyline"
    PAYLOAD = "payload"


@dataclass(frozen=True)
class AttributeSpec:
    """A single attribute of a relation.

    Parameters
    ----------
    name:
        Attribute name; unique within a schema.
    role:
        One of :class:`Role`. Only ``SKYLINE`` attributes participate in
        dominance tests.
    preference:
        Direction of preference; only meaningful for skyline attributes.
    aggregate:
        If ``True`` this skyline attribute is an *aggregate input*: on a
        join it is combined with the partner relation's attribute of the
        same name instead of being kept as a local attribute.
    """

    name: str
    role: Role = Role.SKYLINE
    preference: Preference = Preference.LOWER
    aggregate: bool = False

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"attribute name must be a non-empty string, got {self.name!r}")
        if self.aggregate and self.role is not Role.SKYLINE:
            raise SchemaError(
                f"attribute {self.name!r}: only skyline attributes can be aggregate inputs"
            )

    @staticmethod
    def join(name: str) -> "AttributeSpec":
        """Convenience constructor for a join attribute."""
        return AttributeSpec(name=name, role=Role.JOIN)

    @staticmethod
    def skyline(
        name: str,
        preference: Preference = Preference.LOWER,
        aggregate: bool = False,
    ) -> "AttributeSpec":
        """Convenience constructor for a skyline attribute."""
        return AttributeSpec(
            name=name, role=Role.SKYLINE, preference=preference, aggregate=aggregate
        )

    @staticmethod
    def payload(name: str) -> "AttributeSpec":
        """Convenience constructor for a payload attribute."""
        return AttributeSpec(name=name, role=Role.PAYLOAD)


@dataclass(frozen=True)
class RelationSchema:
    """Ordered collection of :class:`AttributeSpec` with validation.

    The schema exposes the derived quantities used throughout the paper:
    ``d`` (number of skyline attributes), ``a`` (number of aggregate
    inputs) and ``l = d - a`` (number of local skyline attributes).
    """

    attributes: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        attrs = tuple(self.attributes)
        object.__setattr__(self, "attributes", attrs)
        for attr in attrs:
            if not isinstance(attr, AttributeSpec):
                raise SchemaError(f"expected AttributeSpec, got {type(attr).__name__}")
        names = [attr.name for attr in attrs]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate attribute names: {dupes}")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def build(
        join: Sequence[str] = (),
        skyline: Sequence[str] = (),
        aggregate: Sequence[str] = (),
        payload: Sequence[str] = (),
        higher_is_better: Sequence[str] = (),
    ) -> "RelationSchema":
        """Build a schema from plain attribute-name lists.

        ``aggregate`` names must be a subset of ``skyline`` names;
        ``higher_is_better`` flips the preference of the named skyline
        attributes.
        """
        skyline_set = set(skyline)
        missing_agg = set(aggregate) - skyline_set
        if missing_agg:
            raise SchemaError(f"aggregate attributes not in skyline list: {sorted(missing_agg)}")
        missing_pref = set(higher_is_better) - skyline_set
        if missing_pref:
            raise SchemaError(
                f"higher_is_better attributes not in skyline list: {sorted(missing_pref)}"
            )
        attrs = [AttributeSpec.join(name) for name in join]
        for name in skyline:
            pref = Preference.HIGHER if name in set(higher_is_better) else Preference.LOWER
            attrs.append(AttributeSpec.skyline(name, pref, aggregate=name in set(aggregate)))
        attrs.extend(AttributeSpec.payload(name) for name in payload)
        return RelationSchema(tuple(attrs))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def names(self) -> tuple:
        """All attribute names, in declaration order."""
        return tuple(attr.name for attr in self.attributes)

    @property
    def join_names(self) -> tuple:
        """Names of the join attributes (``h`` in the paper)."""
        return tuple(a.name for a in self.attributes if a.role is Role.JOIN)

    @property
    def skyline_names(self) -> tuple:
        """Names of all skyline attributes (local + aggregate inputs)."""
        return tuple(a.name for a in self.attributes if a.role is Role.SKYLINE)

    @property
    def local_names(self) -> tuple:
        """Names of skyline attributes that are *not* aggregate inputs."""
        return tuple(
            a.name for a in self.attributes if a.role is Role.SKYLINE and not a.aggregate
        )

    @property
    def aggregate_names(self) -> tuple:
        """Names of skyline attributes marked for aggregation."""
        return tuple(a.name for a in self.attributes if a.role is Role.SKYLINE and a.aggregate)

    @property
    def payload_names(self) -> tuple:
        """Names of payload attributes."""
        return tuple(a.name for a in self.attributes if a.role is Role.PAYLOAD)

    @property
    def d(self) -> int:
        """Number of skyline attributes (``d_i`` in the paper)."""
        return len(self.skyline_names)

    @property
    def a(self) -> int:
        """Number of aggregate-input attributes (``a`` in the paper)."""
        return len(self.aggregate_names)

    @property
    def l(self) -> int:
        """Number of local skyline attributes (``l_i = d_i - a``)."""
        return self.d - self.a

    def __contains__(self, name: str) -> bool:
        return name in self.names

    def __getitem__(self, name: str) -> AttributeSpec:
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise SchemaError(f"no attribute named {name!r} (have {list(self.names)})")

    def preference_signs(self) -> "list[float]":
        """Per-skyline-attribute multipliers into minimize-space.

        Order matches :attr:`skyline_names`.
        """
        return [self[name].preference.sign for name in self.skyline_names]

    def validate_compatible_aggregates(self, other: "RelationSchema") -> None:
        """Check that aggregate inputs pair up across two schemas.

        The paper pairs the ``a`` aggregate attributes of ``R1`` with the
        corresponding attributes of ``R2`` (Sec. 2.3); we pair by name
        and require matching preference directions so the monotonicity
        assumption is meaningful.
        """
        mine, theirs = set(self.aggregate_names), set(other.aggregate_names)
        if mine != theirs:
            raise SchemaError(
                "aggregate attributes must match by name across relations: "
                f"{sorted(mine)} vs {sorted(theirs)}"
            )
        for name in sorted(mine):
            if self[name].preference is not other[name].preference:
                raise SchemaError(
                    f"aggregate attribute {name!r} has conflicting preference directions"
                )

    def describe(self) -> str:
        """Human-readable one-line-per-attribute summary."""
        lines = []
        for attr in self.attributes:
            extra = ""
            if attr.role is Role.SKYLINE:
                extra = f" pref={attr.preference.value}"
                if attr.aggregate:
                    extra += " (aggregate)"
            lines.append(f"{attr.name}: {attr.role.value}{extra}")
        return "\n".join(lines)


def _as_tuple(value: Iterable) -> tuple:
    return tuple(value)
