"""CSV persistence for relations.

Small, dependency-free reader/writer so datasets (e.g. the simulated
flight tables) can be exported, inspected and re-imported. Skyline
attributes round-trip as floats; join/payload columns as strings unless
they parse as integers.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import TYPE_CHECKING

from ..errors import SchemaError
from .relation import Relation
from .schema import RelationSchema, Role

if TYPE_CHECKING:
    from .._typing import ColumnData

__all__ = ["write_csv", "read_csv"]


def write_csv(relation: Relation, path: str | Path) -> None:
    """Write a relation to ``path`` with a header row of attribute names."""
    path = Path(path)
    names = list(relation.schema.names)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        for rec in relation.records():
            writer.writerow([rec[name] for name in names])


def read_csv(
    schema: RelationSchema, path: str | Path, name: str = "R"
) -> Relation:
    """Read a relation from ``path``; the header must cover the schema.

    Extra CSV columns are ignored. Join and payload values are kept as
    strings except when every value in the column is an integer literal.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"{path}: empty CSV file") from None
        rows = [row for row in reader if row]

    missing = set(schema.names) - set(header)
    if missing:
        raise SchemaError(f"{path}: CSV missing columns {sorted(missing)}")
    position = {col: header.index(col) for col in schema.names}

    raw: dict[str, list[str]] = {col: [] for col in schema.names}
    for lineno, row in enumerate(rows, start=2):
        if len(row) < len(header):
            raise SchemaError(f"{path}:{lineno}: expected {len(header)} fields")
        for col in schema.names:
            raw[col].append(row[position[col]])

    columns: dict[str, ColumnData] = {}
    for col in schema.names:
        spec = schema[col]
        if spec.role is Role.SKYLINE:
            columns[col] = [float(v) for v in raw[col]]
        else:
            columns[col] = [_maybe_int(v) for v in raw[col]]
    return Relation(schema, columns, name=name)


def _maybe_int(value: str) -> int | str:
    try:
        return int(value)
    except ValueError:
        return value
