"""Named, versioned datasets: the mutable handle over immutable relations.

A :class:`Relation` is immutable by design — every KSJQ structure
(joined views, group indexes, categorizations) is memoized against its
content. A :class:`Dataset` is the serving-layer complement: a *named*
handle holding the current relation snapshot plus a monotone version
counter. Mutators are copy-on-write: ``insert_rows`` / ``delete_rows``
/ ``replace`` build a brand-new :class:`Relation` (existing snapshots,
and any plan built over them, stay valid forever) and bump the version.

Engines key their plan/result caches on ``(name, version)`` tokens, so
a mutation invalidates exactly the cache entries that referenced the
old snapshot — see :class:`repro.api.Catalog` for the registry and
:class:`repro.api.Engine` for the cache wiring. Listeners subscribed
via :meth:`Dataset.subscribe` are notified after every version bump,
which is how mutations propagate to engine caches eagerly.

All methods are thread-safe; :meth:`snapshot` returns a consistent
``(relation, version)`` pair for lock-free downstream use.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..errors import SchemaError
from .relation import Relation

if TYPE_CHECKING:
    from collections.abc import Callable, Iterable, Mapping, Sequence

    from .._typing import ColumnData

__all__ = ["Dataset", "MutationDelta"]


@dataclass(frozen=True)
class MutationDelta:
    """Structured description of one :class:`Dataset` mutation.

    Carried to delta listeners (:meth:`Dataset.subscribe_deltas`)
    alongside the plain version-bump notification, so downstream
    consumers — chiefly :class:`repro.core.incremental.MaintainedResult`
    — can update derived state instead of recomputing it.

    Attributes
    ----------
    kind:
        ``"insert"``, ``"delete"`` or ``"replace"``.
    version:
        The dataset version *after* this mutation was installed.
    old_size / new_size:
        Row counts before and after.
    inserted:
        For inserts: the **new-snapshot** row indices of the appended
        tuples (always the contiguous tail ``[old_size, new_size)``).
    deleted:
        For deletes: the **old-snapshot** row indices that were
        dropped, sorted ascending. Surviving rows are compacted, so an
        old index ``i`` maps to ``i - #{j in deleted : j < i}`` in the
        new snapshot.
    """

    kind: str
    version: int
    old_size: int
    new_size: int
    inserted: tuple[int, ...] = ()
    deleted: tuple[int, ...] = ()

    @property
    def rows_touched(self) -> int:
        """Number of base rows this mutation inserted plus deleted."""
        return len(self.inserted) + len(self.deleted)

# Process-unique dataset ids: versions are monotone *within* one
# Dataset, so cache tokens also carry the uid — a dataset dropped from
# a catalog and re-registered under the same name can never collide
# with cache entries built over its predecessor.
_UIDS = itertools.count(1)


class Dataset:
    """A named, versioned, copy-on-write wrapper around a :class:`Relation`.

    Parameters
    ----------
    name:
        The catalog name of the dataset (stable across versions).
    relation:
        The initial snapshot.
    version:
        Starting version (defaults to 1; bumped by every mutator).

    Concurrency contract (checked by the repo linter's R2 rule):

    # guarded-by: _lock: _relation, _version, _listeners, _delta_listeners
    """

    def __init__(self, name: str, relation: Relation, version: int = 1) -> None:
        if not isinstance(name, str) or not name:
            raise SchemaError(f"dataset name must be a non-empty string, got {name!r}")
        if not isinstance(relation, Relation):
            raise SchemaError(
                f"dataset {name!r} needs a Relation, got {type(relation).__name__}"
            )
        self.name = name
        self.uid = next(_UIDS)
        self._lock = threading.RLock()
        self._relation = relation
        self._version = int(version)
        self._listeners: list[Callable[[Dataset], None]] = []
        self._delta_listeners: list[Callable[[Dataset, MutationDelta], None]] = []

    # ------------------------------------------------------------------
    # Snapshot access
    # ------------------------------------------------------------------
    @property
    def relation(self) -> Relation:
        """The current (immutable) relation snapshot."""
        with self._lock:
            return self._relation

    @property
    def version(self) -> int:
        """Monotone version counter; bumped by every mutation."""
        with self._lock:
            return self._version

    def snapshot(self) -> tuple[Relation, int]:
        """A consistent ``(relation, version)`` pair (one lock acquisition)."""
        with self._lock:
            return self._relation, self._version

    def token(self) -> tuple[str, int, int]:
        """``(name, uid, version)`` — what engines key version-aware caches on.

        ``uid`` is process-unique per :class:`Dataset` instance, so two
        same-named datasets (e.g. across a catalog drop + re-register)
        never share cache entries.
        """
        with self._lock:
            return (self.name, self.uid, self._version)

    def __len__(self) -> int:
        return len(self.relation)

    # ------------------------------------------------------------------
    # Mutation listeners
    # ------------------------------------------------------------------
    def subscribe(self, callback: Callable[[Dataset], None]) -> None:
        """Register a callback invoked (with this dataset) after each mutation."""
        with self._lock:
            if callback not in self._listeners:
                self._listeners.append(callback)

    def subscribe_deltas(
        self, callback: Callable[[Dataset, MutationDelta], None]
    ) -> None:
        """Register a callback receiving the structured
        :class:`MutationDelta` of each mutation (after the plain
        version-bump listeners have run, so caches are already
        invalidated when delta consumers recompute through an engine).
        """
        with self._lock:
            if callback not in self._delta_listeners:
                self._delta_listeners.append(callback)

    def unsubscribe_deltas(
        self, callback: Callable[[Dataset, MutationDelta], None]
    ) -> None:
        """Remove a delta listener; unknown callbacks are a no-op."""
        with self._lock:
            if callback in self._delta_listeners:
                self._delta_listeners.remove(callback)

    def _install(
        self,
        relation: Relation,
        kind: str,
        inserted: tuple[int, ...] = (),
        deleted: tuple[int, ...] = (),
    ) -> tuple[
        list[Callable[[Dataset], None]],
        list[Callable[[Dataset, MutationDelta], None]],
        MutationDelta,
    ]:
        """Install a new snapshot and bump the version; returns the
        listeners to notify plus the :class:`MutationDelta` describing
        the change. The caller MUST invoke :meth:`_notify` on the
        returned lists only after releasing ``_lock``: listeners
        (catalog fan-out, engine invalidation hooks, maintained-result
        updates) take their own locks, and callbacks under ``_lock``
        invert the catalog -> dataset lock order that
        :meth:`Catalog.versions` relies on.
        """
        with self._lock:
            old_size = len(self._relation)
            self._relation = relation
            self._version += 1
            delta = MutationDelta(
                kind=kind,
                version=self._version,
                old_size=old_size,
                new_size=len(relation),
                inserted=inserted,
                deleted=deleted,
            )
            return list(self._listeners), list(self._delta_listeners), delta

    def _notify(
        self,
        listeners: list[Callable[[Dataset], None]],
        delta_listeners: list[Callable[[Dataset, MutationDelta], None]],
        delta: MutationDelta,
    ) -> None:
        """Run mutation callbacks; never called with ``_lock`` held.

        Version-bump listeners run first (engine caches drop their
        stale entries), then delta listeners (maintained results update
        — any fallback recompute they issue already sees clean caches).
        """
        for callback in listeners:
            callback(self)
        for delta_callback in delta_listeners:
            delta_callback(self, delta)

    # ------------------------------------------------------------------
    # Copy-on-write mutators
    # ------------------------------------------------------------------
    def insert_rows(self, records: Iterable[Mapping[str, object]]) -> Relation:
        """Append tuples; returns the new snapshot (old snapshots unchanged).

        ``records`` is an iterable of per-tuple dicts covering every
        schema attribute, exactly as :meth:`Relation.from_records`
        accepts. An empty iterable still bumps the version (the caller
        asked for a write), keeping invalidation conservative.
        """
        records = list(records)
        with self._lock:
            base = self._relation
            addition = Relation.from_records(base.schema, records, name=base.name)
            columns: dict[str, ColumnData] = {}
            for col in base.schema.names:
                old, new = base.column(col), addition.column(col)
                if isinstance(old, np.ndarray):
                    columns[col] = np.concatenate([old, np.asarray(new, dtype=old.dtype)])
                else:
                    columns[col] = list(old) + list(new)
            merged = Relation(base.schema, columns, name=base.name)
            inserted = tuple(range(len(base), len(merged)))
            listeners, delta_listeners, delta = self._install(
                merged, "insert", inserted=inserted
            )
        self._notify(listeners, delta_listeners, delta)
        return merged

    def delete_rows(self, rows: Sequence[int]) -> Relation:
        """Drop tuples by row index; returns the new snapshot."""
        with self._lock:
            base = self._relation
            drop = {int(r) for r in rows}
            bad = [r for r in drop if r < 0 or r >= len(base)]
            if bad:
                raise SchemaError(
                    f"dataset {self.name!r}: rows {sorted(bad)} out of range "
                    f"[0, {len(base)})"
                )
            keep = [i for i in range(len(base)) if i not in drop]
            replacement = base.take(keep)
            listeners, delta_listeners, delta = self._install(
                replacement, "delete", deleted=tuple(sorted(drop))
            )
        self._notify(listeners, delta_listeners, delta)
        return replacement

    def replace(self, relation: Relation) -> Relation:
        """Swap in a whole new relation (schema may change); new snapshot."""
        if not isinstance(relation, Relation):
            raise SchemaError(
                f"dataset {self.name!r}: replace() needs a Relation, "
                f"got {type(relation).__name__}"
            )
        listeners, delta_listeners, delta = self._install(relation, "replace")
        self._notify(listeners, delta_listeners, delta)
        return relation

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        relation, version = self.snapshot()
        return (
            f"<Dataset {self.name!r} v{version}: {len(relation)} tuples, "
            f"d={relation.d}>"
        )
