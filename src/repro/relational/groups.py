"""Join-group partitioning (paper Sec. 5.1-5.2).

Under an equality join, every base relation is partitioned into groups
of tuples sharing the same join-key values; two tuples join iff their
groups match. :class:`GroupIndex` materializes this partition once so
categorization and the join itself reuse it.

For non-equality join conditions (paper Sec. 6.6) the notion of "same
group" generalizes to a containment preorder on join-compatibility;
:class:`ThetaGroupIndex` captures the one-sided version the paper uses:
the tuples guaranteed to join with *at least* everything a given tuple
joins with.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

import numpy as np

from ..errors import JoinError
from .relation import Relation

if TYPE_CHECKING:
    from collections.abc import ItemsView

    from .._typing import BoolVector, FloatVector, JoinKey

__all__ = ["GroupIndex", "ThetaOp", "ThetaGroupIndex"]


class GroupIndex:
    """Hash partition of a relation by its composite equality-join key."""

    def __init__(self, relation: Relation) -> None:
        self.relation = relation
        self._groups: dict[JoinKey, list[int]] = {}
        for row, key in enumerate(relation.join_keys()):
            self._groups.setdefault(key, []).append(row)
        # Row -> group key lookup for O(1) membership tests.
        self._row_key: list[JoinKey] = relation.join_keys()

    @property
    def keys(self) -> list[JoinKey]:
        """All distinct group keys."""
        return list(self._groups)

    def __len__(self) -> int:
        return len(self._groups)

    def rows(self, key: JoinKey) -> list[int]:
        """Row indices belonging to one group (empty list if absent)."""
        return self._groups.get(key, [])

    def key_of(self, row: int) -> JoinKey:
        """Group key of a row."""
        return self._row_key[row]

    def groupmates(self, row: int) -> list[int]:
        """All rows sharing ``row``'s group, including ``row`` itself."""
        return self._groups[self._row_key[row]]

    def items(self) -> ItemsView[JoinKey, list[int]]:
        """Iterate over ``(key, row_indices)`` pairs."""
        return self._groups.items()

    def sizes(self) -> dict[JoinKey, int]:
        """Group key -> group cardinality."""
        return {key: len(rows) for key, rows in self._groups.items()}


class ThetaOp(enum.Enum):
    """Comparison operator of a non-equality join condition.

    The condition relates an attribute of the *left* relation to an
    attribute of the *right* relation: ``left.attr <op> right.attr``
    (e.g. ``f1.arrival < f2.departure``).
    """

    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def evaluate(self, left: FloatVector, right: float) -> BoolVector:
        if self is ThetaOp.LT:
            return left < right
        if self is ThetaOp.LE:
            return left <= right
        if self is ThetaOp.GT:
            return left > right
        return left >= right


class ThetaGroupIndex:
    """Join-compatibility superset index for one side of a theta join.

    For a condition ``L.x < R.y`` (paper Sec. 6.6), a left tuple ``u``
    joins with ``{v : v.y > u.x}``. Any left tuple ``u0`` with
    ``u0.x <= u.x`` joins with a *superset* of ``u``'s partners, so for
    SS/SN/NN purposes ``u0`` behaves like a same-group tuple of ``u``:
    if ``u0`` k'-dominates ``u``, every joined tuple built from ``u`` is
    dominated by the corresponding tuple built from ``u0``.

    ``superset_rows(row)`` returns exactly those guaranteed-compatible
    rows (including ``row``). We include ties (``u0.x == u.x``): equal
    keys join with identical partner sets, which is sound and prunes
    strictly more than the paper's strict inequality.
    """

    def __init__(self, relation: Relation, attribute: str, op: ThetaOp, is_left: bool) -> None:
        self.relation = relation
        self.attribute = attribute
        self.op = op
        self.is_left = is_left
        values = np.asarray(relation.column(attribute), dtype=np.float64)
        if values.ndim != 1:
            raise JoinError(f"theta-join attribute {attribute!r} must be scalar-valued")
        self.values = values
        self._order = np.argsort(values, kind="stable")
        self._sorted = values[self._order]

    def _wants_smaller(self) -> bool:
        """Whether smaller attribute values join with weakly more partners."""
        if self.is_left:
            # left.x < right.y or left.x <= right.y: smaller x joins more.
            return self.op in (ThetaOp.LT, ThetaOp.LE)
        # For the right side of left.x < right.y: larger y joins more.
        return self.op in (ThetaOp.GT, ThetaOp.GE)

    def superset_rows(self, row: int) -> list[int]:
        """Rows whose join-partner set contains ``row``'s partner set."""
        value = self.values[row]
        if self._wants_smaller():
            hi = int(np.searchsorted(self._sorted, value, side="right"))
            return [int(r) for r in self._order[:hi]]
        lo = int(np.searchsorted(self._sorted, value, side="left"))
        return [int(r) for r in self._order[lo:]]


class ConjunctiveThetaIndex:
    """Join-compatibility supersets under a conjunction of theta conditions.

    A tuple joins with the *intersection* of its per-condition partner
    sets, so a row guaranteed compatible under **every** condition is
    guaranteed compatible under the conjunction — the superset set is
    the intersection of the per-condition supersets. This keeps the
    NN/SN substitution argument (paper Sec. 6.6) sound for multiple
    conditions such as ``arr < dep AND fee <= budget``.
    """

    def __init__(self, indexes: list[ThetaGroupIndex]) -> None:
        if not indexes:
            raise JoinError("ConjunctiveThetaIndex needs at least one condition")
        self.indexes = list(indexes)

    def superset_rows(self, row: int) -> list[int]:
        """Intersection of the per-condition guaranteed-compatible rows."""
        common = set(self.indexes[0].superset_rows(row))
        for index in self.indexes[1:]:
            common &= set(index.superset_rows(row))
            if len(common) == 1:  # only the row itself can remain
                break
        return sorted(common)
