"""Relational substrate: schemas, relations, joins and join groups.

This package is the storage and join layer beneath the KSJQ algorithms.
See :mod:`repro.relational.schema` for attribute roles and preferences,
:mod:`repro.relational.relation` for the numpy-backed relation type, and
:mod:`repro.relational.join` for equality/cartesian/theta joins with
optional attribute aggregation.
"""

from .aggregates import (
    MAX,
    MEAN,
    MIN,
    PRODUCT,
    SUM,
    AggregateFunction,
    get_aggregate,
    register_aggregate,
)
from .csvio import read_csv, write_csv
from .dataset import Dataset, MutationDelta
from .groups import GroupIndex, ThetaGroupIndex, ThetaOp
from .join import (
    HopSpec,
    JoinedLayout,
    JoinedView,
    ThetaCondition,
    cartesian_pairs,
    equality_pairs,
    pairs_product,
    theta_pairs,
)
from .relation import Relation
from .schema import AttributeSpec, Preference, RelationSchema, Role

__all__ = [
    "AggregateFunction",
    "AttributeSpec",
    "Dataset",
    "GroupIndex",
    "HopSpec",
    "JoinedLayout",
    "JoinedView",
    "MAX",
    "MEAN",
    "MIN",
    "MutationDelta",
    "PRODUCT",
    "Preference",
    "Relation",
    "RelationSchema",
    "Role",
    "SUM",
    "ThetaCondition",
    "ThetaGroupIndex",
    "ThetaOp",
    "cartesian_pairs",
    "equality_pairs",
    "get_aggregate",
    "pairs_product",
    "read_csv",
    "register_aggregate",
    "theta_pairs",
    "write_csv",
]
