"""Shared typing vocabulary for the strictly-typed packages.

Central aliases keep signatures readable under the strict-typing gate
(``mypy --strict`` profile in ``pyproject.toml`` plus the repo linter's
T1 rule, see ``docs/static-analysis.md``):

* NumPy arrays are annotated with dtype-precise ``numpy.typing.NDArray``
  aliases rather than bare ``np.ndarray`` (which is an implicit
  ``ndarray[Any, dtype[Any]]`` and is rejected by
  ``disallow_any_generics``).
* Library-wide "accepts several spellings" parameters (aggregates,
  theta conditions, hops) get one alias each so every entry point
  documents the same contract.

Only aliases live here — no runtime logic — so importing this module
never creates an import cycle: it depends on nothing inside
:mod:`repro` except :mod:`repro.relational` leaf types under
``TYPE_CHECKING``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Union

import numpy as np
from numpy.typing import NDArray

if TYPE_CHECKING:
    from collections.abc import Sequence

    from .relational.aggregates import AggregateFunction
    from .relational.join import HopSpec, ThetaCondition

__all__ = [
    "FloatMatrix",
    "FloatVector",
    "IntMatrix",
    "IntVector",
    "BoolVector",
    "AggregateLike",
    "ThetaLike",
    "HopLike",
    "HopsLike",
    "Record",
    "JoinKey",
    "ColumnData",
]

# -- array shapes -------------------------------------------------------
# Shape is not encoded (numpy's typing cannot express it usefully yet);
# the Matrix/Vector split documents intent only.
FloatMatrix = NDArray[np.float64]
FloatVector = NDArray[np.float64]
IntMatrix = NDArray[np.intp]
IntVector = NDArray[np.intp]
BoolVector = NDArray[np.bool_]

# -- parameter spellings ------------------------------------------------
# An aggregate is a registry name ("sum") or an AggregateFunction.
AggregateLike = Union[str, "AggregateFunction"]

# A theta condition, or a sequence of them meaning a conjunction.
ThetaLike = Union["ThetaCondition", "Sequence[ThetaCondition]"]

# One hop of a cascade join graph: HopSpec, legacy Hop-like object
# (anything with left_column/right_column), a theta condition or
# conjunction, or None for composite-key equality.
HopLike = Union["HopSpec", "ThetaCondition", "Sequence[ThetaCondition]", object, None]

# A hop sequence for an m-way cascade (None = all composite-key hops).
HopsLike = Union["Sequence[HopLike]", None]

# One materialized tuple as a column-name -> value mapping.
Record = dict[str, object]

# A composite equality-join key (one hashable value per join attribute).
JoinKey = tuple[object, ...]

# One column's values: any python sequence or a numpy array (numpy
# arrays are not typing Sequences, so the union is spelled explicitly).
ColumnData = Union["Sequence[object]", NDArray[np.float64]]
