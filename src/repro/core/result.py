"""Result objects returned by the KSJQ algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

import numpy as np

from ..relational.join import JoinedView
from ..relational.relation import Relation
from .params import KSJQParams
from .timing import TimingBreakdown

__all__ = ["KSJQResult", "FindKResult", "FindKStep"]


def _canonical_pairs(pairs: np.ndarray) -> np.ndarray:
    """Sort pairs lexicographically so results compare deterministically."""
    pairs = np.asarray(pairs, dtype=np.intp).reshape(-1, 2)
    if pairs.shape[0] == 0:
        return pairs
    order = np.lexsort((pairs[:, 1], pairs[:, 0]))
    return pairs[order]


@dataclass(frozen=True)
class KSJQResult:
    """Answer of one k-dominant skyline join query.

    Attributes
    ----------
    algorithm:
        ``"naive"``, ``"grouping"``, ``"dominator"`` or ``"cartesian"``.
    mode:
        ``"faithful"`` (paper behaviour) or ``"exact"``.
    params:
        The validated :class:`KSJQParams` used.
    pairs:
        (m x 2) array of ``(left_row, right_row)`` skyline pairs, in
        lexicographic order.
    timings:
        Component-wise wall-clock breakdown.
    left_counts / right_counts:
        SS/SN/NN sizes per base relation (empty for the naïve algorithm,
        which never categorizes).
    cell_pair_counts:
        Joined-pair counts per fate cell, e.g. ``"SS*SS"`` (empty for
        naïve).
    checked:
        Number of candidate joined tuples that required verification.
    """

    algorithm: str
    mode: str
    params: KSJQParams
    pairs: np.ndarray
    timings: TimingBreakdown
    left_counts: Dict[str, int] = field(default_factory=dict)
    right_counts: Dict[str, int] = field(default_factory=dict)
    cell_pair_counts: Dict[str, int] = field(default_factory=dict)
    checked: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "pairs", _canonical_pairs(self.pairs))

    @property
    def count(self) -> int:
        """Number of k-dominant skyline joined tuples."""
        return int(self.pairs.shape[0])

    def pair_set(self) -> FrozenSet[Tuple[int, int]]:
        """Skyline pairs as a hashable set (for comparisons in tests)."""
        return frozenset((int(a), int(b)) for a, b in self.pairs)

    def to_relation(self, view: JoinedView, name: str = "skyline") -> Relation:
        """Materialize the skyline pairs as a relation using ``view``'s layout."""
        sub = JoinedView(view.left, view.right, self.pairs, aggregate=view.aggregate)
        return sub.to_relation(name=name)

    def summary(self) -> str:
        """One-paragraph human-readable report."""
        lines = [
            f"{self.algorithm} ({self.mode}): {self.count} skyline pairs, "
            f"{self.params.describe()}",
            f"timings: "
            + ", ".join(f"{k}={v:.4f}s" for k, v in self.timings.as_dict().items()),
        ]
        if self.left_counts:
            lines.append(f"R1 categories: {self.left_counts}")
        if self.right_counts:
            lines.append(f"R2 categories: {self.right_counts}")
        if self.cell_pair_counts:
            lines.append(f"cell pair counts: {self.cell_pair_counts}")
        if self.checked:
            lines.append(f"verified candidates: {self.checked}")
        return "\n".join(lines)


@dataclass(frozen=True)
class FindKStep:
    """One probe of the find-k search (paper Algos 4-6)."""

    k: int
    lower_bound: Optional[int]
    upper_bound: Optional[int]
    exact_count: Optional[int]
    decision: str


@dataclass(frozen=True)
class FindKResult:
    """Answer of a find-k search (Problem 3)."""

    method: str
    delta: int
    k: int
    steps: Tuple[FindKStep, ...]
    timings: TimingBreakdown

    @property
    def full_evaluations(self) -> int:
        """How many k values required a full skyline computation."""
        return sum(1 for s in self.steps if s.exact_count is not None)

    def summary(self) -> str:
        lines = [
            f"find-k[{self.method}]: delta={self.delta} -> k={self.k} "
            f"({len(self.steps)} probes, {self.full_evaluations} full evaluations)"
        ]
        for step in self.steps:
            lines.append(
                f"  k={step.k}: lb={step.lower_bound} ub={step.upper_bound} "
                f"exact={step.exact_count} -> {step.decision}"
            )
        return "\n".join(lines)
