"""Result objects returned by the KSJQ algorithms.

All results implement one protocol (:class:`QueryResult`): a ``count``,
component-wise ``timings`` with an ``elapsed`` total, ``to_records()``
for materializing the answer as plain dicts, and — when produced
through an :class:`repro.api.Engine` — provenance: the ``spec`` that
was executed and the ``source`` plan it ran against.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any

from typing import TYPE_CHECKING

import numpy as np

from ..errors import AlgorithmError
from ..relational.join import JoinedView
from ..relational.relation import Relation
from .params import KSJQParams
from .timing import TimingBreakdown

if TYPE_CHECKING:
    from .._typing import IntMatrix

__all__ = ["QueryResult", "KSJQResult", "FindKResult", "FindKStep"]


def _canonical_pairs(pairs: IntMatrix) -> IntMatrix:
    """Sort pairs lexicographically so results compare deterministically."""
    pairs = np.asarray(pairs, dtype=np.intp).reshape(-1, 2)
    if pairs.shape[0] == 0:
        return pairs
    order = np.lexsort((pairs[:, 1], pairs[:, 0]))
    return pairs[order]


class QueryResult:
    """Mixin protocol shared by every result object.

    Subclasses are frozen dataclasses carrying at least ``timings``
    (a :class:`TimingBreakdown`) plus two provenance fields, ``spec``
    (the :class:`repro.api.QuerySpec` executed) and ``source`` (the
    plan or relations the query ran against). Provenance is attached by
    the engine via :meth:`with_provenance`; results built directly by
    the algorithm runners carry ``None``.
    """

    timings: TimingBreakdown
    spec: Any | None
    source: Any | None

    @property
    def elapsed(self) -> float:
        """Total wall-clock seconds across all timing components."""
        return self.timings.total

    @property
    def count(self) -> int:
        raise NotImplementedError

    def to_records(self) -> list[dict[str, object]]:
        """The answer as a list of plain dicts (one per result row)."""
        raise NotImplementedError

    def with_provenance(self, spec: Any, source: Any) -> "QueryResult":
        """Copy of this result carrying the spec and source it came from."""
        return dataclasses.replace(self, spec=spec, source=source)

    def _require_source(self) -> Any:
        if self.source is None:
            raise AlgorithmError(
                f"{type(self).__name__}.to_records() needs the source plan; "
                "run the query through an Engine (or attach it with "
                "with_provenance) to materialize records"
            )
        return self.source


@dataclass(frozen=True)
class KSJQResult(QueryResult):
    """Answer of one k-dominant skyline join query.

    Attributes
    ----------
    algorithm:
        ``"naive"``, ``"grouping"``, ``"dominator"`` or ``"cartesian"``.
    mode:
        ``"faithful"`` (paper behaviour) or ``"exact"``.
    params:
        The validated :class:`KSJQParams` used.
    pairs:
        (m x 2) array of ``(left_row, right_row)`` skyline pairs, in
        lexicographic order.
    timings:
        Component-wise wall-clock breakdown.
    left_counts / right_counts:
        SS/SN/NN sizes per base relation (empty for the naïve algorithm,
        which never categorizes).
    cell_pair_counts:
        Joined-pair counts per fate cell, e.g. ``"SS*SS"`` (empty for
        naïve).
    checked:
        Number of candidate joined tuples that required verification.
    spec / source:
        Provenance (the executed QuerySpec and the JoinPlan), attached
        when the query runs through an :class:`repro.api.Engine`.
    """

    algorithm: str
    mode: str
    params: KSJQParams
    pairs: IntMatrix
    timings: TimingBreakdown
    left_counts: dict[str, int] = field(default_factory=dict)
    right_counts: dict[str, int] = field(default_factory=dict)
    cell_pair_counts: dict[str, int] = field(default_factory=dict)
    checked: int = 0
    spec: Any | None = field(default=None, compare=False, repr=False)
    source: Any | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "pairs", _canonical_pairs(self.pairs))

    @property
    def count(self) -> int:
        """Number of k-dominant skyline joined tuples."""
        return int(self.pairs.shape[0])

    def pair_set(self) -> frozenset[tuple[int, int]]:
        """Skyline pairs as a hashable set (for comparisons in tests)."""
        return frozenset((int(a), int(b)) for a, b in self.pairs)

    def to_relation(self, view: JoinedView | None = None, name: str = "skyline") -> Relation:
        """Materialize the skyline pairs as a relation.

        ``view`` supplies the joined layout; it defaults to the source
        plan's view when the result carries provenance.
        """
        if view is None:
            plan = self._require_source()
            sub = JoinedView(plan.left, plan.right, self.pairs, aggregate=plan.aggregate)
        else:
            sub = JoinedView(view.left, view.right, self.pairs, aggregate=view.aggregate)
        return sub.to_relation(name=name)

    def to_records(self) -> list[dict[str, object]]:
        """Skyline rows as dicts (``r1.*`` / ``r2.*`` columns + row ids)."""
        return self.to_relation().records()

    def summary(self) -> str:
        """One-paragraph human-readable report."""
        lines = [
            f"{self.algorithm} ({self.mode}): {self.count} skyline pairs, "
            f"{self.params.describe()}",
            f"timings: "
            + ", ".join(f"{k}={v:.4f}s" for k, v in self.timings.as_dict().items()),
        ]
        if self.left_counts:
            lines.append(f"R1 categories: {self.left_counts}")
        if self.right_counts:
            lines.append(f"R2 categories: {self.right_counts}")
        if self.cell_pair_counts:
            lines.append(f"cell pair counts: {self.cell_pair_counts}")
        if self.checked:
            lines.append(f"verified candidates: {self.checked}")
        return "\n".join(lines)


@dataclass(frozen=True)
class FindKStep:
    """One probe of the find-k search (paper Algos 4-6)."""

    k: int
    lower_bound: int | None
    upper_bound: int | None
    exact_count: int | None
    decision: str


@dataclass(frozen=True)
class FindKResult(QueryResult):
    """Answer of a find-k search (Problems 3-4)."""

    method: str
    delta: int
    k: int
    steps: tuple[FindKStep, ...]
    timings: TimingBreakdown
    spec: Any | None = field(default=None, compare=False, repr=False)
    source: Any | None = field(default=None, compare=False, repr=False)

    @property
    def count(self) -> int:
        """Number of search probes performed."""
        return len(self.steps)

    @property
    def full_evaluations(self) -> int:
        """How many k values required a full skyline computation."""
        return sum(1 for s in self.steps if s.exact_count is not None)

    def to_records(self) -> list[dict[str, object]]:
        """The probe trace as dicts (k, bounds, exact count, decision)."""
        return [
            {
                "k": step.k,
                "lower_bound": step.lower_bound,
                "upper_bound": step.upper_bound,
                "exact_count": step.exact_count,
                "decision": step.decision,
            }
            for step in self.steps
        ]

    def summary(self) -> str:
        lines = [
            f"find-k[{self.method}]: delta={self.delta} -> k={self.k} "
            f"({len(self.steps)} probes, {self.full_evaluations} full evaluations)"
        ]
        for step in self.steps:
            lines.append(
                f"  k={step.k}: lb={step.lower_bound} ub={step.upper_bound} "
                f"exact={step.exact_count} -> {step.decision}"
            )
        return "\n".join(lines)
