"""Per-dataset dominance indexes and the cell-pruned "indexed" runner.

A :class:`DominanceIndex` is a reusable, per-relation access structure
(ROADMAP: "per-dataset, per-version dominance indexes"): sorted
per-column projections plus a grid partition of the rows — up to two
highest-variance preference columns, quantile bin edges, and per-cell
componentwise min/max bound vectors. The Catalog caches one per
registered dataset, keyed by the dataset's uid-carrying version token,
and maintains it through the ``MutationDelta`` feed (appends re-use the
grid; everything else invalidates, see ``api/catalog.py``).

The query-time consumer is :func:`run_indexed` (and its cascade twin):
joined rows are bucketed into **joined cells** (the product of the two
base-side grids), whole cells are pruned by a sound witness argument,
and the surviving cells — not contiguous row slices — are what the
shard plan hands to workers.

Soundness of cell pruning (vs. paper Theorem 4)
-----------------------------------------------
k-dominance is non-transitive (Sec. 2.2), so the naive bound argument
"cell A's upper bound is k-dominated by cell B's lower bound, therefore
drop A" is **unsound**: B's lower bound is a virtual corner point, not
a real tuple, and even a real dominator of the corner does not chain to
A's tuples through the corner (that chaining *is* transitivity).

The rule implemented here never assumes transitivity. Let ``lb_C`` be
the componentwise minimum over the *actual joined tuples* of cell
``C``. Prune ``C`` iff some actual joined tuple ``w`` (from anywhere in
the view) satisfies ``#{j : w_j <= lb_C[j]} >= k`` and
``exists j : w_j < lb_C[j]`` — i.e. ``w`` k-dominates the corner with
the strict attribute *against the corner itself*. Then for every tuple
``t`` in ``C``: ``w_j <= lb_C[j] <= t_j`` on those ``>= k`` coordinates
and ``w_j < lb_C[j] <= t_j`` strictly on one, so ``w ≻_k t`` holds
**directly**, with ``w`` a real tuple — one hop, no chaining. Every
pruned tuple is therefore provably non-winning even though k-dominance
cycles (a tuple of ``C`` can never be its own witness: it sits at or
above ``lb_C`` in every column, so the strict condition fails). This is
the same "only one real dominator hop" discipline that Theorem 4's
answer-family argument demands of the grouping algorithm's pruning.

Note the asymmetry with the verification contract: pruning removes
tuples from the *candidate* side only. Surviving candidates are still
verified against the **full** joined matrix — pruned tuples are
non-winning, but they remain perfectly capable of k-dominating others.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..relational.relation import Relation
from ..resilience import checkpoint
from ..skyline.dominance import cells_k_dominated
from .result import KSJQResult
from .timing import PhaseClock
from .verify import sort_rows_for_early_exit

if TYPE_CHECKING:
    from .._typing import BoolVector, FloatMatrix, FloatVector, IntVector
    from .cascade import CascadeResult
    from .plan import CascadePlan, JoinPlan
    from .parallel import ShardPlan

__all__ = [
    "DominanceIndex",
    "CellPartition",
    "IndexStats",
    "joined_cell_ids",
    "lpt_buckets",
    "run_indexed",
    "run_cascade_indexed",
]

#: Tokens for indexes built outside the Catalog (plan-local fallbacks).
_ANON_TOKENS = itertools.count(1)


@dataclass
class IndexStats:
    """Counters of the index life cycle, surfaced by ``Engine.cache_info``.

    Mutated by the Catalog under its lock; read via ``as_dict`` copies.
    """

    builds: int = 0
    hits: int = 0
    invalidations: int = 0
    maintained: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "index_builds": self.builds,
            "index_hits": self.hits,
            "index_invalidations": self.invalidations,
            "index_maintained": self.maintained,
        }


def _choose_grid_columns(matrix: FloatMatrix) -> tuple[int, ...]:
    """Up to two highest-variance preference columns (ties by index).

    Constant columns carry no partitioning power and are skipped; a
    relation whose every column is constant gets a single-cell grid.
    """
    if matrix.shape[0] == 0 or matrix.shape[1] == 0:
        return ()
    variances = matrix.var(axis=0)
    order = np.argsort(-variances, kind="stable")
    return tuple(int(c) for c in order[:2] if variances[c] > 0.0)


def _quantile_edges(values: FloatVector, bins: int) -> FloatVector:
    """Interior quantile cut points giving ~equi-populated bins.

    Duplicated quantiles (heavy ties) are collapsed, so the digitizer
    below never produces empty *interior* structure from skew alone.
    """
    if bins <= 1 or values.size == 0:
        return np.empty(0, dtype=np.float64)
    quantiles = np.linspace(0.0, 1.0, bins + 1)[1:-1]
    return np.unique(np.quantile(values, quantiles))


def _digitize(
    matrix: FloatMatrix,
    grid_columns: tuple[int, ...],
    bin_edges: tuple[FloatVector, ...],
) -> IntVector:
    """Raw grid code per row (mixed-radix over the per-column bins)."""
    codes = np.zeros(matrix.shape[0], dtype=np.intp)
    for column, edges in zip(grid_columns, bin_edges):
        digits = np.searchsorted(edges, matrix[:, column], side="right")
        codes = codes * (edges.size + 1) + digits
    return codes


def lpt_buckets(sizes: IntVector, n_buckets: int) -> list[list[int]]:
    """Longest-processing-time assignment of weighted items to buckets.

    Greedy LPT: items (cells) descending by size, each into the least
    loaded bucket. Deterministic (stable sort, index tie-break) so
    repeated runs shard identically. Returns only non-empty buckets.
    """
    n_buckets = max(1, min(int(n_buckets), int(sizes.size))) if sizes.size else 1
    buckets: list[list[int]] = [[] for _ in range(n_buckets)]
    heap: list[tuple[int, int]] = [(0, b) for b in range(n_buckets)]
    for item in np.argsort(-sizes, kind="stable"):
        load, bucket = heapq.heappop(heap)
        buckets[bucket].append(int(item))
        heapq.heappush(heap, (load + int(sizes[item]), bucket))
    return [bucket for bucket in buckets if bucket]


class DominanceIndex:
    """Grid + sorted-projection index over one relation's oriented matrix.

    Immutable once built (all arrays are derived at construction and
    never written afterwards), so it is shared freely across threads,
    plans and cached partitions without locking.

    Attributes
    ----------
    token:
        Identity of the indexed snapshot. Catalog-built indexes carry
        the dataset's uid+version token, so two indexes with equal
        tokens index byte-identical data; anonymous builds get a
        process-unique token.
    grid_columns / bin_edges:
        The partitioning columns (up to two, highest variance) and
        their interior quantile cut points.
    cell_of:
        Dense cell id per row, in ``[0, n_cells)``.
    cell_lb / cell_ub:
        Per-cell componentwise min/max over the *actual rows* of the
        cell — over **all** preference columns, not just the grid
        columns (the pruning witness rule needs true lower bounds).
    column_sorted:
        Each preference column independently sorted; serves the
        selectivity estimate (:attr:`mean_cell_span`) that feeds the
        cost model.
    """

    def __init__(
        self,
        token: tuple[object, ...],
        matrix: FloatMatrix,
        grid_columns: tuple[int, ...],
        bin_edges: tuple[FloatVector, ...],
        cell_codes: IntVector,
    ) -> None:
        self.token = token
        self.n_rows = int(matrix.shape[0])
        self.d = int(matrix.shape[1])
        self.grid_columns = grid_columns
        self.bin_edges = bin_edges
        self.cell_codes = cell_codes
        self.column_sorted: FloatMatrix = np.sort(matrix, axis=0)
        if self.n_rows:
            unique_codes, cell_of = np.unique(cell_codes, return_inverse=True)
            self.cell_of: IntVector = np.asarray(cell_of, dtype=np.intp)
            self.n_cells = int(unique_codes.size)
            order = np.argsort(self.cell_of, kind="stable")
            sorted_ids = self.cell_of[order]
            starts = np.flatnonzero(
                np.r_[True, sorted_ids[1:] != sorted_ids[:-1]]
            )
            self.cell_counts: IntVector = np.diff(np.r_[starts, order.size])
            self.cell_lb: FloatMatrix = np.minimum.reduceat(matrix[order], starts, axis=0)
            self.cell_ub: FloatMatrix = np.maximum.reduceat(matrix[order], starts, axis=0)
        else:
            self.cell_of = np.empty(0, dtype=np.intp)
            self.n_cells = 0
            self.cell_counts = np.empty(0, dtype=np.intp)
            self.cell_lb = np.empty((0, self.d), dtype=np.float64)
            self.cell_ub = np.empty((0, self.d), dtype=np.float64)
        self.mean_cell_span = self._mean_cell_span()

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, relation: Relation, token: Optional[tuple[object, ...]] = None
    ) -> "DominanceIndex":
        """Build from scratch: choose grid columns, cut quantile edges,
        digitize every row. ``O(n log n)``."""
        checkpoint("index.build")
        matrix = relation.oriented()
        n = matrix.shape[0]
        grid_columns = _choose_grid_columns(matrix)
        if grid_columns:
            # Target ~sqrt(n) occupied cells in total, split evenly
            # across the grid columns.
            per_column = max(
                1, int(round(np.sqrt(float(max(n, 1))) ** (1.0 / len(grid_columns))))
            )
            bin_edges = tuple(
                _quantile_edges(matrix[:, column], per_column)
                for column in grid_columns
            )
        else:
            bin_edges = ()
        codes = _digitize(matrix, grid_columns, bin_edges)
        if token is None:
            token = ("idx", next(_ANON_TOKENS))
        return cls(token, matrix, grid_columns, bin_edges, codes)

    def with_inserted_rows(
        self, relation: Relation, token: Optional[tuple[object, ...]] = None
    ) -> "DominanceIndex":
        """Maintained copy for an *append*: ``relation`` extends the
        indexed rows. Re-uses the grid columns and bin edges (the cell
        geometry stays fixed — only the appended tail is digitized and
        the per-cell structure refreshed), skipping the variance scan
        and quantile passes of a cold :meth:`build`."""
        checkpoint("index.maintain")
        matrix = relation.oriented()
        tail = matrix[self.n_rows :]
        codes = np.concatenate(
            [self.cell_codes, _digitize(tail, self.grid_columns, self.bin_edges)]
        )
        if token is None:
            token = ("idx", next(_ANON_TOKENS))
        return type(self)(token, matrix, self.grid_columns, self.bin_edges, codes)

    # ------------------------------------------------------------------
    def _mean_cell_span(self) -> float:
        """Average per-column row fraction falling inside a cell's
        ``[lb, ub]`` range — the index's selectivity signal. Small spans
        mean tight cells, which is when witness pruning bites; the
        engine's cost model consumes this for the "indexed" estimate."""
        if self.n_cells == 0 or self.n_rows == 0 or self.d == 0:
            return 0.0
        spans = np.empty((self.n_cells, self.d), dtype=np.float64)
        for j in range(self.d):
            column = self.column_sorted[:, j]
            hi = np.searchsorted(column, self.cell_ub[:, j], side="right")
            lo = np.searchsorted(column, self.cell_lb[:, j], side="left")
            spans[:, j] = (hi - lo) / float(self.n_rows)
        return float(spans.mean())

    def describe(self) -> str:
        """One-line human-readable rendering for ``explain()``."""
        return (
            f"{self.n_cells} cells over columns {list(self.grid_columns)} "
            f"({self.n_rows} rows, mean cell span {self.mean_cell_span:.2f})"
        )

    def __repr__(self) -> str:
        return f"<DominanceIndex {self.token} {self.describe()}>"


class CellPartition:
    """Joined-cell partition of one materialized joined matrix.

    Joined cell = (left base cell) x (right base cell); ``cell_lb`` is
    the componentwise min over the cell's *actual joined tuples* (the
    witness rule of the module docstring needs real-tuple bounds, which
    is also why no monotonicity assumption on aggregates is needed —
    bounds are taken after aggregate columns are materialized).

    Memoization contract (checked by the repo linter's R2 rule): the
    per-``k`` pruning masks and the sorted verification matrix build
    under double-checked locking — lock-free fast-path reads, writes
    hold ``_lock``. ``candidates_by_k`` is filled by
    ``repro.core.parallel._sharded_skyline`` under this same lock
    (passed as its ``memo_lock``), making warm repeated queries
    verification-only; ``survivors_by_k`` memoizes the *verified*
    answer rows per ``k`` (sound: a partition is derived from one
    immutable joined matrix — mutations produce new index tokens and
    therefore a fresh partition — and verification is deterministic),
    making further repeats answer-construction-only.

    # guarded-by-writes: _lock: _pruned, _sorted
    """

    def __init__(self, matrix: FloatMatrix, cell_ids: IntVector) -> None:
        self.matrix = matrix
        order = np.argsort(cell_ids, kind="stable")
        self._order: IntVector = order
        sorted_ids = cell_ids[order]
        if order.size:
            self._starts: IntVector = np.flatnonzero(
                np.r_[True, sorted_ids[1:] != sorted_ids[:-1]]
            )
            self.cell_counts: IntVector = np.diff(np.r_[self._starts, order.size])
            self.cell_lb: FloatMatrix = np.minimum.reduceat(
                matrix[order], self._starts, axis=0
            )
        else:
            self._starts = np.empty(0, dtype=np.intp)
            self.cell_counts = np.empty(0, dtype=np.intp)
            self.cell_lb = np.empty((0, matrix.shape[1]), dtype=np.float64)
        self.candidates_by_k: dict[int, IntVector] = {}
        self.survivors_by_k: dict[int, tuple[IntVector, int]] = {}
        self._pruned: dict[int, BoolVector] = {}
        self._sorted: FloatMatrix | None = None
        self._lock = threading.RLock()

    @property
    def n_cells(self) -> int:
        """Number of occupied joined cells."""
        return int(self.cell_counts.size)

    @property
    def lock(self) -> threading.RLock:
        """The memo lock; hand this to ``_sharded_skyline`` together
        with :attr:`candidates_by_k`."""
        return self._lock

    def sorted_matrix(self) -> FloatMatrix:
        """The joined matrix pre-sorted for early-exit dominance scans."""
        if self._sorted is None:
            with self._lock:
                if self._sorted is None:
                    self._sorted = sort_rows_for_early_exit(self.matrix)
        return self._sorted

    def pruned_cells(self, k: int) -> BoolVector:
        """Per-cell flag: provably non-winning at ``k`` (witness rule).

        Memoized per ``k``; the scan itself is one
        :func:`~repro.skyline.dominance.cells_k_dominated` pass of the
        full joined matrix against the cell lower bounds.
        """
        mask = self._pruned.get(k)
        if mask is None:
            with self._lock:
                mask = self._pruned.get(k)
                if mask is None:
                    mask = cells_k_dominated(self.sorted_matrix(), self.cell_lb, k)
                    self._pruned[k] = mask
        return mask

    def has_candidates(self, k: int) -> bool:
        """Did an earlier run already memoize the candidate superset?"""
        return k in self.candidates_by_k

    def row_buckets(self, k: int, n_buckets: int) -> list[IntVector]:
        """Surviving rows at ``k``, grouped cell-whole into at most
        ``n_buckets`` LPT-balanced buckets (the shard work lists)."""
        mask = self.pruned_cells(k)
        keep = np.flatnonzero(~mask)
        if keep.size == 0:
            return []
        ends = self._starts + self.cell_counts
        buckets = lpt_buckets(self.cell_counts[keep], n_buckets)
        return [
            np.concatenate(
                [
                    self._order[self._starts[cell] : ends[cell]]
                    for cell in (keep[b] for b in bucket)
                ]
            )
            for bucket in buckets
        ]


# ----------------------------------------------------------------------
# Plan-based runners (consumed by repro.api.Engine)
# ----------------------------------------------------------------------
def joined_cell_ids(
    left_index: DominanceIndex,
    right_index: DominanceIndex,
    left_rows: IntVector,
    right_rows: IntVector,
) -> IntVector:
    """Joined cell id per pair/chain: base-cell product, mixed radix."""
    radix = max(1, right_index.n_cells)
    return left_index.cell_of[left_rows] * radix + right_index.cell_of[right_rows]


def run_indexed(
    plan: "JoinPlan",
    k: int,
    left_index: DominanceIndex,
    right_index: DominanceIndex,
    shards: "ShardPlan | None" = None,
) -> KSJQResult:
    """Index-accelerated two-way KSJQ: cell pruning + cell sharding.

    Exact for every join kind and any aggregate (bounds are computed on
    the materialized joined view, so no monotonicity is assumed), and
    byte-identical to the naive ground truth across ``parallelism``
    settings: pruning only ever removes provably non-winning tuples
    (module docstring), candidate generation runs per cell bucket, and
    the mandatory verification pass re-checks every candidate against
    the **full** joined matrix.

    Repeated queries through a cached plan get cheaper twice over: the
    cell partition, pruning masks and per-``k`` candidate supersets are
    memoized on the plan's :class:`CellPartition` (first repeat:
    verification-only), and the verified survivor rows themselves are
    memoized per ``k`` (further repeats: answer construction only —
    sound because the partition is bound to one immutable snapshot via
    the index tokens, so mutations always land on a fresh partition).
    """
    from .parallel import _sharded_skyline, plan_shards

    params = plan.params(k)
    clock = PhaseClock()
    with clock.phase("join"):
        view = plan.view()
        matrix = view.oriented()
    if shards is None:
        shards = plan_shards(matrix.shape[0], "auto", matrix.shape[1])
    shards = replace(shards, partition="cells")
    with clock.phase("grouping"):
        partition = plan.cell_partition(left_index, right_index)
        pruned = int(np.count_nonzero(partition.pruned_cells(k)))
        memoized = partition.survivors_by_k.get(k)
        buckets = (
            None
            if memoized is not None or partition.has_candidates(k)
            else partition.row_buckets(k, shards.n_shards)
        )
    if memoized is not None:
        keep, checked = memoized
    else:
        keep, checked = _sharded_skyline(
            matrix,
            k,
            shards,
            clock,
            partial_of=lambda survivors: tuple(
                (int(view.pairs[i, 0]), int(view.pairs[i, 1])) for i in survivors
            ),
            row_subsets=buckets,
            sorted_matrix=partition.sorted_matrix(),
            candidate_memo=partition.candidates_by_k,
            memo_lock=partition.lock,
        )
        with partition.lock:
            partition.survivors_by_k[k] = (keep, checked)
    return KSJQResult(
        algorithm="indexed",
        mode="exact",
        params=params,
        pairs=view.pairs[keep],
        timings=clock.freeze(),
        cell_pair_counts={"cells": partition.n_cells, "pruned_cells": pruned},
        checked=checked,
    )


def run_cascade_indexed(
    plan: "CascadePlan",
    k: int,
    first_index: DominanceIndex,
    last_index: DominanceIndex,
    shards: "ShardPlan | None" = None,
) -> "CascadeResult":
    """Index-accelerated m-way cascade: chains are bucketed by the
    (first relation cell) x (last relation cell) product, pruned by the
    same witness rule, and verified against the full chain matrix.
    Exact for any aggregate; byte-identical across shard counts."""
    from .cascade import CascadeResult
    from .parallel import _sharded_skyline, plan_shards

    plan.params(k)
    clock = PhaseClock()
    with clock.phase("join"):
        all_chains = plan.chains()
        matrix = plan.oriented()
    if shards is None:
        shards = plan_shards(matrix.shape[0], "auto", matrix.shape[1])
    shards = replace(shards, partition="cells")
    with clock.phase("grouping"):
        partition = plan.cell_partition(first_index, last_index)
        pruned_mask = partition.pruned_cells(k)
        pruned_chains = (
            int(partition.cell_counts[pruned_mask].sum()) if pruned_mask.size else 0
        )
        memoized = partition.survivors_by_k.get(k)
        buckets = (
            None
            if memoized is not None or partition.has_candidates(k)
            else partition.row_buckets(k, shards.n_shards)
        )
    if memoized is not None:
        keep = memoized[0]
    else:
        keep, checked = _sharded_skyline(
            matrix,
            k,
            shards,
            clock,
            partial_of=lambda survivors: tuple(
                tuple(int(x) for x in all_chains[i]) for i in survivors
            ),
            row_subsets=buckets,
            sorted_matrix=partition.sorted_matrix(),
            candidate_memo=partition.candidates_by_k,
            memo_lock=partition.lock,
        )
        with partition.lock:
            partition.survivors_by_k[k] = (keep, checked)
    return CascadeResult(
        k=k,
        chains=all_chains[keep],
        total_chains=int(all_chains.shape[0]),
        pruned_rows=pruned_chains,
        algorithm="indexed",
        timings=clock.freeze(),
    )
